"""Thread mapper tests (C-state choice plus activity construction)."""

import pytest

from repro.baselines.coskun_balancing import CoskunBalancingMapping
from repro.core.mapping import ThreadMapper
from repro.core.mapping_policies import ProposedThermalAwareMapping
from repro.exceptions import MappingError
from repro.power.cstates import CState
from repro.workloads.configuration import Configuration


@pytest.fixture(scope="module")
def mapper(floorplan):
    return ThreadMapper(floorplan)


class TestIdleCStateSelection:
    def test_proposed_policy_uses_latency_budget(self, mapper):
        policy = ProposedThermalAwareMapping()
        assert mapper.idle_cstate_for(policy, 0.0) is CState.POLL
        assert mapper.idle_cstate_for(policy, 5.0) is CState.C1
        assert mapper.idle_cstate_for(policy, 1000.0) is CState.C6

    def test_cstate_unaware_policy_always_poll(self, mapper):
        policy = CoskunBalancingMapping()
        assert mapper.idle_cstate_for(policy, 1000.0) is CState.POLL


class TestMapping:
    def test_mapping_structure(self, mapper, x264):
        configuration = Configuration(4, 2, 2.9)
        mapping = mapper.map(x264, configuration, ProposedThermalAwareMapping())
        assert mapping.n_active_cores == 4
        assert mapping.configuration == configuration
        assert mapping.benchmark_name == "x264"
        assert "x264" in mapping.describe()

    def test_mapping_uses_benchmark_latency_budget(self, mapper, x264, canneal):
        policy = ProposedThermalAwareMapping()
        strict = mapper.map(x264, Configuration(2, 1, 2.6), policy)
        relaxed = mapper.map(canneal, Configuration(2, 1, 2.6), policy)
        # x264 tolerates only a few microseconds; canneal tolerates much more.
        assert strict.idle_cstate.depth <= relaxed.idle_cstate.depth

    def test_latency_override(self, mapper, x264):
        mapping = mapper.map(
            x264,
            Configuration(2, 1, 2.6),
            ProposedThermalAwareMapping(),
            tolerable_idle_latency_us=0.0,
        )
        assert mapping.idle_cstate is CState.POLL

    def test_too_many_cores_rejected(self, mapper, x264):
        with pytest.raises(MappingError):
            mapper.map(x264, Configuration(9, 1, 2.6), ProposedThermalAwareMapping())


class TestActivities:
    def test_activity_list_covers_every_core(self, mapper, x264):
        mapping = mapper.map(x264, Configuration(4, 2, 3.2), ProposedThermalAwareMapping())
        activities = mapper.activities(x264, mapping)
        assert len(activities) == 8
        active = [a for a in activities if a.active]
        idle = [a for a in activities if not a.active]
        assert len(active) == 4
        assert len(idle) == 4
        assert {a.core_index for a in active} == set(mapping.active_cores)
        assert all(a.threads_on_core == 2 for a in active)
        assert all(a.idle_cstate is mapping.idle_cstate for a in idle)

    def test_activity_factor_passthrough(self, mapper, x264):
        mapping = mapper.map(x264, Configuration(2, 1, 2.6), ProposedThermalAwareMapping())
        activities = mapper.activities(x264, mapping, activity_factor=0.5)
        active = next(a for a in activities if a.active)
        assert active.power_params.activity_factor == 0.5
