"""SimulationSession tests: steady lane, warm-start advance, boundary policy."""

import numpy as np
import pytest

from repro.core.mapping import ThreadMapper
from repro.core.mapping_policies import ProposedThermalAwareMapping
from repro.core.pipeline import CooledServerSimulation
from repro.core.session import SimulationSession
from repro.thermosyphon.design import PAPER_OPTIMIZED_DESIGN
from repro.workloads.configuration import Configuration


@pytest.fixture(scope="module")
def session(floorplan, power_model, coarse_thermal_simulator):
    return SimulationSession(
        floorplan,
        design=PAPER_OPTIMIZED_DESIGN,
        power_model=power_model,
        thermal_simulator=coarse_thermal_simulator,
    )


@pytest.fixture(scope="module")
def mapping(floorplan, x264):
    mapper = ThreadMapper(floorplan)
    return mapper.map(x264, Configuration(8, 2, 3.2), ProposedThermalAwareMapping())


def _power_map(session, x264, mapping, activity_factor=1.0):
    mapper = ThreadMapper(session.floorplan, orientation=session.design.orientation)
    activities = mapper.activities(x264, mapping, activity_factor=activity_factor)
    breakdown = session.power_model.evaluate(
        activities, mapping.configuration.frequency_ghz, memory_intensity=x264.memory_intensity
    )
    return session.thermal_simulator.power_map(breakdown.component_power_w)


class TestSteadyLane:
    def test_facade_delegates_to_session(self, floorplan, power_model, coarse_thermal_simulator, x264, mapping):
        simulation = CooledServerSimulation(
            floorplan,
            power_model=power_model,
            thermal_simulator=coarse_thermal_simulator,
        )
        via_facade = simulation.simulate_mapping(x264, mapping)
        via_session = simulation.session.solve_steady_mapping(x264, mapping)
        assert via_facade.case_temperature_c == pytest.approx(via_session.case_temperature_c)
        assert via_facade.package_power_w == pytest.approx(via_session.package_power_w)
        # The facade exposes the session's substrates, not copies.
        assert simulation.thermal_simulator is simulation.session.thermal_simulator
        assert simulation.loop is simulation.session.loop

    def test_solve_steady_mapping_carries_mapping(self, session, x264, mapping):
        result = session.solve_steady_mapping(x264, mapping)
        assert result.mapping is mapping
        assert result.configuration is mapping.configuration
        assert result.benchmark_name == x264.name


class TestAdvance:
    def test_first_advance_initializes_from_steady(self, session, x264, mapping):
        session.reset()
        assert session.temperatures is None
        power = _power_map(session, x264, mapping)
        steady = session.thermal_simulator.steady_state_from_map(
            power,
            session.loop.cooling_boundary(
                power, session.thermal_simulator.grid.cell_pitch_mm()
            ).boundary,
        )
        step = session.advance(power, dt_s=2.0)
        # Initialized at equilibrium for this power, the field barely moves.
        assert step.settle_residual_c < 0.05
        assert step.thermal_result.case_temperature_c() == pytest.approx(
            steady.case_temperature_c(), abs=0.2
        )
        assert session.temperatures is not None

    def test_warm_start_converges_to_new_steady(self, session, x264, mapping):
        """After a power step, repeated advances approach the new equilibrium."""
        session.reset()
        low_power = _power_map(session, x264, mapping, activity_factor=0.5)
        high_power = _power_map(session, x264, mapping, activity_factor=1.0)
        session.advance(low_power, dt_s=2.0)  # initialize at the low point
        boundary = session.loop.cooling_boundary(
            high_power, session.thermal_simulator.grid.cell_pitch_mm()
        ).boundary
        target = session.thermal_simulator.steady_state_from_map(high_power, boundary)

        residuals = []
        step = None
        for _ in range(60):
            step = session.advance(high_power, dt_s=2.0, force_boundary_refresh=False)
            residuals.append(step.settle_residual_c)
        assert step is not None
        # Residual decays as the field settles...
        assert residuals[-1] < residuals[0]
        assert residuals[-1] < 0.01
        # ...towards the steady solution at the new power.
        assert step.thermal_result.case_temperature_c() == pytest.approx(
            target.case_temperature_c(), abs=0.5
        )

    def test_substeps_share_one_operator(self, session, x264, mapping):
        session.reset()
        power = _power_map(session, x264, mapping)
        cache = session.thermal_simulator.solver_cache
        session.advance(power, dt_s=2.0, n_substeps=4)
        misses_before = cache.stats.misses
        session.advance(power, dt_s=2.0, n_substeps=4)
        assert cache.stats.misses == misses_before  # all substeps are cache hits

    def test_period_peak_tracks_overshoot(self, session, x264, mapping):
        session.reset()
        power = _power_map(session, x264, mapping)
        step = session.advance(power, dt_s=4.0, n_substeps=4)
        assert step.period_peak_case_c >= step.thermal_result.case_temperature_c() - 1e-9

    def test_reset_forgets_state(self, session, x264, mapping):
        power = _power_map(session, x264, mapping)
        session.advance(power, dt_s=2.0)
        session.reset()
        assert session.temperatures is None
        assert session.boundary_state_age_power_w is None

    def test_rejects_bad_substeps(self, session, x264, mapping):
        power = _power_map(session, x264, mapping)
        with pytest.raises(Exception):
            session.advance(power, dt_s=2.0, n_substeps=0)


class TestBoundaryRefreshPolicy:
    def test_small_power_drift_holds_boundary(self, session, x264, mapping):
        session.reset()
        power = _power_map(session, x264, mapping)
        first = session.advance(power, dt_s=2.0)
        assert first.boundary_refreshed
        jittered = power * 1.02  # 2% drift, below the default 15% tolerance
        second = session.advance(jittered, dt_s=2.0)
        assert not second.boundary_refreshed
        assert session.boundary_state_age_power_w == pytest.approx(float(power.sum()))

    def test_large_power_drift_refreshes(self, session, x264, mapping):
        session.reset()
        power = _power_map(session, x264, mapping)
        session.advance(power, dt_s=2.0)
        step = session.advance(power * 1.5, dt_s=2.0)
        assert step.boundary_refreshed
        assert session.boundary_state_age_power_w == pytest.approx(float(power.sum()) * 1.5)

    def test_water_loop_change_refreshes(self, session, x264, mapping):
        session.reset()
        power = _power_map(session, x264, mapping)
        loop_a = session.design.water_loop()
        session.advance(power, loop_a, dt_s=2.0)
        step = session.advance(power, loop_a.with_flow_rate(12.0), dt_s=2.0)
        assert step.boundary_refreshed

    def test_force_refresh_overrides_tolerance(self, session, x264, mapping):
        session.reset()
        power = _power_map(session, x264, mapping)
        session.advance(power, dt_s=2.0)
        step = session.advance(power, dt_s=2.0, force_boundary_refresh=True)
        assert step.boundary_refreshed

    def test_refreshed_boundary_matches_steady_build(self, session, x264, mapping):
        """The held boundary is exactly what the steady path would build."""
        session.reset()
        power = _power_map(session, x264, mapping)
        step = session.advance(power, dt_s=2.0)
        fresh = session.loop.cooling_boundary(
            power, session.thermal_simulator.grid.cell_pitch_mm()
        )
        np.testing.assert_allclose(
            step.boundary_result.boundary.htc_w_m2k, fresh.boundary.htc_w_m2k
        )


class TestAdvanceMapping:
    def test_transient_step_result_fields(self, session, x264, mapping):
        session.reset()
        step = session.advance_mapping(x264, mapping, 2.0, n_substeps=3)
        assert step.n_substeps == 3
        assert step.dt_s == pytest.approx(2.0)
        assert step.result.benchmark_name == x264.name
        assert step.result.mapping is mapping
        assert step.settle_residual_c >= 0.0
        assert np.isfinite(step.period_peak_case_c)

    def test_transient_tracks_steady_for_constant_load(self, session, x264, mapping):
        """At a constant phase the transient lane sits on the steady answer."""
        session.reset()
        steady = session.solve_steady_mapping(x264, mapping)
        step = None
        for _ in range(20):
            step = session.advance_mapping(x264, mapping, 2.0)
        assert step is not None
        assert step.result.case_temperature_c == pytest.approx(
            steady.case_temperature_c, abs=0.3
        )
        assert step.result.package_power_w == pytest.approx(steady.package_power_w)
