"""Per-core dynamic power model tests."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import ConfigurationError, ValidationError
from repro.power.core_power import (
    CorePowerModel,
    CorePowerParameters,
    leakage_scaling,
)


@pytest.fixture(scope="module")
def model():
    return CorePowerModel()


@pytest.fixture(scope="module")
def params():
    return CorePowerParameters(dynamic_power_fmax_w=5.0)


class TestParameters:
    def test_rejects_non_positive_power(self):
        with pytest.raises(ValidationError):
            CorePowerParameters(dynamic_power_fmax_w=0.0)

    def test_rejects_negative_activity(self):
        with pytest.raises(ValidationError):
            CorePowerParameters(dynamic_power_fmax_w=5.0, activity_factor=-0.1)


class TestActivePower:
    def test_power_increases_with_frequency(self, model, params):
        powers = [model.active_power_w(params, f) for f in (2.6, 2.9, 3.2)]
        assert powers == sorted(powers)
        assert powers[0] < powers[-1]

    def test_smt_thread_adds_power(self, model, params):
        single = model.active_power_w(params, 3.2, threads_on_core=1)
        dual = model.active_power_w(params, 3.2, threads_on_core=2)
        assert dual > single
        # The second hardware thread costs much less than a full core.
        assert dual < 2.0 * single

    def test_activity_factor_scales_dynamic_power(self, model):
        full = model.active_power_w(CorePowerParameters(5.0, 1.0), 3.2)
        half = model.active_power_w(CorePowerParameters(5.0, 0.5), 3.2)
        assert half < full

    def test_magnitude_plausible_for_server_core(self, model, params):
        power = model.active_power_w(params, 3.2, threads_on_core=2)
        assert 3.0 < power < 12.0

    def test_invalid_thread_count(self, model, params):
        with pytest.raises(ConfigurationError):
            model.active_power_w(params, 3.2, threads_on_core=3)

    def test_invalid_frequency(self, model, params):
        with pytest.raises(ConfigurationError):
            model.active_power_w(params, 2.0)

    @given(st.floats(min_value=1.0, max_value=8.0), st.floats(min_value=0.1, max_value=1.2))
    def test_power_positive_and_monotone_in_base_power(self, base, activity):
        model = CorePowerModel()
        low = model.active_power_w(CorePowerParameters(base, activity), 2.6)
        high = model.active_power_w(CorePowerParameters(base * 1.5, activity), 2.6)
        assert 0.0 < low < high


class TestFrequencyForBudget:
    def test_large_budget_gives_fmax(self, model, params):
        assert model.frequency_for_power_budget(params, 50.0, (2.6, 2.9, 3.2)) == 3.2

    def test_tiny_budget_gives_none(self, model, params):
        assert model.frequency_for_power_budget(params, 0.5, (2.6, 2.9, 3.2)) is None

    def test_intermediate_budget(self, model, params):
        p_26 = model.active_power_w(params, 2.6)
        p_32 = model.active_power_w(params, 3.2)
        budget = 0.5 * (p_26 + p_32)
        chosen = model.frequency_for_power_budget(params, budget, (2.6, 2.9, 3.2))
        assert chosen in (2.6, 2.9)


class TestLeakageScaling:
    def test_reference_temperature_gives_unity(self):
        assert leakage_scaling(60.0) == pytest.approx(1.0)

    def test_hotter_means_more_leakage(self):
        assert leakage_scaling(80.0) > 1.0
        assert leakage_scaling(40.0) < 1.0

    def test_monotone(self):
        values = [leakage_scaling(t) for t in (40.0, 60.0, 80.0, 100.0)]
        assert values == sorted(values)
