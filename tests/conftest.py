"""Shared fixtures for the test suite.

Thermal solves dominate test runtime, so the shared platform uses a coarse
2 mm grid (the full experiments default to 1 mm).  Fixtures are session
scoped where the underlying objects are immutable or only read.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import Platform, build_platform
from repro.floorplan.xeon_e5_v4 import build_xeon_e5_v4_floorplan
from repro.power.power_model import ServerPowerModel
from repro.thermal.simulator import ThermalSimulator
from repro.thermosyphon.design import PAPER_OPTIMIZED_DESIGN
from repro.thermosyphon.loop import ThermosyphonLoop
from repro.workloads.parsec import get_benchmark
from repro.workloads.profiler import WorkloadProfiler


@pytest.fixture(scope="session")
def floorplan():
    """The Xeon E5 v4 floorplan."""
    return build_xeon_e5_v4_floorplan()


@pytest.fixture(scope="session")
def power_model(floorplan):
    """Server power model on the shared floorplan."""
    return ServerPowerModel(floorplan)


@pytest.fixture(scope="session")
def profiler(power_model):
    """Workload profiler on the shared power model."""
    return WorkloadProfiler(power_model)


@pytest.fixture(scope="session")
def coarse_thermal_simulator(floorplan):
    """A coarse (2 mm cell) thermal simulator for fast tests."""
    return ThermalSimulator(floorplan, cell_size_mm=2.0)


@pytest.fixture(scope="session")
def thermosyphon_loop():
    """Thermosyphon loop with the paper's optimised design."""
    return ThermosyphonLoop(PAPER_OPTIMIZED_DESIGN)


@pytest.fixture(scope="session")
def coarse_platform(floorplan, power_model, profiler, coarse_thermal_simulator) -> Platform:
    """Experiment platform reusing the coarse thermal simulator."""
    return Platform(
        floorplan=floorplan,
        power_model=power_model,
        thermal_simulator=coarse_thermal_simulator,
        profiler=profiler,
        cell_size_mm=2.0,
    )


@pytest.fixture(scope="session")
def x264():
    """A compute-heavy, power-hungry benchmark."""
    return get_benchmark("x264")


@pytest.fixture(scope="session")
def canneal():
    """A memory-bound, poorly-scaling benchmark."""
    return get_benchmark("canneal")
