"""Thread-parallel hardware-group advancement: golden parity with serial.

The parallel floor engine (``parallel_groups >= 2``) fans the per-group
stacked solves of :class:`~repro.datacenter.floor.FloorEngine` over a
persistent worker pool.  Its whole contract is *bit-identity*: results
must match the serial loop exactly — not approximately — because the
per-group state is disjoint and the commit happens in group-index order
on the calling thread.  These tests pin that contract on a mixed-SKU
floor for every engine lane:

* the fine (per-period) lane, fixed setpoint;
* the coarsened lane (dyadic macro-spans through the reduced-order
  Krylov path), including the merged :class:`~repro.thermal.rom.RomStats`
  counters;
* snapshot()/restore() mid-run under the threaded engine;

plus the lifecycle edges: single-group floors never build an executor,
``close()`` is idempotent, negative budgets are rejected, and the
cold-floor guard of ``advance_span`` raises on the calling thread before
any worker is involved.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.datacenter.floor import FloorEngine
from repro.datacenter.model import CoarseningConfig, DatacenterModel
from repro.datacenter.scenarios import build_scenario
from repro.exceptions import ConfigurationError
from repro.floorplan.xeon_e5_v4 import build_xeon_e5_v4_floorplan
from repro.thermal.simulator import ThermalSimulator

CELL_SIZE_MM = 4.0
CONTROL_PERIOD_S = 2.0
FIXED_DURATION_S = 48.0
COARSE_DURATION_S = 240.0
PHASE_DT_S = 60.0

#: Every decision field the serial and threaded engines must agree on.
_DECISION_FIELDS = (
    "time_s",
    "case_temperature_c",
    "die_hot_spot_c",
    "package_power_w",
    "water_flow_kg_h",
    "frequency_ghz",
    "action",
    "settle_residual_c",
    "period_peak_case_c",
)

_ROM_FIELDS = (
    "basis_builds",
    "basis_rebuilds",
    "spans",
    "rom_periods",
    "rom_rows",
    "fallback_rows",
    "fallback_error",
    "fallback_guard",
    "fallback_projection",
)


@pytest.fixture(scope="module")
def sku_floorplans(floorplan):
    """Two SKUs: the shared default and a wider-spreader variant."""
    return (floorplan, build_xeon_e5_v4_floorplan(spreader_size_mm=42.0))


def _mixed_racks(sku_floorplans, duration_s):
    """A mixed-SKU floor: one diurnal rack per SKU, mappings resolved
    against each rack's own floorplan."""
    racks = []
    for index, rack_floorplan in enumerate(sku_floorplans):
        scenario = build_scenario(
            "diurnal",
            n_racks=1,
            servers_per_rack=2,
            duration_s=duration_s,
            seed=3 + index,
            phase_dt_s=PHASE_DT_S,
            floorplan=rack_floorplan,
        )
        racks.append(
            replace(
                scenario.racks[0],
                name=f"sku{index}",
                floorplan=None if index == 0 else rack_floorplan,
            )
        )
    return tuple(racks)


def _model(racks, sku_floorplans, parallel_groups, coarsening=None):
    return DatacenterModel(
        racks,
        floorplan=sku_floorplans[0],
        thermal_simulator=ThermalSimulator(
            sku_floorplans[0], cell_size_mm=CELL_SIZE_MM
        ),
        control_period_s=CONTROL_PERIOD_S,
        coarsening=coarsening,
        parallel_groups=parallel_groups,
    )


def _run(racks, sku_floorplans, parallel_groups, duration_s, coarsening=None):
    """Run a floor; returns the trace and whether a worker pool ran."""
    model = _model(racks, sku_floorplans, parallel_groups, coarsening)
    session = model.session()
    try:
        trace = session.run(duration_s=duration_s)
        threaded = session.floor_engine._executor is not None
    finally:
        session.close()
    return trace, threaded


def _assert_traces_identical(serial, parallel):
    assert parallel.n_periods == serial.n_periods
    assert parallel.setpoint_c == serial.setpoint_c
    assert parallel.plant_power_w == serial.plant_power_w
    assert parallel.coarse_spans == serial.coarse_spans
    assert parallel.coarse_periods == serial.coarse_periods
    for rack_s, rack_p in zip(serial.racks, parallel.racks):
        assert rack_p.chiller_power_w == rack_s.chiller_power_w
        for period_s, period_p in zip(rack_s.periods, rack_p.periods):
            for decision_s, decision_p in zip(period_s, period_p):
                for field in _DECISION_FIELDS:
                    assert getattr(decision_p, field) == getattr(
                        decision_s, field
                    ), field


@pytest.fixture(scope="module")
def fixed_pair(sku_floorplans):
    racks = _mixed_racks(sku_floorplans, FIXED_DURATION_S)
    serial, serial_threaded = _run(racks, sku_floorplans, 0, FIXED_DURATION_S)
    threaded, threaded_ran = _run(racks, sku_floorplans, 2, FIXED_DURATION_S)
    return serial, serial_threaded, threaded, threaded_ran


@pytest.fixture(scope="module")
def coarse_pair(sku_floorplans):
    racks = _mixed_racks(sku_floorplans, COARSE_DURATION_S)
    serial, _ = _run(
        racks, sku_floorplans, 0, COARSE_DURATION_S, CoarseningConfig()
    )
    threaded, threaded_ran = _run(
        racks, sku_floorplans, 2, COARSE_DURATION_S, CoarseningConfig()
    )
    return serial, threaded, threaded_ran


class TestFixedSetpointParity:
    def test_threaded_path_actually_ran(self, fixed_pair):
        serial, serial_threaded, _, threaded_ran = fixed_pair
        assert not serial_threaded
        assert threaded_ran

    def test_bit_identical_decisions(self, fixed_pair):
        serial, _, threaded, _ = fixed_pair
        _assert_traces_identical(serial, threaded)

    def test_mixed_sku_floor_has_two_groups(self, sku_floorplans):
        racks = _mixed_racks(sku_floorplans, FIXED_DURATION_S)
        model = _model(racks, sku_floorplans, 2)
        assert model.n_hardware_groups == 2


class TestCoarsenedParity:
    def test_coarsening_engaged_in_both(self, coarse_pair):
        serial, threaded, threaded_ran = coarse_pair
        assert threaded_ran
        assert serial.coarse_spans > 0
        assert threaded.coarse_spans > 0

    def test_bit_identical_decisions(self, coarse_pair):
        serial, threaded, _ = coarse_pair
        _assert_traces_identical(serial, threaded)

    def test_rom_stats_merge_matches_serial(self, coarse_pair):
        serial, threaded, _ = coarse_pair
        assert serial.rom_stats is not None and threaded.rom_stats is not None
        for field in _ROM_FIELDS:
            assert getattr(threaded.rom_stats, field) == getattr(
                serial.rom_stats, field
            ), field


class TestSnapshotRestore:
    def test_threaded_restore_replays_bit_identical(self, sku_floorplans):
        racks = _mixed_racks(sku_floorplans, FIXED_DURATION_S)
        model = _model(racks, sku_floorplans, 2)
        session = model.session()
        try:
            time_s = 0.0
            for _ in range(2):
                session.advance_period(time_s)
                time_s += CONTROL_PERIOD_S
            snapshot = session.snapshot()
            first = [
                session.advance_period(time_s),
                session.advance_period(time_s + CONTROL_PERIOD_S),
            ]
            session.restore(snapshot)
            second = [
                session.advance_period(time_s),
                session.advance_period(time_s + CONTROL_PERIOD_S),
            ]
            for period_a, period_b in zip(first, second):
                assert period_b.rack_chiller_power_w == period_a.rack_chiller_power_w
                assert (
                    period_b.worst_period_peak_case_c
                    == period_a.worst_period_peak_case_c
                )
                for rack_a, rack_b in zip(
                    period_a.rack_decisions, period_b.rack_decisions
                ):
                    for decision_a, decision_b in zip(rack_a, rack_b):
                        for field in _DECISION_FIELDS:
                            assert getattr(decision_b, field) == getattr(
                                decision_a, field
                            ), field
        finally:
            session.close()


class TestLifecycle:
    def test_negative_budget_rejected_by_model(self, sku_floorplans):
        racks = _mixed_racks(sku_floorplans, FIXED_DURATION_S)
        with pytest.raises(ConfigurationError):
            _model(racks, sku_floorplans, -1)

    def test_negative_budget_rejected_by_engine(self, sku_floorplans):
        racks = _mixed_racks(sku_floorplans, FIXED_DURATION_S)
        model = _model(racks, sku_floorplans, 0)
        session = model.session()
        with pytest.raises(ConfigurationError):
            FloorEngine(session.rack_sessions, parallel_groups=-1)

    def test_single_group_floor_never_builds_a_pool(self, floorplan):
        scenario = build_scenario(
            "diurnal",
            n_racks=2,
            servers_per_rack=1,
            duration_s=8.0,
            seed=3,
            phase_dt_s=PHASE_DT_S,
            floorplan=floorplan,
        )
        model = DatacenterModel(
            scenario.racks,
            floorplan=floorplan,
            thermal_simulator=ThermalSimulator(floorplan, cell_size_mm=CELL_SIZE_MM),
            control_period_s=CONTROL_PERIOD_S,
            parallel_groups=8,
        )
        assert model.n_hardware_groups == 1
        session = model.session()
        try:
            session.run(duration_s=8.0)
            assert session.floor_engine._executor is None
        finally:
            session.close()

    def test_close_is_idempotent(self, sku_floorplans):
        racks = _mixed_racks(sku_floorplans, FIXED_DURATION_S)
        model = _model(racks, sku_floorplans, 2)
        session = model.session()
        session.advance_period(0.0)
        assert session.floor_engine._executor is not None
        session.close()
        assert session.floor_engine._executor is None
        session.close()

    def test_cold_floor_span_raises_on_caller(self, sku_floorplans):
        racks = _mixed_racks(sku_floorplans, FIXED_DURATION_S)
        model = _model(
            racks, sku_floorplans, 2, CoarseningConfig()
        )
        session = model.session()
        try:
            with pytest.raises(ConfigurationError):
                session.advance_span(0.0, 4)
        finally:
            session.close()
