"""Telemetry on vs off: committed simulation results are bit-identical.

The observability layer's hard contract: telemetry only *observes*.  No
counter, gauge, histogram or span reading feeds back into a physics
decision, and no wall-clock value lands in a committed trace — so a run
with a telemetry hub installed must reproduce the telemetry-off run bit
for bit.  Pinned here for every engine lane:

* the fine (per-period) lane, fixed setpoint;
* the coarsened lane on a mixed-SKU floor under the thread-parallel
  engine (the acceptance configuration);
* the MPC supervisory lane (snapshot/rollout/restore planning).

Each pair also asserts the enabled run *actually recorded* telemetry, so
the identity cannot pass vacuously with a dead hub.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.datacenter.model import CoarseningConfig, DatacenterModel
from repro.datacenter.scenarios import build_scenario
from repro.datacenter.supervisory import MpcSupervisoryController
from repro.floorplan.xeon_e5_v4 import build_xeon_e5_v4_floorplan
from repro.obs import Telemetry, set_telemetry
from repro.thermal.simulator import ThermalSimulator

CELL_SIZE_MM = 4.0
CONTROL_PERIOD_S = 2.0

_DECISION_FIELDS = (
    "time_s",
    "case_temperature_c",
    "die_hot_spot_c",
    "package_power_w",
    "water_flow_kg_h",
    "frequency_ghz",
    "action",
    "settle_residual_c",
    "period_peak_case_c",
)


def _assert_bit_identical(off, on):
    assert on.n_periods == off.n_periods
    assert on.setpoint_c == off.setpoint_c
    assert on.plant_power_w == off.plant_power_w
    assert on.coarse_spans == off.coarse_spans
    assert on.coarse_periods == off.coarse_periods
    assert on.thermal_violations == off.thermal_violations
    for rack_off, rack_on in zip(off.racks, on.racks):
        assert rack_on.chiller_power_w == rack_off.chiller_power_w
        for period_off, period_on in zip(rack_off.periods, rack_on.periods):
            for decision_off, decision_on in zip(period_off, period_on):
                for field in _DECISION_FIELDS:
                    assert getattr(decision_on, field) == getattr(
                        decision_off, field
                    ), field


def _run_pair(build_model, duration_s, supervisory=None):
    """The same run twice: telemetry off, then on.  Returns both traces
    plus the enabled hub for non-vacuity checks."""
    off = build_model().run_trace(
        duration_s=duration_s, supervisory=supervisory() if supervisory else None
    )
    hub = Telemetry()
    previous = set_telemetry(hub)
    try:
        on = build_model().run_trace(
            duration_s=duration_s,
            supervisory=supervisory() if supervisory else None,
        )
    finally:
        set_telemetry(previous)
    return off, on, hub


class TestFineLane:
    def test_fixed_setpoint_bit_identical(self, floorplan, power_model):
        duration_s = 16.0
        scenario = build_scenario(
            "diurnal",
            n_racks=2,
            servers_per_rack=2,
            duration_s=duration_s,
            seed=3,
            floorplan=floorplan,
        )

        def build_model():
            return DatacenterModel(
                scenario.racks,
                floorplan=floorplan,
                power_model=power_model,
                thermal_simulator=ThermalSimulator(
                    floorplan, cell_size_mm=CELL_SIZE_MM
                ),
                control_period_s=CONTROL_PERIOD_S,
            )

        off, on, hub = _run_pair(build_model, duration_s)
        _assert_bit_identical(off, on)
        assert hub.tracer.started > 0
        assert hub.counters.get("session.periods") == off.n_periods


class TestCoarsenedMixedSkuLane:
    def test_parallel_coarse_floor_bit_identical(self, floorplan):
        # The acceptance configuration: mixed-SKU floor, adaptive
        # coarsening + ROM lane, hardware groups on worker threads.
        duration_s = 120.0
        skus = (floorplan, build_xeon_e5_v4_floorplan(spreader_size_mm=42.0))
        racks = []
        for index, sku in enumerate(skus):
            scenario = build_scenario(
                "diurnal",
                n_racks=1,
                servers_per_rack=2,
                duration_s=duration_s,
                seed=3 + index,
                phase_dt_s=30.0,
                floorplan=sku,
            )
            racks.append(
                replace(
                    scenario.racks[0],
                    name=f"sku{index}",
                    floorplan=None if index == 0 else sku,
                )
            )

        def build_model():
            return DatacenterModel(
                tuple(racks),
                floorplan=skus[0],
                thermal_simulator=ThermalSimulator(
                    skus[0], cell_size_mm=CELL_SIZE_MM
                ),
                control_period_s=CONTROL_PERIOD_S,
                coarsening=CoarseningConfig(),
                parallel_groups=2,
            )

        off, on, hub = _run_pair(build_model, duration_s)
        assert off.coarse_spans > 0, "coarsening never engaged - vacuous test"
        _assert_bit_identical(off, on)
        # Non-vacuity: the enabled run recorded the coarse lane.
        names = {record.name for record in hub.tracer.records()}
        assert "floor.advance_span" in names
        assert "session.span" in names
        assert hub.counters.get("session.spans") > 0
        # Per-server peak grids match exactly, not approximately.
        for rack_off, rack_on in zip(off.racks, on.racks):
            peaks_off = [
                [decision.period_peak_case_c for decision in period]
                for period in rack_off.periods
            ]
            peaks_on = [
                [decision.period_peak_case_c for decision in period]
                for period in rack_on.periods
            ]
            assert np.array_equal(np.asarray(peaks_off), np.asarray(peaks_on))


class TestMpcLane:
    def test_mpc_supervisory_bit_identical(self, floorplan, power_model):
        duration_s = 24.0
        scenario = build_scenario(
            "flash_crowd",
            n_racks=2,
            servers_per_rack=2,
            duration_s=duration_s,
            seed=3,
            floorplan=floorplan,
        )

        def build_model():
            return DatacenterModel(
                scenario.racks,
                floorplan=floorplan,
                power_model=power_model,
                thermal_simulator=ThermalSimulator(
                    floorplan, cell_size_mm=CELL_SIZE_MM
                ),
                control_period_s=CONTROL_PERIOD_S,
            )

        def supervisory():
            return MpcSupervisoryController(
                period_s=8.0, setpoint_max_c=40.0, horizon=2
            )

        off, on, hub = _run_pair(build_model, duration_s, supervisory)
        _assert_bit_identical(off, on)
        names = {record.name for record in hub.tracer.records()}
        assert "mpc.plan" in names
        assert "mpc.rollout" in names
        plan_spans = [
            record
            for record in hub.tracer.records()
            if record.name == "mpc.plan"
        ]
        for record in plan_spans:
            assert "chosen" in record.attrs
            assert record.attrs["candidates"] == 6


class TestNoWallClockInTraces:
    def test_summary_footer_only_when_enabled(self, floorplan, power_model):
        duration_s = 8.0
        scenario = build_scenario(
            "diurnal",
            n_racks=1,
            servers_per_rack=2,
            duration_s=duration_s,
            seed=3,
            floorplan=floorplan,
        )

        def build_model():
            return DatacenterModel(
                scenario.racks,
                floorplan=floorplan,
                power_model=power_model,
                thermal_simulator=ThermalSimulator(
                    floorplan, cell_size_mm=CELL_SIZE_MM
                ),
                control_period_s=CONTROL_PERIOD_S,
            )

        off = build_model().run_trace(duration_s=duration_s)
        assert "telemetry" not in off.summary()
        hub = Telemetry()
        previous = set_telemetry(hub)
        try:
            on = build_model().run_trace(duration_s=duration_s)
            summary = on.summary()
        finally:
            set_telemetry(previous)
        assert "telemetry" in summary
        # The footer carries counts and rates, never wall-clock readings:
        # the same summary re-rendered later must be stable text.
        footer_line = next(
            line for line in summary.splitlines() if "telemetry" in line
        )
        import re

        assert not re.search(r"\d\s*(ns|us|ms)\b", footer_line)
