"""Rect geometry tests, including property-based overlap invariants."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import ValidationError
from repro.utils.geometry import Rect

finite = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False)
size = st.floats(min_value=0.1, max_value=50.0, allow_nan=False, allow_infinity=False)


def rects():
    return st.builds(Rect, x=finite, y=finite, width=size, height=size)


class TestConstruction:
    def test_basic_properties(self):
        rect = Rect(1.0, 2.0, 3.0, 4.0)
        assert rect.x2 == pytest.approx(4.0)
        assert rect.y2 == pytest.approx(6.0)
        assert rect.area == pytest.approx(12.0)
        assert rect.center == (pytest.approx(2.5), pytest.approx(4.0))

    def test_rejects_non_positive_size(self):
        with pytest.raises(ValidationError):
            Rect(0.0, 0.0, 0.0, 1.0)
        with pytest.raises(ValidationError):
            Rect(0.0, 0.0, 1.0, -1.0)


class TestContainmentAndOverlap:
    def test_contains_point(self):
        rect = Rect(0.0, 0.0, 2.0, 2.0)
        assert rect.contains_point(1.0, 1.0)
        assert rect.contains_point(0.0, 2.0)
        assert not rect.contains_point(2.1, 1.0)

    def test_contains_rect(self):
        outer = Rect(0.0, 0.0, 10.0, 10.0)
        inner = Rect(1.0, 1.0, 2.0, 2.0)
        assert outer.contains_rect(inner)
        assert not inner.contains_rect(outer)

    def test_overlap_area_partial(self):
        a = Rect(0.0, 0.0, 2.0, 2.0)
        b = Rect(1.0, 1.0, 2.0, 2.0)
        assert a.overlap_area(b) == pytest.approx(1.0)
        assert a.intersects(b)

    def test_disjoint_rects_do_not_intersect(self):
        a = Rect(0.0, 0.0, 1.0, 1.0)
        b = Rect(5.0, 5.0, 1.0, 1.0)
        assert a.overlap_area(b) == 0.0
        assert not a.intersects(b)

    def test_touching_edges_have_zero_overlap(self):
        a = Rect(0.0, 0.0, 1.0, 1.0)
        b = Rect(1.0, 0.0, 1.0, 1.0)
        assert a.overlap_area(b) == 0.0


class TestTransforms:
    def test_translated(self):
        rect = Rect(1.0, 1.0, 2.0, 3.0).translated(2.0, -1.0)
        assert (rect.x, rect.y) == (3.0, 0.0)
        assert (rect.width, rect.height) == (2.0, 3.0)

    def test_scaled(self):
        rect = Rect(1.0, 2.0, 3.0, 4.0).scaled(2.0)
        assert rect.area == pytest.approx(48.0)

    def test_scaled_rejects_non_positive(self):
        with pytest.raises(ValidationError):
            Rect(0.0, 0.0, 1.0, 1.0).scaled(0.0)

    def test_distance_to_self_is_zero(self):
        rect = Rect(0.0, 0.0, 4.0, 4.0)
        assert rect.distance_to(rect) == 0.0


class TestOverlapProperties:
    @given(rects(), rects())
    def test_overlap_is_symmetric(self, a, b):
        assert a.overlap_area(b) == pytest.approx(b.overlap_area(a))

    @given(rects(), rects())
    def test_overlap_bounded_by_smaller_area(self, a, b):
        overlap = a.overlap_area(b)
        assert 0.0 <= overlap <= min(a.area, b.area) + 1e-9

    @given(rects())
    def test_self_overlap_equals_area(self, rect):
        assert rect.overlap_area(rect) == pytest.approx(rect.area)

    @given(rects(), finite, finite)
    def test_translation_preserves_area(self, rect, dx, dy):
        assert rect.translated(dx, dy).area == pytest.approx(rect.area)

    @given(rects(), rects())
    def test_distance_symmetry(self, a, b):
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))
