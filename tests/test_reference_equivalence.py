"""Golden-model equivalence: vectorized assembly vs. the reference loops.

``repro.thermal.network.ThermalNetwork`` is fully vectorized; the original
per-cell loop assembler is preserved verbatim in ``reference_assembly.py``.
Every parametrized case here builds both and requires the bulk matrix, the
boundary RHS vectors, the capacitance vector and the complete steady-state
system to agree to <= 1e-12 relative — the fast path only counts if it is
the same physics.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy.sparse.linalg import spsolve

from reference_assembly import ReferenceThermalNetwork
from repro.thermal.boundary import BottomBoundary, CoolingBoundary, uniform_cooling_boundary
from repro.thermal.grid import ThermalGrid
from repro.thermal.layers import Layer, LayerStack, standard_thermosyphon_stack
from repro.thermal.materials import get_material
from repro.thermal.network import ThermalNetwork
from repro.utils.geometry import Rect

RTOL = 1e-12


def _minimal_stack() -> LayerStack:
    """Two layers, die mask active in the bottom (source) layer."""
    return LayerStack(
        (
            Layer(
                "die",
                get_material("silicon"),
                0.5e-3,
                fill_material=get_material("sealant"),
                heat_source=True,
            ),
            Layer("lid", get_material("copper"), 1.0e-3),
        )
    )


def _single_layer_stack() -> LayerStack:
    """Degenerate one-layer stack: top and bottom boundary share the layer."""
    return LayerStack(
        (
            Layer(
                "slab",
                get_material("silicon"),
                0.75e-3,
                fill_material=get_material("sealant"),
                heat_source=True,
            ),
        )
    )


STACKS = {
    "standard": standard_thermosyphon_stack,
    "minimal": _minimal_stack,
    "single-layer": _single_layer_stack,
}

#: (n_rows, n_columns) including the degenerate in-plane shapes.
GRIDS = [(4, 5), (1, 7), (7, 1), (3, 3), (1, 1)]


def _die_mask(n_rows: int, n_columns: int, kind: str) -> np.ndarray:
    if kind == "full":
        return np.ones((n_rows, n_columns), dtype=bool)
    if kind == "block":
        mask = np.zeros((n_rows, n_columns), dtype=bool)
        mask[n_rows // 4 : max(n_rows // 4 + 1, 3 * n_rows // 4),
             n_columns // 4 : max(n_columns // 4 + 1, 3 * n_columns // 4)] = True
        return mask
    if kind == "checker":
        rows, columns = np.indices((n_rows, n_columns))
        return (rows + columns) % 2 == 0
    raise ValueError(kind)


def _grid(n_rows: int, n_columns: int, stack: LayerStack) -> ThermalGrid:
    outline = Rect(0.0, 0.0, 1.1 * n_columns, 0.9 * n_rows)
    return ThermalGrid(outline, stack, n_rows, n_columns)


def _nonuniform_cooling(n_rows: int, n_columns: int, *, with_holes: bool) -> CoolingBoundary:
    """Deterministic spatially-varying HTC and fluid temperature maps."""
    rng = np.random.default_rng(n_rows * 31 + n_columns)
    htc = 5.0e3 + 4.0e4 * rng.random((n_rows, n_columns))
    if with_holes:
        htc[rng.random((n_rows, n_columns)) < 0.3] = 0.0
    fluid = 30.0 + 15.0 * rng.random((n_rows, n_columns))
    return CoolingBoundary(htc_w_m2k=htc, fluid_temperature_c=fluid)


def _assert_matrix_close(reference, vectorized) -> None:
    scale = np.abs(reference).max()
    difference = np.abs((reference - vectorized)).max()
    assert difference <= RTOL * scale


def _assert_vector_close(reference: np.ndarray, vectorized: np.ndarray) -> None:
    scale = max(float(np.abs(reference).max()), 1.0)
    np.testing.assert_allclose(vectorized, reference, rtol=RTOL, atol=RTOL * scale)


@pytest.mark.parametrize("mask_kind", ["full", "block", "checker"])
@pytest.mark.parametrize("stack_name", list(STACKS))
@pytest.mark.parametrize("shape", GRIDS, ids=[f"{r}x{c}" for r, c in GRIDS])
def test_bulk_and_capacitance_match_reference(shape, stack_name, mask_kind):
    n_rows, n_columns = shape
    stack = STACKS[stack_name]()
    grid = _grid(n_rows, n_columns, stack)
    mask = _die_mask(n_rows, n_columns, mask_kind)
    reference = ReferenceThermalNetwork(grid, mask)
    vectorized = ThermalNetwork(grid, mask)
    _assert_matrix_close(reference.bulk_matrix, vectorized.bulk_matrix)
    _assert_vector_close(reference._bottom_rhs, vectorized._bottom_rhs)
    _assert_vector_close(reference.capacitance, vectorized.capacitance)


@pytest.mark.parametrize("bottom", [BottomBoundary(), BottomBoundary(htc_w_m2k=0.0)],
                         ids=["bottom-on", "bottom-off"])
@pytest.mark.parametrize("stack_name", list(STACKS))
def test_bottom_boundary_variants_match_reference(stack_name, bottom):
    stack = STACKS[stack_name]()
    grid = _grid(5, 4, stack)
    mask = _die_mask(5, 4, "block")
    reference = ReferenceThermalNetwork(grid, mask, bottom)
    vectorized = ThermalNetwork(grid, mask, bottom)
    _assert_matrix_close(reference.bulk_matrix, vectorized.bulk_matrix)
    _assert_vector_close(reference._bottom_rhs, vectorized._bottom_rhs)
    if bottom.htc_w_m2k == 0.0:
        assert not vectorized._bottom_rhs.any()


@pytest.mark.parametrize("with_holes", [False, True], ids=["htc-everywhere", "htc-holes"])
@pytest.mark.parametrize("stack_name", list(STACKS))
@pytest.mark.parametrize("shape", GRIDS, ids=[f"{r}x{c}" for r, c in GRIDS])
def test_top_boundary_and_full_system_match_reference(shape, stack_name, with_holes):
    n_rows, n_columns = shape
    stack = STACKS[stack_name]()
    grid = _grid(n_rows, n_columns, stack)
    mask = _die_mask(n_rows, n_columns, "block")
    cooling = _nonuniform_cooling(n_rows, n_columns, with_holes=with_holes)
    reference = ReferenceThermalNetwork(grid, mask)
    vectorized = ThermalNetwork(grid, mask)

    ref_diag, ref_rhs = reference._top_boundary_terms(cooling)
    vec_diag, vec_rhs = vectorized._top_boundary_terms(cooling)
    _assert_vector_close(ref_diag, vec_diag)
    _assert_vector_close(ref_rhs, vec_rhs)

    rng = np.random.default_rng(7)
    power_map = 2.0 * rng.random((n_rows, n_columns))
    ref_matrix, ref_b = reference.system(power_map, cooling)
    vec_matrix, vec_b = vectorized.system(power_map, cooling)
    _assert_matrix_close(ref_matrix, vec_matrix)
    _assert_vector_close(ref_b, vec_b)


def test_uniform_cooling_solutions_match_reference():
    """End to end: solving both assemblies gives the same temperature field."""
    stack = standard_thermosyphon_stack()
    grid = _grid(6, 6, stack)
    mask = _die_mask(6, 6, "block")
    cooling = uniform_cooling_boundary(6, 6, 2.0e4, 40.0)
    power_map = np.zeros((6, 6))
    power_map[1, 4] = 9.0
    power_map[4, 1] = 3.0
    reference = ReferenceThermalNetwork(grid, mask)
    vectorized = ThermalNetwork(grid, mask)
    ref_matrix, ref_b = reference.system(power_map, cooling)
    vec_matrix, vec_b = vectorized.system(power_map, cooling)
    ref_t = spsolve(ref_matrix.tocsc(), ref_b)
    vec_t = spsolve(vec_matrix.tocsc(), vec_b)
    np.testing.assert_allclose(vec_t, ref_t, rtol=1e-9)


def test_power_vector_matches_reference():
    stack = _minimal_stack()
    grid = _grid(3, 4, stack)
    mask = _die_mask(3, 4, "full")
    reference = ReferenceThermalNetwork(grid, mask)
    vectorized = ThermalNetwork(grid, mask)
    power_map = np.arange(12, dtype=float).reshape(3, 4)
    np.testing.assert_array_equal(
        vectorized.power_vector(power_map), reference.power_vector(power_map)
    )
