"""Workload profiler tests (the P and Q vectors of Algorithm 1)."""

import pytest

from repro.power.cstates import CState
from repro.workloads.configuration import Configuration, baseline_configuration, default_configuration_space
from repro.workloads.profiler import WorkloadProfiler
from repro.workloads.qos import QoSConstraint


class TestProfileRecords:
    def test_profile_covers_configuration_space(self, profiler, x264):
        space = default_configuration_space()
        records = profiler.profile(x264, space)
        assert len(records) == len(space)
        assert [record.configuration for record in records] == list(space)

    def test_baseline_has_normalized_time_one(self, profiler, x264):
        record = profiler.profile_configuration(x264, baseline_configuration())
        assert record.normalized_time == pytest.approx(1.0)
        assert record.qos_value == pytest.approx(1.0)

    def test_energy_is_power_times_time(self, profiler, x264):
        record = profiler.profile_configuration(x264, Configuration(4, 2, 2.9))
        assert record.energy_j == pytest.approx(record.package_power_w * record.execution_time_s)

    def test_power_increases_with_frequency(self, profiler, x264):
        low = profiler.profile_configuration(x264, Configuration(8, 2, 2.6))
        high = profiler.profile_configuration(x264, Configuration(8, 2, 3.2))
        assert high.package_power_w > low.package_power_w

    def test_idle_cstate_affects_profiled_power(self, power_model, x264):
        poll_profiler = WorkloadProfiler(power_model, idle_cstate=CState.POLL)
        c1e_profiler = WorkloadProfiler(power_model, idle_cstate=CState.C1E)
        configuration = Configuration(2, 2, 3.2)
        assert (
            poll_profiler.profile_configuration(x264, configuration).package_power_w
            > c1e_profiler.profile_configuration(x264, configuration).package_power_w
        )


class TestSortingAndFiltering:
    def test_sorted_by_power_is_ascending(self, profiler, x264):
        records = profiler.profile(x264)
        ordered = WorkloadProfiler.sorted_by_power(records)
        powers = [record.package_power_w for record in ordered]
        assert powers == sorted(powers)

    def test_feasible_filter_matches_constraint(self, profiler, x264):
        records = profiler.profile(x264)
        constraint = QoSConstraint(2.0)
        feasible = WorkloadProfiler.feasible(records, constraint)
        assert feasible
        assert all(record.satisfies(constraint) for record in feasible)
        infeasible = set(records) - set(feasible)
        assert all(not record.satisfies(constraint) for record in infeasible)

    def test_satisfies_uses_execution_time(self, profiler, canneal):
        record = profiler.profile_configuration(canneal, Configuration(1, 1, 2.6))
        assert record.normalized_time > 1.0
        assert not record.satisfies(QoSConstraint(1.0))
