"""Thermal grid indexing tests."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.thermal.grid import ThermalGrid
from repro.thermal.layers import standard_thermosyphon_stack
from repro.utils.geometry import Rect


@pytest.fixture(scope="module")
def grid():
    return ThermalGrid(Rect(0.0, 0.0, 38.0, 38.0), standard_thermosyphon_stack(), 19, 19)


class TestSizes:
    def test_cell_counts(self, grid):
        assert grid.cells_per_layer == 19 * 19
        assert grid.n_cells == 19 * 19 * 5

    def test_cell_dimensions(self, grid):
        assert grid.cell_width_m == pytest.approx(0.002)
        assert grid.cell_height_m == pytest.approx(0.002)
        assert grid.cell_area_m2 == pytest.approx(4e-6)
        assert grid.cell_pitch_mm() == (pytest.approx(2.0), pytest.approx(2.0))


class TestIndexing:
    def test_flat_index_roundtrip(self, grid):
        for layer, row, column in [(0, 0, 0), (2, 10, 5), (4, 18, 18)]:
            flat = grid.flat_index(layer, row, column)
            assert grid.unflatten(flat) == (layer, row, column)

    def test_flat_indices_unique(self, grid):
        indices = {
            grid.flat_index(layer, row, column)
            for layer in range(grid.n_layers)
            for row in range(0, grid.n_rows, 3)
            for column in range(0, grid.n_columns, 3)
        }
        assert len(indices) == grid.n_layers * len(range(0, 19, 3)) ** 2

    def test_out_of_range_rejected(self, grid):
        with pytest.raises(ConfigurationError):
            grid.flat_index(5, 0, 0)
        with pytest.raises(ConfigurationError):
            grid.flat_index(0, 19, 0)
        with pytest.raises(ConfigurationError):
            grid.unflatten(grid.n_cells)

    def test_layer_slice_and_reshape(self, grid):
        values = np.arange(grid.n_cells, dtype=float)
        layer2 = grid.reshape_layer(values, 2)
        assert layer2.shape == (19, 19)
        assert layer2[0, 0] == grid.flat_index(2, 0, 0)

    def test_cell_centre_positions(self, grid):
        x, y = grid.cell_centre_mm(0, 0)
        assert x == pytest.approx(1.0)
        assert y == pytest.approx(1.0)
        x, y = grid.cell_centre_mm(18, 18)
        assert x == pytest.approx(37.0)
        assert y == pytest.approx(37.0)
