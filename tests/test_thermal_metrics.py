"""Thermal metric tests (hot spot, average, spatial gradient)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra import numpy as hnp

from repro.exceptions import ValidationError
from repro.thermal.metrics import ThermalMetrics, compute_metrics, hot_spot_count, max_spatial_gradient


class TestComputeMetrics:
    def test_uniform_map_has_zero_gradient(self):
        temperature = np.full((5, 5), 50.0)
        metrics = compute_metrics(temperature, (1.0, 1.0))
        assert metrics.theta_max_c == 50.0
        assert metrics.theta_avg_c == 50.0
        assert metrics.grad_max_c_per_mm == 0.0

    def test_known_gradient(self):
        temperature = np.array([[40.0, 50.0], [40.0, 40.0]])
        metrics = compute_metrics(temperature, (2.0, 2.0))
        assert metrics.theta_max_c == 50.0
        assert metrics.grad_max_c_per_mm == pytest.approx(5.0)

    def test_mask_excludes_cells(self):
        temperature = np.array([[40.0, 90.0], [42.0, 44.0]])
        mask = np.array([[True, False], [True, True]])
        metrics = compute_metrics(temperature, (1.0, 1.0), mask)
        assert metrics.theta_max_c == 44.0
        # The 90 C cell is outside the mask so the 40->90 step is ignored.
        assert metrics.grad_max_c_per_mm == pytest.approx(2.0)

    def test_empty_mask_rejected(self):
        with pytest.raises(ValidationError):
            compute_metrics(np.ones((3, 3)), (1.0, 1.0), np.zeros((3, 3), dtype=bool))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            compute_metrics(np.ones((3, 3)), (1.0, 1.0), np.ones((2, 2), dtype=bool))

    def test_invalid_pitch_rejected(self):
        with pytest.raises(ValidationError):
            max_spatial_gradient(np.ones((3, 3)), (0.0, 1.0))

    def test_as_row(self):
        row = ThermalMetrics(70.0, 60.0, 2.0).as_row()
        assert row == {
            "theta_max_c": 70.0,
            "theta_avg_c": 60.0,
            "grad_max_c_per_mm": 2.0,
        }


class TestHotSpotCount:
    def test_no_hot_spots(self):
        assert hot_spot_count(np.full((4, 4), 50.0), threshold_c=60.0) == 0

    def test_single_region(self):
        temperature = np.full((5, 5), 50.0)
        temperature[1:3, 1:3] = 80.0
        assert hot_spot_count(temperature, threshold_c=70.0) == 1

    def test_two_disjoint_regions(self):
        temperature = np.full((6, 6), 50.0)
        temperature[0, 0] = 80.0
        temperature[5, 5] = 85.0
        assert hot_spot_count(temperature, threshold_c=70.0) == 2

    def test_diagonal_cells_are_separate_regions(self):
        temperature = np.full((4, 4), 50.0)
        temperature[0, 0] = 80.0
        temperature[1, 1] = 80.0
        assert hot_spot_count(temperature, threshold_c=70.0) == 2


class TestMetricProperties:
    @given(
        hnp.arrays(
            dtype=float,
            shape=st.tuples(st.integers(2, 8), st.integers(2, 8)),
            elements=st.floats(min_value=20.0, max_value=110.0),
        )
    )
    def test_metrics_bounded_by_map(self, temperature):
        metrics = compute_metrics(temperature, (1.0, 1.0))
        assert metrics.theta_max_c == pytest.approx(temperature.max())
        assert temperature.min() - 1e-9 <= metrics.theta_avg_c <= temperature.max() + 1e-9
        assert metrics.grad_max_c_per_mm >= 0.0

    @given(
        hnp.arrays(
            dtype=float,
            shape=st.tuples(st.integers(2, 6), st.integers(2, 6)),
            elements=st.floats(min_value=20.0, max_value=110.0),
        ),
        st.floats(min_value=0.1, max_value=20.0),
    )
    def test_adding_constant_shifts_max_and_avg_not_gradient(self, temperature, offset):
        base = compute_metrics(temperature, (1.0, 1.0))
        shifted = compute_metrics(temperature + offset, (1.0, 1.0))
        assert shifted.theta_max_c == pytest.approx(base.theta_max_c + offset)
        assert shifted.theta_avg_c == pytest.approx(base.theta_avg_c + offset)
        assert shifted.grad_max_c_per_mm == pytest.approx(base.grad_max_c_per_mm, abs=1e-9)
