"""Thermal metric tests (hot spot, average, spatial gradient)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra import numpy as hnp

from repro.exceptions import ValidationError
from repro.thermal.metrics import (
    HotSpot,
    ThermalMetrics,
    compute_metrics,
    hot_spot_count,
    hot_spot_location,
    max_spatial_gradient,
)


class TestComputeMetrics:
    def test_uniform_map_has_zero_gradient(self):
        temperature = np.full((5, 5), 50.0)
        metrics = compute_metrics(temperature, (1.0, 1.0))
        assert metrics.theta_max_c == 50.0
        assert metrics.theta_avg_c == 50.0
        assert metrics.grad_max_c_per_mm == 0.0

    def test_known_gradient(self):
        temperature = np.array([[40.0, 50.0], [40.0, 40.0]])
        metrics = compute_metrics(temperature, (2.0, 2.0))
        assert metrics.theta_max_c == 50.0
        assert metrics.grad_max_c_per_mm == pytest.approx(5.0)

    def test_mask_excludes_cells(self):
        temperature = np.array([[40.0, 90.0], [42.0, 44.0]])
        mask = np.array([[True, False], [True, True]])
        metrics = compute_metrics(temperature, (1.0, 1.0), mask)
        assert metrics.theta_max_c == 44.0
        # The 90 C cell is outside the mask so the 40->90 step is ignored.
        assert metrics.grad_max_c_per_mm == pytest.approx(2.0)

    def test_empty_mask_rejected(self):
        with pytest.raises(ValidationError):
            compute_metrics(np.ones((3, 3)), (1.0, 1.0), np.zeros((3, 3), dtype=bool))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            compute_metrics(np.ones((3, 3)), (1.0, 1.0), np.ones((2, 2), dtype=bool))

    def test_invalid_pitch_rejected(self):
        with pytest.raises(ValidationError):
            max_spatial_gradient(np.ones((3, 3)), (0.0, 1.0))

    def test_as_row(self):
        row = ThermalMetrics(70.0, 60.0, 2.0).as_row()
        assert row == {
            "theta_max_c": 70.0,
            "theta_avg_c": 60.0,
            "grad_max_c_per_mm": 2.0,
        }


class TestHotSpotCount:
    def test_no_hot_spots(self):
        assert hot_spot_count(np.full((4, 4), 50.0), threshold_c=60.0) == 0

    def test_single_region(self):
        temperature = np.full((5, 5), 50.0)
        temperature[1:3, 1:3] = 80.0
        assert hot_spot_count(temperature, threshold_c=70.0) == 1

    def test_two_disjoint_regions(self):
        temperature = np.full((6, 6), 50.0)
        temperature[0, 0] = 80.0
        temperature[5, 5] = 85.0
        assert hot_spot_count(temperature, threshold_c=70.0) == 2

    def test_diagonal_cells_are_separate_regions(self):
        temperature = np.full((4, 4), 50.0)
        temperature[0, 0] = 80.0
        temperature[1, 1] = 80.0
        assert hot_spot_count(temperature, threshold_c=70.0) == 2

    def test_mask_splits_a_region(self):
        temperature = np.full((3, 5), 80.0)
        mask = np.ones((3, 5), dtype=bool)
        mask[:, 2] = False  # a cold wall cuts the hot plate in two
        assert hot_spot_count(temperature, threshold_c=70.0, mask=mask) == 2

    @staticmethod
    def _flood_fill_count(hot: np.ndarray) -> int:
        """The original per-cell flood fill, kept as the counting oracle."""
        visited = np.zeros_like(hot, dtype=bool)
        n_rows, n_columns = hot.shape
        count = 0
        for row in range(n_rows):
            for column in range(n_columns):
                if not hot[row, column] or visited[row, column]:
                    continue
                count += 1
                stack = [(row, column)]
                visited[row, column] = True
                while stack:
                    r, c = stack.pop()
                    for dr, dc in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                        nr, nc = r + dr, c + dc
                        if 0 <= nr < n_rows and 0 <= nc < n_columns:
                            if hot[nr, nc] and not visited[nr, nc]:
                                visited[nr, nc] = True
                                stack.append((nr, nc))
        return count

    @pytest.mark.parametrize("seed", range(8))
    def test_vectorized_count_matches_flood_fill(self, seed):
        rng = np.random.default_rng(seed)
        temperature = 40.0 + 60.0 * rng.random((13, 17))
        threshold = 70.0
        expected = self._flood_fill_count(temperature >= threshold)
        assert hot_spot_count(temperature, threshold_c=threshold) == expected


class TestHotSpotLocation:
    def test_pinned_asymmetric_map(self):
        """Regression: hotspot coordinates/value on a known asymmetric map."""
        rows, columns = np.indices((6, 9))
        temperature = 45.0 + 0.5 * columns + 0.25 * rows
        temperature[2, 7] = 91.25
        spot = hot_spot_location(temperature)
        assert spot == HotSpot(row=2, column=7, temperature_c=91.25)

    def test_mask_redirects_hot_spot(self):
        temperature = np.array([[40.0, 95.0], [42.0, 44.0]])
        mask = np.array([[True, False], [True, True]])
        spot = hot_spot_location(temperature, mask)
        assert (spot.row, spot.column, spot.temperature_c) == (1, 1, 44.0)

    def test_tie_resolves_to_first_in_reading_order(self):
        temperature = np.full((3, 3), 50.0)
        temperature[1, 2] = 80.0
        temperature[2, 0] = 80.0
        spot = hot_spot_location(temperature)
        assert (spot.row, spot.column) == (1, 2)

    def test_agrees_with_compute_metrics(self):
        rng = np.random.default_rng(11)
        temperature = 40.0 + 50.0 * rng.random((7, 7))
        mask = rng.random((7, 7)) > 0.3
        spot = hot_spot_location(temperature, mask)
        metrics = compute_metrics(temperature, (1.0, 1.0), mask)
        assert spot.temperature_c == metrics.theta_max_c
        assert mask[spot.row, spot.column]

    def test_simulated_hot_spot_pinned(self, coarse_thermal_simulator):
        """Regression: asymmetric power map -> hotspot inside the loaded core.

        ``core5`` dominates the map, so the hotspot must land on one of its
        cells; the coordinates and value are pinned against the vectorized
        assembly + solve (value at solver accuracy, not bit-exactness).
        """
        from repro.thermal.boundary import uniform_cooling_boundary

        simulator = coarse_thermal_simulator
        rows, columns = simulator.shape
        boundary = uniform_cooling_boundary(rows, columns, 2.0e4, 40.0)
        result = simulator.steady_state(
            {"core5": 18.0, "core0": 6.0, "llc": 2.0}, boundary
        )
        spot = hot_spot_location(result.die_map(), result.die_mask)
        assert (spot.row, spot.column) == (10, 11)
        assert spot.temperature_c == pytest.approx(56.15334701976335, rel=1e-6)
        assert spot.temperature_c == result.die_metrics().theta_max_c


class TestMetricProperties:
    @given(
        hnp.arrays(
            dtype=float,
            shape=st.tuples(st.integers(2, 8), st.integers(2, 8)),
            elements=st.floats(min_value=20.0, max_value=110.0),
        )
    )
    def test_metrics_bounded_by_map(self, temperature):
        metrics = compute_metrics(temperature, (1.0, 1.0))
        assert metrics.theta_max_c == pytest.approx(temperature.max())
        assert temperature.min() - 1e-9 <= metrics.theta_avg_c <= temperature.max() + 1e-9
        assert metrics.grad_max_c_per_mm >= 0.0

    @given(
        hnp.arrays(
            dtype=float,
            shape=st.tuples(st.integers(2, 6), st.integers(2, 6)),
            elements=st.floats(min_value=20.0, max_value=110.0),
        ),
        st.floats(min_value=0.1, max_value=20.0),
    )
    def test_adding_constant_shifts_max_and_avg_not_gradient(self, temperature, offset):
        base = compute_metrics(temperature, (1.0, 1.0))
        shifted = compute_metrics(temperature + offset, (1.0, 1.0))
        assert shifted.theta_max_c == pytest.approx(base.theta_max_c + offset)
        assert shifted.theta_avg_c == pytest.approx(base.theta_avg_c + offset)
        assert shifted.grad_max_c_per_mm == pytest.approx(base.grad_max_c_per_mm, abs=1e-9)
