"""Rack-level model tests (shared chiller water temperature)."""

import pytest

from repro.core.rack import RackModel, ServerSlot
from repro.exceptions import ConfigurationError
from repro.workloads.parsec import get_benchmark
from repro.workloads.qos import QoSConstraint


@pytest.fixture(scope="module")
def small_rack():
    slots = [
        ServerSlot(get_benchmark("x264"), QoSConstraint(2.0)),
        ServerSlot(get_benchmark("canneal"), QoSConstraint(2.0)),
    ]
    return RackModel(slots, cell_size_mm=2.5)


class TestEvaluation:
    def test_empty_rack_rejected(self):
        with pytest.raises(ConfigurationError):
            RackModel([])

    def test_evaluate_reports_per_server_results(self, small_rack):
        result = small_rack.evaluate(30.0)
        assert len(result.server_results) == 2
        assert result.total_it_power_w > 0.0
        assert result.chiller_power_w > 0.0
        assert result.worst_case_temperature_c >= max(
            r.case_temperature_c for r in result.server_results
        ) - 1e-9

    def test_colder_water_cools_the_rack(self, small_rack):
        warm = small_rack.evaluate(32.0)
        cold = small_rack.evaluate(20.0)
        assert cold.worst_die_hot_spot_c < warm.worst_die_hot_spot_c

    def test_all_within_limit_at_nominal_water(self, small_rack):
        assert small_rack.evaluate(30.0).all_within_limit

    def test_batched_evaluation_matches_direct_pipeline(self, small_rack):
        """The BatchEvaluator routing must reproduce per-slot pipeline runs."""
        from repro.thermosyphon.water_loop import WaterLoop

        batched = small_rack.evaluate(28.0)
        for slot, result in zip(small_rack.slots, batched.server_results):
            direct = small_rack._pipeline.run(
                slot.benchmark,
                slot.constraint,
                water_loop=WaterLoop(
                    inlet_temperature_c=28.0,
                    flow_rate_kg_h=small_rack.design.water_flow_rate_kg_h,
                ),
            )
            assert result.case_temperature_c == pytest.approx(
                direct.case_temperature_c, abs=1e-9
            )
            assert result.die_metrics.theta_max_c == pytest.approx(
                direct.die_metrics.theta_max_c, abs=1e-9
            )

    def test_chiller_power_uses_each_servers_water_loop(self, small_rack):
        result = small_rack.evaluate(30.0)
        expected = sum(
            small_rack.chiller.cooling_power_w(r.water_loop, r.package_power_w)
            for r in result.server_results
        )
        assert result.chiller_power_w == pytest.approx(expected)

    def test_rack_is_a_context_manager(self):
        slots = [ServerSlot(get_benchmark("x264"), QoSConstraint(2.0))]
        with RackModel(slots, cell_size_mm=2.5) as rack:
            assert rack.evaluate(30.0).chiller_power_w > 0.0


class TestWaterTemperatureSearch:
    def test_warmest_feasible_water_is_within_bounds(self, small_rack):
        result = small_rack.warmest_feasible_water_temperature(
            low_c=15.0, high_c=40.0, tolerance_c=2.0
        )
        assert 15.0 <= result.water_inlet_temperature_c <= 40.0
        assert result.all_within_limit

    def test_invalid_bisection_bounds(self, small_rack):
        with pytest.raises(ConfigurationError):
            small_rack.warmest_feasible_water_temperature(low_c=40.0, high_c=20.0)

    def test_water_temperature_for_hot_spot_target(self, small_rack):
        nominal = small_rack.evaluate(30.0)
        target = nominal.worst_die_hot_spot_c - 3.0
        result = small_rack.water_temperature_for_hot_spot(
            target, low_c=10.0, high_c=30.0, tolerance_c=1.0
        )
        assert result.water_inlet_temperature_c < 30.0
        assert result.worst_die_hot_spot_c <= target + 0.5
