"""Benchmark scaling-model tests."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import ConfigurationError
from repro.workloads.benchmark import BenchmarkCharacteristics


def make_benchmark(**overrides):
    defaults = dict(
        name="synthetic",
        parallel_fraction=0.85,
        memory_intensity=0.4,
        smt_gain=0.25,
        core_dynamic_power_fmax_w=4.5,
        baseline_time_s=60.0,
    )
    defaults.update(overrides)
    return BenchmarkCharacteristics(**defaults)


class TestConstruction:
    def test_rejects_empty_name(self):
        with pytest.raises(ConfigurationError):
            make_benchmark(name="")

    def test_rejects_invalid_fractions(self):
        with pytest.raises(Exception):
            make_benchmark(parallel_fraction=1.2)
        with pytest.raises(Exception):
            make_benchmark(memory_intensity=-0.1)


class TestSpeedupModel:
    def test_single_core_speedup_is_one(self):
        assert make_benchmark().speedup(1, 1) == pytest.approx(1.0)

    def test_speedup_increases_with_cores(self):
        benchmark = make_benchmark()
        speedups = [benchmark.speedup(n, 1) for n in (1, 2, 4, 8)]
        assert speedups == sorted(speedups)

    def test_speedup_bounded_by_amdahl_limit(self):
        benchmark = make_benchmark(parallel_fraction=0.85)
        limit = 1.0 / (1.0 - 0.85)
        assert benchmark.speedup(8, 2) < limit

    def test_smt_helps_but_less_than_second_core(self):
        benchmark = make_benchmark()
        assert benchmark.speedup(2, 2) > benchmark.speedup(2, 1)
        assert benchmark.speedup(2, 2) < benchmark.speedup(4, 1)

    def test_invalid_thread_count_rejected(self):
        with pytest.raises(ConfigurationError):
            make_benchmark().speedup(2, 3)

    def test_invalid_core_count_rejected(self):
        with pytest.raises(ConfigurationError):
            make_benchmark().speedup(0, 1)


class TestExecutionTime:
    def test_baseline_configuration_matches_reference_time(self):
        benchmark = make_benchmark(baseline_time_s=60.0)
        time = benchmark.execution_time_s(8, 2, 3.2)
        assert time == pytest.approx(60.0)

    def test_fewer_cores_take_longer(self):
        benchmark = make_benchmark()
        assert benchmark.execution_time_s(2, 2, 3.2) > benchmark.execution_time_s(8, 2, 3.2)

    def test_lower_frequency_takes_longer(self):
        benchmark = make_benchmark()
        assert benchmark.execution_time_s(4, 2, 2.6) > benchmark.execution_time_s(4, 2, 3.2)

    def test_memory_bound_workload_less_frequency_sensitive(self):
        compute = make_benchmark(memory_intensity=0.1)
        memory = make_benchmark(memory_intensity=0.9)
        compute_slowdown = compute.execution_time_s(8, 2, 2.6) / compute.execution_time_s(8, 2, 3.2)
        memory_slowdown = memory.execution_time_s(8, 2, 2.6) / memory.execution_time_s(8, 2, 3.2)
        assert compute_slowdown > memory_slowdown

    def test_normalized_time_of_baseline_is_one(self):
        assert make_benchmark().normalized_execution_time(8, 2, 3.2) == pytest.approx(1.0)

    def test_frequency_time_factor_at_nominal_is_one(self):
        assert make_benchmark().frequency_time_factor(3.2, 3.2) == pytest.approx(1.0)

    @given(
        n_cores=st.integers(min_value=1, max_value=8),
        threads=st.sampled_from([1, 2]),
        frequency=st.sampled_from([2.6, 2.9, 3.2]),
    )
    def test_no_configuration_beats_the_baseline(self, n_cores, threads, frequency):
        """The baseline (8 cores, 16 threads, fmax) is the fastest configuration."""
        benchmark = make_benchmark()
        assert benchmark.normalized_execution_time(n_cores, threads, frequency) >= 1.0 - 1e-9

    @given(parallel=st.floats(min_value=0.1, max_value=0.99))
    def test_more_parallel_benchmarks_scale_better(self, parallel):
        benchmark = make_benchmark(parallel_fraction=parallel)
        assert benchmark.speedup(8, 2) >= benchmark.speedup(4, 2) - 1e-12


class TestPowerParameters:
    def test_power_parameters_roundtrip(self):
        benchmark = make_benchmark(core_dynamic_power_fmax_w=5.5)
        params = benchmark.core_power_parameters(activity_factor=0.8)
        assert params.dynamic_power_fmax_w == 5.5
        assert params.activity_factor == 0.8
