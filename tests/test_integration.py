"""Cross-module integration and invariant tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.mapping import ThreadMapper
from repro.core.mapping_policies import ProposedThermalAwareMapping
from repro.core.pipeline import CooledServerSimulation, ThermalAwarePipeline
from repro.power.power_model import CoreActivity
from repro.thermosyphon.design import PAPER_OPTIMIZED_DESIGN
from repro.workloads.configuration import Configuration
from repro.workloads.parsec import PARSEC_BENCHMARKS, get_benchmark
from repro.workloads.qos import QoSConstraint


@pytest.fixture(scope="module")
def simulation(floorplan, power_model, coarse_thermal_simulator):
    return CooledServerSimulation(
        floorplan,
        design=PAPER_OPTIMIZED_DESIGN,
        power_model=power_model,
        thermal_simulator=coarse_thermal_simulator,
    )


@pytest.fixture(scope="module")
def pipeline(simulation, profiler):
    return ThermalAwarePipeline(simulation, profiler=profiler)


class TestEndToEndSweep:
    @pytest.mark.parametrize("benchmark_name", ["x264", "canneal", "swaptions", "ferret"])
    @pytest.mark.parametrize("qos_factor", [1.0, 2.0, 3.0])
    def test_pipeline_produces_physical_results(self, pipeline, benchmark_name, qos_factor):
        benchmark = get_benchmark(benchmark_name)
        result = pipeline.run(benchmark, QoSConstraint(qos_factor))
        # Physical sanity: everything sits between the water temperature and
        # an implausible silicon limit, die above package, case in between.
        assert 30.0 < result.package_metrics.theta_avg_c < 100.0
        assert result.die_metrics.theta_max_c < 120.0
        assert result.die_metrics.theta_max_c >= result.package_metrics.theta_max_c
        assert result.die_metrics.theta_max_c >= result.die_metrics.theta_avg_c
        assert result.package_power_w < 85.0
        assert result.operating_point.saturation_temperature_c > 30.0


class TestMonotonicityInvariants:
    @settings(max_examples=10, deadline=None)
    @given(
        n_cores=st.integers(min_value=1, max_value=8),
        frequency=st.sampled_from([2.6, 2.9, 3.2]),
    )
    def test_more_water_flow_never_hurts(self, simulation, x264, n_cores, frequency):
        mapper = ThreadMapper(simulation.floorplan)
        mapping = mapper.map(
            x264,
            Configuration(n_cores, 2, frequency),
            ProposedThermalAwareMapping(),
        )
        nominal = simulation.simulate_mapping(
            x264, mapping, water_loop=PAPER_OPTIMIZED_DESIGN.water_loop()
        )
        boosted = simulation.simulate_mapping(
            x264,
            mapping,
            water_loop=PAPER_OPTIMIZED_DESIGN.water_loop().with_flow_rate(20.0),
        )
        assert boosted.die_metrics.theta_max_c <= nominal.die_metrics.theta_max_c + 0.1

    def test_colder_water_always_cools(self, simulation, x264):
        mapper = ThreadMapper(simulation.floorplan)
        mapping = mapper.map(x264, Configuration(8, 2, 3.2), ProposedThermalAwareMapping())
        warm = simulation.simulate_mapping(
            x264, mapping, water_loop=PAPER_OPTIMIZED_DESIGN.water_loop()
        )
        cold = simulation.simulate_mapping(
            x264,
            mapping,
            water_loop=PAPER_OPTIMIZED_DESIGN.water_loop().with_inlet_temperature(20.0),
        )
        assert cold.die_metrics.theta_max_c < warm.die_metrics.theta_max_c

    def test_energy_balance_water_side(self, simulation, x264):
        """All package heat ends up in the condenser water (steady state)."""
        activities = [
            CoreActivity.running(i, x264.core_power_parameters(), 2) for i in range(8)
        ]
        result = simulation.simulate_activities(activities, 3.2, benchmark_name="x264")
        water_loop = PAPER_OPTIMIZED_DESIGN.water_loop()
        expected_delta_t = result.package_power_w / water_loop.heat_capacity_rate_w_per_k
        assert result.water_delta_t_c == pytest.approx(expected_delta_t, rel=1e-6)


class TestSuiteWideBehaviour:
    def test_every_benchmark_runs_at_2x(self, pipeline):
        constraint = QoSConstraint(2.0)
        for benchmark in PARSEC_BENCHMARKS.values():
            result = pipeline.run(benchmark, constraint)
            assert result.within_case_limit

    def test_memory_bound_benchmarks_use_fewer_cores_at_2x(self, pipeline):
        """Poorly-scaling workloads can't shed cores as easily as scalable ones."""
        constraint = QoSConstraint(3.0)
        swaptions = pipeline.run(get_benchmark("swaptions"), constraint)
        canneal = pipeline.run(get_benchmark("canneal"), constraint)
        assert swaptions.configuration.n_cores <= canneal.configuration.n_cores + 2
