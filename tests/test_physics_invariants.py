"""Physics invariants of the assembled thermal network.

Whatever the assembly strategy, a compact conduction network must satisfy
structural laws: the conductance matrix is symmetric (reciprocity),
off-diagonal entries are non-positive (conductances couple, never repel),
each row sums to exactly that cell's boundary conductance (Kirchhoff —
internal conduction redistributes heat, only boundaries sink it), and the
steady-state solution conserves energy (injected power leaves through the
boundaries).  These tests hold for any grid/stack/boundary combination, so
they catch classes of assembly bugs the golden-model diff cannot (e.g. a
reference bug faithfully reproduced).
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy.sparse.linalg import spsolve

from repro.thermal.boundary import BottomBoundary, CoolingBoundary, uniform_cooling_boundary
from repro.thermal.grid import ThermalGrid
from repro.thermal.layers import standard_thermosyphon_stack
from repro.thermal.network import ThermalNetwork
from repro.utils.geometry import Rect


def _network(n_rows=6, n_columns=5, bottom=None) -> ThermalNetwork:
    stack = standard_thermosyphon_stack()
    grid = ThermalGrid(Rect(0.0, 0.0, float(n_columns), float(n_rows)), stack, n_rows, n_columns)
    mask = np.zeros((n_rows, n_columns), dtype=bool)
    mask[1:-1, 1:-1] = True
    return ThermalNetwork(grid, mask, bottom)


def _cooling(network: ThermalNetwork, *, holes: bool = False) -> CoolingBoundary:
    n_rows, n_columns = network.grid.n_rows, network.grid.n_columns
    rng = np.random.default_rng(42)
    htc = 1.0e4 + 3.0e4 * rng.random((n_rows, n_columns))
    if holes:
        htc[rng.random((n_rows, n_columns)) < 0.25] = 0.0
    fluid = 35.0 + 10.0 * rng.random((n_rows, n_columns))
    return CoolingBoundary(htc_w_m2k=htc, fluid_temperature_c=fluid)


@pytest.mark.parametrize("holes", [False, True], ids=["htc-everywhere", "htc-holes"])
def test_conductance_matrix_is_symmetric(holes):
    network = _network()
    matrix, _ = network.conductance_system(_cooling(network, holes=holes))
    asymmetry = np.abs((matrix - matrix.T)).max()
    assert asymmetry <= 1e-15 * np.abs(matrix).max()


def test_off_diagonal_entries_are_non_positive():
    network = _network()
    matrix, _ = network.conductance_system(_cooling(network))
    dense = matrix.toarray()
    off_diagonal = dense - np.diag(np.diag(dense))
    assert off_diagonal.max() <= 0.0
    assert np.diag(dense).min() > 0.0


@pytest.mark.parametrize("bottom", [BottomBoundary(), BottomBoundary(htc_w_m2k=0.0)],
                         ids=["bottom-on", "bottom-off"])
def test_row_sums_equal_boundary_conductance(bottom):
    """A @ 1 = per-cell boundary conductance: conduction terms cancel."""
    network = _network(bottom=bottom)
    cooling = _cooling(network, holes=True)
    matrix, _ = network.conductance_system(cooling)
    row_sums = np.asarray(matrix.sum(axis=1)).ravel()

    top_diag, _ = network._top_boundary_terms(cooling)
    expected = top_diag.copy()
    if bottom.htc_w_m2k > 0.0:
        # The bottom boundary RHS is g_bottom * T_ambient, so dividing by the
        # ambient recovers the per-cell bottom conductance.
        expected += network._bottom_rhs / bottom.ambient_temperature_c

    np.testing.assert_allclose(
        row_sums, expected, rtol=1e-9, atol=1e-10 * np.abs(matrix).max()
    )


def test_interior_rows_sum_to_zero_without_boundaries():
    """With both boundaries off, the matrix is a pure graph Laplacian."""
    network = _network(bottom=BottomBoundary(htc_w_m2k=0.0))
    n_rows, n_columns = network.grid.n_rows, network.grid.n_columns
    cooling = uniform_cooling_boundary(n_rows, n_columns, 0.0, 40.0)
    matrix, rhs = network.conductance_system(cooling)
    row_sums = np.asarray(matrix.sum(axis=1)).ravel()
    np.testing.assert_allclose(row_sums, 0.0, atol=1e-10 * np.abs(matrix).max())
    assert not rhs.any()


@pytest.mark.parametrize("holes", [False, True], ids=["htc-everywhere", "htc-holes"])
def test_steady_state_conserves_energy(holes):
    """Injected power equals the heat flowing out of both boundaries."""
    network = _network()
    grid = network.grid
    cooling = _cooling(network, holes=holes)
    rng = np.random.default_rng(3)
    power_map = 4.0 * rng.random((grid.n_rows, grid.n_columns))
    injected_w = float(power_map.sum())

    matrix, rhs = network.system(power_map, cooling)
    temperatures = spsolve(matrix.tocsc(), rhs)

    top_diag, _ = network._top_boundary_terms(cooling)
    top_slice = grid.layer_slice(grid.n_layers - 1)
    top_g = top_diag[top_slice].reshape(grid.n_rows, grid.n_columns)
    top_temperatures = temperatures[top_slice].reshape(grid.n_rows, grid.n_columns)
    top_flow_w = float((top_g * (top_temperatures - cooling.fluid_temperature_c)).sum())

    bottom = network.bottom_boundary
    bottom_slice = grid.layer_slice(0)
    bottom_g = network._bottom_rhs[bottom_slice] / bottom.ambient_temperature_c
    bottom_flow_w = float(
        (bottom_g * (temperatures[bottom_slice] - bottom.ambient_temperature_c)).sum()
    )

    assert top_flow_w + bottom_flow_w == pytest.approx(injected_w, rel=1e-8)


def test_capacitance_is_strictly_positive():
    network = _network()
    assert network.capacitance.min() > 0.0
