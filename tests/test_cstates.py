"""C-state table tests (Table I of the paper)."""

import pytest

from repro.exceptions import ConfigurationError
from repro.power.cstates import CState, XEON_E5_V4_CSTATE_TABLE


class TestTableIValues:
    """The measured values must match the paper's Table I exactly."""

    @pytest.mark.parametrize(
        "state, frequency, expected",
        [
            (CState.POLL, 2.6, 27.0),
            (CState.POLL, 2.9, 32.0),
            (CState.POLL, 3.2, 40.0),
            (CState.C1, 2.6, 14.0),
            (CState.C1, 2.9, 15.0),
            (CState.C1, 3.2, 17.0),
            (CState.C1E, 2.6, 9.0),
            (CState.C1E, 2.9, 9.0),
            (CState.C1E, 3.2, 9.0),
        ],
    )
    def test_all_core_power(self, state, frequency, expected):
        entry = XEON_E5_V4_CSTATE_TABLE.entry(state)
        assert entry.power_all_cores_w[frequency] == pytest.approx(expected)

    def test_per_core_power_is_one_eighth(self):
        assert XEON_E5_V4_CSTATE_TABLE.idle_core_power_w(CState.POLL, 3.2) == pytest.approx(5.0)
        assert XEON_E5_V4_CSTATE_TABLE.idle_core_power_w(CState.C1E, 2.6) == pytest.approx(9.0 / 8.0)

    def test_latencies_match_paper(self):
        assert XEON_E5_V4_CSTATE_TABLE.wakeup_latency_us(CState.POLL) == 0.0
        assert XEON_E5_V4_CSTATE_TABLE.wakeup_latency_us(CState.C1) == 2.0
        assert XEON_E5_V4_CSTATE_TABLE.wakeup_latency_us(CState.C1E) == 10.0

    def test_extrapolated_states_marked(self):
        assert XEON_E5_V4_CSTATE_TABLE.entry(CState.C3).measured is False
        assert XEON_E5_V4_CSTATE_TABLE.entry(CState.C6).measured is False
        assert XEON_E5_V4_CSTATE_TABLE.entry(CState.POLL).measured is True


class TestOrderingInvariants:
    def test_deeper_states_use_less_power(self):
        for frequency in (2.6, 2.9, 3.2):
            powers = [
                XEON_E5_V4_CSTATE_TABLE.idle_core_power_w(state, frequency)
                for state in XEON_E5_V4_CSTATE_TABLE.states
            ]
            assert powers == sorted(powers, reverse=True)

    def test_deeper_states_have_longer_latency(self):
        latencies = [
            XEON_E5_V4_CSTATE_TABLE.wakeup_latency_us(state)
            for state in XEON_E5_V4_CSTATE_TABLE.states
        ]
        assert latencies == sorted(latencies)

    def test_depth_comparison(self):
        assert CState.C1.is_deeper_than(CState.POLL)
        assert CState.C6.is_deeper_than(CState.C1E)
        assert not CState.POLL.is_deeper_than(CState.C1)


class TestLatencyBudgetSelection:
    def test_zero_budget_gives_poll(self):
        assert XEON_E5_V4_CSTATE_TABLE.deepest_state_within_latency(0.0) is CState.POLL

    def test_small_budget_gives_c1(self):
        assert XEON_E5_V4_CSTATE_TABLE.deepest_state_within_latency(5.0) is CState.C1

    def test_moderate_budget_gives_c1e(self):
        assert XEON_E5_V4_CSTATE_TABLE.deepest_state_within_latency(20.0) is CState.C1E

    def test_huge_budget_gives_deepest(self):
        assert XEON_E5_V4_CSTATE_TABLE.deepest_state_within_latency(1e6) is CState.C6

    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            XEON_E5_V4_CSTATE_TABLE.deepest_state_within_latency(-1.0)


class TestErrorHandling:
    def test_unknown_frequency_rejected(self):
        with pytest.raises(ConfigurationError):
            XEON_E5_V4_CSTATE_TABLE.idle_core_power_w(CState.POLL, 2.0)
