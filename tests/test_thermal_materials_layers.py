"""Material library and layer stack tests."""

import pytest

from repro.exceptions import ConfigurationError
from repro.thermal.layers import Layer, LayerStack, standard_thermosyphon_stack
from repro.thermal.materials import MATERIALS, Material, get_material


class TestMaterials:
    def test_known_materials_present(self):
        for name in ("silicon", "copper", "solder_tim", "grease_tim", "sealant"):
            assert name in MATERIALS

    def test_get_material_unknown(self):
        with pytest.raises(KeyError):
            get_material("unobtainium")

    def test_copper_conducts_better_than_silicon(self):
        assert (
            get_material("copper").thermal_conductivity_w_mk
            > get_material("silicon").thermal_conductivity_w_mk
        )

    def test_tims_conduct_worse_than_bulk_metals(self):
        assert (
            get_material("grease_tim").thermal_conductivity_w_mk
            < get_material("solder_tim").thermal_conductivity_w_mk
            < get_material("copper").thermal_conductivity_w_mk
        )

    def test_volumetric_heat_capacity(self):
        silicon = get_material("silicon")
        assert silicon.volumetric_heat_capacity_j_m3k == pytest.approx(
            silicon.density_kg_m3 * silicon.specific_heat_j_kgk
        )

    def test_invalid_material_rejected(self):
        with pytest.raises(Exception):
            Material("broken", -1.0, 1000.0, 700.0)


class TestLayerStack:
    def test_standard_stack_structure(self):
        stack = standard_thermosyphon_stack()
        names = [layer.name for layer in stack]
        assert names == ["die", "tim1", "heat_spreader", "tim2", "evaporator_base"]
        assert stack.heat_source_index == stack.index_of("die")

    def test_total_thickness_plausible(self):
        stack = standard_thermosyphon_stack()
        assert 0.003 < stack.total_thickness_m < 0.008

    def test_conductivity_depends_on_die_mask_for_die_layer(self):
        stack = standard_thermosyphon_stack()
        die_layer = stack[stack.index_of("die")]
        assert die_layer.conductivity_at(True) > die_layer.conductivity_at(False)

    def test_spreader_conductivity_independent_of_mask(self):
        stack = standard_thermosyphon_stack()
        spreader = stack[stack.index_of("heat_spreader")]
        assert spreader.conductivity_at(True) == spreader.conductivity_at(False)

    def test_unknown_layer_name(self):
        with pytest.raises(ConfigurationError):
            standard_thermosyphon_stack().index_of("vapor_chamber")

    def test_duplicate_layer_names_rejected(self):
        layer = Layer("x", get_material("copper"), 1e-3)
        with pytest.raises(ConfigurationError):
            LayerStack((layer, layer))

    def test_empty_stack_rejected(self):
        with pytest.raises(ConfigurationError):
            LayerStack(())

    def test_single_layer_allowed(self):
        layer = Layer("x", get_material("copper"), 1e-3, heat_source=True)
        stack = LayerStack((layer,))
        assert len(stack) == 1
        assert stack.heat_source_index == 0

    def test_no_heat_source_raises(self):
        stack = LayerStack(
            (
                Layer("a", get_material("copper"), 1e-3),
                Layer("b", get_material("copper"), 1e-3),
            )
        )
        with pytest.raises(ConfigurationError):
            _ = stack.heat_source_index

    def test_aluminium_evaporator_variant(self):
        stack = standard_thermosyphon_stack(evaporator_material="aluminium")
        evaporator = stack[stack.index_of("evaporator_base")]
        assert evaporator.material.name == "aluminium"
