"""Thermosyphon design-space optimiser tests (Section VI)."""

import pytest

from repro.core.design_optimizer import ThermosyphonDesignOptimizer
from repro.thermosyphon.design import PAPER_OPTIMIZED_DESIGN
from repro.thermosyphon.orientation import Orientation


@pytest.fixture(scope="module")
def optimizer(floorplan, power_model, coarse_thermal_simulator):
    return ThermosyphonDesignOptimizer(
        floorplan,
        power_model=power_model,
        thermal_simulator=coarse_thermal_simulator,
    )


class TestEvaluation:
    def test_worst_case_evaluation_fields(self, optimizer):
        candidate = optimizer.evaluate_design(PAPER_OPTIMIZED_DESIGN)
        assert candidate.die_hot_spot_c > 40.0
        assert candidate.case_temperature_c > 30.0
        assert candidate.feasible == (
            candidate.case_temperature_c <= 85.0 and not candidate.dryout
        )

    def test_worst_case_uses_most_power_hungry_benchmark(self, optimizer):
        assert optimizer.worst_case_benchmark.name == "x264"


class TestSweeps:
    def test_orientation_sweep_covers_all_orientations(self, optimizer):
        results = optimizer.sweep_orientations(PAPER_OPTIMIZED_DESIGN)
        assert len(results) == len(Orientation)
        assert {candidate.design.orientation for candidate in results} == set(Orientation)

    def test_evaluate_designs_accepts_a_generator(self, optimizer):
        """Regression: a generator argument must not be silently exhausted."""
        ratios = (0.45, 0.55)
        results = optimizer.evaluate_designs(
            PAPER_OPTIMIZED_DESIGN.with_filling_ratio(ratio) for ratio in ratios
        )
        assert len(results) == len(ratios)
        assert [r.design.filling_ratio for r in results] == list(ratios)

    def test_filling_ratio_sweep_shows_undercharge_penalty(self, optimizer):
        results = optimizer.sweep_filling_ratios(PAPER_OPTIMIZED_DESIGN, (0.2, 0.55))
        starved, nominal = results
        assert starved.die_hot_spot_c > nominal.die_hot_spot_c

    def test_refrigerant_sweep(self, optimizer):
        results = optimizer.sweep_refrigerants(PAPER_OPTIMIZED_DESIGN, ("R236fa", "R134a"))
        assert [candidate.design.refrigerant_name for candidate in results] == [
            "R236fa",
            "R134a",
        ]

    def test_water_sweep_colder_water_is_cooler(self, optimizer):
        results = optimizer.sweep_water(PAPER_OPTIMIZED_DESIGN, (20.0, 35.0), (7.0,))
        cold, warm = results
        assert cold.die_hot_spot_c < warm.die_hot_spot_c


class TestSelectionRules:
    def test_best_feasible_prefers_smaller_hot_spot(self, optimizer):
        candidates = optimizer.sweep_filling_ratios(PAPER_OPTIMIZED_DESIGN, (0.2, 0.45, 0.55))
        best = ThermosyphonDesignOptimizer.best_feasible(candidates)
        feasible = [c for c in candidates if c.feasible] or candidates
        assert best.die_hot_spot_c == min(c.die_hot_spot_c for c in feasible)

    def test_cheapest_water_prefers_warm_low_flow(self, optimizer):
        candidates = optimizer.sweep_water(
            PAPER_OPTIMIZED_DESIGN, (25.0, 30.0), (7.0, 14.0)
        )
        cheapest = ThermosyphonDesignOptimizer.cheapest_water(candidates)
        feasible = [c for c in candidates if c.feasible] or candidates
        warmest = max(c.design.water_inlet_temperature_c for c in feasible)
        assert cheapest.design.water_inlet_temperature_c == warmest

    def test_optimize_returns_feasible_sensible_design(self, optimizer):
        design = optimizer.optimize(
            PAPER_OPTIMIZED_DESIGN,
            refrigerant_names=("R236fa", "R134a"),
            filling_ratios=(0.45, 0.55),
            water_temperatures_c=(25.0, 30.0),
            water_flows_kg_h=(7.0,),
        )
        candidate = optimizer.evaluate_design(design)
        assert candidate.feasible
        # The optimiser must not pick a grossly undercharged loop.
        assert design.filling_ratio >= 0.45
