"""Reporting and comparison helper tests."""

import pytest

from repro.analysis.comparison import ApproachComparison, ComparisonRow
from repro.analysis.reporting import (
    format_degrees,
    format_markdown_table,
    format_table,
    percentage_reduction,
)
from repro.exceptions import ValidationError


class TestFormatting:
    def test_format_table_alignment_and_content(self):
        text = format_table(("A", "Bee"), [("x", 1.5), ("yy", 20.0)], title="Title")
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "A" in lines[1] and "Bee" in lines[1]
        assert "1.50" in text and "20.00" in text

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValidationError):
            format_table(("A", "B"), [("only-one",)])

    def test_format_table_requires_headers(self):
        with pytest.raises(ValidationError):
            format_table((), [])

    def test_markdown_table(self):
        text = format_markdown_table(("A", "B"), [(1, 2)])
        assert text.splitlines()[0] == "| A | B |"
        assert "| 1 | 2 |" in text

    def test_markdown_rejects_ragged_rows(self):
        with pytest.raises(ValidationError):
            format_markdown_table(("A",), [(1, 2)])

    def test_percentage_reduction(self):
        assert percentage_reduction(10.0, 5.0) == pytest.approx(50.0)
        assert percentage_reduction(10.0, 12.0) == pytest.approx(-20.0)
        assert percentage_reduction(0.0, 5.0) == 0.0

    def test_format_degrees(self):
        assert format_degrees(71.456) == "71.5"


class TestApproachComparison:
    def _comparison(self):
        comparison = ApproachComparison()
        comparison.add(ComparisonRow("proposed", "2x", 72.2, 1.03, 49.0, 0.24))
        comparison.add(ComparisonRow("baseline", "2x", 79.5, 1.33, 51.4, 0.30))
        return comparison

    def test_lookup(self):
        comparison = self._comparison()
        assert comparison.row("proposed", "2x").die_theta_max_c == 72.2
        with pytest.raises(ValidationError):
            comparison.row("proposed", "5x")

    def test_orderings(self):
        comparison = self._comparison()
        assert comparison.approaches == ("proposed", "baseline")
        assert comparison.qos_labels == ("2x",)

    def test_improvement_over(self):
        comparison = self._comparison()
        improvement = comparison.improvement_over("baseline", "proposed", "2x")
        assert improvement["die_theta_max_reduction_c"] == pytest.approx(7.3)
        assert improvement["die_grad_reduction_pct"] == pytest.approx(22.6, abs=0.2)
        assert improvement["package_theta_max_reduction_c"] == pytest.approx(2.4)

    def test_as_table_contains_rows(self):
        text = self._comparison().as_table()
        assert "proposed" in text and "baseline" in text and "2x" in text
