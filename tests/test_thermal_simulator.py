"""High-level thermal simulator tests."""

import numpy as np
import pytest

from repro.thermal.boundary import uniform_cooling_boundary
from repro.thermal.simulator import ThermalSimulator


@pytest.fixture(scope="module")
def boundary(coarse_thermal_simulator):
    rows, columns = coarse_thermal_simulator.shape
    return uniform_cooling_boundary(rows, columns, 1.8e4, 40.0)


@pytest.fixture(scope="module")
def full_load_result(coarse_thermal_simulator, boundary, x264):
    powers = {f"core{i}": 7.0 for i in range(8)}
    powers.update({"llc": 2.0, "memory_controller": 8.0, "uncore_io": 5.0})
    return coarse_thermal_simulator.steady_state(powers, boundary)


class TestResultAccessors:
    def test_die_hotter_than_package(self, full_load_result):
        die = full_load_result.die_metrics()
        package = full_load_result.package_metrics()
        assert die.theta_max_c > package.theta_max_c
        assert die.theta_avg_c > package.theta_avg_c

    def test_die_gradient_exceeds_package_gradient(self, full_load_result):
        assert (
            full_load_result.die_metrics().grad_max_c_per_mm
            > full_load_result.package_metrics().grad_max_c_per_mm
        )

    def test_case_temperature_between_fluid_and_die(self, full_load_result):
        case = full_load_result.case_temperature_c()
        assert 40.0 < case < full_load_result.die_metrics().theta_max_c

    def test_core_temperatures_cover_all_cores(self, full_load_result):
        temperatures = full_load_result.core_temperatures_c()
        assert set(temperatures) == set(range(8))
        assert all(45.0 < value < 110.0 for value in temperatures.values())

    def test_core_temperature_max_ge_mean(self, full_load_result):
        for index in range(8):
            maximum = full_load_result.core_temperature_c(index, reduce="max")
            mean = full_load_result.core_temperature_c(index, reduce="mean")
            assert maximum >= mean

    def test_invalid_reduce_rejected(self, full_load_result):
        with pytest.raises(ValueError):
            full_load_result.core_temperature_c(0, reduce="median")

    def test_component_temperature(self, full_load_result):
        llc = full_load_result.component_temperature_c("llc")
        assert 40.0 < llc < full_load_result.die_metrics().theta_max_c + 1e-9


class TestSimulatorBehaviour:
    def test_active_cores_hotter_than_idle(self, coarse_thermal_simulator, boundary):
        powers = {"core0": 8.0, "core7": 0.5}
        result = coarse_thermal_simulator.steady_state(powers, boundary)
        assert result.core_temperature_c(0) > result.core_temperature_c(7) + 1.0

    def test_power_map_conserves_power(self, coarse_thermal_simulator):
        powers = {"core0": 5.0, "llc": 2.0}
        assert coarse_thermal_simulator.power_map(powers).sum() == pytest.approx(7.0)

    def test_transient_sequence(self, coarse_thermal_simulator, boundary):
        powers = {f"core{i}": 6.0 for i in range(8)}
        results = coarse_thermal_simulator.transient(
            [powers, powers, powers], boundary, dt_s=2.0, initial_temperature_c=40.0
        )
        assert len(results) == 3
        peaks = [result.die_metrics().theta_max_c for result in results]
        # Heating transient: the peak temperature rises monotonically.
        assert peaks == sorted(peaks)

    def test_settle_agrees_with_steady_state(self, coarse_thermal_simulator, boundary):
        powers = {f"core{i}": 6.0 for i in range(8)}
        steady = coarse_thermal_simulator.steady_state(powers, boundary)
        settled, info = coarse_thermal_simulator.settle(
            powers, boundary, dt_s=2.0, max_steps=300, tolerance_c=0.01
        )
        assert info.converged
        assert info.steps < 300
        assert settled.die_metrics().theta_max_c == pytest.approx(
            steady.die_metrics().theta_max_c, abs=0.5
        )

    def test_settle_surfaces_non_convergence(self, coarse_thermal_simulator, boundary):
        from repro.exceptions import ConvergenceError

        powers = {f"core{i}": 6.0 for i in range(8)}
        # One coarse step from a cold start cannot reach the tolerance.
        _, info = coarse_thermal_simulator.settle(
            powers, boundary, dt_s=0.05, max_steps=1, tolerance_c=1e-6
        )
        assert not info.converged
        assert info.residual_c > 1e-6
        with pytest.raises(ConvergenceError):
            coarse_thermal_simulator.settle(
                powers,
                boundary,
                raise_on_nonconverged=True,
                dt_s=0.05,
                max_steps=1,
                tolerance_c=1e-6,
            )

    def test_steady_state_from_map_equivalent(self, coarse_thermal_simulator, boundary):
        powers = {f"core{i}": 6.0 for i in range(8)}
        from_dict = coarse_thermal_simulator.steady_state(powers, boundary)
        from_map = coarse_thermal_simulator.steady_state_from_map(
            coarse_thermal_simulator.power_map(powers), boundary
        )
        assert np.allclose(from_dict.temperatures_c, from_map.temperatures_c)
