"""Thermal network, steady-state and transient solver tests.

The steady-state solver is validated against a hand-computed one-dimensional
resistance calculation for a uniform power map and a uniform boundary, and
the transient solver is cross-checked against the steady-state solution.
"""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.floorplan.grid_mapper import GridMapper
from repro.thermal.boundary import BottomBoundary, CoolingBoundary, uniform_cooling_boundary
from repro.thermal.grid import ThermalGrid
from repro.thermal.layers import standard_thermosyphon_stack
from repro.thermal.network import ThermalNetwork
from repro.thermal.steady_state import SteadyStateSolver
from repro.thermal.transient import TransientSolver
from repro.utils.geometry import Rect


@pytest.fixture(scope="module")
def small_setup(floorplan):
    stack = standard_thermosyphon_stack()
    outline = floorplan.spreader_outline
    n = 13
    grid = ThermalGrid(outline, stack, n, n)
    mapper = GridMapper(floorplan, outline, n, n)
    die_mask = mapper.die_mask()
    network = ThermalNetwork(grid, die_mask, BottomBoundary(htc_w_m2k=0.0))
    return grid, mapper, die_mask, network


class TestNetworkAssembly:
    def test_capacitance_positive(self, small_setup):
        _, _, _, network = small_setup
        assert (network.capacitance > 0.0).all()

    def test_bulk_matrix_row_sums_near_zero_without_boundaries(self, small_setup):
        """Pure conduction conserves energy: every row of G sums to ~0."""
        _, _, _, network = small_setup
        row_sums = np.asarray(network.bulk_matrix.sum(axis=1)).ravel()
        assert np.max(np.abs(row_sums)) < 1e-6

    def test_power_vector_injected_in_die_layer(self, small_setup):
        grid, _, _, network = small_setup
        power_map = np.zeros((grid.n_rows, grid.n_columns))
        power_map[5, 5] = 10.0
        vector = network.power_vector(power_map)
        assert vector.sum() == pytest.approx(10.0)
        assert vector[grid.flat_index(grid.stack.heat_source_index, 5, 5)] == pytest.approx(10.0)

    def test_power_vector_shape_mismatch(self, small_setup):
        _, _, _, network = small_setup
        with pytest.raises(ValidationError):
            network.power_vector(np.zeros((3, 3)))

    def test_negative_power_rejected(self, small_setup):
        grid, _, _, network = small_setup
        power_map = np.full((grid.n_rows, grid.n_columns), -1.0)
        with pytest.raises(ValidationError):
            network.power_vector(power_map)

    def test_cooling_shape_mismatch_rejected(self, small_setup):
        grid, _, _, network = small_setup
        power_map = np.zeros((grid.n_rows, grid.n_columns))
        with pytest.raises(ValidationError):
            network.system(power_map, uniform_cooling_boundary(3, 3, 1e4, 40.0))


class TestSteadyStateAgainstAnalytic:
    def test_uniform_load_matches_1d_resistance(self, floorplan):
        """Uniform flux + uniform HTC reduces to a 1D series-resistance problem."""
        stack = standard_thermosyphon_stack()
        outline = floorplan.spreader_outline
        n = 13
        grid = ThermalGrid(outline, stack, n, n)
        # All-silicon die mask so the analytic stack is homogeneous in-plane.
        die_mask = np.ones((n, n), dtype=bool)
        network = ThermalNetwork(grid, die_mask, BottomBoundary(htc_w_m2k=0.0))
        solver = SteadyStateSolver(network)

        total_power = 80.0
        fluid_temperature = 40.0
        htc = 20000.0
        power_map = np.full((n, n), total_power / (n * n))
        boundary = uniform_cooling_boundary(n, n, htc, fluid_temperature)
        temperatures = solver.solve_layers(power_map, boundary)

        area = outline.width * outline.height * 1e-6
        flux = total_power / area
        # Series resistance from the middle of the die to the fluid.
        resistance = 0.0
        die_index = stack.heat_source_index
        resistance += stack[die_index].thickness_m / (2 * stack[die_index].material.thermal_conductivity_w_mk)
        for layer in stack.layers[die_index + 1 :]:
            resistance += layer.thickness_m / layer.material.thermal_conductivity_w_mk
        # The boundary attaches at the middle of the top layer in the network,
        # so remove half of the top layer again and add the convective film.
        resistance -= stack.layers[-1].thickness_m / (
            2 * stack.layers[-1].material.thermal_conductivity_w_mk
        )
        resistance += 1.0 / htc
        expected_die_temperature = fluid_temperature + flux * resistance

        centre = temperatures[0, n // 2, n // 2]
        assert centre == pytest.approx(expected_die_temperature, abs=1.5)

    def test_no_power_relaxes_to_fluid_temperature(self, small_setup):
        grid, _, _, network = small_setup
        solver = SteadyStateSolver(network)
        boundary = uniform_cooling_boundary(grid.n_rows, grid.n_columns, 1e4, 35.0)
        temperatures = solver.solve(np.zeros((grid.n_rows, grid.n_columns)), boundary)
        assert np.allclose(temperatures, 35.0, atol=1e-6)

    def test_more_power_is_hotter_everywhere(self, small_setup):
        grid, mapper, _, network = small_setup
        solver = SteadyStateSolver(network)
        boundary = uniform_cooling_boundary(grid.n_rows, grid.n_columns, 1.5e4, 40.0)
        low = solver.solve(mapper.power_map({"core0": 5.0}), boundary)
        high = solver.solve(mapper.power_map({"core0": 10.0}), boundary)
        assert (high >= low - 1e-9).all()
        assert high.max() > low.max()

    def test_monotone_in_fluid_temperature(self, small_setup):
        grid, mapper, _, network = small_setup
        solver = SteadyStateSolver(network)
        power = mapper.power_map({f"core{i}": 6.0 for i in range(8)})
        cold = solver.solve(power, uniform_cooling_boundary(grid.n_rows, grid.n_columns, 1.5e4, 30.0))
        warm = solver.solve(power, uniform_cooling_boundary(grid.n_rows, grid.n_columns, 1.5e4, 40.0))
        assert (warm > cold).all()

    def test_higher_htc_is_cooler(self, small_setup):
        grid, mapper, _, network = small_setup
        solver = SteadyStateSolver(network)
        power = mapper.power_map({f"core{i}": 6.0 for i in range(8)})
        weak = solver.solve(power, uniform_cooling_boundary(grid.n_rows, grid.n_columns, 5e3, 40.0))
        strong = solver.solve(power, uniform_cooling_boundary(grid.n_rows, grid.n_columns, 3e4, 40.0))
        assert strong.max() < weak.max()


class TestTransient:
    def test_settle_matches_steady_state(self, small_setup):
        grid, mapper, _, network = small_setup
        steady = SteadyStateSolver(network)
        transient = TransientSolver(network)
        power = mapper.power_map({f"core{i}": 5.0 for i in range(8)})
        boundary = uniform_cooling_boundary(grid.n_rows, grid.n_columns, 1.5e4, 40.0)
        steady_field = steady.solve(power, boundary)
        settled, steps = transient.settle(power, boundary, dt_s=1.0, max_steps=400, tolerance_c=0.001)
        assert steps < 400
        assert np.max(np.abs(settled - steady_field)) < 0.2

    def test_settle_reports_non_convergence(self, small_setup):
        grid, mapper, _, network = small_setup
        transient = TransientSolver(network)
        power = mapper.power_map({f"core{i}": 5.0 for i in range(8)})
        boundary = uniform_cooling_boundary(grid.n_rows, grid.n_columns, 1.5e4, 40.0)
        result = transient.settle(
            power, boundary, dt_s=0.05, max_steps=2, tolerance_c=1e-9,
            initial_temperature_c=20.0,
        )
        assert not result.converged
        assert result.steps == 2
        assert result.residual_c > 1e-9
        # Legacy two-value unpacking keeps working.
        temperatures, steps = result
        assert steps == 2
        assert temperatures is result.temperatures

    def test_step_moves_towards_equilibrium(self, small_setup):
        grid, mapper, _, network = small_setup
        transient = TransientSolver(network)
        power = mapper.power_map({f"core{i}": 5.0 for i in range(8)})
        boundary = uniform_cooling_boundary(grid.n_rows, grid.n_columns, 1.5e4, 40.0)
        cold_start = np.full(grid.n_cells, 20.0)
        after = transient.step(cold_start, power, boundary, dt_s=0.5)
        assert after.mean() > cold_start.mean()

    def test_run_yields_one_field_per_step(self, small_setup):
        grid, mapper, _, network = small_setup
        transient = TransientSolver(network)
        power = mapper.power_map({"core0": 8.0})
        boundary = uniform_cooling_boundary(grid.n_rows, grid.n_columns, 1.5e4, 40.0)
        fields = list(transient.run(40.0, [power, power, power], boundary, dt_s=0.5))
        assert len(fields) == 3

    def test_boundary_sequence_length_mismatch(self, small_setup):
        grid, mapper, _, network = small_setup
        transient = TransientSolver(network)
        power = mapper.power_map({"core0": 8.0})
        boundary = uniform_cooling_boundary(grid.n_rows, grid.n_columns, 1.5e4, 40.0)
        with pytest.raises(ValidationError):
            list(transient.run(40.0, [power, power], [boundary], dt_s=0.5))
