"""Exception hierarchy and Seuret uniform-heat-flux baseline tests."""

import numpy as np
import pytest

from repro import exceptions
from repro.baselines.seuret_design import uniform_heat_flux_boundary
from repro.thermosyphon.design import SEURET_REFERENCE_DESIGN
from repro.thermosyphon.loop import ThermosyphonLoop


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exception_type",
        [
            exceptions.ValidationError,
            exceptions.ConfigurationError,
            exceptions.FloorplanError,
            exceptions.ConvergenceError,
            exceptions.DryoutError,
            exceptions.ThermalEmergencyError,
            exceptions.QoSViolationError,
            exceptions.MappingError,
        ],
    )
    def test_all_derive_from_repro_error(self, exception_type):
        assert issubclass(exception_type, exceptions.ReproError)

    def test_validation_error_is_also_value_error(self):
        assert issubclass(exceptions.ValidationError, ValueError)

    def test_catching_base_class_catches_specifics(self):
        with pytest.raises(exceptions.ReproError):
            raise exceptions.DryoutError("channel dried out")


class TestUniformHeatFluxBoundary:
    def test_boundary_is_spatially_uniform(self):
        loop = ThermosyphonLoop(SEURET_REFERENCE_DESIGN)
        boundary = uniform_heat_flux_boundary(loop, 70.0, (12, 12), (3.0, 3.0))
        assert boundary.shape == (12, 12)
        # Uniform flux: every lane sees the same profile, so the HTC field is
        # constant along the direction perpendicular to the flow.
        htc = boundary.htc_w_m2k
        if SEURET_REFERENCE_DESIGN.orientation.channels_run_north_south:
            assert np.allclose(htc, htc[:, :1], rtol=1e-6)
        else:
            assert np.allclose(htc, htc[:1, :], rtol=1e-6)

    def test_zero_power_gives_saturation_temperature_fluid(self):
        loop = ThermosyphonLoop(SEURET_REFERENCE_DESIGN)
        boundary = uniform_heat_flux_boundary(loop, 0.0, (6, 6), (3.0, 3.0))
        assert np.all(boundary.fluid_temperature_c <= 31.0)

    def test_negative_power_rejected(self):
        loop = ThermosyphonLoop(SEURET_REFERENCE_DESIGN)
        with pytest.raises(Exception):
            uniform_heat_flux_boundary(loop, -1.0, (6, 6), (3.0, 3.0))
