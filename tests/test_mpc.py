"""MPC supervisory control and chiller-bank tests.

The load-bearing guarantees of the model-predictive supervisory layer:

* :func:`plan_setpoint` is exactly brute-force enumeration: rolling every
  candidate out by hand from the same snapshot reproduces the planner's
  per-candidate energies/peaks bit for bit, and the chosen trajectory is
  the cost argmin;
* snapshot/restore is lossless — a restored session replays the identical
  periods, and an MPC run whose only candidate is "hold" commits a trace
  bit-identical to the fixed-setpoint run (rollouts have zero side
  effects);
* the fig10 MPC leg beats the reactive supervisory baseline's plant
  energy at zero thermal violations on both stress scenarios;
* an idle supervisory window (no peak observation, worst peak still
  ``-inf``) holds the setpoint instead of authorizing a raise
  (regression);
* :class:`ChillerBank` staging commits the cheapest feasible subset,
  honours maintenance windows and degrades gracefully into overload.
"""

import math
import types

import pytest

from repro.core.session import T_CASE_MAX_C
from repro.datacenter.model import (
    DatacenterModel,
    DatacenterPeriod,
    DatacenterTrace,
)
from repro.datacenter.mpc import (
    CandidateTrajectory,
    default_candidates,
    plan_setpoint,
    rollout_trajectory,
)
from repro.datacenter.scenarios import build_scenario
from repro.datacenter.supervisory import (
    MpcSupervisoryController,
    SupervisoryAction,
    SupervisoryController,
    SupervisoryDecision,
)
from repro.exceptions import ConfigurationError, ValidationError
from repro.experiments.fig10_datacenter_trace import run_fig10
from repro.thermal.simulator import ThermalSimulator
from repro.thermosyphon.chiller import ChillerBank, ChillerPlant, ChillerUnit

CELL_SIZE_MM = 2.5
CONTROL_PERIOD_S = 2.0
DURATION_S = 24.0
WINDOW_S = 8.0

#: Decision fields that must survive a snapshot/restore round trip exactly.
_DECISION_FIELDS = (
    "time_s",
    "case_temperature_c",
    "die_hot_spot_c",
    "package_power_w",
    "water_flow_kg_h",
    "frequency_ghz",
    "action",
    "settle_residual_c",
    "period_peak_case_c",
)


def _floor(floorplan, power_model, **kwargs):
    scenario = build_scenario(
        "flash_crowd",
        n_racks=2,
        servers_per_rack=2,
        duration_s=DURATION_S,
        seed=3,
        floorplan=floorplan,
    )
    kwargs.setdefault("plant", ChillerPlant(free_cooling_outdoor_c=18.0))
    return DatacenterModel(
        scenario.racks,
        floorplan=floorplan,
        power_model=power_model,
        thermal_simulator=ThermalSimulator(floorplan, cell_size_mm=CELL_SIZE_MM),
        control_period_s=CONTROL_PERIOD_S,
        **kwargs,
    )


@pytest.fixture(scope="module")
def warm_session(floorplan, power_model):
    """A floor session advanced through one supervisory window.

    Tests that mutate it must snapshot on entry and restore on exit —
    snapshot/restore is exactly the property under test here.
    """
    session = _floor(floorplan, power_model).session()
    session.reset()
    for index in range(4):
        session.advance_period(index * CONTROL_PERIOD_S)
    return session


class _ScriptedSession:
    """Duck-typed session whose physics is an explicit function of setpoint.

    Peak tracks the setpoint one-for-one above ``base_peak_c``; plant power
    falls one W per degree of setpoint — warmer supply is always cheaper,
    so the feasibility guard alone decides how far a planner may raise.
    """

    def __init__(self, *, base_peak_c, setpoint_c=20.0):
        self.base_peak_c = base_peak_c
        self.setpoint_c = setpoint_c
        self.model = types.SimpleNamespace(control_period_s=CONTROL_PERIOD_S)
        self.n_advances = 0
        self.n_restores = 0

    def snapshot(self):
        return self.setpoint_c

    def restore(self, snapshot):
        self.setpoint_c = snapshot
        self.n_restores += 1

    def set_setpoint(self, setpoint_c):
        self.setpoint_c = setpoint_c

    def advance_period(self, time_s, *, n_substeps=None):
        self.n_advances += 1
        return types.SimpleNamespace(
            plant_power_w=200.0 - self.setpoint_c,
            worst_period_peak_case_c=self.base_peak_c + self.setpoint_c,
        )


class TestCandidateFamily:
    def test_default_family_shapes(self):
        candidates = default_candidates(4)
        assert [c.name for c in candidates] == [
            "hold",
            "raise-ramp",
            "raise-fast",
            "raise-once",
            "lower-once",
            "lower-ramp",
        ]
        assert all(len(c.steps) == 4 for c in candidates)
        by_name = {c.name: c for c in candidates}
        assert by_name["raise-fast"].steps == (2.0, 2.0, 2.0, 2.0)
        assert by_name["raise-once"].steps == (1.0, 0.0, 0.0, 0.0)
        assert by_name["lower-ramp"].steps == (-1.0, -1.0, -1.0, -1.0)

    def test_horizon_must_be_positive(self):
        with pytest.raises(ValidationError):
            default_candidates(0)

    def test_setpoints_resolve_and_clamp(self):
        controller = SupervisoryController(setpoint_min_c=18.0, setpoint_max_c=40.0)
        fast = CandidateTrajectory("raise-fast", (2.0, 2.0, 2.0))
        assert fast.setpoints_from(39.0, 1.0, controller.clamp) == (40.0, 40.0, 40.0)
        down = CandidateTrajectory("lower-ramp", (-1.0, -1.0, -1.0))
        assert down.setpoints_from(19.5, 1.0, controller.clamp) == (18.5, 18.0, 18.0)


class TestRolloutTrajectory:
    def test_bills_window_at_mean_simulated_power(self):
        session = _ScriptedSession(base_peak_c=30.0)
        energy, peak = rollout_trajectory(
            session,
            (21.0,),
            start_time_s=8.0,
            window_s=WINDOW_S,
            rollout_periods_per_window=1,
            rollout_substeps=1,
        )
        # One simulated period at 179 W billed over the 4-period window.
        assert energy == pytest.approx(179.0 * WINDOW_S)
        assert peak == pytest.approx(51.0)
        assert session.n_advances == 1

    def test_truncates_at_duration(self):
        session = _ScriptedSession(base_peak_c=30.0)
        energy, _ = rollout_trajectory(
            session,
            (21.0, 22.0, 23.0),
            start_time_s=8.0,
            window_s=WINDOW_S,
            rollout_periods_per_window=1,
            rollout_substeps=1,
            duration_s=16.0,
        )
        # Windows starting at or past duration_s are never simulated.
        assert session.n_advances == 1
        assert energy == pytest.approx(179.0 * WINDOW_S)

    def test_partial_final_window_bills_fewer_periods(self):
        session = _ScriptedSession(base_peak_c=30.0)
        energy, _ = rollout_trajectory(
            session,
            (21.0,),
            start_time_s=8.0,
            window_s=WINDOW_S,
            rollout_periods_per_window=1,
            rollout_substeps=1,
            duration_s=12.0,
        )
        # Only 2 of the window's 4 control periods fit before duration_s.
        assert energy == pytest.approx(179.0 * 2 * CONTROL_PERIOD_S)


class TestPlanSetpoint:
    def _controller(self, **kwargs):
        kwargs.setdefault("period_s", WINDOW_S)
        kwargs.setdefault("setpoint_max_c", 40.0)
        kwargs.setdefault("horizon", 3)
        return MpcSupervisoryController(**kwargs)

    def test_feasible_chooses_cheapest(self):
        session = _ScriptedSession(base_peak_c=30.0)
        plan = plan_setpoint(session, self._controller(), time_s=8.0)
        # Warmer is cheaper and every candidate stays under the guard, so
        # the aggressive double-step ramp must win.
        assert plan.chosen.candidate.name == "raise-fast"
        assert plan.n_feasible == len(plan.rollouts) == 6
        assert plan.chosen.cost == min(r.cost for r in plan.rollouts)

    def test_all_infeasible_chooses_coolest(self):
        session = _ScriptedSession(base_peak_c=70.0)
        plan = plan_setpoint(session, self._controller(), time_s=8.0)
        # Every trajectory breaches the guard; the planner must fall back
        # to the plan that cools hardest rather than the cheapest one.
        # lower-once and lower-ramp tie on the worst (first-window) peak,
        # and ties keep candidate order.
        assert plan.n_feasible == 0
        assert plan.chosen.candidate.name == "lower-once"
        assert not plan.chosen.feasible
        assert plan.chosen.worst_peak_case_c == min(
            r.worst_peak_case_c for r in plan.rollouts
        )

    def test_session_restored_after_planning(self):
        session = _ScriptedSession(base_peak_c=30.0, setpoint_c=23.0)
        plan_setpoint(session, self._controller(), time_s=8.0)
        assert session.setpoint_c == 23.0
        assert session.n_restores >= len(default_candidates(3))


class TestMpcControllerValidation:
    def test_rejects_bad_horizon(self):
        with pytest.raises(ValidationError):
            MpcSupervisoryController(horizon=0)

    def test_rejects_empty_candidates(self):
        with pytest.raises(ValueError):
            MpcSupervisoryController(candidates=())

    def test_rejects_bad_rollout_fidelity(self):
        with pytest.raises(ValidationError):
            MpcSupervisoryController(rollout_periods_per_window=0)
        with pytest.raises(ValidationError):
            MpcSupervisoryController(rollout_substeps=0)

    def test_observed_violation_short_circuits_to_reactive(self):
        controller = MpcSupervisoryController(setpoint_min_c=18.0)
        # The bare namespace would crash any rollout attempt (no snapshot),
        # so a returned decision proves the planner never rolled out.
        lowered = controller.plan(
            types.SimpleNamespace(setpoint_c=20.0), 8.0, T_CASE_MAX_C
        )
        assert lowered.action is SupervisoryAction.LOWER_SETPOINT
        assert lowered.next_setpoint_c == 19.0
        saturated = controller.plan(
            types.SimpleNamespace(setpoint_c=18.0), 16.0, T_CASE_MAX_C
        )
        assert saturated.action is SupervisoryAction.SATURATED
        assert saturated.next_setpoint_c == 18.0
        assert controller.planning_log == []


class TestMpcOnRealFloor:
    def test_brute_force_enumeration_matches_planner(self, warm_session):
        session = warm_session
        controller = MpcSupervisoryController(
            period_s=WINDOW_S, setpoint_max_c=40.0, horizon=2
        )
        entry = session.snapshot()
        try:
            expected = []
            for candidate in controller.candidates:
                setpoints = candidate.setpoints_from(
                    session.setpoint_c, controller.step_c, controller.clamp
                )
                energy, peak = rollout_trajectory(
                    session,
                    setpoints,
                    start_time_s=WINDOW_S,
                    window_s=controller.period_s,
                    rollout_periods_per_window=controller.rollout_periods_per_window,
                    rollout_substeps=controller.rollout_substeps,
                    duration_s=DURATION_S,
                )
                session.restore(entry)
                expected.append((candidate.name, setpoints, energy, peak))
            plan = plan_setpoint(
                session, controller, time_s=WINDOW_S, duration_s=DURATION_S
            )
            assert len(plan.rollouts) == len(expected)
            for rollout, (name, setpoints, energy, peak) in zip(
                plan.rollouts, expected
            ):
                assert rollout.candidate.name == name
                assert rollout.setpoints_c == setpoints
                # Bit-identical: same snapshot, same engine, same arithmetic.
                assert rollout.plant_energy_j == energy
                assert rollout.worst_peak_case_c == peak
            costs = [r.cost for r in plan.rollouts]
            if plan.n_feasible:
                assert plan.chosen.cost == min(costs)
                # Ties keep candidate order, so the argmin is deterministic.
                assert plan.chosen is plan.rollouts[costs.index(min(costs))]
        finally:
            session.restore(entry)

    def test_snapshot_restore_replays_bit_identically(self, warm_session):
        session = warm_session
        entry = session.snapshot()
        try:
            times = (WINDOW_S, WINDOW_S + CONTROL_PERIOD_S)
            first = [session.advance_period(t) for t in times]
            session.restore(entry)
            second = [session.advance_period(t) for t in times]
            for a, b in zip(first, second):
                assert a.setpoint_c == b.setpoint_c
                assert a.worst_period_peak_case_c == b.worst_period_peak_case_c
                assert a.rack_chiller_power_w == b.rack_chiller_power_w
                for rack_a, rack_b in zip(a.rack_decisions, b.rack_decisions):
                    for da, db in zip(rack_a, rack_b):
                        for fields in _DECISION_FIELDS:
                            assert getattr(da, fields) == getattr(db, fields), fields
        finally:
            session.restore(entry)

    def test_hold_only_mpc_commits_the_fixed_trace(self, floorplan, power_model):
        model = _floor(floorplan, power_model)
        fixed = model.run_trace(duration_s=DURATION_S)
        hold = MpcSupervisoryController(
            period_s=WINDOW_S,
            setpoint_max_c=40.0,
            candidates=(CandidateTrajectory("hold", (0.0, 0.0)),),
        )
        planned = model.run_trace(duration_s=DURATION_S, supervisory=hold)
        # Every decision holds, so the committed trace must be bit-identical
        # to the fixed run — the rollouts left zero side effects behind.
        assert all(
            d.action is SupervisoryAction.HOLD for d in planned.supervisory_decisions
        )
        assert planned.setpoint_c == fixed.setpoint_c
        assert planned.plant_power_w == fixed.plant_power_w
        for rack_fixed, rack_planned in zip(fixed.racks, planned.racks):
            for period_a, period_b in zip(rack_fixed.periods, rack_planned.periods):
                for da, db in zip(period_a, period_b):
                    for name in _DECISION_FIELDS:
                        assert getattr(da, name) == getattr(db, name), name

    def test_mpc_run_logs_every_plan(self, floorplan, power_model):
        model = _floor(floorplan, power_model)
        planner = MpcSupervisoryController(
            period_s=WINDOW_S, setpoint_max_c=40.0, horizon=2
        )
        trace = model.run_trace(duration_s=DURATION_S, supervisory=planner)
        # 24 s at 8 s windows -> decisions at t=8 and t=16 only.
        assert len(trace.supervisory_decisions) == 2
        assert len(planner.planning_log) == 2
        for plan, decision in zip(planner.planning_log, trace.supervisory_decisions):
            assert len(plan.rollouts) == 6
            assert decision.predicted_peak_case_c == plan.chosen.worst_peak_case_c
            assert decision.next_setpoint_c == plan.chosen.setpoints_c[0]


class TestIdleWindowRegression:
    def _stub_run(self, floorplan, power_model, peak_of_time):
        model = _floor(floorplan, power_model)
        session = model.session()
        session.reset = lambda: None  # the stub needs no floor arrays

        def fake_advance(time_s, *, n_substeps=None):
            return DatacenterPeriod(
                time_s=time_s,
                setpoint_c=session.setpoint_c,
                rack_decisions=((),) * model.n_racks,
                rack_chiller_power_w=(0.0,) * model.n_racks,
                worst_period_peak_case_c=peak_of_time(time_s),
            )

        session.advance_period = fake_advance
        return session.run(
            duration_s=DURATION_S,
            supervisory=SupervisoryController(period_s=WINDOW_S),
        )

    def test_idle_window_holds_instead_of_raising(self, floorplan, power_model):
        # Regression: a window with no peak observation left worst_peak at
        # -inf; the raise predicate then saw a predicted peak of -inf and
        # authorized an unconditional raise.  It must hold instead.
        trace = self._stub_run(floorplan, power_model, lambda t: float("-inf"))
        assert len(trace.supervisory_decisions) == 2
        for decision in trace.supervisory_decisions:
            assert decision.action is SupervisoryAction.HOLD
            assert math.isnan(decision.worst_peak_case_c)
        assert trace.setpoint_raises == 0
        assert len(set(trace.setpoint_c)) == 1

    def test_idle_window_carries_previous_windows_peak(self, floorplan, power_model):
        # First window observes 84 C (a HOLD — no raise headroom), second
        # window goes idle: its log entry must carry the 84 C forward.
        peak = lambda t: 84.0 if t < WINDOW_S else float("-inf")
        trace = self._stub_run(floorplan, power_model, peak)
        first, second = trace.supervisory_decisions
        assert first.worst_peak_case_c == 84.0
        assert second.action is SupervisoryAction.HOLD
        assert second.worst_peak_case_c == 84.0


class TestFig10Mpc:
    @pytest.mark.parametrize("kind", ["diurnal", "flash_crowd"])
    def test_mpc_beats_reactive_at_zero_violations(self, coarse_platform, kind):
        result = run_fig10(
            coarse_platform,
            scenario_kind=kind,
            n_racks=2,
            servers_per_rack=2,
            duration_s=DURATION_S,
            mpc=True,
        )
        assert result.mpc is not None
        assert result.mpc.thermal_violations == 0
        assert result.supervisory.thermal_violations == 0
        assert result.mpc.plant_energy_j < result.supervisory.plant_energy_j
        assert result.mpc_vs_reactive_saved_pct > 0.0
        assert result.mpc_plant_energy_saved_pct > result.plant_energy_saved_pct
        text = result.as_table()
        assert "mpc" in text and "vs reactive" in text


class TestChillerUnit:
    def test_part_load_curve(self):
        unit = ChillerUnit(name="u", capacity_w=100.0, part_load_degradation=0.4)
        assert unit.part_load_cop_factor(1.0) == pytest.approx(1.0)
        assert unit.part_load_cop_factor(0.5) == pytest.approx(0.9)
        assert unit.part_load_cop_factor(0.0) == pytest.approx(0.6)
        deep = ChillerUnit(
            name="d",
            capacity_w=100.0,
            part_load_degradation=1.0,
            min_part_load_cop_factor=0.25,
        )
        assert deep.part_load_cop_factor(0.0) == pytest.approx(0.25)

    def test_electrical_power_matches_plant_law_at_rated_load(self):
        plant = ChillerPlant(free_cooling_outdoor_c=18.0)
        unit = ChillerUnit(name="u", capacity_w=100.0, plant=plant)
        supply = 22.0
        expected = (
            100.0
            * (1.0 - plant.free_cooling_fraction_at(supply))
            / plant.cop_at(supply)
        )
        assert unit.electrical_power_w(supply, 100.0) == pytest.approx(expected)
        assert unit.electrical_power_w(supply, 0.0) == 0.0

    def test_maintenance_windows_are_half_open(self):
        unit = ChillerUnit(
            name="u", capacity_w=100.0, maintenance_windows=((10.0, 20.0),)
        )
        assert unit.available(9.9)
        assert not unit.available(10.0)
        assert not unit.available(19.9)
        assert unit.available(20.0)

    def test_rejects_inverted_maintenance_window(self):
        with pytest.raises(ConfigurationError):
            ChillerUnit(name="u", capacity_w=100.0, maintenance_windows=((20.0, 10.0),))


class TestChillerBank:
    def _bank(self, **kwargs):
        return ChillerBank.uniform(
            2, 100.0, plant=ChillerPlant(free_cooling_outdoor_c=18.0), **kwargs
        )

    def test_uniform_builds_named_units(self):
        bank = self._bank(maintenance_windows=[((0.0, 5.0),)])
        assert bank.n_units == 2
        assert bank.total_capacity_w == 200.0
        assert [unit.name for unit in bank.units] == ["chiller0", "chiller1"]
        assert bank.units[0].maintenance_windows == ((0.0, 5.0),)
        assert bank.units[1].maintenance_windows == ()

    def test_stage_prefers_one_deep_unit_over_two_shallow(self):
        bank = self._bank()
        decision = bank.stage(22.0, 60.0)
        # 60 W on one 100 W unit runs at 0.6 part load; splitting over two
        # puts each at 0.3 where the part-load curve is markedly worse.
        assert decision.n_units_on == 1
        assert decision.load_fraction == pytest.approx(0.6)
        assert not decision.overloaded
        both = sum(
            unit.electrical_power_w(22.0, 30.0) for unit in bank.units
        )
        assert decision.electrical_power_w < both

    def test_stage_commits_both_units_when_one_cannot_carry(self):
        bank = self._bank()
        decision = bank.stage(22.0, 150.0)
        assert decision.n_units_on == 2
        assert decision.load_fraction == pytest.approx(0.75)
        assert not decision.overloaded

    def test_stage_honours_maintenance(self):
        bank = self._bank(maintenance_windows=[((0.0, 10.0),)])
        during = bank.stage(22.0, 60.0, time_s=5.0)
        assert during.units_on == ("chiller1",)
        assert during.n_available == 1
        after = bank.stage(22.0, 60.0, time_s=10.0)
        assert after.n_available == 2

    def test_stage_overloads_all_available_units(self):
        bank = self._bank()
        decision = bank.stage(22.0, 250.0)
        assert decision.overloaded
        assert decision.n_units_on == 2
        assert decision.load_fraction == pytest.approx(1.25)
        assert decision.electrical_power_w > 0.0

    def test_zero_load_commits_nothing(self):
        decision = self._bank().stage(22.0, 0.0)
        assert decision.units_on == ()
        assert decision.electrical_power_w == 0.0
        assert not decision.overloaded

    def test_no_available_unit_is_a_configuration_error(self):
        bank = self._bank(
            maintenance_windows=[((0.0, 10.0),), ((0.0, 10.0),)]
        )
        with pytest.raises(ConfigurationError):
            bank.stage(22.0, 60.0, time_s=5.0)

    def test_rejects_duplicate_names_and_empty_bank(self):
        unit = ChillerUnit(name="u", capacity_w=100.0)
        with pytest.raises(ConfigurationError):
            ChillerBank(units=(unit, unit))
        with pytest.raises(ConfigurationError):
            ChillerBank(units=())

    def test_large_bank_stages_by_capacity_prefix(self):
        units = tuple(
            ChillerUnit(name=f"u{i}", capacity_w=100.0 + i) for i in range(4)
        )
        bank = ChillerBank(units=units, max_enumerated_units=2)
        decision = bank.stage(22.0, 50.0)
        # Prefix staging starts from the largest unit.
        assert decision.units_on == ("u3",)


class TestChillerBankOnFloor:
    def test_staging_recorded_and_power_consistent(self, floorplan, power_model):
        bank = ChillerBank.uniform(
            2, 300.0, plant=ChillerPlant(free_cooling_outdoor_c=18.0)
        )
        model = _floor(floorplan, power_model, plant=bank)
        trace = model.run_trace(duration_s=DURATION_S)
        assert len(trace.staging) == trace.n_periods
        for power, staging in zip(trace.plant_power_w, trace.staging):
            # Prorated per-rack shares must re-sum to the bank's total.
            assert power == pytest.approx(staging.electrical_power_w)
            assert 0 <= staging.n_units_on <= 2
        assert trace.overloaded_periods == 0
        assert "chiller staging" in trace.summary()


class TestTraceSaturationSurface:
    def test_summary_surfaces_saturations(self):
        decision = SupervisoryDecision(
            time_s=8.0,
            setpoint_c=18.0,
            next_setpoint_c=18.0,
            action=SupervisoryAction.SATURATED,
            worst_peak_case_c=T_CASE_MAX_C,
            predicted_peak_case_c=T_CASE_MAX_C + 1.0,
        )
        trace = DatacenterTrace(
            rack_names=("rack0",),
            racks=[],
            control_period_s=CONTROL_PERIOD_S,
            setpoint_c=[18.0, 18.0],
            plant_power_w=[10.0, 10.0],
            supervisory_decisions=[decision],
        )
        assert trace.setpoint_saturations == 1
        assert trace.setpoint_lowers == 0
        assert "setpoint saturations" in trace.summary()
