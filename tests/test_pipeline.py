"""End-to-end pipeline tests (CooledServerSimulation + ThermalAwarePipeline)."""

import pytest

from repro.core.pipeline import CooledServerSimulation, ThermalAwarePipeline, T_CASE_MAX_C
from repro.baselines.coskun_balancing import CoskunBalancingMapping
from repro.power.power_model import CoreActivity
from repro.thermosyphon.design import PAPER_OPTIMIZED_DESIGN
from repro.workloads.configuration import Configuration
from repro.workloads.qos import QoSConstraint


@pytest.fixture(scope="module")
def simulation(floorplan, power_model, coarse_thermal_simulator):
    return CooledServerSimulation(
        floorplan,
        design=PAPER_OPTIMIZED_DESIGN,
        power_model=power_model,
        thermal_simulator=coarse_thermal_simulator,
    )


@pytest.fixture(scope="module")
def pipeline(simulation, profiler):
    return ThermalAwarePipeline(simulation, profiler=profiler)


class TestSimulation:
    def test_full_load_result_consistency(self, simulation, x264):
        activities = [
            CoreActivity.running(i, x264.core_power_parameters(), 2) for i in range(8)
        ]
        result = simulation.simulate_activities(
            activities, 3.2, memory_intensity=x264.memory_intensity, benchmark_name="x264"
        )
        assert result.die_metrics.theta_max_c > result.package_metrics.theta_max_c
        assert result.package_power_w > 60.0
        assert result.operating_point.total_heat_w == pytest.approx(result.package_power_w, rel=1e-6)
        assert result.water_delta_t_c > 0.0
        assert result.within_case_limit
        assert result.case_temperature_c < T_CASE_MAX_C

    def test_configuration_inferred_from_activities(self, simulation, x264):
        activities = [
            CoreActivity.running(i, x264.core_power_parameters(), 2) if i < 3 else CoreActivity.idle(i)
            for i in range(8)
        ]
        result = simulation.simulate_activities(activities, 2.9, benchmark_name="x264")
        assert result.configuration.n_cores == 3
        assert result.configuration.frequency_ghz == 2.9

    def test_chiller_power_positive(self, simulation, x264):
        activities = [
            CoreActivity.running(i, x264.core_power_parameters(), 2) for i in range(4)
        ]
        result = simulation.simulate_activities(activities, 3.2, benchmark_name="x264")
        assert result.chiller_power_w() > 0.0

    def test_result_carries_the_evaluated_water_loop(self, simulation, x264):
        """Regression: chiller power must reflect the actual operating point,
        not a hardcoded 7 kg/h reconstruction."""
        from repro.thermosyphon.chiller import ChillerModel

        activities = [
            CoreActivity.running(i, x264.core_power_parameters(), 2) for i in range(4)
        ]
        loop = simulation.design.water_loop().with_flow_rate(14.0)
        result = simulation.simulate_activities(
            activities, 3.2, water_loop=loop, benchmark_name="x264"
        )
        assert result.water_loop is loop
        chiller = ChillerModel(coefficient_of_performance=3.0)
        expected = chiller.cooling_power_w(loop, result.package_power_w)
        assert result.chiller_power_w(chiller) == pytest.approx(expected)
        # Default water loop: the design's own loop, not a 7 kg/h stand-in.
        default_result = simulation.simulate_activities(
            activities, 3.2, benchmark_name="x264"
        )
        assert default_result.water_loop.flow_rate_kg_h == pytest.approx(
            simulation.design.water_loop().flow_rate_kg_h
        )


class TestPipeline:
    def test_run_satisfies_qos_and_reports_metrics(self, pipeline, x264):
        result = pipeline.run(x264, QoSConstraint(2.0))
        assert result.benchmark_name == "x264"
        assert result.mapping is not None
        assert result.mapping.n_active_cores == result.configuration.n_cores
        assert result.die_metrics.theta_max_c > 40.0

    def test_relaxed_qos_runs_cooler(self, pipeline, x264):
        strict = pipeline.run(x264, QoSConstraint(1.0))
        relaxed = pipeline.run(x264, QoSConstraint(3.0))
        assert relaxed.package_power_w < strict.package_power_w
        assert relaxed.die_metrics.theta_max_c < strict.die_metrics.theta_max_c

    def test_explicit_configuration_bypasses_selection(self, pipeline, x264):
        configuration = Configuration(2, 1, 2.6)
        result = pipeline.run_with_configuration(x264, configuration)
        assert result.configuration == configuration

    def test_policy_affects_mapping(self, simulation, profiler, x264):
        proposed = ThermalAwarePipeline(simulation, profiler=profiler)
        baseline = ThermalAwarePipeline(
            simulation, profiler=profiler, policy=CoskunBalancingMapping()
        )
        constraint = QoSConstraint(3.0)
        proposed_result = proposed.run(x264, constraint)
        baseline_result = baseline.run(x264, constraint)
        # The baseline keeps idle cores in POLL, so it burns more power.
        assert baseline_result.package_power_w > proposed_result.package_power_w
        assert (
            baseline_result.die_metrics.theta_max_c
            >= proposed_result.die_metrics.theta_max_c
        )

    def test_select_configuration_step(self, pipeline, x264):
        selection = pipeline.select_configuration(x264, QoSConstraint(2.0))
        assert selection.selected.satisfies(QoSConstraint(2.0))
