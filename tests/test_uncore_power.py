"""Uncore power model tests (LLC + memory controller / IO)."""

import pytest

from repro.exceptions import ValidationError
from repro.power.uncore_power import (
    LLC_MAX_POWER_W,
    MEMORY_IO_FREQUENCY_RANGE_W,
    MEMORY_IO_STATIC_POWER_W,
    UncorePowerModel,
)


@pytest.fixture(scope="module")
def model():
    return UncorePowerModel()


class TestPaperCalibration:
    def test_llc_worst_case_is_two_watts(self, model):
        assert model.llc_power_w(1.0) == pytest.approx(LLC_MAX_POWER_W)
        assert LLC_MAX_POWER_W == pytest.approx(2.0)

    def test_static_overhead_is_nine_watts(self, model):
        # At the minimum uncore frequency only the static part remains.
        assert model.memory_io_power_w(1.2, 0.0) == pytest.approx(MEMORY_IO_STATIC_POWER_W)
        assert MEMORY_IO_STATIC_POWER_W == pytest.approx(9.0)

    def test_frequency_span_is_eight_watts(self, model):
        low = model.memory_io_power_w(1.2, 1.0)
        high = model.memory_io_power_w(2.8, 1.0)
        assert high - low == pytest.approx(MEMORY_IO_FREQUENCY_RANGE_W)
        assert MEMORY_IO_FREQUENCY_RANGE_W == pytest.approx(8.0)


class TestMonotonicity:
    def test_llc_power_increases_with_memory_intensity(self, model):
        values = [model.llc_power_w(m) for m in (0.0, 0.3, 0.6, 1.0)]
        assert values == sorted(values)

    def test_memory_io_increases_with_frequency(self, model):
        values = [model.memory_io_power_w(f, 0.5) for f in (1.2, 1.8, 2.4, 2.8)]
        assert values == sorted(values)

    def test_memory_io_increases_with_intensity(self, model):
        assert model.memory_io_power_w(2.8, 0.9) > model.memory_io_power_w(2.8, 0.1)


class TestBreakdown:
    def test_breakdown_sums_to_total(self, model):
        breakdown = model.breakdown(2.4, 0.6)
        assert breakdown.total_w == pytest.approx(
            breakdown.llc_w + breakdown.memory_controller_w + breakdown.uncore_io_w
        )
        assert breakdown.total_w == pytest.approx(model.total_power_w(2.4, 0.6))

    def test_memory_controller_share_larger_than_io(self, model):
        breakdown = model.breakdown(2.4, 0.6)
        assert breakdown.memory_controller_w > breakdown.uncore_io_w

    def test_uncore_total_within_expected_envelope(self, model):
        # Static 9 W + up to 8 W frequency-proportional + up to 2 W LLC.
        total = model.total_power_w(2.8, 1.0)
        assert 9.0 < total <= 19.0 + 1e-9


class TestValidation:
    def test_rejects_out_of_range_frequency(self, model):
        with pytest.raises(ValidationError):
            model.memory_io_power_w(0.8, 0.5)
        with pytest.raises(ValidationError):
            model.memory_io_power_w(3.5, 0.5)

    def test_rejects_invalid_intensity(self, model):
        with pytest.raises(ValidationError):
            model.llc_power_w(1.5)
