"""Refrigerant property model tests."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import ConfigurationError
from repro.thermosyphon.refrigerant import REFRIGERANTS, get_refrigerant


class TestDatabase:
    def test_paper_refrigerant_available(self):
        assert "R236fa" in REFRIGERANTS

    def test_alternatives_available(self):
        for name in ("R134a", "R245fa", "R1234ze"):
            assert name in REFRIGERANTS

    def test_unknown_refrigerant(self):
        with pytest.raises(ConfigurationError):
            get_refrigerant("R22")


class TestSaturationCurve:
    @pytest.mark.parametrize("name", sorted(REFRIGERANTS))
    def test_pressure_monotone_in_temperature(self, name):
        refrigerant = get_refrigerant(name)
        pressures = [refrigerant.saturation_pressure_kpa(t) for t in range(0, 81, 10)]
        assert pressures == sorted(pressures)

    @pytest.mark.parametrize("name", sorted(REFRIGERANTS))
    def test_saturation_temperature_inverts_pressure(self, name):
        refrigerant = get_refrigerant(name)
        for temperature in (10.0, 35.0, 60.0):
            pressure = refrigerant.saturation_pressure_kpa(temperature)
            assert refrigerant.saturation_temperature_c(pressure) == pytest.approx(
                temperature, abs=0.5
            )

    def test_r236fa_reference_values(self):
        """Anchor values close to published R236fa saturation data."""
        refrigerant = get_refrigerant("R236fa")
        assert refrigerant.saturation_pressure_kpa(30.0) == pytest.approx(321.0, rel=0.05)
        assert refrigerant.latent_heat_j_kg(30.0) == pytest.approx(155e3, rel=0.05)
        assert refrigerant.liquid_density_kg_m3(30.0) == pytest.approx(1346.0, rel=0.03)

    @pytest.mark.parametrize("name", sorted(REFRIGERANTS))
    def test_latent_heat_decreases_with_temperature(self, name):
        refrigerant = get_refrigerant(name)
        values = [refrigerant.latent_heat_j_kg(t) for t in range(0, 81, 20)]
        assert values == sorted(values, reverse=True)

    @pytest.mark.parametrize("name", sorted(REFRIGERANTS))
    def test_liquid_denser_than_vapor(self, name):
        refrigerant = get_refrigerant(name)
        for temperature in (10.0, 40.0, 70.0):
            assert refrigerant.liquid_density_kg_m3(temperature) > refrigerant.vapor_density_kg_m3(
                temperature
            )

    @pytest.mark.parametrize("name", sorted(REFRIGERANTS))
    def test_reduced_pressure_in_unit_interval(self, name):
        refrigerant = get_refrigerant(name)
        for temperature in (10.0, 40.0, 70.0):
            assert 0.0 < refrigerant.reduced_pressure(temperature) < 1.0


class TestTwoPhaseMixture:
    @given(quality=st.floats(min_value=0.0, max_value=1.0))
    def test_mixture_density_between_phases(self, quality):
        refrigerant = get_refrigerant("R236fa")
        density = refrigerant.two_phase_density_kg_m3(40.0, quality)
        assert (
            refrigerant.vapor_density_kg_m3(40.0) - 1e-9
            <= density
            <= refrigerant.liquid_density_kg_m3(40.0) + 1e-9
        )

    def test_mixture_density_monotone_in_quality(self):
        refrigerant = get_refrigerant("R236fa")
        densities = [refrigerant.two_phase_density_kg_m3(40.0, x) for x in (0.0, 0.2, 0.5, 1.0)]
        assert densities == sorted(densities, reverse=True)

    def test_prandtl_number_plausible(self):
        for refrigerant in REFRIGERANTS.values():
            assert 1.0 < refrigerant.liquid_prandtl() < 10.0
