"""Benchmark-report tool tests (``benchmarks/bench_report.py``).

The report is CI's perf tripwire, so its exit-code semantics are part of
the contract: a *missing baseline file* and *benchmarks new to the
baseline* are reports, not failures (otherwise the first run of any fresh
benchmark file fails CI before a baseline can exist), while a benchmark
that regressed beyond the band — or vanished from the run — fails.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "bench_report",
    Path(__file__).parent.parent / "benchmarks" / "bench_report.py",
)
bench_report = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_report)


def _write_report(path, means):
    payload = {
        "benchmarks": [
            {"name": name, "stats": {"mean": mean}} for name, mean in means.items()
        ]
    }
    path.write_text(json.dumps(payload))
    return path


def _main(report, baseline, *extra):
    return bench_report.main(
        [str(report), "--baseline", str(baseline), *extra]
    )


class TestMissingBaseline:
    def test_nonexistent_baseline_reports_new_and_passes(self, tmp_path, capsys):
        report = _write_report(tmp_path / "run.json", {"bench_a": 0.5})
        assert _main(report, tmp_path / "no-such-baseline.json") == 0
        out = capsys.readouterr().out
        assert "no baseline" in out
        assert "new" in out

    def test_benchmark_new_to_existing_baseline_passes(self, tmp_path, capsys):
        baseline = _write_report(tmp_path / "base.json", {"bench_a": 0.5})
        report = _write_report(
            tmp_path / "run.json", {"bench_a": 0.5, "bench_b": 2.0}
        )
        assert _main(report, baseline) == 0
        assert "new" in capsys.readouterr().out


class TestRegressionGate:
    def test_within_band_passes(self, tmp_path):
        baseline = _write_report(tmp_path / "base.json", {"bench_a": 0.5})
        report = _write_report(tmp_path / "run.json", {"bench_a": 1.5})
        assert _main(report, baseline) == 0

    def test_beyond_band_fails(self, tmp_path, capsys):
        baseline = _write_report(tmp_path / "base.json", {"bench_a": 0.5})
        report = _write_report(tmp_path / "run.json", {"bench_a": 5.0})
        assert _main(report, baseline) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_missing_benchmark_fails(self, tmp_path, capsys):
        baseline = _write_report(
            tmp_path / "base.json", {"bench_a": 0.5, "bench_b": 0.5}
        )
        report = _write_report(tmp_path / "run.json", {"bench_a": 0.5})
        assert _main(report, baseline) == 1
        assert "missing" in capsys.readouterr().out

    def test_empty_run_fails(self, tmp_path):
        report = _write_report(tmp_path / "run.json", {})
        assert _main(report, tmp_path / "base.json") == 1


class TestUpdateBaseline:
    def test_update_writes_and_subsequent_check_passes(self, tmp_path):
        baseline = tmp_path / "base.json"
        report = _write_report(tmp_path / "run.json", {"bench_a": 0.75})
        assert _main(report, baseline, "--update-baseline") == 0
        assert baseline.exists()
        assert bench_report.load_report(baseline) == {"bench_a": 0.75}
        assert _main(report, baseline) == 0
