"""Datacenter subsystem tests: floor engine, supervisory loop, scenarios.

The load-bearing guarantees:

* a fixed-setpoint :class:`DatacenterModel` run reproduces standalone
  :meth:`ThermosyphonController.run_rack_trace` results **bit for bit**
  per rack (the floor engine adds sharing, never different physics);
* the supervisory setpoint loop saves chiller plant energy against the
  fixed-setpoint baseline at zero thermal violations;
* racks share one factorization cache — a homogeneous floor pays what a
  single rack pays, asserted through merged :class:`CacheStats`;
* scenarios are seeded and replayable.
"""

import numpy as np
import pytest

from repro.core.mapping import ThreadMapper
from repro.core.mapping_policies import ProposedThermalAwareMapping
from repro.core.pipeline import CooledServerSimulation, T_CASE_MAX_C
from repro.core.runtime_controller import RackServer, ThermosyphonController
from repro.datacenter.model import DatacenterModel, RackSpec
from repro.datacenter.scenarios import (
    SCENARIO_KINDS,
    build_scenario,
    modulate_trace,
)
from repro.datacenter.supervisory import (
    SupervisoryAction,
    SupervisoryController,
)
from repro.exceptions import ConfigurationError
from repro.thermal.simulator import ThermalSimulator
from repro.thermal.solver_cache import CacheStats
from repro.thermosyphon.chiller import ChillerPlant
from repro.thermosyphon.design import PAPER_OPTIMIZED_DESIGN
from repro.workloads.configuration import Configuration
from repro.workloads.parsec import get_benchmark
from repro.workloads.qos import QoSConstraint
from repro.workloads.trace import generate_trace

CELL_SIZE_MM = 2.5
CONTROL_PERIOD_S = 2.0
DURATION_S = 24.0

#: All decision fields that must match the standalone rack trace exactly.
_DECISION_FIELDS = (
    "time_s",
    "case_temperature_c",
    "die_hot_spot_c",
    "package_power_w",
    "water_flow_kg_h",
    "frequency_ghz",
    "action",
    "settle_residual_c",
    "period_peak_case_c",
)


def _simulator(floorplan):
    return ThermalSimulator(floorplan, cell_size_mm=CELL_SIZE_MM)


def _mapping(floorplan, benchmark, frequency_ghz=3.2):
    mapper = ThreadMapper(floorplan, orientation=PAPER_OPTIMIZED_DESIGN.orientation)
    return mapper.map(
        benchmark, Configuration(8, 2, frequency_ghz), ProposedThermalAwareMapping()
    )


def _scenario(floorplan, kind="flash_crowd", seed=3, n_racks=2, servers_per_rack=4):
    return build_scenario(
        kind,
        n_racks=n_racks,
        servers_per_rack=servers_per_rack,
        duration_s=DURATION_S,
        seed=seed,
        floorplan=floorplan,
    )


def _floor(scenario, floorplan, power_model, **kwargs):
    kwargs.setdefault("plant", ChillerPlant(free_cooling_outdoor_c=18.0))
    return DatacenterModel(
        scenario.racks,
        floorplan=floorplan,
        power_model=power_model,
        thermal_simulator=_simulator(floorplan),
        control_period_s=CONTROL_PERIOD_S,
        **kwargs,
    )


class TestScenarioEngine:
    @pytest.mark.parametrize("kind", SCENARIO_KINDS)
    def test_builds_every_kind(self, floorplan, kind):
        scenario = build_scenario(
            kind, n_racks=2, servers_per_rack=3, duration_s=30.0, seed=1,
            floorplan=floorplan,
        )
        assert scenario.n_racks == 2
        assert scenario.n_servers == 6
        for rack in scenario.racks:
            for index in range(rack.n_servers):
                trace = rack.server_trace(index)
                assert trace.duration_s == pytest.approx(30.0, rel=0.1)

    def test_same_seed_replays_identically(self, floorplan):
        first = _scenario(floorplan, kind="mixed", seed=11)
        second = _scenario(floorplan, kind="mixed", seed=11)
        for rack_a, rack_b in zip(first.racks, second.racks):
            for sa, sb in zip(rack_a.servers, rack_b.servers):
                assert sa.benchmark.name == sb.benchmark.name
                assert sa.trace.phases == sb.trace.phases

    def test_different_seeds_differ(self, floorplan):
        first = _scenario(floorplan, kind="flash_crowd", seed=1)
        second = _scenario(floorplan, kind="flash_crowd", seed=2)
        traces_a = [r.servers[0].trace.phases for r in first.racks]
        traces_b = [r.servers[0].trace.phases for r in second.racks]
        assert traces_a != traces_b

    def test_flash_crowd_has_a_burst_window(self, floorplan):
        scenario = _scenario(floorplan, kind="flash_crowd", seed=5)
        trace = scenario.racks[0].servers[0].trace
        _, activities, _ = trace.resample(1.0)
        assert activities.max() > 0.9
        assert activities.min() < 0.5

    def test_rolling_batch_staggers_racks(self, floorplan):
        scenario = build_scenario(
            "rolling_batch", n_racks=2, servers_per_rack=1, duration_s=40.0,
            seed=0, floorplan=floorplan,
        )
        times0, act0, _ = scenario.racks[0].servers[0].trace.resample(1.0)
        times1, act1, _ = scenario.racks[1].servers[0].trace.resample(1.0)
        # Rack 0 is busy in the first half, rack 1 in the second.
        centre0 = float((times0 * act0).sum() / act0.sum())
        centre1 = float((times1 * act1).sum() / act1.sum())
        assert centre0 < centre1

    def test_unknown_kind_rejected(self, floorplan):
        with pytest.raises(ConfigurationError):
            build_scenario("nonsense", floorplan=floorplan)

    def test_modulate_trace_shape_mismatch_rejected(self, x264):
        base = generate_trace(x264, total_duration_s=10.0)
        with pytest.raises(ConfigurationError):
            modulate_trace(base, lambda times: np.ones(3), 1.0)

    def test_modulate_trace_scales_activity(self, x264):
        base = generate_trace(x264, total_duration_s=10.0)
        halved = modulate_trace(base, lambda times: np.full(times.shape, 0.5), 1.0)
        _, base_act, base_mem = base.resample(1.0)
        _, act, mem = halved.resample(1.0)
        assert act == pytest.approx(0.5 * base_act)
        assert mem == pytest.approx(base_mem)


class TestSupervisoryController:
    def test_raises_when_predicted_peak_clears_guard(self):
        controller = SupervisoryController(step_c=1.0, guard_margin_c=2.0)
        decision = controller.decide(8.0, 30.0, worst_peak_case_c=60.0)
        assert decision.action is SupervisoryAction.RAISE_SETPOINT
        assert decision.next_setpoint_c == pytest.approx(31.0)
        assert decision.predicted_peak_case_c == pytest.approx(61.0)

    def test_holds_when_guard_blocks_the_raise(self):
        controller = SupervisoryController(step_c=1.0, guard_margin_c=2.0)
        decision = controller.decide(8.0, 30.0, worst_peak_case_c=T_CASE_MAX_C - 2.5)
        assert decision.action is SupervisoryAction.HOLD
        assert decision.next_setpoint_c == pytest.approx(30.0)

    def test_lowers_on_violation(self):
        controller = SupervisoryController(step_c=1.0)
        decision = controller.decide(8.0, 34.0, worst_peak_case_c=T_CASE_MAX_C + 0.5)
        assert decision.action is SupervisoryAction.LOWER_SETPOINT
        assert decision.next_setpoint_c == pytest.approx(33.0)

    def test_raise_clamped_at_maximum(self):
        controller = SupervisoryController(setpoint_max_c=31.0, step_c=2.0)
        decision = controller.decide(8.0, 30.0, worst_peak_case_c=50.0)
        assert decision.action is SupervisoryAction.RAISE_SETPOINT
        assert decision.next_setpoint_c == pytest.approx(31.0)

    def test_cannot_lower_below_minimum(self):
        # A violation at the range floor holds the setpoint but must be
        # logged as SATURATED, not as a quiet HOLD (regression: the LOWER
        # branch used to require setpoint_c > setpoint_min_c, so this case
        # fell through to HOLD and was invisible in the decision log).
        controller = SupervisoryController(setpoint_min_c=30.0)
        decision = controller.decide(8.0, 30.0, worst_peak_case_c=T_CASE_MAX_C + 5.0)
        assert decision.action is SupervisoryAction.SATURATED
        assert decision.next_setpoint_c == pytest.approx(30.0)

    def test_saturated_distinct_from_quiet_hold(self):
        controller = SupervisoryController(setpoint_min_c=30.0, guard_margin_c=2.0)
        quiet = controller.decide(8.0, 30.0, worst_peak_case_c=T_CASE_MAX_C - 1.0)
        saturated = controller.decide(16.0, 30.0, worst_peak_case_c=T_CASE_MAX_C)
        assert quiet.action is SupervisoryAction.HOLD
        assert saturated.action is SupervisoryAction.SATURATED
        # Above the range floor the identical violation still lowers.
        lowered = controller.decide(24.0, 31.0, worst_peak_case_c=T_CASE_MAX_C)
        assert lowered.action is SupervisoryAction.LOWER_SETPOINT

    def test_invalid_parameters_rejected(self):
        with pytest.raises(Exception):
            SupervisoryController(period_s=0.0)
        with pytest.raises(ValueError):
            SupervisoryController(setpoint_min_c=40.0, setpoint_max_c=30.0)


class TestDatacenterValidation:
    def test_empty_floor_rejected(self):
        with pytest.raises(ConfigurationError):
            DatacenterModel([])

    def test_empty_rack_rejected(self, x264, floorplan):
        with pytest.raises(ConfigurationError):
            RackSpec(name="empty", servers=())

    def test_server_without_trace_rejected(self, floorplan, x264):
        server = RackServer(x264, _mapping(floorplan, x264), QoSConstraint(2.0))
        with pytest.raises(ConfigurationError):
            DatacenterModel([RackSpec(name="r0", servers=(server,))])

    def test_non_multiple_supervisory_period_rejected(
        self, floorplan, power_model
    ):
        scenario = _scenario(floorplan, n_racks=1, servers_per_rack=1)
        floor = _floor(scenario, floorplan, power_model)
        with pytest.raises(ConfigurationError):
            floor.run_trace(
                supervisory=SupervisoryController(period_s=3.0),
                duration_s=6.0,
            )


class TestFixedSetpointEquivalence:
    def test_bit_identical_to_standalone_rack_traces(self, floorplan, power_model):
        """ISSUE acceptance: fixed-setpoint floor == per-rack run_rack_trace.

        A heterogeneous 2-rack x 4-server floor at a fixed setpoint must
        reproduce each rack's standalone transient trace bit for bit
        (well inside the 1e-12 acceptance tolerance) — including the
        per-period rack chiller power at the plant's efficiency — even
        though the floor engine runs both racks through one shared
        factorization cache and the standalone traces use private ones.
        """
        scenario = _scenario(floorplan, kind="flash_crowd", seed=3)
        plant = ChillerPlant(free_cooling_outdoor_c=18.0)
        setpoint = PAPER_OPTIMIZED_DESIGN.water_inlet_temperature_c
        floor = _floor(scenario, floorplan, power_model, plant=plant)
        trace = floor.run_trace(duration_s=DURATION_S)
        assert all(value == setpoint for value in trace.setpoint_c)

        for rack_index, rack in enumerate(scenario.racks):
            simulation = CooledServerSimulation(
                floorplan,
                design=PAPER_OPTIMIZED_DESIGN,
                power_model=power_model,
                thermal_simulator=_simulator(floorplan),
            )
            controller = ThermosyphonController(
                simulation, control_period_s=CONTROL_PERIOD_S
            )
            standalone = controller.run_rack_trace(
                list(rack.servers),
                initial_water_loop=PAPER_OPTIMIZED_DESIGN.water_loop(),
                chiller=plant.chiller_at(setpoint),
            )
            floor_rack = trace.racks[rack_index]
            assert len(floor_rack.periods) == len(standalone.periods)
            for ours, theirs in zip(floor_rack.periods, standalone.periods):
                for decision_a, decision_b in zip(ours, theirs):
                    for field in _DECISION_FIELDS:
                        assert getattr(decision_a, field) == getattr(
                            decision_b, field
                        ), field
            assert floor_rack.chiller_power_w == standalone.chiller_power_w


class TestSupervisorySavesPlantEnergy:
    def test_supervisory_beats_fixed_setpoint_without_violations(
        self, floorplan, power_model
    ):
        """ISSUE acceptance: less plant energy, zero thermal violations."""
        scenario = _scenario(floorplan, kind="diurnal", seed=7)
        fixed = _floor(scenario, floorplan, power_model).run_trace(
            duration_s=DURATION_S
        )
        supervisory = SupervisoryController(period_s=8.0, setpoint_max_c=40.0)
        controlled = _floor(scenario, floorplan, power_model).run_trace(
            duration_s=DURATION_S, supervisory=supervisory
        )
        assert controlled.plant_energy_j < fixed.plant_energy_j
        assert controlled.thermal_violations == 0
        assert fixed.thermal_violations == 0
        assert controlled.setpoint_raises > 0
        assert controlled.setpoint_c[-1] > controlled.setpoint_c[0]
        assert controlled.peak_period_case_temperature_c < T_CASE_MAX_C
        # The supervisory log covers every window except the last.
        assert len(controlled.supervisory_decisions) == int(
            DURATION_S / supervisory.period_s
        ) - 1

    def test_setpoint_moves_keep_per_server_valve_state(
        self, floorplan, power_model
    ):
        """The slow loop only changes the inlet temperature, never the valve."""
        scenario = _scenario(floorplan, n_racks=1, servers_per_rack=2)
        floor = _floor(scenario, floorplan, power_model)
        session = floor.session()
        session.advance_period(0.0)
        flows_before = [
            loop.flow_rate_kg_h for loop in session._water_loops[0]
        ]
        session.set_setpoint(33.0)
        assert [
            loop.flow_rate_kg_h for loop in session._water_loops[0]
        ] == flows_before
        assert all(
            loop.inlet_temperature_c == 33.0 for loop in session._water_loops[0]
        )


class TestSharedFactorizationCache:
    def test_homogeneous_floor_pays_one_rack_of_factorizations(
        self, floorplan, power_model, x264
    ):
        """ISSUE acceptance: shared-cache counts via merged CacheStats.

        Two identical racks behind one shared simulator cost exactly what
        one standalone rack costs (the second rack's operators are all
        cache hits), while two standalone racks with private caches pay
        twice — asserted by merging their CacheStats.
        """
        mapping = _mapping(floorplan, x264)
        constraint = QoSConstraint(2.0)
        trace = generate_trace(x264, total_duration_s=DURATION_S)
        servers = tuple(
            RackServer(x264, mapping, constraint, trace=trace) for _ in range(4)
        )
        racks = [
            RackSpec(name=f"rack{i}", servers=servers) for i in range(2)
        ]
        floor = DatacenterModel(
            racks,
            plant=ChillerPlant(free_cooling_outdoor_c=18.0),
            floorplan=floorplan,
            power_model=power_model,
            thermal_simulator=_simulator(floorplan),
            control_period_s=CONTROL_PERIOD_S,
        )
        floor_trace = floor.run_trace(duration_s=DURATION_S)
        assert floor_trace.factorizations is not None
        assert floor_trace.cache_stats is not None

        standalone_stats = []
        standalone_factorizations = []
        for _ in range(2):
            simulation = CooledServerSimulation(
                floorplan,
                design=PAPER_OPTIMIZED_DESIGN,
                power_model=power_model,
                thermal_simulator=_simulator(floorplan),
            )
            controller = ThermosyphonController(
                simulation, control_period_s=CONTROL_PERIOD_S
            )
            rack_trace = controller.run_rack_trace(list(servers), trace)
            standalone_stats.append(rack_trace.cache_stats)
            standalone_factorizations.append(rack_trace.factorizations)

        merged = sum(standalone_stats, CacheStats.zero())
        # Identical racks: the floor pays exactly one rack's factorizations.
        assert floor_trace.factorizations == standalone_factorizations[0]
        assert floor_trace.cache_stats.misses == floor_trace.factorizations
        # Private caches pay once per rack; the shared cache pays once.
        assert merged.misses == 2 * floor_trace.factorizations
        assert floor_trace.factorizations < merged.misses


class TestDatacenterTrace:
    def test_trace_accounting_and_summary(self, floorplan, power_model):
        scenario = _scenario(floorplan, n_racks=2, servers_per_rack=2)
        floor = _floor(scenario, floorplan, power_model)
        trace = floor.run_trace(duration_s=8.0)
        assert trace.n_racks == 2
        assert trace.n_servers == 4
        assert trace.n_periods == 4
        assert trace.plant_energy_j == pytest.approx(
            sum(trace.plant_power_w) * CONTROL_PERIOD_S
        )
        per_rack_sum = [
            sum(rack.chiller_power_w[t] for rack in trace.racks)
            for t in range(trace.n_periods)
        ]
        assert trace.plant_power_w == pytest.approx(per_rack_sum)
        text = trace.summary()
        assert "datacenter trace" in text
        assert "plant energy" in text
        assert "factorizations" in text

    def test_step_wise_period_api(self, floorplan, power_model):
        scenario = _scenario(floorplan, n_racks=1, servers_per_rack=2)
        session = _floor(scenario, floorplan, power_model).session()
        period = session.advance_period(0.0)
        assert period.setpoint_c == PAPER_OPTIMIZED_DESIGN.water_inlet_temperature_c
        assert len(period.rack_decisions) == 1
        assert len(period.rack_decisions[0]) == 2
        assert period.plant_power_w == pytest.approx(
            sum(period.rack_chiller_power_w)
        )
        assert period.worst_period_peak_case_c == pytest.approx(
            max(d.period_peak_case_c for d in period.rack_decisions[0])
        )


class TestModulateTraceDuration:
    def test_duration_preserved_when_dt_does_not_divide(self, x264):
        """The last phase is truncated so the floor never runs extra periods."""
        base = generate_trace(x264, total_duration_s=30.0)
        trace = modulate_trace(base, lambda times: np.ones(times.shape), 3.7)
        assert trace.duration_s == pytest.approx(30.0, abs=1e-9)
        scenario = build_scenario(
            "diurnal", n_racks=1, servers_per_rack=1, duration_s=30.0,
            seed=0, phase_dt_s=3.7,
        )
        assert scenario.racks[0].server_trace(0).duration_s == pytest.approx(
            30.0, abs=1e-9
        )

    def test_float_artifact_duration_does_not_crash(self):
        """A cumsum duration landing a sample exactly on the end is folded."""
        from repro.workloads.trace import PhasedTrace, TracePhase

        # Three 0.1 s phases: duration_s is 0.30000000000000004, and
        # arange(0, duration, 0.1) emits a 4th sample == duration.
        base = PhasedTrace(
            "b",
            (
                TracePhase(0.1, 0.5, 0.2),
                TracePhase(0.1, 0.7, 0.2),
                TracePhase(0.1, 0.9, 0.2),
            ),
        )
        trace = modulate_trace(base, lambda times: np.ones(times.shape), 0.1)
        assert trace.duration_s == pytest.approx(base.duration_s, abs=1e-12)
        assert all(phase.duration_s > 0.0 for phase in trace.phases)
