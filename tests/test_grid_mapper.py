"""Grid mapper (power rasterisation) tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import FloorplanError, ValidationError
from repro.floorplan.grid_mapper import GridMapper


@pytest.fixture(scope="module")
def mapper(floorplan):
    return GridMapper(floorplan, floorplan.spreader_outline, 19, 19)


class TestPowerConservation:
    def test_total_power_preserved(self, mapper):
        powers = {"core0": 5.0, "core4": 7.0, "llc": 2.0, "memory_controller": 9.0}
        grid = mapper.power_map(powers)
        assert grid.sum() == pytest.approx(sum(powers.values()), rel=1e-9)

    def test_component_mask_sums_to_one(self, mapper, floorplan):
        for component in floorplan:
            mask = mapper.component_mask(component.name)
            assert mask.sum() == pytest.approx(1.0, abs=1e-6)

    @settings(max_examples=25, deadline=None)
    @given(
        core_power=st.floats(0.0, 20.0),
        llc_power=st.floats(0.0, 5.0),
        uncore_power=st.floats(0.0, 20.0),
    )
    def test_power_conservation_property(self, mapper, core_power, llc_power, uncore_power):
        powers = {"core2": core_power, "llc": llc_power, "uncore_io": uncore_power}
        grid = mapper.power_map(powers)
        assert grid.sum() == pytest.approx(core_power + llc_power + uncore_power, abs=1e-9)
        assert (grid >= 0.0).all()


class TestErrorHandling:
    def test_unknown_component_rejected(self, mapper):
        with pytest.raises(FloorplanError):
            mapper.power_map({"gpu": 10.0})

    def test_negative_power_rejected(self, mapper):
        with pytest.raises(ValidationError):
            mapper.power_map({"core0": -1.0})

    def test_cell_rect_out_of_range(self, mapper):
        with pytest.raises(ValidationError):
            mapper.cell_rect(100, 0)


class TestGeometry:
    def test_power_lands_inside_component_footprint(self, mapper, floorplan):
        core = floorplan.component("core0")
        grid = mapper.power_map({"core0": 10.0})
        rows, columns = np.nonzero(grid)
        for row, column in zip(rows, columns):
            cell = mapper.cell_rect(row, column)
            assert cell.overlap_area(core.rect) > 0.0

    def test_die_mask_covers_die_area(self, mapper, floorplan):
        mask = mapper.die_mask()
        cell_area = mapper.cell_width * mapper.cell_height
        covered = mask.sum() * cell_area
        assert covered == pytest.approx(floorplan.die_outline.area, rel=0.15)

    def test_heat_flux_map_scaling(self, mapper):
        powers = {"core0": 10.0}
        power_map = mapper.power_map(powers)
        flux_map = mapper.heat_flux_map(powers)
        cell_area_m2 = (mapper.cell_width * 1e-3) * (mapper.cell_height * 1e-3)
        assert np.allclose(flux_map * cell_area_m2, power_map)

    def test_cell_centres_monotone(self, mapper):
        xs, ys = mapper.cell_centres_mm()
        assert (np.diff(xs) > 0).all()
        assert (np.diff(ys) > 0).all()

    def test_total_power_helper(self, mapper):
        assert mapper.total_power({"core1": 4.0, "core5": 6.0}) == pytest.approx(10.0)
