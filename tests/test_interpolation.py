"""LinearTable1D and clamp tests."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.exceptions import ValidationError
from repro.utils.interpolation import LinearTable1D, clamp


class TestClamp:
    def test_inside_range(self):
        assert clamp(0.5, 0.0, 1.0) == 0.5

    def test_clamps_low_and_high(self):
        assert clamp(-1.0, 0.0, 1.0) == 0.0
        assert clamp(2.0, 0.0, 1.0) == 1.0

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValidationError):
            clamp(0.5, 1.0, 0.0)

    @given(st.floats(-1e6, 1e6), st.floats(-100, 0), st.floats(0, 100))
    def test_result_always_within_bounds(self, value, low, high):
        result = clamp(value, low, high)
        assert low <= result <= high


class TestLinearTable1D:
    def test_interpolates_between_points(self):
        table = LinearTable1D([0.0, 10.0], [0.0, 100.0])
        assert table(5.0) == pytest.approx(50.0)

    def test_clamps_outside_range(self):
        table = LinearTable1D([0.0, 10.0], [5.0, 15.0])
        assert table(-100.0) == pytest.approx(5.0)
        assert table(100.0) == pytest.approx(15.0)

    def test_exact_knot_values(self):
        xs = [0.0, 1.0, 4.0]
        ys = [2.0, 3.0, 10.0]
        table = LinearTable1D(xs, ys)
        for x, y in zip(xs, ys):
            assert table(x) == pytest.approx(y)

    def test_inverse_increasing(self):
        table = LinearTable1D([0.0, 10.0], [100.0, 200.0])
        assert table.inverse(150.0) == pytest.approx(5.0)

    def test_inverse_decreasing(self):
        table = LinearTable1D([0.0, 10.0], [200.0, 100.0])
        assert table.inverse(150.0) == pytest.approx(5.0)

    def test_inverse_rejects_non_monotone(self):
        table = LinearTable1D([0.0, 1.0, 2.0], [0.0, 5.0, 0.0])
        with pytest.raises(ValidationError):
            table.inverse(2.0)

    def test_sample_vectorised(self):
        table = LinearTable1D([0.0, 1.0], [0.0, 2.0])
        values = table.sample([0.0, 0.25, 0.5, 1.0])
        assert np.allclose(values, [0.0, 0.5, 1.0, 2.0])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValidationError):
            LinearTable1D([0.0, 1.0], [1.0])

    def test_rejects_non_increasing_xs(self):
        with pytest.raises(ValidationError):
            LinearTable1D([0.0, 0.0, 1.0], [1.0, 2.0, 3.0])

    def test_rejects_single_point(self):
        with pytest.raises(ValidationError):
            LinearTable1D([0.0], [1.0])

    def test_bounds_properties(self):
        table = LinearTable1D([2.0, 8.0], [1.0, 2.0])
        assert table.x_min == 2.0
        assert table.x_max == 8.0

    @given(st.floats(min_value=-50.0, max_value=150.0))
    def test_interpolation_stays_within_y_range(self, x):
        table = LinearTable1D([0.0, 25.0, 50.0, 100.0], [1.0, 4.0, 2.0, 8.0])
        value = table(x)
        assert 1.0 - 1e-9 <= value <= 8.0 + 1e-9
