"""Water loop, condenser and chiller model tests."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ValidationError
from repro.thermosyphon.chiller import ChillerModel, ChillerPlant, chiller_power_w
from repro.thermosyphon.condenser import CondenserModel
from repro.thermosyphon.water_loop import WaterLoop


@pytest.fixture
def nominal_loop():
    return WaterLoop(inlet_temperature_c=30.0, flow_rate_kg_h=7.0)


class TestWaterLoop:
    def test_paper_nominal_point(self, nominal_loop):
        assert nominal_loop.mass_flow_kg_s == pytest.approx(7.0 / 3600.0)
        assert 7.0 < nominal_loop.heat_capacity_rate_w_per_k < 9.0

    def test_outlet_temperature_rises_with_heat(self, nominal_loop):
        assert nominal_loop.outlet_temperature_c(0.0) == pytest.approx(30.0)
        assert nominal_loop.outlet_temperature_c(80.0) > nominal_loop.outlet_temperature_c(40.0)

    def test_delta_t_scales_linearly(self, nominal_loop):
        assert nominal_loop.delta_t_c(80.0) == pytest.approx(2 * nominal_loop.delta_t_c(40.0))

    def test_flow_rate_clamped_to_valve_range(self, nominal_loop):
        assert nominal_loop.with_flow_rate(100.0).flow_rate_kg_h == nominal_loop.max_flow_rate_kg_h
        assert nominal_loop.with_flow_rate(0.1).flow_rate_kg_h == nominal_loop.min_flow_rate_kg_h

    def test_at_maximum_flow_flag(self, nominal_loop):
        assert not nominal_loop.at_maximum_flow
        assert nominal_loop.with_flow_rate(nominal_loop.max_flow_rate_kg_h).at_maximum_flow

    def test_out_of_range_construction_rejected(self):
        with pytest.raises(ConfigurationError):
            WaterLoop(inlet_temperature_c=30.0, flow_rate_kg_h=100.0)

    def test_with_inlet_temperature(self, nominal_loop):
        assert nominal_loop.with_inlet_temperature(20.0).inlet_temperature_c == 20.0


class TestCondenser:
    def test_effectiveness_between_zero_and_one(self, nominal_loop):
        condenser = CondenserModel()
        assert 0.0 < condenser.effectiveness(nominal_loop) < 1.0

    def test_saturation_temperature_rises_with_heat(self, nominal_loop):
        condenser = CondenserModel()
        low = condenser.required_saturation_temperature_c(40.0, nominal_loop)
        high = condenser.required_saturation_temperature_c(80.0, nominal_loop)
        assert high.saturation_temperature_c > low.saturation_temperature_c
        assert low.saturation_temperature_c > nominal_loop.inlet_temperature_c

    def test_saturation_drops_with_colder_water(self, nominal_loop):
        condenser = CondenserModel()
        warm = condenser.required_saturation_temperature_c(60.0, nominal_loop)
        cold = condenser.required_saturation_temperature_c(
            60.0, nominal_loop.with_inlet_temperature(20.0)
        )
        assert cold.saturation_temperature_c < warm.saturation_temperature_c

    def test_more_flow_lowers_saturation(self, nominal_loop):
        condenser = CondenserModel()
        base = condenser.required_saturation_temperature_c(60.0, nominal_loop)
        boosted = condenser.required_saturation_temperature_c(
            60.0, nominal_loop.with_flow_rate(14.0)
        )
        assert boosted.saturation_temperature_c < base.saturation_temperature_c

    def test_flooding_penalty_degrades_condenser(self, nominal_loop):
        clean = CondenserModel(flooding_penalty=0.0)
        flooded = CondenserModel(flooding_penalty=0.4)
        assert flooded.required_saturation_temperature_c(
            60.0, nominal_loop
        ).saturation_temperature_c > clean.required_saturation_temperature_c(
            60.0, nominal_loop
        ).saturation_temperature_c

    def test_heat_rejected_inverts_balance(self, nominal_loop):
        condenser = CondenserModel()
        point = condenser.required_saturation_temperature_c(70.0, nominal_loop)
        assert condenser.heat_rejected_w(
            point.saturation_temperature_c, nominal_loop
        ) == pytest.approx(70.0, rel=1e-6)


class TestChiller:
    def test_equation_one_direct(self):
        # 0.1 L/s of water, 1 kg/L, 4180 J/(kg K), 5 K -> 2090 W.
        assert chiller_power_w(0.1, 1.0, 4180.0, 5.0) == pytest.approx(2090.0)

    def test_cooling_power_proportional_to_heat(self, nominal_loop):
        chiller = ChillerModel()
        assert chiller.cooling_power_w(nominal_loop, 80.0) == pytest.approx(
            2.0 * chiller.cooling_power_w(nominal_loop, 40.0), rel=1e-6
        )

    def test_cop_reduces_electrical_power(self, nominal_loop):
        baseline = ChillerModel(coefficient_of_performance=1.0)
        efficient = ChillerModel(coefficient_of_performance=4.0)
        assert efficient.cooling_power_w(nominal_loop, 60.0) == pytest.approx(
            baseline.cooling_power_w(nominal_loop, 60.0) / 4.0
        )

    def test_free_cooling_reduces_power(self, nominal_loop):
        chiller = ChillerModel(free_cooling_fraction=0.5)
        full = ChillerModel()
        assert chiller.cooling_power_w(nominal_loop, 60.0) == pytest.approx(
            0.5 * full.cooling_power_w(nominal_loop, 60.0)
        )

    def test_rack_power_sums_servers(self, nominal_loop):
        chiller = ChillerModel()
        total = chiller.rack_cooling_power_w([(nominal_loop, 60.0), (nominal_loop, 40.0)])
        assert total == pytest.approx(
            chiller.cooling_power_w(nominal_loop, 60.0)
            + chiller.cooling_power_w(nominal_loop, 40.0)
        )

    def test_eq1_matches_water_loop_delta_t(self, nominal_loop):
        """The chiller power equals Eq. 1 evaluated with the loop's delta-T."""
        chiller = ChillerModel()
        heat = 65.0
        expected = chiller_power_w(
            nominal_loop.volumetric_flow_l_s,
            nominal_loop.density_kg_m3 / 1000.0,
            nominal_loop.specific_heat_j_kgk,
            nominal_loop.delta_t_c(heat),
        )
        assert chiller.cooling_power_w(nominal_loop, heat) == pytest.approx(expected)


class TestCoolingPowerMany:
    def test_matches_scalar_path(self, nominal_loop):
        """Batched accounting equals the scalar Eq. 1 path per entry."""
        chiller = ChillerModel(coefficient_of_performance=3.0, free_cooling_fraction=0.2)
        loops = [
            nominal_loop,
            nominal_loop.with_flow_rate(12.0),
            nominal_loop.with_inlet_temperature(35.0),
        ]
        heats = np.array([40.0, 75.0, 0.0])
        batched = chiller.cooling_power_w_many(loops, heats)
        scalar = [chiller.cooling_power_w(loop, heat) for loop, heat in zip(loops, heats)]
        assert batched == pytest.approx(scalar, abs=1e-12)

    def test_single_loop_broadcasts(self, nominal_loop):
        """One shared water loop (the rack chiller case) broadcasts."""
        chiller = ChillerModel()
        heats = np.array([10.0, 20.0, 30.0])
        batched = chiller.cooling_power_w_many(nominal_loop, heats)
        assert batched.shape == (3,)
        assert batched[2] == pytest.approx(chiller.cooling_power_w(nominal_loop, 30.0))

    def test_rejects_mismatched_lengths_and_negative_heat(self, nominal_loop):
        chiller = ChillerModel()
        with pytest.raises(ConfigurationError):
            chiller.cooling_power_w_many([nominal_loop], np.array([1.0, 2.0]))
        # Bad heat *values* raise ValidationError — the same exception the
        # scalar path's check_non_negative(heat_w) raises (regression: the
        # vectorized path used to diverge and raise ConfigurationError).
        with pytest.raises(ValidationError):
            chiller.cooling_power_w_many(nominal_loop, np.array([-1.0]))
        with pytest.raises(ValidationError):
            chiller.cooling_power_w_many(nominal_loop, np.array([float("nan")]))
        with pytest.raises(ValidationError):
            chiller.cooling_power_w_many(nominal_loop, np.array([float("inf")]))

    def test_empty_heats_returns_empty_array(self, nominal_loop):
        chiller = ChillerModel()
        result = chiller.cooling_power_w_many(nominal_loop, np.array([]))
        assert result.shape == (0,)
        result = chiller.cooling_power_w_many([], np.array([]))
        assert result.shape == (0,)

    def test_rack_power_accepts_any_iterable(self, nominal_loop):
        """Generators (not just lists) are valid rack accounting input."""
        chiller = ChillerModel(coefficient_of_performance=2.0)
        pairs = [(nominal_loop, 30.0), (nominal_loop, 50.0)]
        from_list = chiller.rack_cooling_power_w(pairs)
        from_generator = chiller.rack_cooling_power_w(pair for pair in pairs)
        from_tuple = chiller.rack_cooling_power_w(tuple(pairs))
        assert from_generator == pytest.approx(from_list)
        assert from_tuple == pytest.approx(from_list)


class TestCoolingPowerGoldenModel:
    """Scalar Eq. 1 is the golden model; the vectorized path must equal it
    bit for bit — the floor engine charges per-server chiller power through
    the batched route while the standalone rack path stays scalar, and any
    last-bit divergence breaks the datacenter/rack parity guarantee.
    """

    def _assert_bit_identical(self, chiller, loops, heats):
        batched = chiller.cooling_power_w_many(loops, heats)
        loop_list = [loops] * len(heats) if isinstance(loops, WaterLoop) else loops
        for index, (loop, heat) in enumerate(zip(loop_list, heats)):
            scalar = chiller.cooling_power_w(loop, float(heat))
            assert batched[index] == scalar  # exact ==, not approx

    def test_broadcast_single_loop_bit_identical(self, nominal_loop):
        chiller = ChillerModel(coefficient_of_performance=3.7, free_cooling_fraction=0.15)
        heats = np.array([0.0, 13.3, 47.9, 60.0, 115.0])
        self._assert_bit_identical(chiller, nominal_loop, heats)

    def test_heterogeneous_loops_bit_identical(self, nominal_loop):
        chiller = ChillerModel(coefficient_of_performance=2.9, free_cooling_fraction=0.3)
        loops = [
            nominal_loop,
            nominal_loop.with_flow_rate(12.0),
            nominal_loop.with_inlet_temperature(18.5),
            nominal_loop.with_flow_rate(3.0).with_inlet_temperature(41.0),
        ]
        heats = np.array([55.5, 0.0, 99.9, 7.1])
        self._assert_bit_identical(chiller, loops, heats)

    def test_zero_heat_is_exactly_zero(self, nominal_loop):
        chiller = ChillerModel()
        batched = chiller.cooling_power_w_many(nominal_loop, np.array([0.0, 0.0]))
        assert batched[0] == 0.0 and batched[1] == 0.0

    def test_rack_total_matches_batched_sum(self, nominal_loop):
        chiller = ChillerModel(coefficient_of_performance=4.0)
        loops = [nominal_loop, nominal_loop.with_flow_rate(10.0)]
        heats = np.array([60.0, 45.0])
        total = chiller.rack_cooling_power_w(zip(loops, heats))
        assert total == pytest.approx(chiller.cooling_power_w_many(loops, heats).sum())


class TestChillerPlant:
    def test_cop_monotonic_in_setpoint(self):
        """Warmer supply water -> smaller lift -> higher (clamped) COP."""
        plant = ChillerPlant()
        setpoints = np.linspace(10.0, 50.0, 41)
        cops = [plant.cop_at(t) for t in setpoints]
        assert all(b >= a for a, b in zip(cops, cops[1:]))
        assert max(cops) <= plant.max_cop
        assert min(cops) > 0.0

    def test_cop_clamped_at_and_beyond_rejection_temperature(self):
        plant = ChillerPlant()
        at_rejection = plant.cop_at(plant.heat_rejection_temperature_c)
        beyond = plant.cop_at(plant.heat_rejection_temperature_c + 10.0)
        assert at_rejection == pytest.approx(plant.max_cop)
        assert beyond == pytest.approx(plant.max_cop)

    def test_free_cooling_monotonic_in_setpoint(self):
        """More free cooling the further the setpoint clears the outdoor air."""
        plant = ChillerPlant(free_cooling_outdoor_c=18.0)
        setpoints = np.linspace(15.0, 45.0, 31)
        fractions = [plant.free_cooling_fraction_at(t) for t in setpoints]
        assert all(b >= a for a, b in zip(fractions, fractions[1:]))
        assert fractions[0] == 0.0
        assert max(fractions) <= plant.max_free_cooling_fraction
        # Below the approach point nothing is free.
        onset = plant.free_cooling_outdoor_c + plant.free_cooling_approach_c
        assert plant.free_cooling_fraction_at(onset) == 0.0
        assert plant.free_cooling_fraction_at(onset + 1e-6) > 0.0

    def test_free_cooling_monotonic_in_outdoor_temperature(self):
        """A hotter outdoor air gives less free cooling at the same setpoint."""
        setpoint = 32.0
        outdoor = np.linspace(5.0, 35.0, 31)
        fractions = [
            ChillerPlant(free_cooling_outdoor_c=t).free_cooling_fraction_at(setpoint)
            for t in outdoor
        ]
        assert all(b <= a for a, b in zip(fractions, fractions[1:]))

    def test_free_cooling_disabled_without_outdoor_temperature(self):
        assert ChillerPlant().free_cooling_fraction_at(40.0) == 0.0

    def test_plant_power_decreases_with_setpoint(self, nominal_loop):
        """The supervisory lever: warmer supply -> less electrical power."""
        plant = ChillerPlant(free_cooling_outdoor_c=18.0)
        heat_pairs = [(nominal_loop, 60.0), (nominal_loop, 40.0)]
        powers = [
            plant.plant_power_w(setpoint, heat_pairs)
            for setpoint in np.linspace(25.0, 42.0, 18)
        ]
        assert all(b <= a for a, b in zip(powers, powers[1:]))
        assert powers[-1] < powers[0]

    def test_zero_heat_draws_zero_power(self, nominal_loop):
        """Edge case: an idle floor costs the plant nothing."""
        plant = ChillerPlant(free_cooling_outdoor_c=18.0)
        assert plant.plant_power_w(30.0, [(nominal_loop, 0.0)]) == 0.0
        chiller = plant.chiller_at(30.0)
        assert chiller.cooling_power_w(nominal_loop, 0.0) == 0.0
        assert chiller.cooling_power_w_many(nominal_loop, np.zeros(4)) == pytest.approx(
            np.zeros(4)
        )

    def test_plant_total_is_sum_of_per_rack_powers(self, nominal_loop):
        """At a fixed setpoint the plant is one chiller: total == sum of racks."""
        plant = ChillerPlant(free_cooling_outdoor_c=18.0)
        setpoint = 33.0
        rack_a = [(nominal_loop, 55.0), (nominal_loop.with_flow_rate(10.0), 45.0)]
        rack_b = [(nominal_loop, 70.0)]
        chiller = plant.chiller_at(setpoint)
        per_rack = chiller.rack_cooling_power_w(rack_a) + chiller.rack_cooling_power_w(
            rack_b
        )
        total = plant.plant_power_w(setpoint, rack_a + rack_b)
        assert total == pytest.approx(per_rack, abs=1e-12)

    def test_chiller_at_carries_both_corrections(self):
        plant = ChillerPlant(free_cooling_outdoor_c=18.0)
        chiller = plant.chiller_at(34.0)
        assert chiller.coefficient_of_performance == pytest.approx(plant.cop_at(34.0))
        assert chiller.free_cooling_fraction == pytest.approx(
            plant.free_cooling_fraction_at(34.0)
        )
