"""Water loop, condenser and chiller model tests."""

import pytest

from repro.exceptions import ConfigurationError
from repro.thermosyphon.chiller import ChillerModel, chiller_power_w
from repro.thermosyphon.condenser import CondenserModel
from repro.thermosyphon.water_loop import WaterLoop


@pytest.fixture
def nominal_loop():
    return WaterLoop(inlet_temperature_c=30.0, flow_rate_kg_h=7.0)


class TestWaterLoop:
    def test_paper_nominal_point(self, nominal_loop):
        assert nominal_loop.mass_flow_kg_s == pytest.approx(7.0 / 3600.0)
        assert 7.0 < nominal_loop.heat_capacity_rate_w_per_k < 9.0

    def test_outlet_temperature_rises_with_heat(self, nominal_loop):
        assert nominal_loop.outlet_temperature_c(0.0) == pytest.approx(30.0)
        assert nominal_loop.outlet_temperature_c(80.0) > nominal_loop.outlet_temperature_c(40.0)

    def test_delta_t_scales_linearly(self, nominal_loop):
        assert nominal_loop.delta_t_c(80.0) == pytest.approx(2 * nominal_loop.delta_t_c(40.0))

    def test_flow_rate_clamped_to_valve_range(self, nominal_loop):
        assert nominal_loop.with_flow_rate(100.0).flow_rate_kg_h == nominal_loop.max_flow_rate_kg_h
        assert nominal_loop.with_flow_rate(0.1).flow_rate_kg_h == nominal_loop.min_flow_rate_kg_h

    def test_at_maximum_flow_flag(self, nominal_loop):
        assert not nominal_loop.at_maximum_flow
        assert nominal_loop.with_flow_rate(nominal_loop.max_flow_rate_kg_h).at_maximum_flow

    def test_out_of_range_construction_rejected(self):
        with pytest.raises(ConfigurationError):
            WaterLoop(inlet_temperature_c=30.0, flow_rate_kg_h=100.0)

    def test_with_inlet_temperature(self, nominal_loop):
        assert nominal_loop.with_inlet_temperature(20.0).inlet_temperature_c == 20.0


class TestCondenser:
    def test_effectiveness_between_zero_and_one(self, nominal_loop):
        condenser = CondenserModel()
        assert 0.0 < condenser.effectiveness(nominal_loop) < 1.0

    def test_saturation_temperature_rises_with_heat(self, nominal_loop):
        condenser = CondenserModel()
        low = condenser.required_saturation_temperature_c(40.0, nominal_loop)
        high = condenser.required_saturation_temperature_c(80.0, nominal_loop)
        assert high.saturation_temperature_c > low.saturation_temperature_c
        assert low.saturation_temperature_c > nominal_loop.inlet_temperature_c

    def test_saturation_drops_with_colder_water(self, nominal_loop):
        condenser = CondenserModel()
        warm = condenser.required_saturation_temperature_c(60.0, nominal_loop)
        cold = condenser.required_saturation_temperature_c(
            60.0, nominal_loop.with_inlet_temperature(20.0)
        )
        assert cold.saturation_temperature_c < warm.saturation_temperature_c

    def test_more_flow_lowers_saturation(self, nominal_loop):
        condenser = CondenserModel()
        base = condenser.required_saturation_temperature_c(60.0, nominal_loop)
        boosted = condenser.required_saturation_temperature_c(
            60.0, nominal_loop.with_flow_rate(14.0)
        )
        assert boosted.saturation_temperature_c < base.saturation_temperature_c

    def test_flooding_penalty_degrades_condenser(self, nominal_loop):
        clean = CondenserModel(flooding_penalty=0.0)
        flooded = CondenserModel(flooding_penalty=0.4)
        assert flooded.required_saturation_temperature_c(
            60.0, nominal_loop
        ).saturation_temperature_c > clean.required_saturation_temperature_c(
            60.0, nominal_loop
        ).saturation_temperature_c

    def test_heat_rejected_inverts_balance(self, nominal_loop):
        condenser = CondenserModel()
        point = condenser.required_saturation_temperature_c(70.0, nominal_loop)
        assert condenser.heat_rejected_w(
            point.saturation_temperature_c, nominal_loop
        ) == pytest.approx(70.0, rel=1e-6)


class TestChiller:
    def test_equation_one_direct(self):
        # 0.1 L/s of water, 1 kg/L, 4180 J/(kg K), 5 K -> 2090 W.
        assert chiller_power_w(0.1, 1.0, 4180.0, 5.0) == pytest.approx(2090.0)

    def test_cooling_power_proportional_to_heat(self, nominal_loop):
        chiller = ChillerModel()
        assert chiller.cooling_power_w(nominal_loop, 80.0) == pytest.approx(
            2.0 * chiller.cooling_power_w(nominal_loop, 40.0), rel=1e-6
        )

    def test_cop_reduces_electrical_power(self, nominal_loop):
        baseline = ChillerModel(coefficient_of_performance=1.0)
        efficient = ChillerModel(coefficient_of_performance=4.0)
        assert efficient.cooling_power_w(nominal_loop, 60.0) == pytest.approx(
            baseline.cooling_power_w(nominal_loop, 60.0) / 4.0
        )

    def test_free_cooling_reduces_power(self, nominal_loop):
        chiller = ChillerModel(free_cooling_fraction=0.5)
        full = ChillerModel()
        assert chiller.cooling_power_w(nominal_loop, 60.0) == pytest.approx(
            0.5 * full.cooling_power_w(nominal_loop, 60.0)
        )

    def test_rack_power_sums_servers(self, nominal_loop):
        chiller = ChillerModel()
        total = chiller.rack_cooling_power_w([(nominal_loop, 60.0), (nominal_loop, 40.0)])
        assert total == pytest.approx(
            chiller.cooling_power_w(nominal_loop, 60.0)
            + chiller.cooling_power_w(nominal_loop, 40.0)
        )

    def test_eq1_matches_water_loop_delta_t(self, nominal_loop):
        """The chiller power equals Eq. 1 evaluated with the loop's delta-T."""
        chiller = ChillerModel()
        heat = 65.0
        expected = chiller_power_w(
            nominal_loop.volumetric_flow_l_s,
            nominal_loop.density_kg_m3 / 1000.0,
            nominal_loop.specific_heat_j_kgk,
            nominal_loop.delta_t_c(heat),
        )
        assert chiller.cooling_power_w(nominal_loop, heat) == pytest.approx(expected)
