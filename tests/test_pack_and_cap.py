"""Pack & Cap baseline configuration-selection tests."""

import pytest

from repro.baselines.pack_and_cap import PackAndCapSelector
from repro.exceptions import QoSViolationError
from repro.workloads.configuration import Configuration, baseline_configuration
from repro.workloads.qos import QoSConstraint


class TestSelection:
    def test_unconstrained_cap_picks_fastest_configuration(self, profiler, x264):
        selector = PackAndCapSelector(profiler, power_cap_w=200.0)
        selection = selector.select(x264)
        assert selection.configuration == baseline_configuration()
        assert selection.cap_satisfied

    def test_qos_filter_keeps_fast_configurations(self, profiler, x264):
        selector = PackAndCapSelector(profiler, power_cap_w=200.0)
        selection = selector.select(x264, QoSConstraint(2.0))
        assert selection.selected.satisfies(QoSConstraint(2.0))

    def test_tight_cap_forces_cheaper_configuration(self, profiler, x264):
        unlimited = PackAndCapSelector(profiler, power_cap_w=200.0).select(x264)
        capped = PackAndCapSelector(profiler, power_cap_w=55.0).select(x264)
        assert capped.selected.package_power_w <= 55.0 + 1e-9
        assert capped.selected.package_power_w < unlimited.selected.package_power_w

    def test_impossible_cap_still_returns_least_power(self, profiler, x264):
        selector = PackAndCapSelector(profiler, power_cap_w=10.0)
        selection = selector.select(x264)
        assert not selection.cap_satisfied
        assert selection.selected.package_power_w > 10.0

    def test_infeasible_qos_raises(self, profiler, x264):
        selector = PackAndCapSelector(
            profiler, configurations=(Configuration(1, 1, 2.6),)
        )
        with pytest.raises(QoSViolationError):
            selector.select(x264, QoSConstraint(1.0))

    def test_invalid_cap_rejected(self, profiler):
        with pytest.raises(Exception):
            PackAndCapSelector(profiler, power_cap_w=0.0)

    def test_pack_and_cap_never_cooler_than_algorithm1(self, profiler, x264):
        """The paper's selector minimises power; Pack & Cap maximises speed."""
        from repro.core.config_selection import QoSAwareConfigSelector

        constraint = QoSConstraint(2.0)
        algorithm1 = QoSAwareConfigSelector(profiler).select(x264, constraint)
        pack_and_cap = PackAndCapSelector(profiler).select(x264, constraint)
        assert pack_and_cap.selected.package_power_w >= algorithm1.package_power_w - 1e-9
