"""Factorization-cache tests.

The load-bearing guarantees: cached solves are numerically equivalent to
uncached solves (steady-state and transient, including a cooling-boundary
change mid-run), the cache is invalidated by content — not identity — of the
boundary, it stays bounded under boundary sweeps, and reusing the
factorization actually makes repeated transient stepping faster.
"""

import time

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.floorplan.grid_mapper import GridMapper
from repro.thermal.boundary import BottomBoundary, CoolingBoundary, uniform_cooling_boundary
from repro.thermal.grid import ThermalGrid
from repro.thermal.layers import standard_thermosyphon_stack
from repro.thermal.network import ThermalNetwork
from repro.thermal.solver_cache import FactorizationCache
from repro.thermal.steady_state import SteadyStateSolver
from repro.thermal.transient import TransientSolver


@pytest.fixture(scope="module")
def setup(floorplan):
    stack = standard_thermosyphon_stack()
    outline = floorplan.spreader_outline
    n = 13
    grid = ThermalGrid(outline, stack, n, n)
    mapper = GridMapper(floorplan, outline, n, n)
    network = ThermalNetwork(grid, mapper.die_mask(), BottomBoundary())
    return grid, mapper, network


def _boundary(grid, htc=1.5e4, fluid=40.0):
    return uniform_cooling_boundary(grid.n_rows, grid.n_columns, htc, fluid)


class TestCacheToken:
    def test_equal_content_shares_token(self, setup):
        grid, _, _ = setup
        a = _boundary(grid)
        b = _boundary(grid)
        assert a is not b
        assert a.cache_token() == b.cache_token()

    def test_any_cell_change_changes_token(self, setup):
        grid, _, _ = setup
        a = _boundary(grid)
        htc = a.htc_w_m2k.copy()
        htc[3, 7] += 1.0
        b = CoolingBoundary(htc_w_m2k=htc, fluid_temperature_c=a.fluid_temperature_c.copy())
        assert a.cache_token() != b.cache_token()

    def test_fluid_change_changes_token(self, setup):
        grid, _, _ = setup
        assert _boundary(grid, fluid=40.0).cache_token() != _boundary(grid, fluid=41.0).cache_token()


class TestSteadyEquivalence:
    def test_cached_matches_uncached_to_1e9(self, setup):
        grid, mapper, network = setup
        cached = SteadyStateSolver(network)
        uncached = SteadyStateSolver(network, use_cache=False)
        boundary = _boundary(grid)
        for powers in ({"core0": 8.0}, {f"core{i}": 6.0 for i in range(8)}, {"llc": 3.0}):
            power = mapper.power_map(powers)
            assert np.max(np.abs(cached.solve(power, boundary) - uncached.solve(power, boundary))) < 1e-9

    def test_repeated_solves_hit_the_cache(self, setup):
        grid, mapper, network = setup
        cache = FactorizationCache(network)
        solver = SteadyStateSolver(network, cache=cache)
        boundary = _boundary(grid)
        for i in range(4):
            solver.solve(mapper.power_map({"core0": float(i + 1)}), boundary)
        assert cache.stats.misses == 1
        assert cache.stats.hits == 3

    def test_boundary_change_invalidates_by_content(self, setup):
        grid, mapper, network = setup
        cache = FactorizationCache(network)
        cached = SteadyStateSolver(network, cache=cache)
        uncached = SteadyStateSolver(network, use_cache=False)
        power = mapper.power_map({f"core{i}": 6.0 for i in range(8)})

        warm = _boundary(grid, fluid=40.0)
        cached.solve(power, warm)
        cold = _boundary(grid, fluid=30.0)
        result = cached.solve(power, cold)
        assert cache.stats.steady_entries == 2
        assert np.max(np.abs(result - uncached.solve(power, cold))) < 1e-9


class TestTransientEquivalence:
    def test_cached_run_matches_uncached_to_1e9(self, setup):
        grid, mapper, network = setup
        cached = TransientSolver(network)
        uncached = TransientSolver(network, use_cache=False)
        boundary = _boundary(grid)
        powers = [mapper.power_map({"core0": 2.0 * (i + 1)}) for i in range(6)]
        for a, b in zip(
            cached.run(45.0, powers, boundary, dt_s=0.5),
            uncached.run(45.0, powers, boundary, dt_s=0.5),
        ):
            assert np.max(np.abs(a - b)) < 1e-9

    def test_cooling_change_mid_run_matches_uncached(self, setup):
        """A boundary swap halfway through must re-key the cached operator."""
        grid, mapper, network = setup
        cache = FactorizationCache(network)
        cached = TransientSolver(network, cache=cache)
        uncached = TransientSolver(network, use_cache=False)
        powers = [mapper.power_map({f"core{i}": 5.0 for i in range(8)})] * 6
        boundaries = [_boundary(grid, htc=1.0e4)] * 3 + [_boundary(grid, htc=2.5e4)] * 3
        cached_fields = list(cached.run(45.0, powers, boundaries, dt_s=0.5))
        uncached_fields = list(uncached.run(45.0, powers, boundaries, dt_s=0.5))
        for a, b in zip(cached_fields, uncached_fields):
            assert np.max(np.abs(a - b)) < 1e-9
        # Two distinct boundaries at one dt: exactly two factorizations.
        assert cache.stats.transient_entries == 2
        assert cache.stats.misses == 2
        assert cache.stats.hits == 4

    def test_dt_is_part_of_the_key(self, setup):
        grid, mapper, network = setup
        cache = FactorizationCache(network)
        solver = TransientSolver(network, cache=cache)
        boundary = _boundary(grid)
        state = np.full(grid.n_cells, 45.0)
        power = mapper.power_map({"core0": 8.0})
        solver.step(state, power, boundary, dt_s=0.5)
        solver.step(state, power, boundary, dt_s=1.0)
        assert cache.stats.transient_entries == 2


class TestCacheManagement:
    def test_lru_bound(self, setup):
        grid, mapper, network = setup
        cache = FactorizationCache(network, max_entries=3)
        solver = SteadyStateSolver(network, cache=cache)
        power = mapper.power_map({"core0": 5.0})
        for fluid in (30.0, 32.0, 34.0, 36.0, 38.0):
            solver.solve(power, _boundary(grid, fluid=fluid))
        assert cache.stats.steady_entries == 3

    def test_explicit_invalidate_clears_entries(self, setup):
        grid, mapper, network = setup
        cache = FactorizationCache(network)
        steady = SteadyStateSolver(network, cache=cache)
        transient = TransientSolver(network, cache=cache)
        boundary = _boundary(grid)
        power = mapper.power_map({"core0": 5.0})
        steady.solve(power, boundary)
        transient.step(np.full(grid.n_cells, 45.0), power, boundary, dt_s=0.5)
        assert len(cache) == 2
        cache.invalidate()
        assert len(cache) == 0
        # Solves still work after invalidation (operators are rebuilt).
        steady.solve(power, boundary)
        assert cache.stats.steady_entries == 1

    def test_max_entries_validated(self, setup):
        _, _, network = setup
        with pytest.raises(ValidationError):
            FactorizationCache(network, max_entries=0)

    def test_transient_eviction_drops_reduced_lane_too(self, setup):
        """Regression: evicting a transient LU under LRU pressure must take
        the same key's reduced-order operator with it — an orphaned basis
        would pin memory for a (boundary, dt) the cache already dropped,
        and could later be served against a freshly rebuilt LU."""
        grid, _, network = setup
        cache = FactorizationCache(network, max_entries=2)
        boundaries = [_boundary(grid, fluid=fluid) for fluid in (30.0, 32.0, 34.0)]
        operators = [object(), object(), object()]
        dt_s = 0.5
        for boundary, operator in zip(boundaries[:2], operators[:2]):
            cache.transient_operator(boundary, dt_s)
            cache.store_reduced_operator(boundary, dt_s, operator)
        assert cache.reduced_entries == 2
        # The third transient evicts the first (LRU): its reduced twin goes.
        cache.transient_operator(boundaries[2], dt_s)
        cache.store_reduced_operator(boundaries[2], dt_s, operators[2])
        assert cache.reduced_operator(boundaries[0], dt_s) is None
        assert cache.reduced_operator(boundaries[1], dt_s) is operators[1]
        assert cache.reduced_operator(boundaries[2], dt_s) is operators[2]
        assert cache.reduced_entries == 2

    def test_shared_cache_between_solvers(self, setup):
        grid, mapper, network = setup
        cache = FactorizationCache(network)
        steady = SteadyStateSolver(network, cache=cache)
        transient = TransientSolver(network, cache=cache)
        assert steady.cache is transient.cache

    def test_contradictory_cache_arguments_rejected(self, setup):
        from repro.exceptions import ConfigurationError

        _, _, network = setup
        cache = FactorizationCache(network)
        with pytest.raises(ConfigurationError):
            SteadyStateSolver(network, cache=cache, use_cache=False)
        with pytest.raises(ConfigurationError):
            TransientSolver(network, cache=cache, use_cache=False)

    def test_boundary_arrays_are_frozen(self, setup):
        grid, _, _ = setup
        boundary = _boundary(grid)
        with pytest.raises(ValueError):
            boundary.htc_w_m2k[0, 0] = 1.0
        with pytest.raises(ValueError):
            boundary.fluid_temperature_c[0, 0] = 1.0


class TestSpeedup:
    def test_cached_run_factorizes_once_not_per_step(self, setup):
        """Deterministic form of the speedup claim: 30 steps, 1 factorization."""
        grid, mapper, network = setup
        cache = FactorizationCache(network)
        solver = TransientSolver(network, cache=cache)
        powers = [mapper.power_map({f"core{i}": 5.0 for i in range(8)})] * 30
        for _ in solver.run(45.0, powers, _boundary(grid), dt_s=0.5):
            pass
        assert cache.stats.misses == 1
        assert cache.stats.hits == 29

    def test_factorization_reuse_speeds_up_transient_stepping(self, setup):
        """ISSUE acceptance: >= 2x on repeated transient steps at one boundary.

        The true margin is ~20x; the retry loop absorbs scheduling noise on
        loaded CI runners so a single hiccup cannot fail the tier-1 suite.
        """
        grid, mapper, network = setup
        boundary = _boundary(grid)
        powers = [mapper.power_map({f"core{i}": 5.0 for i in range(8)})] * 30

        def run(solver):
            start = time.perf_counter()
            for _ in solver.run(45.0, powers, boundary, dt_s=0.5):
                pass
            return time.perf_counter() - start

        uncached = TransientSolver(network, use_cache=False)
        cached = TransientSolver(network)
        run(cached)  # warm the factorization outside the timed window
        timings = []
        for _ in range(3):
            uncached_s = run(uncached)
            cached_s = run(cached)
            timings.append((cached_s, uncached_s))
            if cached_s < uncached_s / 2.0:
                break
        else:
            pytest.fail(f"no attempt reached 2x: {timings}")
