"""Cooling / bottom boundary condition tests."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.thermal.boundary import BottomBoundary, CoolingBoundary, uniform_cooling_boundary


class TestCoolingBoundary:
    def test_uniform_helper(self):
        boundary = uniform_cooling_boundary(4, 6, 12000.0, 41.0)
        assert boundary.shape == (4, 6)
        assert boundary.mean_htc() == pytest.approx(12000.0)
        assert np.all(boundary.fluid_temperature_c == 41.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            CoolingBoundary(
                htc_w_m2k=np.ones((3, 3)), fluid_temperature_c=np.ones((4, 3)) * 40.0
            )

    def test_negative_htc_rejected(self):
        with pytest.raises(ValidationError):
            CoolingBoundary(
                htc_w_m2k=np.full((2, 2), -1.0), fluid_temperature_c=np.full((2, 2), 40.0)
            )

    def test_non_finite_rejected(self):
        with pytest.raises(ValidationError):
            CoolingBoundary(
                htc_w_m2k=np.full((2, 2), np.nan), fluid_temperature_c=np.full((2, 2), 40.0)
            )

    def test_one_dimensional_rejected(self):
        with pytest.raises(ValidationError):
            CoolingBoundary(htc_w_m2k=np.ones(4), fluid_temperature_c=np.ones(4))

    def test_mean_htc_ignores_inactive_cells(self):
        htc = np.zeros((2, 2))
        htc[0, 0] = 10000.0
        boundary = CoolingBoundary(htc_w_m2k=htc, fluid_temperature_c=np.full((2, 2), 40.0))
        assert boundary.mean_htc() == pytest.approx(10000.0)

    def test_all_zero_htc_mean_is_zero(self):
        boundary = uniform_cooling_boundary(2, 2, 0.0, 40.0)
        assert boundary.mean_htc() == 0.0


class TestBottomBoundary:
    def test_defaults(self):
        bottom = BottomBoundary()
        assert bottom.htc_w_m2k > 0.0
        assert 20.0 < bottom.ambient_temperature_c < 60.0

    def test_negative_htc_rejected(self):
        with pytest.raises(Exception):
            BottomBoundary(htc_w_m2k=-5.0)
