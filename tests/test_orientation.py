"""Evaporator orientation tests."""

import pytest

from repro.thermosyphon.orientation import Orientation


class TestChannelDirections:
    def test_east_west_orientations(self):
        assert Orientation.WEST_TO_EAST.channels_run_east_west
        assert Orientation.EAST_TO_WEST.channels_run_east_west
        assert not Orientation.WEST_TO_EAST.channels_run_north_south

    def test_north_south_orientations(self):
        assert Orientation.NORTH_TO_SOUTH.channels_run_north_south
        assert Orientation.SOUTH_TO_NORTH.channels_run_north_south

    def test_flow_reversal_flags(self):
        assert not Orientation.WEST_TO_EAST.flow_reversed
        assert Orientation.EAST_TO_WEST.flow_reversed
        assert Orientation.NORTH_TO_SOUTH.flow_reversed
        assert not Orientation.SOUTH_TO_NORTH.flow_reversed


class TestLaneCounts:
    def test_channel_count_follows_axis(self):
        assert Orientation.WEST_TO_EAST.channel_count(10, 20) == 10
        assert Orientation.NORTH_TO_SOUTH.channel_count(10, 20) == 20

    def test_cells_per_channel(self):
        assert Orientation.WEST_TO_EAST.cells_per_channel(10, 20) == 20
        assert Orientation.NORTH_TO_SOUTH.cells_per_channel(10, 20) == 10


class TestInletGeometry:
    def test_inlet_edges(self):
        assert Orientation.WEST_TO_EAST.inlet_edge() == "west"
        assert Orientation.EAST_TO_WEST.inlet_edge() == "east"
        assert Orientation.NORTH_TO_SOUTH.inlet_edge() == "north"
        assert Orientation.SOUTH_TO_NORTH.inlet_edge() == "south"

    @pytest.mark.parametrize("orientation", list(Orientation))
    def test_inlet_point_on_outline_boundary(self, orientation):
        x, y = orientation.inlet_point_mm(0.0, 0.0, 38.0, 38.0)
        assert 0.0 <= x <= 38.0
        assert 0.0 <= y <= 38.0
        # The inlet sits on an edge, not strictly inside.
        assert x in (0.0, 19.0, 38.0)
        assert y in (0.0, 19.0, 38.0)

    def test_west_inlet_point(self):
        assert Orientation.WEST_TO_EAST.inlet_point_mm(0.0, 0.0, 38.0, 38.0) == (0.0, 19.0)
