"""Experiment runner tests (shapes and key orderings of every table/figure)."""

import numpy as np
import pytest

from repro.experiments.cooling_power import run_cooling_power
from repro.experiments.fig2_motivation import run_fig2
from repro.experiments.fig3_qos_exec_time import run_fig3
from repro.experiments.fig5_orientation import run_fig5
from repro.experiments.fig6_mapping_scenarios import SCENARIO_CORE_SETS, run_fig6
from repro.experiments.fig7_thermal_maps import run_fig7
from repro.experiments.fig8_controller_trace import run_fig8
from repro.experiments.table1_cstates import run_table1
from repro.experiments.table2_hotspots import run_table2
from repro.experiments.common import paper_approaches
from repro.power.cstates import CState

QUICK = ("x264", "swaptions", "canneal")


class TestTable1:
    def test_rows_and_rendering(self):
        result = run_table1()
        states = [row.state for row in result.rows]
        assert CState.POLL in states and CState.C1 in states and CState.C1E in states
        text = result.as_table()
        assert "POLL" in text and "27.00" in text and "40.00" in text


class TestFig3:
    def test_series_shapes_and_qos_violations(self):
        result = run_fig3(QUICK)
        assert set(result.normalized_times) == set(QUICK)
        assert all(len(series) == 5 for series in result.normalized_times.values())
        # The baseline configuration (last column) is always 1.0.
        for series in result.normalized_times.values():
            assert series[-1] == pytest.approx(1.0)
            assert all(value >= 1.0 - 1e-9 for value in series)
        # swaptions scales almost linearly, so dropping to 2 cores slows it
        # far more (relative to its own baseline) than poorly-scaling canneal.
        assert result.normalized_times["swaptions"][0] > result.normalized_times["canneal"][0]
        assert "canneal" in result.as_table()


class TestFig2:
    def test_die_hotter_and_steeper_than_package(self, coarse_platform):
        result = run_fig2(coarse_platform)
        assert result.die.theta_max_c > result.package.theta_max_c
        assert result.die.grad_max_c_per_mm > result.package.grad_max_c_per_mm
        assert result.die_package_hot_spot_ratio > 1.0
        # The uniform-flux assumption of [8] underestimates the hot spot.
        assert result.die.theta_max_c >= result.die_uniform_assumption.theta_max_c - 0.5
        assert "Die" in result.as_table()


class TestFig5:
    def test_orientation_comparison_structure(self, coarse_platform):
        result = run_fig5(coarse_platform)
        assert result.design1.orientation.channels_run_east_west
        assert result.design2.orientation.channels_run_north_south
        # The two designs must be close; neither may be catastrophically worse.
        assert abs(result.design1.die.theta_max_c - result.design2.die.theta_max_c) < 5.0
        assert "Design 1" in result.as_table()


class TestFig6:
    def test_scenarios_and_cstates_covered(self, coarse_platform):
        result = run_fig6(coarse_platform)
        assert len(result.results) == len(SCENARIO_CORE_SETS) * 2
        for cstate in (CState.POLL, CState.C1):
            for scenario in SCENARIO_CORE_SETS:
                assert result.result(scenario, cstate).die.theta_max_c > 40.0

    def test_clustered_mapping_is_never_best(self, coarse_platform):
        result = run_fig6(coarse_platform)
        for cstate in (CState.POLL, CState.C1):
            assert result.best_scenario(cstate) != "scenario3_clustered"

    def test_c1_idle_runs_cooler_than_poll(self, coarse_platform):
        result = run_fig6(coarse_platform)
        for scenario in SCENARIO_CORE_SETS:
            assert (
                result.result(scenario, CState.C1).die.theta_max_c
                < result.result(scenario, CState.POLL).die.theta_max_c
            )


class TestTable2:
    @pytest.fixture(scope="class")
    def table2(self, coarse_platform):
        return run_table2(coarse_platform, benchmark_names=QUICK)

    def test_all_approaches_and_qos_levels_present(self, table2):
        approaches = {a.name for a in paper_approaches()}
        assert set(table2.comparison.approaches) == approaches
        assert set(table2.comparison.qos_labels) == {"1x", "2x", "3x"}

    def test_proposed_wins_under_relaxed_qos(self, table2):
        """The paper's headline: the proposed stack reduces hot spots at 2x/3x."""
        for qos in ("2x", "3x"):
            proposed = table2.comparison.row("proposed", qos)
            for baseline in ("[8]+[27]+[9]", "[8]+[27]+[7]"):
                other = table2.comparison.row(baseline, qos)
                assert proposed.die_theta_max_c < other.die_theta_max_c
                assert proposed.die_grad_max_c_per_mm < other.die_grad_max_c_per_mm
                assert proposed.package_theta_max_c < other.package_theta_max_c

    def test_proposed_improves_with_relaxed_qos(self, table2):
        rows = [table2.comparison.row("proposed", qos) for qos in ("1x", "2x", "3x")]
        values = [row.die_theta_max_c for row in rows]
        assert values[0] > values[1] >= values[2]

    def test_per_benchmark_cells_recorded(self, table2):
        assert len(table2.cells) == 3 * 3 * len(QUICK)

    def test_improvement_summary_positive_at_2x(self, table2):
        summary = table2.improvement_summary()
        for key, values in summary.items():
            if "2x" in key:
                assert values["die_theta_max_reduction_c"] > 0.0


class TestFig7:
    def test_maps_and_hot_spot_reduction(self, coarse_platform):
        result = run_fig7(coarse_platform, benchmark_name="fluidanimate")
        assert result.proposed.die_map_c.shape == result.state_of_the_art.die_map_c.shape
        assert result.hot_spot_reduction_c > 0.0
        text = result.as_text()
        assert "proposed" in text and "hot spot" in text


class TestFig8:
    def test_modes_agree_and_transient_is_cheaper(self, coarse_platform):
        result = run_fig8(coarse_platform, duration_s=24.0, control_period_s=2.0)
        assert result.steady.periods == result.transient.periods == 12
        # Same controller, same trace: the modes must agree on behaviour...
        assert result.transient.trace.peak_case_temperature_c == pytest.approx(
            result.steady.trace.peak_case_temperature_c, abs=6.0
        )
        # ...but the transient lane must be cheaper in factorizations.
        assert result.factorization_ratio > 1.0
        text = result.as_table()
        assert "transient" in text and "factor." in text


class TestFig9:
    def test_rack_engine_matches_and_is_cheaper(self, coarse_platform):
        from repro.experiments.fig9_rack_trace import run_fig9

        result = run_fig9(
            coarse_platform, n_servers=2, duration_s=16.0, control_period_s=2.0
        )
        assert result.rack.n_periods == len(result.per_server[0].decisions)
        assert result.rack.n_servers == 2
        # Batched engine reproduces the per-server decisions exactly...
        for server in range(result.n_servers):
            for ours, theirs in zip(
                result.rack.server_decisions(server),
                result.per_server[server].decisions,
            ):
                assert ours.case_temperature_c == pytest.approx(
                    theirs.case_temperature_c, abs=1e-12
                )
                assert ours.action is theirs.action
        # ...while paying at least n_servers times fewer factorizations.
        assert result.factorization_ratio >= result.n_servers
        text = result.as_table()
        assert "rack-batched" in text and "factor." in text


class TestCoolingPower:
    def test_chiller_power_reduced(self, coarse_platform):
        result = run_cooling_power(coarse_platform, benchmark_names=QUICK)
        assert result.proposed.chiller_power_w < result.state_of_the_art.chiller_power_w
        assert result.chiller_power_reduction_pct > 20.0
        # The baseline needs colder water to reach the same hot spot.
        assert (
            result.state_of_the_art.water_inlet_temperature_c
            <= result.proposed.water_inlet_temperature_c
        )
        assert "Chiller power reduction" in result.as_table()


class TestFig10:
    def test_supervisory_saves_plant_energy(self, coarse_platform):
        from repro.experiments.fig10_datacenter_trace import run_fig10

        result = run_fig10(
            coarse_platform, n_racks=2, servers_per_rack=2, duration_s=16.0
        )
        assert result.fixed.n_periods == result.supervisory.n_periods == 8
        assert result.supervisory.plant_energy_j < result.fixed.plant_energy_j
        assert result.plant_energy_saved_pct > 0.0
        assert result.supervisory.thermal_violations == 0
        # The fixed run never moves the setpoint; the supervisory run does.
        assert len(set(result.fixed.setpoint_c)) == 1
        assert result.supervisory.setpoint_raises > 0
        text = result.as_table()
        assert "supervisory" in text and "plant" in text

    def test_verbose_table_appends_summaries_with_telemetry_footer(
        self, coarse_platform
    ):
        from repro.experiments.fig10_datacenter_trace import run_fig10
        from repro.obs import Telemetry, set_telemetry

        hub = Telemetry()
        previous = set_telemetry(hub)
        try:
            result = run_fig10(
                coarse_platform, n_racks=2, servers_per_rack=2, duration_s=8.0
            )
            text = result.as_table(verbose=True)
        finally:
            set_telemetry(previous)
        assert "--- fixed run summary ---" in text
        assert "--- supervisory run summary ---" in text
        # The per-run summaries carry the telemetry footer when a hub is on.
        assert "telemetry" in text
        # Default table stays footer-free.
        assert "run summary" not in result.as_table()
