"""Per-component heat-flux estimation tests."""

import pytest

from repro.core.heat_flux import (
    estimate_component_heat_flux,
    peak_core_heat_flux_w_cm2,
)
from repro.exceptions import FloorplanError, ValidationError


class TestEstimation:
    def test_flux_is_power_over_area(self, floorplan):
        core = floorplan.component("core0")
        fluxes = estimate_component_heat_flux(floorplan, {"core0": 7.0})
        assert fluxes["core0"].heat_flux_w_cm2 == pytest.approx(7.0 / (core.area_mm2 / 100.0))
        assert fluxes["core0"].heat_flux_w_m2 == pytest.approx(7.0 / (core.area_mm2 * 1e-6))

    def test_unmentioned_components_have_zero_flux(self, floorplan):
        fluxes = estimate_component_heat_flux(floorplan, {"core0": 7.0})
        assert fluxes["llc"].power_w == 0.0
        assert fluxes["llc"].heat_flux_w_cm2 == 0.0

    def test_all_components_present(self, floorplan):
        fluxes = estimate_component_heat_flux(floorplan, {})
        assert set(fluxes) == {component.name for component in floorplan}

    def test_unknown_component_rejected(self, floorplan):
        with pytest.raises(FloorplanError):
            estimate_component_heat_flux(floorplan, {"gpu": 5.0})

    def test_negative_power_rejected(self, floorplan):
        with pytest.raises(ValidationError):
            estimate_component_heat_flux(floorplan, {"core0": -1.0})


class TestPeakCoreFlux:
    def test_peak_picks_hottest_core(self, floorplan):
        peak = peak_core_heat_flux_w_cm2(floorplan, {"core0": 5.0, "core3": 9.0, "llc": 2.0})
        expected = 9.0 / (floorplan.component("core3").area_mm2 / 100.0)
        assert peak == pytest.approx(expected)

    def test_core_flux_higher_than_uncore_flux(self, floorplan, power_model, x264):
        """Cores are the densest heat sources on the die, as the paper assumes."""
        breakdown = power_model.all_cores_active(
            x264.core_power_parameters(), 3.2, memory_intensity=x264.memory_intensity
        )
        fluxes = estimate_component_heat_flux(floorplan, breakdown.component_power_w)
        core_flux = fluxes["core0"].heat_flux_w_cm2
        assert core_flux > fluxes["llc"].heat_flux_w_cm2
        assert core_flux > fluxes["memory_controller"].heat_flux_w_cm2

    def test_no_cores_powered_gives_zero(self, floorplan):
        assert peak_core_heat_flux_w_cm2(floorplan, {"llc": 2.0}) == pytest.approx(
            0.0, abs=1e-12
        )
