"""Unit conversion tests."""

import pytest

from repro.utils import units


def test_celsius_kelvin_roundtrip():
    assert units.celsius_to_kelvin(0.0) == pytest.approx(273.15)
    assert units.kelvin_to_celsius(units.celsius_to_kelvin(37.5)) == pytest.approx(37.5)


def test_celsius_kelvin_inverse_relationship():
    for value in (-40.0, 0.0, 25.0, 85.0, 105.0):
        assert units.kelvin_to_celsius(units.celsius_to_kelvin(value)) == pytest.approx(value)


def test_mass_flow_conversions():
    assert units.kg_per_hour_to_kg_per_second(3600.0) == pytest.approx(1.0)
    assert units.kg_per_second_to_kg_per_hour(1.0) == pytest.approx(3600.0)
    assert units.kg_per_second_to_kg_per_hour(
        units.kg_per_hour_to_kg_per_second(7.0)
    ) == pytest.approx(7.0)


def test_volumetric_flow_conversions():
    assert units.litre_per_second_to_cubic_metre_per_second(1000.0) == pytest.approx(1.0)
    assert units.cubic_metre_per_second_to_litre_per_second(1.0) == pytest.approx(1000.0)


def test_length_conversions():
    assert units.mm_to_m(1000.0) == pytest.approx(1.0)
    assert units.m_to_mm(1.0) == pytest.approx(1000.0)
    assert units.mm2_to_m2(1e6) == pytest.approx(1.0)
    assert units.m2_to_mm2(1.0) == pytest.approx(1e6)


def test_heat_flux_conversions():
    assert units.watts_per_cm2_to_watts_per_m2(1.0) == pytest.approx(1e4)
    assert units.watts_per_m2_to_watts_per_cm2(1e4) == pytest.approx(1.0)


def test_physical_constants_are_sensible():
    assert 9.0 < units.GRAVITY < 10.0
    assert 4000.0 < units.WATER_SPECIFIC_HEAT < 4300.0
    assert 900.0 < units.WATER_DENSITY < 1000.0
