"""RackSession tests: batched rack engine vs the per-server golden path.

The load-bearing guarantees: every batched layer (grouped operating points,
stacked lane march, multi-column back-substitution) reproduces the
per-server :class:`SimulationSession` to <= 1e-12 across homogeneous and
heterogeneous slots; the session-backed :class:`RackModel` matches the old
:class:`BatchEvaluator` path exactly; and the batched engine actually pays
fewer factorizations — one per distinct cooling boundary instead of one per
server, asserted through merged :class:`CacheStats`.
"""

import numpy as np
import pytest

from repro.core.mapping import ThreadMapper
from repro.core.mapping_policies import ProposedThermalAwareMapping
from repro.core.rack import RackModel, ServerSlot
from repro.core.rack_session import RackSession, ServerLoad
from repro.core.runtime_controller import RackServer, ThermosyphonController
from repro.core.session import SimulationSession
from repro.core.pipeline import CooledServerSimulation
from repro.exceptions import ConfigurationError, ValidationError
from repro.thermal.simulator import ThermalSimulator
from repro.thermal.solver_cache import CacheStats
from repro.thermosyphon.design import PAPER_OPTIMIZED_DESIGN
from repro.workloads.configuration import Configuration
from repro.workloads.parsec import get_benchmark
from repro.workloads.qos import QoSConstraint
from repro.workloads.trace import PhasedTrace, TracePhase

CELL_SIZE_MM = 2.5


def _mapping(floorplan, benchmark, frequency_ghz=3.2):
    mapper = ThreadMapper(floorplan, orientation=PAPER_OPTIMIZED_DESIGN.orientation)
    return mapper.map(
        benchmark, Configuration(8, 2, frequency_ghz), ProposedThermalAwareMapping()
    )


def _rack_session(floorplan, power_model, n_servers, **kwargs):
    return RackSession(
        n_servers,
        floorplan=floorplan,
        power_model=power_model,
        thermal_simulator=ThermalSimulator(floorplan, cell_size_mm=CELL_SIZE_MM),
        **kwargs,
    )


def _golden_session(floorplan, power_model):
    """A fresh independent per-server pipeline (its own simulator and cache)."""
    return SimulationSession(
        floorplan,
        power_model=power_model,
        thermal_simulator=ThermalSimulator(floorplan, cell_size_mm=CELL_SIZE_MM),
    )


class TestSteadyEquivalence:
    def test_homogeneous_rack_matches_per_server_loop(self, floorplan, power_model, x264):
        """Identical slots: batched fields equal the golden loop to 1e-12."""
        mapping = _mapping(floorplan, x264)
        n_servers = 4
        rack = _rack_session(floorplan, power_model, n_servers)
        loads = [ServerLoad(benchmark=x264, mapping=mapping)] * n_servers
        batched = rack.solve_steady(loads)

        for result in batched:
            golden = _golden_session(floorplan, power_model).solve_steady_mapping(
                x264, mapping
            )
            scale = np.abs(golden.thermal_result.temperatures_c).max()
            assert (
                np.abs(
                    result.thermal_result.temperatures_c
                    - golden.thermal_result.temperatures_c
                ).max()
                <= 1e-12 * scale
            )
            assert result.case_temperature_c == pytest.approx(
                golden.case_temperature_c, abs=1e-12
            )
            assert result.package_power_w == pytest.approx(
                golden.package_power_w, abs=1e-12
            )
            assert result.operating_point.saturation_temperature_c == pytest.approx(
                golden.operating_point.saturation_temperature_c, abs=1e-12
            )
            assert result.max_channel_quality == pytest.approx(
                golden.max_channel_quality, abs=1e-12
            )

    def test_heterogeneous_rack_matches_per_server_loop(
        self, floorplan, power_model, x264, canneal
    ):
        """Mixed workloads split into groups but still match the golden loop."""
        benchmarks = [x264, canneal, x264, canneal]
        rack = _rack_session(floorplan, power_model, len(benchmarks))
        loads = [
            ServerLoad(benchmark=benchmark, mapping=_mapping(floorplan, benchmark))
            for benchmark in benchmarks
        ]
        batched = rack.solve_steady(loads)
        for load, result in zip(loads, batched):
            golden = _golden_session(floorplan, power_model).solve_steady_mapping(
                load.benchmark, load.mapping
            )
            scale = np.abs(golden.thermal_result.temperatures_c).max()
            assert (
                np.abs(
                    result.thermal_result.temperatures_c
                    - golden.thermal_result.temperatures_c
                ).max()
                <= 1e-12 * scale
            )
            assert result.dryout == golden.dryout

    def test_mixed_frequencies_are_separate_boundary_groups(
        self, floorplan, power_model, x264
    ):
        """Same benchmark at different DVFS levels: distinct groups, exact results."""
        rack = _rack_session(floorplan, power_model, 2)
        loads = [
            ServerLoad(benchmark=x264, mapping=_mapping(floorplan, x264, 3.2)),
            ServerLoad(benchmark=x264, mapping=_mapping(floorplan, x264, 2.6)),
        ]
        results = rack.solve_steady(loads)
        assert rack.cache_stats().misses == 2
        assert (
            results[0].configuration.frequency_ghz
            != results[1].configuration.frequency_ghz
        )
        assert results[0].package_power_w > results[1].package_power_w


class TestFactorizationSharing:
    def test_homogeneous_rack_pays_one_factorization(self, floorplan, power_model, x264):
        """ISSUE acceptance: 8 identical servers, one factorization.

        The per-server golden loop with independent sessions pays one per
        server; merged CacheStats assert the >= 8x reduction.
        """
        mapping = _mapping(floorplan, x264)
        n_servers = 8
        rack = _rack_session(floorplan, power_model, n_servers)
        rack.solve_steady([ServerLoad(benchmark=x264, mapping=mapping)] * n_servers)
        assert rack.cache_stats().misses == 1

        golden_sessions = [
            _golden_session(floorplan, power_model) for _ in range(n_servers)
        ]
        for session in golden_sessions:
            session.solve_steady_mapping(x264, mapping)
        golden_stats = sum(
            (session.thermal_simulator.solver_cache.stats for session in golden_sessions),
            CacheStats.zero(),
        )
        assert golden_stats.misses == n_servers
        assert golden_stats.misses >= 8 * rack.cache_stats().misses

    def test_heterogeneous_rack_pays_one_per_distinct_boundary(
        self, floorplan, power_model, x264, canneal
    ):
        rack = _rack_session(floorplan, power_model, 6)
        loads = [
            ServerLoad(benchmark=bench, mapping=_mapping(floorplan, bench))
            for bench in (x264, x264, x264, canneal, canneal, canneal)
        ]
        rack.solve_steady(loads)
        assert rack.cache_stats().misses == 2  # one per distinct workload

    def test_repeated_solves_reuse_operators(self, floorplan, power_model, x264):
        mapping = _mapping(floorplan, x264)
        rack = _rack_session(floorplan, power_model, 4)
        loads = [ServerLoad(benchmark=x264, mapping=mapping)] * 4
        rack.solve_steady(loads)
        misses = rack.cache_stats().misses
        rack.solve_steady(loads)
        assert rack.cache_stats().misses == misses


class TestCacheStatsMerge:
    def test_addition_merges_counters(self):
        a = CacheStats(hits=3, misses=1, steady_entries=1, transient_entries=0)
        b = CacheStats(hits=5, misses=2, steady_entries=2, transient_entries=1)
        merged = a + b
        assert merged.hits == 8
        assert merged.misses == 3
        assert merged.steady_entries == 3
        assert merged.transient_entries == 1
        assert merged.hit_rate == pytest.approx(8 / 11)

    def test_sum_with_zero_identity(self):
        stats = [
            CacheStats(hits=1, misses=1, steady_entries=1, transient_entries=0),
            CacheStats(hits=2, misses=0, steady_entries=0, transient_entries=2),
        ]
        merged = sum(stats, CacheStats.zero())
        assert merged.hits == 3
        assert merged.misses == 1
        # Plain sum() (int 0 start) works too.
        assert sum(stats) == merged


class TestRackModelParity:
    @pytest.fixture(scope="class")
    def slots(self):
        return [
            ServerSlot(get_benchmark("x264"), QoSConstraint(2.0)),
            ServerSlot(get_benchmark("x264"), QoSConstraint(2.0)),
            ServerSlot(get_benchmark("canneal"), QoSConstraint(2.0)),
        ]

    def test_evaluate_matches_batch_engine(self, slots):
        session_rack = RackModel(slots, cell_size_mm=CELL_SIZE_MM)
        batch_rack = RackModel(slots, cell_size_mm=CELL_SIZE_MM, engine="batch")
        ours = session_rack.evaluate(28.0)
        theirs = batch_rack.evaluate(28.0)
        assert ours.chiller_power_w == pytest.approx(theirs.chiller_power_w, abs=1e-9)
        for a, b in zip(ours.server_results, theirs.server_results):
            assert a.case_temperature_c == pytest.approx(b.case_temperature_c, abs=1e-12)
            assert a.die_metrics.theta_max_c == pytest.approx(
                b.die_metrics.theta_max_c, abs=1e-12
            )
            assert a.package_power_w == pytest.approx(b.package_power_w, abs=1e-12)

    def test_water_temperature_search_parity(self, slots):
        """Bisection through the session engine lands where the old path did."""
        session_rack = RackModel(slots, cell_size_mm=CELL_SIZE_MM)
        batch_rack = RackModel(slots, cell_size_mm=CELL_SIZE_MM, engine="batch")
        ours = session_rack.warmest_feasible_water_temperature(
            low_c=15.0, high_c=40.0, tolerance_c=2.0
        )
        theirs = batch_rack.warmest_feasible_water_temperature(
            low_c=15.0, high_c=40.0, tolerance_c=2.0
        )
        assert ours.water_inlet_temperature_c == pytest.approx(
            theirs.water_inlet_temperature_c, abs=1e-12
        )
        assert ours.worst_case_temperature_c == pytest.approx(
            theirs.worst_case_temperature_c, abs=1e-12
        )

    def test_hot_spot_search_parity(self, slots):
        session_rack = RackModel(slots, cell_size_mm=CELL_SIZE_MM)
        batch_rack = RackModel(slots, cell_size_mm=CELL_SIZE_MM, engine="batch")
        nominal = session_rack.evaluate(30.0)
        target = nominal.worst_die_hot_spot_c - 3.0
        ours = session_rack.water_temperature_for_hot_spot(
            target, low_c=10.0, high_c=30.0, tolerance_c=1.0
        )
        theirs = batch_rack.water_temperature_for_hot_spot(
            target, low_c=10.0, high_c=30.0, tolerance_c=1.0
        )
        assert ours.water_inlet_temperature_c == pytest.approx(
            theirs.water_inlet_temperature_c, abs=1e-12
        )

    def test_invalid_engine_rejected(self, slots):
        with pytest.raises(ConfigurationError):
            RackModel(slots, engine="warp-drive")


class TestTransientLane:
    def test_advance_matches_per_server_sessions(self, floorplan, power_model, x264, canneal):
        """A short jittered rack trace advances exactly like golden sessions."""
        benchmarks = [x264, x264, canneal]
        mappings = [_mapping(floorplan, bench) for bench in benchmarks]
        rack = _rack_session(floorplan, power_model, 3)
        golden = [_golden_session(floorplan, power_model) for _ in benchmarks]

        for activity in (1.0, 0.97, 1.02, 0.95):
            loads = [
                ServerLoad(benchmark=bench, mapping=mapping, activity_factor=activity)
                for bench, mapping in zip(benchmarks, mappings)
            ]
            advance = rack.advance(loads, dt_s=2.0, n_substeps=3)
            for index, (bench, mapping) in enumerate(zip(benchmarks, mappings)):
                step = golden[index].advance_mapping(
                    bench, mapping, 2.0, activity_factor=activity, n_substeps=3
                )
                ours = advance.servers[index]
                scale = np.abs(step.result.thermal_result.temperatures_c).max()
                assert (
                    np.abs(
                        ours.result.thermal_result.temperatures_c
                        - step.result.thermal_result.temperatures_c
                    ).max()
                    <= 1e-12 * scale
                )
                assert ours.settle_residual_c == pytest.approx(
                    step.settle_residual_c, abs=1e-12
                )
                assert ours.period_peak_case_c == pytest.approx(
                    step.period_peak_case_c, abs=1e-12
                )
                assert ours.boundary_refreshed == step.boundary_refreshed

    def test_small_jitter_holds_boundaries(self, floorplan, power_model, x264):
        mapping = _mapping(floorplan, x264)
        rack = _rack_session(floorplan, power_model, 2)
        loads = [ServerLoad(benchmark=x264, mapping=mapping)] * 2
        first = rack.advance(loads, dt_s=2.0)
        assert first.boundary_refreshes == 2
        jittered = [
            ServerLoad(benchmark=x264, mapping=mapping, activity_factor=1.02)
        ] * 2
        second = rack.advance(jittered, dt_s=2.0)
        assert second.boundary_refreshes == 0

    def test_per_server_force_refresh(self, floorplan, power_model, x264):
        mapping = _mapping(floorplan, x264)
        rack = _rack_session(floorplan, power_model, 3)
        loads = [ServerLoad(benchmark=x264, mapping=mapping)] * 3
        rack.advance(loads, dt_s=2.0)
        step = rack.advance(loads, dt_s=2.0, force_boundary_refresh=[False, True, False])
        assert [server.boundary_refreshed for server in step.servers] == [
            False,
            True,
            False,
        ]

    def test_reset_forgets_state(self, floorplan, power_model, x264):
        mapping = _mapping(floorplan, x264)
        rack = _rack_session(floorplan, power_model, 2)
        rack.advance([ServerLoad(benchmark=x264, mapping=mapping)] * 2, dt_s=2.0)
        assert rack.temperatures is not None
        rack.reset()
        assert rack.temperatures is None

    def test_load_count_validated(self, floorplan, power_model, x264):
        mapping = _mapping(floorplan, x264)
        rack = _rack_session(floorplan, power_model, 3)
        with pytest.raises(ValidationError):
            rack.solve_steady([ServerLoad(benchmark=x264, mapping=mapping)] * 2)
        with pytest.raises(ValidationError):
            rack.advance(
                [ServerLoad(benchmark=x264, mapping=mapping)] * 3,
                dt_s=2.0,
                force_boundary_refresh=[True],
            )

    def test_rejects_empty_rack(self, floorplan, power_model):
        with pytest.raises(ConfigurationError):
            _rack_session(floorplan, power_model, 0)


class TestRackTrace:
    @pytest.fixture(scope="class")
    def jittered_trace(self):
        phases = tuple(
            TracePhase(2.0, 0.9 + 0.004 * index, 0.5) for index in range(8)
        )
        return PhasedTrace("jittered", phases)

    def test_rack_trace_factorization_count(
        self, floorplan, power_model, x264, jittered_trace
    ):
        """ISSUE acceptance: a homogeneous rack trace shares operators.

        Independent per-server transient traces each pay their own
        steady-init and refresh factorizations; the rack engine pays that
        cost once for the whole homogeneous rack (>= n_servers x fewer).
        """
        mapping = _mapping(floorplan, x264)
        n_servers = 4
        simulation = CooledServerSimulation(
            floorplan,
            power_model=power_model,
            thermal_simulator=ThermalSimulator(floorplan, cell_size_mm=CELL_SIZE_MM),
        )
        controller = ThermosyphonController(
            simulation, control_period_s=2.0, relax_margin_c=100.0
        )
        servers = [
            RackServer(x264, mapping, QoSConstraint(2.0)) for _ in range(n_servers)
        ]
        record = controller.run_rack_trace(servers, jittered_trace)
        assert record.n_periods == 8
        assert record.n_servers == n_servers
        assert record.factorizations is not None

        # Golden: the same trace on independent per-server simulations.
        golden_factorizations = 0
        for _ in range(n_servers):
            golden_sim = CooledServerSimulation(
                floorplan,
                power_model=power_model,
                thermal_simulator=ThermalSimulator(
                    floorplan, cell_size_mm=CELL_SIZE_MM
                ),
            )
            golden_controller = ThermosyphonController(
                golden_sim, control_period_s=2.0, relax_margin_c=100.0
            )
            golden_record = golden_controller.run_trace(
                x264, mapping, QoSConstraint(2.0), jittered_trace, mode="transient"
            )
            golden_factorizations += golden_record.factorizations
        assert golden_factorizations >= n_servers * record.factorizations

        # And the decisions themselves match the single-server golden run.
        for server in range(n_servers):
            for ours, theirs in zip(
                record.server_decisions(server), golden_record.decisions
            ):
                assert ours.case_temperature_c == pytest.approx(
                    theirs.case_temperature_c, abs=1e-12
                )
                assert ours.action is theirs.action

    def test_rack_trace_reports_chiller_power(
        self, floorplan, power_model, x264, jittered_trace
    ):
        mapping = _mapping(floorplan, x264)
        simulation = CooledServerSimulation(
            floorplan,
            power_model=power_model,
            thermal_simulator=ThermalSimulator(floorplan, cell_size_mm=CELL_SIZE_MM),
        )
        controller = ThermosyphonController(simulation, control_period_s=2.0)
        servers = [RackServer(x264, mapping, QoSConstraint(2.0)) for _ in range(2)]
        record = controller.run_rack_trace(servers, jittered_trace)
        assert len(record.chiller_power_w) == record.n_periods
        assert record.mean_chiller_power_w > 0.0
        assert record.chiller_energy_j == pytest.approx(
            sum(record.chiller_power_w) * 2.0
        )
        summary = record.summary()
        assert "servers" in summary
        assert "factorizations" in summary

    def test_missing_trace_rejected(self, floorplan, power_model, x264):
        mapping = _mapping(floorplan, x264)
        simulation = CooledServerSimulation(
            floorplan,
            power_model=power_model,
            thermal_simulator=ThermalSimulator(floorplan, cell_size_mm=CELL_SIZE_MM),
        )
        controller = ThermosyphonController(simulation)
        servers = [RackServer(x264, mapping, QoSConstraint(2.0))]
        with pytest.raises(ConfigurationError):
            controller.run_rack_trace(servers, None)


class TestBoundaryRefreshPolicyPlumbing:
    def test_controller_overrides_session_tolerance(self, floorplan, power_model, x264):
        mapping = _mapping(floorplan, x264)
        simulation = CooledServerSimulation(
            floorplan,
            power_model=power_model,
            thermal_simulator=ThermalSimulator(floorplan, cell_size_mm=CELL_SIZE_MM),
        )
        controller = ThermosyphonController(
            simulation, boundary_refresh_tol=0.01, adaptive_boundary_refresh=True
        )
        phases = (TracePhase(2.0, 1.0, 0.5), TracePhase(2.0, 0.95, 0.5))
        controller.run_trace(
            x264,
            mapping,
            QoSConstraint(2.0),
            PhasedTrace("short", phases),
            mode="transient",
        )
        assert simulation.session.boundary_refresh_tol == pytest.approx(0.01)
        assert simulation.session.adaptive_boundary_refresh is True

    def test_adaptive_mode_tightens_tolerance_mid_transient(
        self, floorplan, power_model, x264
    ):
        """A large settle residual shrinks the effective refresh tolerance."""
        mapping = _mapping(floorplan, x264)
        session = SimulationSession(
            floorplan,
            power_model=power_model,
            thermal_simulator=ThermalSimulator(floorplan, cell_size_mm=CELL_SIZE_MM),
            boundary_refresh_tol=0.15,
            adaptive_boundary_refresh=True,
            adaptive_residual_reference_c=0.5,
        )
        mapper = ThreadMapper(floorplan, orientation=session.design.orientation)
        activities = mapper.activities(x264, mapping, activity_factor=0.4)
        breakdown = session.power_model.evaluate(
            activities, 3.2, memory_intensity=x264.memory_intensity
        )
        low_power = session.thermal_simulator.power_map(breakdown.component_power_w)
        session.advance(low_power, dt_s=2.0)  # settled at the low point
        assert session.effective_boundary_refresh_tol() == pytest.approx(0.15)
        # A big power step leaves the field far from equilibrium...
        session.advance(low_power * 2.0, dt_s=0.05)
        # ...so the adaptive tolerance tightens below the static setting.
        assert session.effective_boundary_refresh_tol() < 0.15

    def test_static_mode_keeps_tolerance(self, floorplan, power_model, x264):
        session = SimulationSession(
            floorplan,
            power_model=power_model,
            thermal_simulator=ThermalSimulator(floorplan, cell_size_mm=CELL_SIZE_MM),
            boundary_refresh_tol=0.2,
        )
        assert session.effective_boundary_refresh_tol() == pytest.approx(0.2)
        assert session.boundary_refresh_rtol == pytest.approx(0.2)  # compat alias

    def test_zero_tolerance_accepted_by_controller(self, floorplan, power_model):
        """tol=0.0 (refresh every period) is a legitimate ablation setting."""
        simulation = CooledServerSimulation(
            floorplan,
            power_model=power_model,
            thermal_simulator=ThermalSimulator(floorplan, cell_size_mm=CELL_SIZE_MM),
        )
        controller = ThermosyphonController(simulation, boundary_refresh_tol=0.0)
        assert controller.boundary_refresh_tol == 0.0

    def test_rtol_keyword_and_setter_compat(self, floorplan, power_model):
        """The original boundary_refresh_rtol spelling still constructs and sets."""
        session = SimulationSession(
            floorplan,
            power_model=power_model,
            thermal_simulator=ThermalSimulator(floorplan, cell_size_mm=CELL_SIZE_MM),
            boundary_refresh_rtol=0.1,
        )
        assert session.boundary_refresh_tol == pytest.approx(0.1)
        session.boundary_refresh_rtol = 0.25
        assert session.boundary_refresh_tol == pytest.approx(0.25)


class TestWarmSessionReuse:
    def test_supplied_rack_session_keeps_state_across_traces(
        self, floorplan, power_model, x264
    ):
        """A caller-supplied session continues warm; the default path is cold."""
        mapping = _mapping(floorplan, x264)
        simulation = CooledServerSimulation(
            floorplan,
            power_model=power_model,
            thermal_simulator=ThermalSimulator(floorplan, cell_size_mm=CELL_SIZE_MM),
        )
        controller = ThermosyphonController(
            simulation, control_period_s=2.0, relax_margin_c=100.0
        )
        session = RackSession(
            2,
            floorplan=floorplan,
            power_model=power_model,
            thermal_simulator=simulation.thermal_simulator,
        )
        servers = [RackServer(x264, mapping, QoSConstraint(2.0)) for _ in range(2)]
        trace = PhasedTrace("short", (TracePhase(2.0, 1.0, 0.5),) * 2)
        controller.run_rack_trace(servers, trace, rack_session=session)
        warm = session.temperatures
        assert warm is not None
        controller.run_rack_trace(servers, trace, rack_session=session)
        # The second trace advanced the same fields instead of resetting.
        assert session.temperatures is not None
