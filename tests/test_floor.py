"""Floor engine tests: stacked hardware-group solves across the datacenter.

The load-bearing guarantees of :mod:`repro.datacenter.floor`:

* a **mixed-SKU** fixed-setpoint floor (per-rack floorplans, designs and
  power models) reproduces each rack's standalone
  :meth:`ThermosyphonController.run_rack_trace` bit for bit — the floor
  engine partitions its stacked solves by hardware group instead of
  falling back to anything slower;
* the solve partition (:meth:`FloorEngine.boundary_groups`) tracks
  actuator events: a valve action, a DVFS move and a setpoint change land
  servers in the right groups;
* an N-rack homogeneous floor pays exactly one rack's operator
  factorizations, asserted via merged :class:`CacheStats`;
* :meth:`DatacenterSession.cache_stats` counts every distinct cache
  exactly once on a heterogeneous floor (no double-count, no drop);
* ``engine="per-rack"`` (the benchmark baseline) and the floor engine
  produce identical traces.
"""

import pytest

from repro.core.mapping import ThreadMapper
from repro.core.mapping_policies import ProposedThermalAwareMapping
from repro.core.pipeline import CooledServerSimulation
from repro.core.rack_session import RackSession, ServerLoad
from repro.core.runtime_controller import RackServer, ThermosyphonController
from repro.datacenter.floor import FloorEngine
from repro.datacenter.model import DatacenterModel, RackSpec
from repro.exceptions import ConfigurationError, ValidationError
from repro.floorplan.xeon_e5_v4 import build_xeon_e5_v4_floorplan
from repro.power.power_model import ServerPowerModel
from repro.thermal.simulator import ThermalSimulator
from repro.thermal.solver_cache import CacheStats
from repro.thermosyphon.chiller import ChillerPlant
from repro.thermosyphon.design import (
    PAPER_OPTIMIZED_DESIGN,
    SEURET_REFERENCE_DESIGN,
)
from repro.workloads.configuration import Configuration
from repro.workloads.parsec import get_benchmark
from repro.workloads.qos import QoSConstraint
from repro.workloads.trace import generate_trace

CELL_SIZE_MM = 2.5
CONTROL_PERIOD_S = 2.0
DURATION_S = 16.0

#: All decision fields that must match the standalone rack trace exactly.
_DECISION_FIELDS = (
    "time_s",
    "case_temperature_c",
    "die_hot_spot_c",
    "package_power_w",
    "water_flow_kg_h",
    "frequency_ghz",
    "action",
    "settle_residual_c",
    "period_peak_case_c",
)


def _simulator(floorplan):
    return ThermalSimulator(floorplan, cell_size_mm=CELL_SIZE_MM)


def _mapping(floorplan, benchmark, design=PAPER_OPTIMIZED_DESIGN, frequency_ghz=3.2):
    mapper = ThreadMapper(floorplan, orientation=design.orientation)
    return mapper.map(
        benchmark, Configuration(8, 2, frequency_ghz), ProposedThermalAwareMapping()
    )


def _servers(floorplan, benchmark, n, design=PAPER_OPTIMIZED_DESIGN, trace=None):
    mapping = _mapping(floorplan, benchmark, design=design)
    if trace is None:
        trace = generate_trace(benchmark, total_duration_s=DURATION_S)
    return tuple(
        RackServer(benchmark, mapping, QoSConstraint(2.0), trace=trace)
        for _ in range(n)
    )


@pytest.fixture(scope="module")
def second_floorplan():
    """A second SKU: same die, different heat-spreader footprint."""
    return build_xeon_e5_v4_floorplan(spreader_size_mm=42.0)


class TestFloorEngineValidation:
    def test_needs_at_least_one_rack(self):
        with pytest.raises(ConfigurationError):
            FloorEngine([])

    def test_rack_count_mismatch_rejected(self, floorplan, x264):
        session = RackSession(
            1, floorplan=floorplan, thermal_simulator=_simulator(floorplan)
        )
        engine = FloorEngine([session])
        load = ServerLoad(benchmark=x264, mapping=_mapping(floorplan, x264))
        with pytest.raises(ValidationError):
            engine.advance([[load], [load]], 2.0)

    def test_bad_engine_name_rejected(self, floorplan, x264):
        servers = _servers(floorplan, x264, 1)
        with pytest.raises(ConfigurationError):
            DatacenterModel(
                [RackSpec(name="r0", servers=servers)],
                floorplan=floorplan,
                thermal_simulator=_simulator(floorplan),
                engine="batch",
            )


class TestMixedSkuEquivalence:
    def test_bit_identical_to_standalone_rack_traces(
        self, floorplan, power_model, second_floorplan, x264, canneal
    ):
        """ISSUE acceptance: mixed-SKU floor == per-rack golden path.

        Rack 0 runs the default floorplan with the paper-optimized design;
        rack 1 a different spreader footprint with the Seuret reference
        design and its own power model — two hardware groups, two
        factorization caches.  The fixed-setpoint floor must reproduce
        each rack's standalone transient trace bit for bit (well inside
        the 1e-12 acceptance tolerance) with **no** fallback path.
        """
        power_model_b = ServerPowerModel(second_floorplan)
        trace_a = generate_trace(x264, total_duration_s=DURATION_S)
        trace_b = generate_trace(canneal, total_duration_s=DURATION_S)
        rack_hardware = [
            (floorplan, PAPER_OPTIMIZED_DESIGN, power_model, x264, trace_a),
            (second_floorplan, SEURET_REFERENCE_DESIGN, power_model_b, canneal, trace_b),
        ]
        racks = [
            RackSpec(
                name=f"rack{i}",
                servers=_servers(fp, benchmark, 3, design=design, trace=trace),
                floorplan=None if fp is floorplan else fp,
                design=None if design is PAPER_OPTIMIZED_DESIGN else design,
                power_model=None if pm is power_model else pm,
            )
            for i, (fp, design, pm, benchmark, trace) in enumerate(rack_hardware)
        ]
        plant = ChillerPlant(free_cooling_outdoor_c=18.0)
        setpoint = PAPER_OPTIMIZED_DESIGN.water_inlet_temperature_c
        floor = DatacenterModel(
            racks,
            plant=plant,
            floorplan=floorplan,
            power_model=power_model,
            thermal_simulator=_simulator(floorplan),
            control_period_s=CONTROL_PERIOD_S,
        )
        assert floor.n_hardware_groups == 2
        session = floor.session()
        assert session.floor_engine is not None
        assert session.floor_engine.n_hardware_groups == 2
        trace = session.run(duration_s=DURATION_S)
        assert all(value == setpoint for value in trace.setpoint_c)

        for rack_index, (fp, design, pm, benchmark, _) in enumerate(rack_hardware):
            simulation = CooledServerSimulation(
                fp,
                design=design,
                power_model=pm,
                thermal_simulator=_simulator(fp),
            )
            controller = ThermosyphonController(
                simulation, control_period_s=CONTROL_PERIOD_S
            )
            standalone = controller.run_rack_trace(
                list(racks[rack_index].servers),
                initial_water_loop=design.water_loop().with_inlet_temperature(
                    setpoint
                ),
                chiller=plant.chiller_at(setpoint),
            )
            floor_rack = trace.racks[rack_index]
            assert len(floor_rack.periods) == len(standalone.periods)
            for ours, theirs in zip(floor_rack.periods, standalone.periods):
                for decision_a, decision_b in zip(ours, theirs):
                    for field in _DECISION_FIELDS:
                        assert getattr(decision_a, field) == getattr(
                            decision_b, field
                        ), field
            assert floor_rack.chiller_power_w == standalone.chiller_power_w

    def test_engines_agree(self, floorplan, power_model, x264, canneal):
        """The floor engine and the per-rack baseline produce one answer."""
        racks = [
            RackSpec(name="r0", servers=_servers(floorplan, x264, 2)),
            RackSpec(name="r1", servers=_servers(floorplan, canneal, 2)),
        ]

        def build(engine):
            return DatacenterModel(
                racks,
                plant=ChillerPlant(free_cooling_outdoor_c=18.0),
                floorplan=floorplan,
                power_model=power_model,
                thermal_simulator=_simulator(floorplan),
                control_period_s=CONTROL_PERIOD_S,
                engine=engine,
            )

        floor_trace = build("floor").run_trace(duration_s=DURATION_S)
        rack_trace = build("per-rack").run_trace(duration_s=DURATION_S)
        for ours, theirs in zip(floor_trace.racks, rack_trace.racks):
            assert ours.chiller_power_w == theirs.chiller_power_w
            for period_a, period_b in zip(ours.periods, theirs.periods):
                for decision_a, decision_b in zip(period_a, period_b):
                    for field in _DECISION_FIELDS:
                        assert getattr(decision_a, field) == getattr(
                            decision_b, field
                        ), field


class TestBoundaryGroupPartitioning:
    def _engine(self, floorplan):
        simulator = _simulator(floorplan)
        sessions = [
            RackSession(2, floorplan=floorplan, thermal_simulator=simulator)
            for _ in range(2)
        ]
        return FloorEngine(sessions)

    def _loads(self, floorplan, benchmark, mapping=None, water_loops=None):
        mapping = mapping if mapping is not None else _mapping(floorplan, benchmark)
        loops = water_loops if water_loops is not None else [None] * 4
        loads = [
            ServerLoad(benchmark=benchmark, mapping=mapping, water_loop=loops[i])
            for i in range(4)
        ]
        return [loads[:2], loads[2:]]

    def test_identical_servers_share_one_group(self, floorplan, x264):
        engine = self._engine(floorplan)
        assert engine.boundary_groups() == []  # nothing held before an advance
        engine.advance(self._loads(floorplan, x264), 2.0, n_substeps=2)
        groups = engine.boundary_groups()
        assert len(groups) == 1
        assert sorted(groups[0]) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_valve_action_splits_the_acting_server(self, floorplan, x264):
        engine = self._engine(floorplan)
        engine.advance(self._loads(floorplan, x264), 2.0)
        opened = PAPER_OPTIMIZED_DESIGN.water_loop().with_flow_rate(9.0)
        loops = [None, None, opened, None]  # server (1, 0) opens its valve
        engine.advance(self._loads(floorplan, x264, water_loops=loops), 2.0)
        groups = {tuple(sorted(group)) for group in engine.boundary_groups()}
        assert groups == {((0, 0), (0, 1), (1, 1)), ((1, 0),)}

    def test_dvfs_move_splits_the_acting_server(self, floorplan, x264):
        engine = self._engine(floorplan)
        engine.advance(self._loads(floorplan, x264), 2.0)
        slow = _mapping(floorplan, x264, frequency_ghz=2.6)
        rack0, rack1 = self._loads(floorplan, x264)
        rack1 = [
            ServerLoad(benchmark=x264, mapping=slow),  # server (1, 0) steps down
            rack1[1],
        ]
        engine.advance(
            [rack0, rack1], 2.0, force_boundary_refresh=[False, [True, False]]
        )
        groups = {tuple(sorted(group)) for group in engine.boundary_groups()}
        assert groups == {((0, 0), (0, 1), (1, 1)), ((1, 0),)}

    def test_setpoint_move_regroups_every_server(self, floorplan, x264):
        engine = self._engine(floorplan)
        engine.advance(self._loads(floorplan, x264), 2.0)
        warmer = PAPER_OPTIMIZED_DESIGN.water_loop().with_inlet_temperature(33.0)
        loops = [warmer] * 4  # the supervisory loop re-issues every loop
        engine.advance(self._loads(floorplan, x264, water_loops=loops), 2.0)
        groups = engine.boundary_groups()
        assert len(groups) == 1
        assert sorted(groups[0]) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_hardware_groups_never_merge(
        self, floorplan, second_floorplan, x264
    ):
        """Equal designs on distinct thermal networks stay separate solves."""
        sim_a, sim_b = _simulator(floorplan), _simulator(second_floorplan)
        sessions = [
            RackSession(2, floorplan=floorplan, thermal_simulator=sim_a),
            RackSession(2, floorplan=second_floorplan, thermal_simulator=sim_b),
        ]
        engine = FloorEngine(sessions)
        assert engine.n_hardware_groups == 2
        mapping_a = _mapping(floorplan, x264)
        mapping_b = _mapping(second_floorplan, x264)
        engine.advance(
            [
                [ServerLoad(benchmark=x264, mapping=mapping_a)] * 2,
                [ServerLoad(benchmark=x264, mapping=mapping_b)] * 2,
            ],
            2.0,
        )
        groups = {tuple(sorted(group)) for group in engine.boundary_groups()}
        assert groups == {((0, 0), (0, 1)), ((1, 0), (1, 1))}


class TestHomogeneousFloorFactorizations:
    def test_n_rack_floor_pays_one_rack(self, floorplan, power_model, x264):
        """ISSUE acceptance: N racks, one rack's factorizations (CacheStats)."""
        trace = generate_trace(x264, total_duration_s=DURATION_S)
        servers = _servers(floorplan, x264, 2, trace=trace)
        n_racks = 4

        def run(n):
            floor = DatacenterModel(
                [RackSpec(name=f"rack{i}", servers=servers) for i in range(n)],
                plant=ChillerPlant(free_cooling_outdoor_c=18.0),
                floorplan=floorplan,
                power_model=power_model,
                thermal_simulator=_simulator(floorplan),
                control_period_s=CONTROL_PERIOD_S,
            )
            return floor.run_trace(duration_s=DURATION_S)

        single = run(1)
        floor_trace = run(n_racks)
        assert isinstance(floor_trace.cache_stats, CacheStats)
        assert floor_trace.factorizations == single.factorizations
        assert floor_trace.cache_stats.misses == floor_trace.factorizations


class TestCacheStatsDedupe:
    def _hetero_model(self, floorplan, second_floorplan, power_model, x264, canneal):
        racks = [
            RackSpec(name="r0", servers=_servers(floorplan, x264, 2)),
            RackSpec(name="r1", servers=_servers(floorplan, canneal, 2)),
            RackSpec(
                name="r2",
                servers=_servers(
                    second_floorplan, x264, 2, design=SEURET_REFERENCE_DESIGN
                ),
                floorplan=second_floorplan,
                design=SEURET_REFERENCE_DESIGN,
            ),
        ]
        return DatacenterModel(
            racks,
            plant=ChillerPlant(free_cooling_outdoor_c=18.0),
            floorplan=floorplan,
            power_model=power_model,
            thermal_simulator=_simulator(floorplan),
            control_period_s=CONTROL_PERIOD_S,
        )

    def test_heterogeneous_floor_merges_each_cache_once(
        self, floorplan, second_floorplan, power_model, x264, canneal
    ):
        """ISSUE satellite: no double-count of a shared cache, no dropped one.

        Racks 0 and 1 share the default simulator, rack 2 carries its own —
        two distinct caches behind three racks.  The merged stats must be
        the sum over the *distinct* caches, not over rack sessions.
        """
        model = self._hetero_model(
            floorplan, second_floorplan, power_model, x264, canneal
        )
        session = model.session()
        session.advance_period(0.0)
        caches = {
            id(simulator.solver_cache): simulator.solver_cache
            for simulator in model.rack_simulators
        }
        assert len(caches) == 2
        expected = sum(
            (cache.stats for cache in caches.values()), CacheStats.zero()
        )
        assert session.cache_stats() == expected
        # Both caches saw work (nothing was dropped by the dedupe).
        for cache in caches.values():
            assert cache.stats.misses > 0

    def test_run_reports_merged_deltas(
        self, floorplan, second_floorplan, power_model, x264, canneal
    ):
        model = self._hetero_model(
            floorplan, second_floorplan, power_model, x264, canneal
        )
        trace = model.run_trace(duration_s=8.0)
        assert trace.cache_stats is not None
        per_cache = {
            id(simulator.solver_cache): simulator.solver_cache.stats
            for simulator in model.rack_simulators
        }
        merged = sum(per_cache.values(), CacheStats.zero())
        # Fresh simulators: the run's delta is everything the caches did.
        assert trace.cache_stats.misses == merged.misses
        assert trace.cache_stats.hits == merged.hits
        assert trace.factorizations == merged.misses


class TestMappingMemo:
    def test_identical_servers_share_resolved_mappings(
        self, floorplan, power_model, x264
    ):
        servers = _servers(floorplan, x264, 4)
        model = DatacenterModel(
            [RackSpec(name=f"rack{i}", servers=servers) for i in range(2)],
            plant=ChillerPlant(free_cooling_outdoor_c=18.0),
            floorplan=floorplan,
            power_model=power_model,
            thermal_simulator=_simulator(floorplan),
            control_period_s=CONTROL_PERIOD_S,
        )
        session = model.session()
        # All eight servers share one RackServer mapping at one frequency:
        # the memo resolves it once and every slot aliases that object.
        assert len(session._mapping_memo) == 1
        resolved = {
            id(mapping) for rack in session._mappings for mapping in rack
        }
        assert len(resolved) == 1
