"""Reduced-order thermal lane unit tests.

The load-bearing guarantees of :mod:`repro.thermal.rom`:

* the Krylov basis is orthonormal and the affine step factorization
  (``step_matrix`` / ``affine_term``) reproduces :meth:`ReducedOperator.step`
  exactly;
* a reduced march tracks the full backward-Euler solver to within the
  a-posteriori bound — and the bound itself is a rigorous upper bound on
  the single-step lift error (the M-matrix contraction argument);
* the case-cell readout agrees with lifting the whole field;
* :class:`FactorizationCache` stores reduced operators beside the LU
  factors (bounded, content-keyed, cleared by ``invalidate``) without
  perturbing the factorization hit/miss statistics;
* a rebuild seeded with ``previous_basis`` still spans the stale basis,
  so recurring boundaries stop churning.
"""

import numpy as np
import pytest

from repro.floorplan.grid_mapper import GridMapper
from repro.thermal.boundary import BottomBoundary, uniform_cooling_boundary
from repro.thermal.grid import ThermalGrid
from repro.thermal.layers import standard_thermosyphon_stack
from repro.thermal.network import ThermalNetwork
from repro.thermal.rom import (
    RomConfig,
    RomStats,
    build_reduced_operator,
)
from repro.thermal.solver_cache import FactorizationCache
from repro.thermal.transient import TransientSolver

DT_S = 0.5
CASE_CELL = 0


@pytest.fixture(scope="module")
def setup(floorplan):
    stack = standard_thermosyphon_stack()
    outline = floorplan.spreader_outline
    n = 13
    grid = ThermalGrid(outline, stack, n, n)
    mapper = GridMapper(floorplan, outline, n, n)
    network = ThermalNetwork(grid, mapper.die_mask(), BottomBoundary())
    cache = FactorizationCache(network)
    boundary = uniform_cooling_boundary(grid.n_rows, grid.n_columns, 1.5e4, 40.0)
    power_maps = np.stack(
        [
            mapper.power_map({"core0": 8.0, "llc": 3.0}),
            mapper.power_map({f"core{i}": 5.0 for i in range(8)}),
        ]
    )
    seed_fields = np.full((2, grid.n_cells), 45.0)
    seed_fields[1] += 2.0
    return grid, mapper, network, cache, boundary, power_maps, seed_fields


def _build(setup, config=None, **kwargs):
    _, _, network, cache, boundary, power_maps, seed_fields = setup
    power_vectors = network.power_vectors(power_maps)
    return build_reduced_operator(
        network,
        cache,
        boundary,
        DT_S,
        seed_fields,
        power_vectors,
        CASE_CELL,
        config if config is not None else RomConfig(),
        **kwargs,
    )


class TestBasis:
    def test_basis_is_orthonormal(self, setup):
        op = _build(setup)
        gram = op.basis.T @ op.basis
        assert np.max(np.abs(gram - np.eye(op.order))) < 1e-10

    def test_order_capped_by_max_basis(self, setup):
        op = _build(setup, config=RomConfig(max_basis=3))
        assert op.order <= 3

    def test_seed_fields_project_exactly(self, setup):
        *_, seed_fields = setup
        op = _build(setup)
        _, entry_error = op.project(seed_fields)
        assert np.max(entry_error) < 1e-8

    def test_rebuild_with_previous_basis_spans_it(self, setup):
        stale = _build(setup, config=RomConfig(max_basis=4, krylov_iterations=0))
        rebuilt = _build(setup, previous_basis=stale.basis)
        projected = rebuilt.basis @ (rebuilt.basis.T @ stale.basis)
        assert np.max(np.abs(projected - stale.basis)) < 1e-8


class TestStepping:
    def test_affine_factorization_matches_step(self, setup):
        _, _, network, *_ , power_maps, seed_fields = setup
        op = _build(setup)
        power_vectors = network.power_vectors(power_maps)
        reduced_rhs = op.reduce_rhs(power_vectors)
        coords, _ = op.project(seed_fields)
        affine = op.affine_term(reduced_rhs)
        assert np.max(
            np.abs((op.step_matrix @ coords + affine) - op.step(coords, reduced_rhs))
        ) < 1e-10

    def test_case_readout_matches_lift(self, setup):
        *_, seed_fields = setup
        op = _build(setup)
        coords, _ = op.project(seed_fields)
        assert np.max(
            np.abs(op.case_temperatures(coords) - op.lift(coords)[:, CASE_CELL])
        ) < 1e-12

    def test_march_tracks_full_solver_within_bound(self, setup):
        _, _, network, cache, boundary, power_maps, seed_fields = setup
        op = _build(setup)
        solver = TransientSolver(network, cache=cache)
        power_vectors = network.power_vectors(power_maps)
        full_rhs = op.boundary_rhs[np.newaxis, :] + power_vectors
        reduced_rhs = op.reduce_rhs(power_vectors)
        coords, entry_error = op.project(seed_fields)
        full = seed_fields.copy()
        error = entry_error.copy()
        for _ in range(20):
            new_coords = op.step(coords, reduced_rhs)
            error += op.step_error_bound(new_coords, coords, full_rhs)
            coords = new_coords
            full = solver.step_many(full, power_maps, boundary, DT_S)
        actual = np.max(np.abs(op.lift(coords) - full), axis=1)
        assert np.all(actual <= error + 1e-9)
        # The basis was seeded with these trajectories, so the actual error
        # stays far inside the 0.1 C golden criterion of the coarse lane.
        assert np.max(actual) < 5e-3

    def test_step_error_bound_is_rigorous_per_step(self, setup):
        _, _, network, cache, boundary, power_maps, seed_fields = setup
        # A deliberately poor basis, so the bound has something to bound.
        op = _build(setup, config=RomConfig(max_basis=2, krylov_iterations=0))
        solver = TransientSolver(network, cache=cache)
        power_vectors = network.power_vectors(power_maps)
        full_rhs = op.boundary_rhs[np.newaxis, :] + power_vectors
        reduced_rhs = op.reduce_rhs(power_vectors)
        coords, _ = op.project(seed_fields)
        new_coords = op.step(coords, reduced_rhs)
        bound = op.step_error_bound(new_coords, coords, full_rhs)
        # Exact full-space step FROM the lifted previous iterate: the
        # difference to the lifted new iterate is exactly K^-1 r, which the
        # capacitance-weighted bound must dominate.
        exact = solver.step_many(op.lift(coords), power_maps, boundary, DT_S)
        actual = np.max(np.abs(op.lift(new_coords) - exact), axis=1)
        assert np.all(actual <= bound + 1e-9)
        assert np.all(bound > 0.0)


class TestCacheIntegration:
    def test_store_and_retrieve(self, setup):
        _, _, network, _, boundary, *_ = setup
        cache = FactorizationCache(network)
        assert cache.reduced_operator(boundary, DT_S) is None
        op = _build((None, None, network, cache, *setup[4:]))
        cache.store_reduced_operator(boundary, DT_S, op)
        assert cache.reduced_operator(boundary, DT_S) is op
        assert cache.reduced_operator(boundary, DT_S * 2.0) is None
        assert cache.reduced_entries == 1

    def test_reduced_lookups_do_not_count_as_cache_stats(self, setup):
        _, _, network, _, boundary, *_ = setup
        cache = FactorizationCache(network)
        before = cache.stats
        cache.reduced_operator(boundary, DT_S)
        after = cache.stats
        assert (after.hits, after.misses) == (before.hits, before.misses)

    def test_lru_bounded_and_invalidated(self, setup):
        grid, _, network, *_ = setup
        cache = FactorizationCache(network, max_entries=2)
        op = _build((None, None, network, cache, *setup[4:]))
        for fluid in (30.0, 31.0, 32.0):
            boundary = uniform_cooling_boundary(
                grid.n_rows, grid.n_columns, 1.5e4, fluid
            )
            cache.store_reduced_operator(boundary, DT_S, op)
        assert cache.reduced_entries == 2
        cache.invalidate()
        assert cache.reduced_entries == 0


class TestConfigAndStats:
    def test_config_validation(self):
        with pytest.raises(Exception):
            RomConfig(max_basis=0)
        with pytest.raises(Exception):
            RomConfig(krylov_iterations=-1)
        with pytest.raises(Exception):
            RomConfig(step_error_tol_c=0.0)

    def test_stats_copy_delta_and_fallbacks(self):
        stats = RomStats(basis_builds=2, fallback_error=1, fallback_guard=2)
        snap = stats.copy()
        stats.basis_builds += 3
        stats.fallback_projection += 4
        delta = stats.delta(snap)
        assert delta.basis_builds == 3
        assert delta.fallback_projection == 4
        assert delta.fallback_error == 0
        assert stats.fallbacks == 1 + 2 + 4
        assert snap.fallbacks == 3
