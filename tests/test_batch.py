"""Batched evaluation engine tests.

The engine must produce results identical to the direct pipeline path
(it is a routing layer, not a model), resolve sweep points at every level
(mapping / configuration / constraint), preserve point order, and the
process-parallel path must agree with the serial path.
"""

import pytest

from repro.core.batch import BatchEvaluator, DesignSweepEvaluator, SweepPoint
from repro.core.mapping import ThreadMapper
from repro.core.mapping_policies import ProposedThermalAwareMapping
from repro.core.pipeline import CooledServerSimulation
from repro.exceptions import ConfigurationError
from repro.power.power_model import CoreActivity
from repro.thermosyphon.design import PAPER_OPTIMIZED_DESIGN, SEURET_REFERENCE_DESIGN
from repro.workloads.configuration import Configuration
from repro.workloads.qos import QoSConstraint


@pytest.fixture(scope="module")
def simulation(floorplan, power_model, coarse_thermal_simulator):
    return CooledServerSimulation(
        floorplan,
        design=PAPER_OPTIMIZED_DESIGN,
        power_model=power_model,
        thermal_simulator=coarse_thermal_simulator,
    )


@pytest.fixture(scope="module")
def evaluator(simulation):
    return BatchEvaluator(simulation)


class TestPointResolution:
    def test_benchmark_name_is_resolved(self):
        point = SweepPoint(benchmark="x264", constraint=QoSConstraint(2.0))
        assert point.resolve_benchmark().name == "x264"

    def test_explicit_mapping_wins(self, evaluator, simulation, x264):
        mapper = ThreadMapper(
            simulation.floorplan, orientation=simulation.design.orientation
        )
        mapping = mapper.map(x264, Configuration(4, 2, 2.6), ProposedThermalAwareMapping())
        point = SweepPoint(benchmark=x264, mapping=mapping, configuration=Configuration(8, 2, 3.2))
        assert evaluator.resolve_mapping(point) is mapping

    def test_constraint_selects_configuration(self, evaluator, x264):
        point = SweepPoint(benchmark=x264, constraint=QoSConstraint(2.0))
        mapping = evaluator.resolve_mapping(point)
        selected = evaluator.selector.select(x264, QoSConstraint(2.0)).configuration
        assert mapping.configuration == selected
        assert mapping.n_active_cores == mapping.configuration.n_cores

    def test_unresolvable_point_rejected(self, evaluator, x264):
        with pytest.raises(ConfigurationError):
            evaluator.resolve_mapping(SweepPoint(benchmark=x264))


class TestEquivalenceWithDirectPath:
    def test_matches_simulate_mapping(self, evaluator, simulation, x264):
        configuration = Configuration(8, 2, 3.2)
        point = SweepPoint(benchmark=x264, configuration=configuration)
        batched = evaluator.evaluate(point)

        mapping = evaluator.mapper.map(x264, configuration, evaluator.policy)
        direct = simulation.simulate_mapping(x264, mapping, mapper=evaluator.mapper)
        assert batched.package_power_w == pytest.approx(direct.package_power_w)
        assert batched.die_metrics.theta_max_c == pytest.approx(direct.die_metrics.theta_max_c)
        assert batched.case_temperature_c == pytest.approx(direct.case_temperature_c)

    def test_water_loop_carried_through(self, evaluator, simulation, x264):
        loop = simulation.design.water_loop().with_flow_rate(12.0)
        result = evaluator.evaluate(
            SweepPoint(benchmark=x264, configuration=Configuration(8, 2, 3.2), water_loop=loop)
        )
        assert result.water_loop.flow_rate_kg_h == pytest.approx(12.0)


class TestEvaluateMany:
    def test_order_preserved(self, evaluator, x264, canneal):
        points = [
            SweepPoint(benchmark=x264, configuration=Configuration(8, 2, 3.2)),
            SweepPoint(benchmark=canneal, configuration=Configuration(2, 1, 2.6)),
        ]
        results = evaluator.evaluate_many(points)
        assert [r.benchmark_name for r in results] == ["x264", "canneal"]
        assert results[0].package_power_w > results[1].package_power_w

    def test_flow_sweep_shares_factorizations(self, simulation, x264):
        """Fixed cooling repeats across points must hit the shared cache."""
        evaluator = BatchEvaluator(simulation)
        cache = simulation.thermal_simulator.solver_cache
        baseline_misses = cache.stats.misses
        loop = simulation.design.water_loop()
        points = [
            SweepPoint(benchmark=x264, configuration=Configuration(8, 2, 3.2), water_loop=loop),
            SweepPoint(benchmark=x264, configuration=Configuration(8, 2, 3.2), water_loop=loop),
            SweepPoint(benchmark=x264, configuration=Configuration(8, 2, 3.2), water_loop=loop),
        ]
        evaluator.evaluate_many(points)
        # Identical points produce identical boundaries: one factorization.
        assert cache.stats.misses - baseline_misses <= 1

    def test_parallel_matches_serial_and_reuses_the_pool(self, simulation, x264, canneal):
        points = [
            SweepPoint(benchmark=x264, configuration=Configuration(8, 2, 3.2)),
            SweepPoint(benchmark=canneal, configuration=Configuration(4, 1, 2.6)),
        ]
        with BatchEvaluator(simulation) as evaluator:
            serial = evaluator.evaluate_many(points)
            parallel = evaluator.evaluate_many(points, max_workers=2)
            first_pool = evaluator._pool._executor
            evaluator.evaluate_many(points, max_workers=2)
            # The pool (and the workers' warm caches) persists across calls.
            assert evaluator._pool._executor is first_pool
        assert evaluator._pool._executor is None  # context exit shuts the pool down
        for a, b in zip(serial, parallel):
            assert a.benchmark_name == b.benchmark_name
            assert a.package_power_w == pytest.approx(b.package_power_w)
            assert a.die_metrics.theta_max_c == pytest.approx(b.die_metrics.theta_max_c, abs=1e-9)

    def test_thread_backend_matches_serial(self, simulation, x264, canneal):
        points = [
            SweepPoint(benchmark=x264, configuration=Configuration(8, 2, 3.2)),
            SweepPoint(benchmark=canneal, configuration=Configuration(4, 1, 2.6)),
            SweepPoint(benchmark=x264, configuration=Configuration(4, 2, 2.9)),
        ]
        evaluator = BatchEvaluator(simulation)
        serial = evaluator.evaluate_many(points)
        threaded = evaluator.evaluate_many(points, max_workers=2, backend="thread")
        # Threads share the parent simulation (and its factorization cache):
        # no process pool is ever spun up.
        assert evaluator._pool._executor is None
        for a, b in zip(serial, threaded):
            assert a.benchmark_name == b.benchmark_name
            assert a.package_power_w == pytest.approx(b.package_power_w)
            assert a.die_metrics.theta_max_c == pytest.approx(
                b.die_metrics.theta_max_c, abs=1e-9
            )
            assert a.case_temperature_c == pytest.approx(
                b.case_temperature_c, abs=1e-9
            )

    def test_unknown_backend_rejected(self, evaluator, x264):
        point = SweepPoint(benchmark=x264, configuration=Configuration(8, 2, 3.2))
        with pytest.raises(ConfigurationError):
            evaluator.evaluate_many([point], max_workers=2, backend="fiber")

    def test_parallel_constraint_points_use_the_parent_pipeline(
        self, simulation, x264
    ):
        """Constraint-only points are resolved before shipping, so a custom
        (restricted) configuration table cannot silently diverge in workers."""
        from repro.core.pipeline import ThermalAwarePipeline

        restricted = (Configuration(2, 1, 2.6),)
        pipeline = ThermalAwarePipeline(simulation, configurations=restricted)
        points = [
            SweepPoint(benchmark=x264, constraint=QoSConstraint(4.0)),
            SweepPoint(benchmark=x264, constraint=QoSConstraint(4.0)),
        ]
        with BatchEvaluator(simulation, pipeline=pipeline) as evaluator:
            results = evaluator.evaluate_many(points, max_workers=2)
        for result in results:
            assert result.configuration == restricted[0]

    def test_parallel_respects_custom_thermal_simulator_and_mapper(
        self, floorplan, power_model, x264
    ):
        """Workers must rebuild the *actual* configuration, not defaults."""
        from repro.thermal.boundary import BottomBoundary
        from repro.thermal.simulator import ThermalSimulator
        from repro.thermosyphon.orientation import Orientation

        custom_simulator = ThermalSimulator(
            floorplan,
            cell_size_mm=2.0,
            bottom_boundary=BottomBoundary(htc_w_m2k=0.0),
        )
        simulation = CooledServerSimulation(
            floorplan,
            design=PAPER_OPTIMIZED_DESIGN,
            power_model=power_model,
            thermal_simulator=custom_simulator,
        )
        mapper = ThreadMapper(floorplan, orientation=Orientation.EAST_TO_WEST)
        points = [
            SweepPoint(benchmark=x264, configuration=Configuration(4, 2, 3.2)),
            SweepPoint(benchmark=x264, configuration=Configuration(2, 1, 2.6)),
        ]
        with BatchEvaluator(simulation, mapper=mapper) as evaluator:
            serial = evaluator.evaluate_many(points)
            parallel = evaluator.evaluate_many(points, max_workers=2)
        for a, b in zip(serial, parallel):
            assert a.die_metrics.theta_max_c == pytest.approx(
                b.die_metrics.theta_max_c, abs=1e-9
            )
            assert a.mapping.active_cores == b.mapping.active_cores


class TestDesignSweepEvaluator:
    def test_designs_share_the_thermal_simulator(
        self, floorplan, power_model, coarse_thermal_simulator, x264
    ):
        sweep = DesignSweepEvaluator(
            floorplan,
            power_model=power_model,
            thermal_simulator=coarse_thermal_simulator,
        )
        activities = [
            CoreActivity.running(i, x264.core_power_parameters(), 2) for i in range(8)
        ]
        results = sweep.evaluate_many(
            [PAPER_OPTIMIZED_DESIGN, SEURET_REFERENCE_DESIGN],
            activities,
            3.2,
            memory_intensity=x264.memory_intensity,
            benchmark_name=x264.name,
        )
        assert len(results) == 2
        # The two designs genuinely differ thermally.
        assert (
            results[0].die_metrics.theta_max_c != results[1].die_metrics.theta_max_c
        )

    def test_single_design_equals_direct_simulation(
        self, floorplan, power_model, coarse_thermal_simulator, x264
    ):
        sweep = DesignSweepEvaluator(
            floorplan,
            power_model=power_model,
            thermal_simulator=coarse_thermal_simulator,
        )
        activities = [
            CoreActivity.running(i, x264.core_power_parameters(), 2) for i in range(8)
        ]
        batched = sweep.evaluate(
            PAPER_OPTIMIZED_DESIGN, activities, 3.2,
            memory_intensity=x264.memory_intensity,
        )
        direct = CooledServerSimulation(
            floorplan,
            design=PAPER_OPTIMIZED_DESIGN,
            power_model=power_model,
            thermal_simulator=coarse_thermal_simulator,
        ).simulate_activities(activities, 3.2, memory_intensity=x264.memory_intensity)
        assert batched.die_metrics.theta_max_c == pytest.approx(direct.die_metrics.theta_max_c)
        assert batched.package_power_w == pytest.approx(direct.package_power_w)
