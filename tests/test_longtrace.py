"""Golden validation of the adaptive coarsening + reduced-order lanes.

The coarse engine (control-period coarsening with the ROM lane,
PR 8's tentpole) must be an *observationally equivalent* accelerator of
the PR 7 fine engine, never a different model:

* on the diurnal and flash_crowd stress scenarios, a coarsened run
  reproduces every per-server within-period peak case temperature to
  0.1 C and misses/invents no thermal violations — while actually
  coarsening (the tests assert spans formed, so they cannot pass
  vacuously);
* the ROM lane falls back to the full solver near the thermal constraint
  (guard band) and on error-bound growth, observable through the
  :class:`~repro.thermal.rom.RomStats` counters;
* snapshot()/restore() stays lossless with the new lanes — a hold-only
  MPC run over a coarsened trace is bit-identical to the committed
  reactive trace with a frozen setpoint band, and a restored session
  replays identical spans;
* coarse runs are deterministic.
"""

import numpy as np
import pytest

from repro.datacenter.model import CoarseningConfig, DatacenterModel
from repro.datacenter.scenarios import build_scenario
from repro.datacenter.supervisory import (
    MpcSupervisoryController,
    SupervisoryController,
)
from repro.exceptions import ConfigurationError
from repro.thermal.rom import RomConfig
from repro.thermal.simulator import ThermalSimulator

CELL_SIZE_MM = 4.0
CONTROL_PERIOD_S = 2.0
DURATION_S = 240.0
PHASE_DT_S = 60.0
GOLDEN_TOL_C = 0.1


@pytest.fixture(scope="module", params=["diurnal", "flash_crowd"])
def scenario(request, floorplan):
    return build_scenario(
        request.param,
        n_racks=2,
        servers_per_rack=2,
        duration_s=DURATION_S,
        seed=3,
        phase_dt_s=PHASE_DT_S,
        floorplan=floorplan,
    )


def _model(scenario, floorplan, power_model, coarsening, **kwargs):
    return DatacenterModel(
        scenario.racks,
        floorplan=floorplan,
        power_model=power_model,
        thermal_simulator=ThermalSimulator(floorplan, cell_size_mm=CELL_SIZE_MM),
        control_period_s=CONTROL_PERIOD_S,
        coarsening=coarsening,
        **kwargs,
    )


def _run(scenario, floorplan, power_model, coarsening, **kwargs):
    supervisory = kwargs.pop("supervisory", None)
    model = _model(scenario, floorplan, power_model, coarsening, **kwargs)
    return model.run_trace(duration_s=DURATION_S, supervisory=supervisory)


def _peak_grid(trace):
    """(rack, period, server) within-period peak case temperatures."""
    return np.array(
        [
            [[d.period_peak_case_c for d in period] for period in rack.periods]
            for rack in trace.racks
        ]
    )


@pytest.fixture(scope="module")
def fine_trace(scenario, floorplan, power_model):
    return _run(scenario, floorplan, power_model, None)


@pytest.fixture(scope="module")
def coarse_trace(scenario, floorplan, power_model):
    return _run(scenario, floorplan, power_model, CoarseningConfig())


class TestGoldenEquivalence:
    def test_coarsening_actually_engaged(self, coarse_trace):
        assert coarse_trace.coarse_spans > 0
        assert coarse_trace.coarse_periods > 0
        assert coarse_trace.rom_stats is not None
        assert coarse_trace.rom_stats.rom_periods > 0

    def test_period_count_and_timestamps_match(self, fine_trace, coarse_trace):
        assert coarse_trace.n_periods == fine_trace.n_periods
        for rf, rc in zip(fine_trace.racks, coarse_trace.racks):
            times_f = [d.time_s for period in rf.periods for d in period]
            times_c = [d.time_s for period in rc.periods for d in period]
            assert times_c == times_f

    def test_per_server_peaks_within_golden_tolerance(
        self, fine_trace, coarse_trace
    ):
        diff = np.abs(_peak_grid(coarse_trace) - _peak_grid(fine_trace))
        assert float(diff.max()) < GOLDEN_TOL_C

    def test_no_missed_or_spurious_violations(self, fine_trace, coarse_trace):
        assert coarse_trace.thermal_violations == fine_trace.thermal_violations
        assert coarse_trace.peak_period_case_temperature_c == pytest.approx(
            fine_trace.peak_period_case_temperature_c, abs=GOLDEN_TOL_C
        )

    def test_plant_energy_matches(self, fine_trace, coarse_trace):
        assert coarse_trace.plant_energy_j == pytest.approx(
            fine_trace.plant_energy_j, rel=1e-6
        )

    def test_coarse_run_is_deterministic(
        self, scenario, floorplan, power_model, coarse_trace
    ):
        again = _run(scenario, floorplan, power_model, CoarseningConfig())
        assert again.plant_power_w == coarse_trace.plant_power_w
        assert np.array_equal(_peak_grid(again), _peak_grid(coarse_trace))


class TestRomFallback:
    def test_guard_band_forces_fallback_near_constraint(
        self, scenario, floorplan, power_model, fine_trace
    ):
        # A guard band wider than the whole margin to T_CASE_MAX turns every
        # ROM row into a guard fallback: the lane must *detect* proximity
        # and hand the rows to the full solver, never absorb them.
        coarsening = CoarseningConfig(rom=RomConfig(guard_band_c=60.0))
        trace = _run(scenario, floorplan, power_model, coarsening)
        assert trace.rom_stats is not None
        assert trace.rom_stats.fallback_guard > 0
        assert trace.rom_stats.rom_rows == 0
        # Fallback rows rerun the fine physics, so the golden bound holds.
        diff = np.abs(_peak_grid(trace) - _peak_grid(fine_trace))
        assert float(diff.max()) < GOLDEN_TOL_C
        assert trace.thermal_violations == fine_trace.thermal_violations

    def test_error_tolerance_forces_fallback(
        self, scenario, floorplan, power_model
    ):
        coarsening = CoarseningConfig(
            rom=RomConfig(step_error_tol_c=1e-12, projection_tol_c=1e-12)
        )
        trace = _run(scenario, floorplan, power_model, coarsening)
        assert trace.rom_stats is not None
        assert (
            trace.rom_stats.fallback_error + trace.rom_stats.fallback_projection
        ) > 0

    def test_macro_lane_without_rom(self, scenario, floorplan, power_model):
        trace = _run(scenario, floorplan, power_model, CoarseningConfig(rom=None))
        assert trace.coarse_spans > 0
        assert trace.rom_stats is not None
        assert trace.rom_stats.spans == 0


class TestSnapshotRestoreWithCoarseLanes:
    def test_hold_only_mpc_is_bit_identical_to_frozen_reactive(
        self, scenario, floorplan, power_model
    ):
        # The reactive controller with a frozen setpoint band emits HOLD
        # every window; hold-only MPC additionally snapshots, rolls out and
        # restores around each window.  Bit-identity of the committed traces
        # proves restore() also restores the coarse-span pattern.
        def run(supervisory):
            return _run(
                scenario,
                floorplan,
                power_model,
                CoarseningConfig(),
                supervisory=supervisory,
                supply_setpoint_c=30.0,
            )

        frozen = SupervisoryController(
            period_s=8.0, setpoint_min_c=30.0, setpoint_max_c=30.0
        )
        from repro.datacenter.mpc import CandidateTrajectory

        hold_only = MpcSupervisoryController(
            period_s=8.0,
            setpoint_min_c=30.0,
            setpoint_max_c=30.0,
            horizon=2,
            candidates=(CandidateTrajectory("hold", (0.0, 0.0)),),
        )
        reactive = run(frozen)
        mpc = run(hold_only)
        assert mpc.coarse_spans == reactive.coarse_spans
        assert mpc.setpoint_c == reactive.setpoint_c
        assert mpc.plant_power_w == reactive.plant_power_w
        assert np.array_equal(_peak_grid(mpc), _peak_grid(reactive))

    def test_restored_session_replays_identical_spans(
        self, scenario, floorplan, power_model
    ):
        session = _model(
            scenario, floorplan, power_model, CoarseningConfig()
        ).session()
        session.reset()
        for index in range(4):
            period = session.advance_period(index * CONTROL_PERIOD_S)
            session._note_period(period)
        snapshot = session.snapshot()
        first = session.advance_span(4 * CONTROL_PERIOD_S, 4)
        session.restore(snapshot)
        second = session.advance_span(4 * CONTROL_PERIOD_S, 4)
        for a, b in zip(first, second):
            assert a.plant_power_w == b.plant_power_w
            assert a.worst_period_peak_case_c == b.worst_period_peak_case_c
        assert snapshot.coarse_state is not None


class TestConfigValidation:
    def test_coarsening_requires_floor_engine(self, scenario, floorplan, power_model):
        with pytest.raises(ConfigurationError):
            _model(
                scenario,
                floorplan,
                power_model,
                CoarseningConfig(),
                engine="per-rack",
            )

    def test_coarsening_config_validation(self):
        with pytest.raises(Exception):
            CoarseningConfig(min_span=1)
        with pytest.raises(Exception):
            CoarseningConfig(min_span=8, max_span=4)
        with pytest.raises(Exception):
            CoarseningConfig(quasi_steady_tol_c=-1.0)

    def test_advance_span_requires_warm_floor(
        self, scenario, floorplan, power_model
    ):
        session = _model(
            scenario, floorplan, power_model, CoarseningConfig()
        ).session()
        session.reset()
        with pytest.raises(ConfigurationError):
            session.advance_span(0.0, 4)
