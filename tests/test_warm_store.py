"""Warm-store tests: persisted bases/operators across runs, bit-identically.

The :class:`~repro.thermal.warm_store.WarmStore` contract:

* a cold coarsened run populates the store (reduced operators + assembled
  systems) and a second run of the same floor reads everything back —
  ``RomStats.basis_builds == 0``, store hits on both entry kinds — while
  reproducing the cold trace bit for bit;
* robustness: corrupt or wrong-version entries are *stale* (counted,
  ignored, degrade to a cold build), never exceptions or wrong answers;
* first write wins, so rebuilds and concurrent writers cannot change what
  a warm run replays;
* the ``REPRO_WARM_STORE`` environment variable attaches a store to every
  hardware group's factorization cache without code changes.
"""

import shutil

import numpy as np
import pytest
from scipy import sparse

from repro.datacenter.model import CoarseningConfig, DatacenterModel
from repro.datacenter.scenarios import build_scenario
from repro.thermal.simulator import ThermalSimulator
from repro.thermal.warm_store import FORMAT_VERSION, WarmStore

CELL_SIZE_MM = 4.0
CONTROL_PERIOD_S = 2.0
DURATION_S = 240.0
PHASE_DT_S = 60.0


@pytest.fixture(scope="module")
def scenario(floorplan):
    return build_scenario(
        "diurnal",
        n_racks=2,
        servers_per_rack=2,
        duration_s=DURATION_S,
        seed=3,
        phase_dt_s=PHASE_DT_S,
        floorplan=floorplan,
    )


def _run(scenario, floorplan, power_model, store_path):
    """One coarsened run on a fresh simulator against the given store."""
    store = WarmStore(store_path)
    model = DatacenterModel(
        scenario.racks,
        floorplan=floorplan,
        power_model=power_model,
        thermal_simulator=ThermalSimulator(floorplan, cell_size_mm=CELL_SIZE_MM),
        control_period_s=CONTROL_PERIOD_S,
        coarsening=CoarseningConfig(),
        warm_store=store,
    )
    return model.run_trace(duration_s=DURATION_S), store


def _peak_grid(trace):
    return np.array(
        [
            [[d.period_peak_case_c for d in period] for period in rack.periods]
            for rack in trace.racks
        ]
    )


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("warm-store")


@pytest.fixture(scope="module")
def cold(scenario, floorplan, power_model, store_dir):
    return _run(scenario, floorplan, power_model, store_dir)


@pytest.fixture(scope="module")
def warm(scenario, floorplan, power_model, store_dir, cold):
    return _run(scenario, floorplan, power_model, store_dir)


class TestColdWarmRoundTrip:
    def test_cold_run_builds_and_populates(self, cold):
        trace, store = cold
        assert trace.coarse_spans > 0
        assert trace.rom_stats is not None
        assert trace.rom_stats.basis_builds > 0
        assert store.stats.stores > 0
        assert store.stats.reduced_misses > 0
        assert store.stats.system_misses > 0
        assert store.stats.stale == 0

    def test_warm_run_skips_every_arnoldi_build(self, warm):
        trace, store = warm
        assert trace.rom_stats is not None
        assert trace.rom_stats.basis_builds == 0
        assert store.stats.reduced_hits > 0

    def test_warm_run_reads_assembled_systems(self, warm):
        _, store = warm
        assert store.stats.system_hits > 0
        assert store.stats.stale == 0

    def test_warm_trace_is_bit_identical(self, cold, warm):
        cold_trace, _ = cold
        warm_trace, _ = warm
        assert warm_trace.n_periods == cold_trace.n_periods
        assert np.array_equal(_peak_grid(warm_trace), _peak_grid(cold_trace))
        assert warm_trace.plant_power_w == cold_trace.plant_power_w
        assert warm_trace.setpoint_c == cold_trace.setpoint_c
        assert warm_trace.coarse_spans == cold_trace.coarse_spans
        assert warm_trace.coarse_periods == cold_trace.coarse_periods

    def test_corrupt_store_degrades_to_cold(
        self, scenario, floorplan, power_model, cold, tmp_path
    ):
        """Truncate every entry: the run must match the cold trace exactly,
        count the stale entries, and rebuild everything it lost."""
        cold_trace, cold_store = cold
        corrupt_dir = tmp_path / "corrupted"
        shutil.copytree(cold_store.path, corrupt_dir)
        entries = sorted(corrupt_dir.glob("*.npz"))
        assert entries
        for entry in entries:
            entry.write_bytes(b"not an npz archive")
        trace, store = _run(scenario, floorplan, power_model, corrupt_dir)
        assert store.stats.stale > 0
        assert trace.rom_stats.basis_builds == cold_trace.rom_stats.basis_builds
        assert np.array_equal(_peak_grid(trace), _peak_grid(cold_trace))
        assert trace.plant_power_w == cold_trace.plant_power_w


class TestStoreUnit:
    def _system(self):
        matrix = sparse.csc_matrix(
            np.array([[4.0, 1.0, 0.0], [1.0, 3.0, 0.5], [0.0, 0.5, 2.0]])
        )
        rhs = np.array([1.0, 2.0, 3.0])
        return matrix, rhs

    def test_system_round_trip(self, tmp_path):
        store = WarmStore(tmp_path)
        matrix, rhs = self._system()
        key = store.system_key("net", "transient", ("token",), 0.5)
        assert store.store_system(key, matrix, rhs)
        loaded = store.load_system(key)
        assert loaded is not None
        loaded_matrix, loaded_rhs = loaded
        assert (loaded_matrix != matrix).nnz == 0
        assert np.array_equal(loaded_rhs, rhs)
        assert store.stats.system_hits == 1

    def test_first_write_wins(self, tmp_path):
        store = WarmStore(tmp_path)
        matrix, rhs = self._system()
        key = store.system_key("net", "steady", ("token",), None)
        assert store.store_system(key, matrix, rhs)
        assert not store.store_system(key, matrix * 2.0, rhs * 2.0)
        loaded_matrix, loaded_rhs = store.load_system(key)
        assert (loaded_matrix != matrix).nnz == 0
        assert np.array_equal(loaded_rhs, rhs)
        assert store.stats.stores == 1

    def test_missing_entry_is_a_miss_not_stale(self, tmp_path):
        store = WarmStore(tmp_path)
        key = store.system_key("net", "steady", ("token",), None)
        assert store.load_system(key) is None
        assert store.stats.system_misses == 1
        assert store.stats.stale == 0

    def test_wrong_format_version_is_stale(self, tmp_path):
        store = WarmStore(tmp_path)
        matrix, rhs = self._system()
        key = store.system_key("net", "transient", ("token",), 0.25)
        store.store_system(key, matrix, rhs)
        path = store._entry_path("system", key)
        payload = dict(np.load(path))
        payload["format_version"] = np.array(FORMAT_VERSION + 1)
        np.savez(path, **payload)
        assert store.load_system(key) is None
        assert store.stats.stale == 1

    def test_shape_mismatch_is_stale(self, tmp_path):
        store = WarmStore(tmp_path)
        matrix, rhs = self._system()
        key = store.system_key("net", "transient", ("token",), 0.125)
        store.store_system(key, matrix, np.append(rhs, 4.0))
        assert store.load_system(key) is None
        assert store.stats.stale == 1

    def test_distinct_keys_distinct_entries(self, tmp_path):
        store = WarmStore(tmp_path)
        a = store.system_key("net", "transient", ("token",), 0.5)
        b = store.system_key("net", "transient", ("token",), 0.25)
        c = store.system_key("other", "transient", ("token",), 0.5)
        paths = {store._entry_path("system", key) for key in (a, b, c)}
        assert len(paths) == 3


class TestEnvironmentAttach:
    def test_env_var_attaches_store(
        self, scenario, floorplan, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_WARM_STORE", str(tmp_path / "env-store"))
        model = DatacenterModel(
            scenario.racks,
            floorplan=floorplan,
            thermal_simulator=ThermalSimulator(
                floorplan, cell_size_mm=CELL_SIZE_MM
            ),
            control_period_s=CONTROL_PERIOD_S,
        )
        assert model.warm_store is not None
        assert model.thermal_simulator.solver_cache.warm_store is model.warm_store

    def test_unset_env_var_stays_cold(self, scenario, floorplan, monkeypatch):
        monkeypatch.delenv("REPRO_WARM_STORE", raising=False)
        model = DatacenterModel(
            scenario.racks,
            floorplan=floorplan,
            thermal_simulator=ThermalSimulator(
                floorplan, cell_size_mm=CELL_SIZE_MM
            ),
            control_period_s=CONTROL_PERIOD_S,
        )
        assert model.warm_store is None
        assert model.thermal_simulator.solver_cache.warm_store is None
