"""PARSEC benchmark database tests."""

import pytest

from repro.exceptions import ConfigurationError
from repro.workloads.parsec import (
    PARSEC_BENCHMARKS,
    PARSEC_BENCHMARK_NAMES,
    get_benchmark,
    worst_case_benchmark,
)


class TestDatabase:
    def test_thirteen_benchmarks(self):
        assert len(PARSEC_BENCHMARKS) == 13
        assert len(PARSEC_BENCHMARK_NAMES) == 13
        assert set(PARSEC_BENCHMARK_NAMES) == set(PARSEC_BENCHMARKS)

    def test_expected_names_present(self):
        for name in ("blackscholes", "canneal", "streamcluster", "x264", "swaptions"):
            assert name in PARSEC_BENCHMARKS

    def test_get_benchmark(self):
        benchmark = get_benchmark("ferret")
        assert benchmark.name == "ferret"

    def test_get_unknown_benchmark(self):
        with pytest.raises(ConfigurationError):
            get_benchmark("spec2017")

    def test_worst_case_benchmark_has_highest_core_power(self):
        worst = worst_case_benchmark()
        assert worst.core_dynamic_power_fmax_w == max(
            benchmark.core_dynamic_power_fmax_w for benchmark in PARSEC_BENCHMARKS.values()
        )


class TestCharacterisationSanity:
    def test_all_parameters_in_valid_ranges(self):
        for benchmark in PARSEC_BENCHMARKS.values():
            assert 0.0 < benchmark.parallel_fraction < 1.0
            assert 0.0 <= benchmark.memory_intensity <= 1.0
            assert 0.0 < benchmark.smt_gain < 1.0
            assert 2.0 < benchmark.core_dynamic_power_fmax_w < 8.0
            assert benchmark.baseline_time_s > 0.0

    def test_memory_bound_benchmarks_flagged(self):
        assert get_benchmark("canneal").memory_intensity > 0.7
        assert get_benchmark("streamcluster").memory_intensity > 0.7
        assert get_benchmark("swaptions").memory_intensity < 0.3

    def test_benchmark_diversity(self):
        """The suite must span scaling behaviours, not copies of one model."""
        fractions = {round(b.parallel_fraction, 3) for b in PARSEC_BENCHMARKS.values()}
        assert len(fractions) >= 8
        powers = {round(b.core_dynamic_power_fmax_w, 2) for b in PARSEC_BENCHMARKS.values()}
        assert len(powers) >= 8

    def test_normalized_time_spread_matches_fig3_shape(self):
        """At (2 cores, 4 threads, fmax) the suite spans roughly 1.3x-3x."""
        values = [
            benchmark.normalized_execution_time(2, 2, 3.2)
            for benchmark in PARSEC_BENCHMARKS.values()
        ]
        assert min(values) > 1.0
        assert max(values) < 3.5
        assert max(values) - min(values) > 0.5
