"""QoS constraint tests."""

import pytest

from repro.exceptions import ConfigurationError
from repro.workloads.configuration import Configuration, baseline_configuration
from repro.workloads.qos import PAPER_QOS_LEVELS, QoSConstraint, QoSRequirement


class TestQoSConstraint:
    def test_paper_levels(self):
        assert [c.degradation_factor for c in PAPER_QOS_LEVELS] == [1.0, 2.0, 3.0]

    def test_labels(self):
        assert QoSConstraint(2.0).label() == "2x"
        assert QoSConstraint(1.5).label() == "1.50x"

    def test_minimum_qos_is_inverse_of_degradation(self):
        assert QoSConstraint(2.0).minimum_qos == pytest.approx(0.5)

    def test_rejects_factors_below_one(self):
        with pytest.raises(ConfigurationError):
            QoSConstraint(0.5)

    def test_time_limit(self):
        assert QoSConstraint(2.0).time_limit_s(30.0) == pytest.approx(60.0)

    def test_satisfaction_by_time(self):
        constraint = QoSConstraint(2.0)
        assert constraint.is_satisfied_by_time(59.0, 30.0)
        assert constraint.is_satisfied_by_time(60.0, 30.0)
        assert not constraint.is_satisfied_by_time(61.0, 30.0)


class TestBenchmarkSatisfaction:
    def test_baseline_always_satisfies_1x(self, x264):
        constraint = QoSConstraint(1.0)
        assert constraint.is_satisfied_by(x264, baseline_configuration())

    def test_tiny_configuration_fails_1x(self, x264):
        constraint = QoSConstraint(1.0)
        assert not constraint.is_satisfied_by(x264, Configuration(1, 1, 2.6))

    def test_relaxed_constraints_admit_more_configurations(self, x264):
        from repro.workloads.configuration import default_configuration_space

        space = default_configuration_space()
        counts = [
            sum(1 for c in space if QoSConstraint(factor).is_satisfied_by(x264, c))
            for factor in (1.0, 2.0, 3.0)
        ]
        assert counts[0] <= counts[1] <= counts[2]
        assert counts[0] >= 1


class TestQoSRequirement:
    def test_latency_budget_defaults_to_benchmark(self, x264):
        requirement = QoSRequirement(benchmark=x264, constraint=QoSConstraint(2.0))
        assert requirement.idle_latency_budget_us == x264.tolerable_idle_latency_us

    def test_latency_budget_override(self, x264):
        requirement = QoSRequirement(
            benchmark=x264, constraint=QoSConstraint(2.0), tolerable_idle_latency_us=500.0
        )
        assert requirement.idle_latency_budget_us == 500.0
