"""Golden-model equivalence: batched lane march vs. the per-lane reference.

``EvaporatorModel.solve_channels`` marches all lanes together through NumPy
array arithmetic; the original scalar ``solve_channel`` is the golden model.
Every case requires the batched quality, fluid-temperature and HTC fields to
match the lane-by-lane march to <= 1e-12, across orientations, reversed
flow, dryout overload and subcooled / vapor-preloaded inlets — the fast path
only counts if it is the same physics.
"""

from __future__ import annotations

import numpy as np
import pytest

from reference_lane_march import reference_cooling_boundary
from repro.thermosyphon.design import PAPER_OPTIMIZED_DESIGN
from repro.thermosyphon.evaporator import EvaporatorModel
from repro.thermosyphon.loop import ThermosyphonLoop
from repro.thermosyphon.orientation import Orientation
from repro.thermosyphon.refrigerant import get_refrigerant

RTOL = 1e-12


def _assert_field_close(reference: np.ndarray, batched: np.ndarray) -> None:
    scale = max(float(np.abs(reference).max()), 1.0)
    np.testing.assert_allclose(batched, reference, rtol=RTOL, atol=RTOL * scale)


@pytest.fixture(scope="module")
def model():
    return EvaporatorModel(get_refrigerant("R236fa"))


def _lane_heats(n_lanes: int, n_cells: int, *, scale: float = 0.5) -> np.ndarray:
    """Deterministic uneven heat pattern: every lane differs."""
    rng = np.random.default_rng(n_lanes * 97 + n_cells)
    return scale * rng.random((n_lanes, n_cells))


#: (inlet_subcooling_c, inlet_quality, mass_flow_kg_s, heat_scale_w) cases:
#: subcooled inlet, saturated inlet, vapor-preloaded inlet (undercharge),
#: and a dryout overload.
MARCH_CASES = {
    "subcooled-inlet": (3.0, 0.0, 6e-5, 0.5),
    "saturated-inlet": (0.0, 0.0, 6e-5, 0.5),
    "vapor-preloaded": (0.0, 0.2, 6e-5, 0.5),
    "dryout-overload": (0.0, 0.0, 3e-5, 2.5),
    "deep-subcooling": (8.0, 0.0, 1e-4, 0.2),
}


class TestSolveChannelsEquivalence:
    @pytest.mark.parametrize("case", list(MARCH_CASES), ids=list(MARCH_CASES))
    @pytest.mark.parametrize("slope", [0.0, 0.015], ids=["flat-tsat", "sloped-tsat"])
    @pytest.mark.parametrize(
        "shape", [(6, 24), (1, 8), (17, 3)], ids=["6x24", "1x8", "17x3"]
    )
    def test_batched_matches_scalar_march(self, model, case, slope, shape):
        subcooling, inlet_quality, mass_flow, heat_scale = MARCH_CASES[case]
        heats = _lane_heats(*shape, scale=heat_scale)
        batch = model.solve_channels(
            heats,
            mass_flow,
            41.0,
            inlet_subcooling_c=subcooling,
            inlet_quality=inlet_quality,
            cell_base_area_m2=1e-6,
            saturation_slope_c_per_cell=slope,
        )
        for lane in range(shape[0]):
            scalar = model.solve_channel(
                heats[lane],
                mass_flow,
                41.0,
                inlet_subcooling_c=subcooling,
                inlet_quality=inlet_quality,
                cell_base_area_m2=1e-6,
                saturation_slope_c_per_cell=slope,
            )
            _assert_field_close(scalar.quality, batch.quality[lane])
            _assert_field_close(scalar.fluid_temperature_c, batch.fluid_temperature_c[lane])
            _assert_field_close(scalar.base_htc_w_m2k, batch.base_htc_w_m2k[lane])
            assert bool(batch.dryout_per_lane[lane]) == scalar.dryout
            assert batch.outlet_quality_per_lane[lane] == pytest.approx(
                scalar.outlet_quality, rel=RTOL
            )

    def test_dryout_case_actually_dries_out(self, model):
        """Guard: the overload case must exercise the dryout branch."""
        subcooling, inlet_quality, mass_flow, heat_scale = MARCH_CASES["dryout-overload"]
        batch = model.solve_channels(
            np.full((4, 30), heat_scale),
            mass_flow,
            41.0,
            inlet_subcooling_c=subcooling,
            inlet_quality=inlet_quality,
            cell_base_area_m2=1e-6,
        )
        assert batch.dryout
        assert batch.dryout_per_lane.all()

    def test_lane_accessor_round_trips(self, model):
        heats = _lane_heats(3, 10)
        batch = model.solve_channels(heats, 6e-5, 41.0, cell_base_area_m2=1e-6)
        lane = batch.lane(1)
        np.testing.assert_array_equal(lane.quality, batch.quality[1])
        assert lane.outlet_quality == pytest.approx(batch.outlet_quality_per_lane[1])

    def test_rejects_one_dimensional_input(self, model):
        with pytest.raises(Exception):
            model.solve_channels(np.ones(5), 1e-4, 41.0, cell_base_area_m2=1e-6)


def _power_map(shape: tuple[int, int], *, scale: float = 1.2) -> np.ndarray:
    """Deterministic non-uniform power map with a cold (zero-power) margin."""
    rng = np.random.default_rng(shape[0] * 13 + shape[1])
    power = scale * rng.random(shape)
    power[:, -max(shape[1] // 4, 1):] = 0.0  # dead area downstream, as on the die
    return power


class TestCoolingBoundaryEquivalence:
    PITCH = (1.5, 1.5)

    @pytest.mark.parametrize("orientation", list(Orientation), ids=[o.value for o in Orientation])
    @pytest.mark.parametrize("shape", [(10, 14), (1, 9), (8, 8)], ids=["10x14", "1x9", "8x8"])
    def test_matches_reference_across_orientations(self, orientation, shape):
        loop = ThermosyphonLoop(PAPER_OPTIMIZED_DESIGN.with_orientation(orientation))
        power = _power_map(shape)
        operating_point = loop.operating_point(float(power.sum()))
        reference = reference_cooling_boundary(loop, power, self.PITCH, operating_point)
        batched = loop.cooling_boundary(power, self.PITCH, operating_point)
        _assert_field_close(reference.boundary.htc_w_m2k, batched.boundary.htc_w_m2k)
        _assert_field_close(
            reference.boundary.fluid_temperature_c, batched.boundary.fluid_temperature_c
        )
        _assert_field_close(
            reference.outlet_quality_per_lane, batched.outlet_quality_per_lane
        )
        assert batched.max_quality == pytest.approx(reference.max_quality, rel=RTOL)
        assert batched.dryout == reference.dryout

    def test_matches_reference_with_vapor_preloaded_inlet(self):
        """Undercharged design: inlet quality > 0 skips the subcooled region."""
        design = PAPER_OPTIMIZED_DESIGN.with_filling_ratio(0.25)
        loop = ThermosyphonLoop(design)
        assert loop.filling_ratio_effects().inlet_quality > 0.0
        power = _power_map((9, 9))
        operating_point = loop.operating_point(float(power.sum()))
        reference = reference_cooling_boundary(loop, power, self.PITCH, operating_point)
        batched = loop.cooling_boundary(power, self.PITCH, operating_point)
        _assert_field_close(reference.boundary.htc_w_m2k, batched.boundary.htc_w_m2k)
        _assert_field_close(
            reference.boundary.fluid_temperature_c, batched.boundary.fluid_temperature_c
        )

    @pytest.mark.parametrize(
        "orientation",
        [Orientation.WEST_TO_EAST, Orientation.NORTH_TO_SOUTH],
        ids=["west-to-east", "north-to-south"],
    )
    def test_matches_reference_under_dryout_overload(self, orientation):
        loop = ThermosyphonLoop(PAPER_OPTIMIZED_DESIGN.with_orientation(orientation))
        power = _power_map((12, 12), scale=14.0)
        operating_point = loop.operating_point(float(power.sum()))
        reference = reference_cooling_boundary(loop, power, self.PITCH, operating_point)
        batched = loop.cooling_boundary(power, self.PITCH, operating_point)
        assert reference.dryout, "overload case must exercise the dryout branch"
        assert batched.dryout
        _assert_field_close(reference.boundary.htc_w_m2k, batched.boundary.htc_w_m2k)
        _assert_field_close(
            reference.boundary.fluid_temperature_c, batched.boundary.fluid_temperature_c
        )
        _assert_field_close(
            reference.outlet_quality_per_lane, batched.outlet_quality_per_lane
        )
