"""Phase-based workload trace tests."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.workloads.trace import PhasedTrace, TracePhase, generate_trace


class TestTracePhase:
    def test_rejects_invalid_values(self):
        with pytest.raises(Exception):
            TracePhase(duration_s=0.0, activity_factor=1.0, memory_intensity=0.5)
        with pytest.raises(Exception):
            TracePhase(duration_s=1.0, activity_factor=1.0, memory_intensity=1.5)
        with pytest.raises(ConfigurationError):
            TracePhase(duration_s=1.0, activity_factor=-0.1, memory_intensity=0.5)


class TestPhasedTrace:
    def test_duration_is_sum_of_phases(self):
        trace = PhasedTrace(
            "t",
            (
                TracePhase(2.0, 1.0, 0.3),
                TracePhase(3.0, 0.5, 0.6),
            ),
        )
        assert trace.duration_s == pytest.approx(5.0)

    def test_phase_lookup_by_time(self):
        trace = PhasedTrace(
            "t",
            (
                TracePhase(2.0, 1.0, 0.3),
                TracePhase(3.0, 0.5, 0.6),
            ),
        )
        assert trace.activity_at(1.0) == 1.0
        assert trace.activity_at(2.5) == 0.5
        assert trace.memory_intensity_at(4.9) == 0.6
        # Beyond the end the last phase applies.
        assert trace.activity_at(100.0) == 0.5

    def test_negative_time_rejected(self):
        trace = PhasedTrace("t", (TracePhase(1.0, 1.0, 0.5),))
        with pytest.raises(ConfigurationError):
            trace.phase_at(-0.1)

    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigurationError):
            PhasedTrace("t", ())

    def test_resample_shapes(self):
        trace = PhasedTrace("t", (TracePhase(2.0, 1.0, 0.3), TracePhase(2.0, 0.4, 0.8)))
        times, activities, memory = trace.resample(0.5)
        assert times.shape == activities.shape == memory.shape
        assert times[-1] < trace.duration_s

    def test_average_activity(self):
        trace = PhasedTrace("t", (TracePhase(1.0, 1.0, 0.3), TracePhase(1.0, 0.0, 0.3)))
        assert trace.average_activity() == pytest.approx(0.5)


class TestGeneratedTraces:
    def test_deterministic_for_same_benchmark(self, x264):
        first = generate_trace(x264)
        second = generate_trace(x264)
        assert [p.activity_factor for p in first.phases] == [
            p.activity_factor for p in second.phases
        ]

    def test_different_benchmarks_differ(self, x264, canneal):
        assert [p.activity_factor for p in generate_trace(x264).phases] != [
            p.activity_factor for p in generate_trace(canneal).phases
        ]

    def test_duration_matches_baseline_time(self, x264):
        trace = generate_trace(x264)
        assert trace.duration_s == pytest.approx(x264.baseline_time_s, rel=0.01)

    def test_explicit_duration(self, x264):
        trace = generate_trace(x264, total_duration_s=10.0)
        assert trace.duration_s == pytest.approx(10.0, rel=0.01)

    def test_activities_bounded(self, x264):
        trace = generate_trace(x264, n_steady_phases=10)
        assert all(0.0 <= phase.activity_factor <= 1.3 for phase in trace.phases)
        assert all(0.0 <= phase.memory_intensity <= 1.0 for phase in trace.phases)

    def test_invalid_phase_count(self, x264):
        with pytest.raises(ConfigurationError):
            generate_trace(x264, n_steady_phases=0)


class TestResampleEquivalence:
    """The vectorized resample against the scalar golden model.

    ``phase_at``/``activity_at``/``memory_intensity_at`` remain the scalar
    reference; the vectorized ``phase_indices_at``/``resample`` fast path
    must reproduce them sample for sample.
    """

    def _golden_resample(self, trace, dt_s):
        times = np.arange(0.0, trace.duration_s, dt_s)
        activities = np.array([trace.activity_at(t) for t in times])
        memory = np.array([trace.memory_intensity_at(t) for t in times])
        return times, activities, memory

    @pytest.mark.parametrize("dt_s", [0.1, 0.5, 1.0, 2.0, 3.7, 100.0])
    def test_matches_scalar_golden_model(self, x264, dt_s):
        trace = generate_trace(x264, n_steady_phases=7, total_duration_s=30.0)
        times, activities, memory = trace.resample(dt_s)
        golden_times, golden_activities, golden_memory = self._golden_resample(
            trace, dt_s
        )
        np.testing.assert_array_equal(times, golden_times)
        np.testing.assert_array_equal(activities, golden_activities)
        np.testing.assert_array_equal(memory, golden_memory)

    def test_matches_on_exact_phase_boundaries(self):
        """Samples landing exactly on boundaries pick the same phase."""
        trace = PhasedTrace(
            "t",
            (
                TracePhase(1.0, 0.2, 0.1),
                TracePhase(1.0, 0.4, 0.2),
                TracePhase(1.0, 0.8, 0.3),
            ),
        )
        times = np.array([0.0, 1.0, 2.0, 2.999999, 3.0, 50.0])
        indices = trace.phase_indices_at(times)
        for t, index in zip(times, indices):
            assert trace.phases[index] is trace.phase_at(t)

    def test_vectorized_lookup_rejects_negative_times(self):
        trace = PhasedTrace("t", (TracePhase(1.0, 1.0, 0.5),))
        with pytest.raises(ConfigurationError):
            trace.phase_indices_at(np.array([0.0, -0.5]))

    def test_single_phase_trace(self):
        trace = PhasedTrace("t", (TracePhase(2.0, 0.7, 0.4),))
        times, activities, memory = trace.resample(0.4)
        assert np.all(activities == 0.7)
        assert np.all(memory == 0.4)
        assert times.size == 5
