"""Golden-model reference: the original loop-based thermal network assembly.

This module preserves, verbatim, the pure-Python triple-loop assembler that
``repro.thermal.network.ThermalNetwork`` shipped with before it was
vectorized.  It is deliberately slow and deliberately unchanged: the
equivalence suite (``test_reference_equivalence.py``) checks that the
vectorized assembly reproduces these matrices, boundary terms and
capacitances to within floating-point accumulation noise (<= 1e-12
relative), and the assembly benchmark uses it as the speedup baseline.

Do not "improve" this file — its value is that it computes every conductance
one cell at a time, exactly the way the physics was first written down.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.exceptions import ValidationError
from repro.thermal.boundary import BottomBoundary, CoolingBoundary
from repro.thermal.grid import ThermalGrid


class ReferenceThermalNetwork:
    """Loop-based sparse conductance/capacitance assembly (golden model)."""

    def __init__(
        self,
        grid: ThermalGrid,
        die_mask: np.ndarray,
        bottom_boundary: BottomBoundary | None = None,
    ) -> None:
        die_mask = np.asarray(die_mask, dtype=bool)
        if die_mask.shape != (grid.n_rows, grid.n_columns):
            raise ValidationError(
                f"die mask shape {die_mask.shape} does not match grid "
                f"({grid.n_rows}, {grid.n_columns})"
            )
        self.grid = grid
        self.die_mask = die_mask
        self.bottom_boundary = bottom_boundary if bottom_boundary is not None else BottomBoundary()
        self._bulk_matrix, self._bottom_rhs = self._assemble_bulk()
        self._capacitance = self._assemble_capacitance()

    # ------------------------------------------------------------------ #
    # Assembly
    # ------------------------------------------------------------------ #
    def _cell_conductivity(self, layer_index: int, row: int, column: int) -> float:
        layer = self.grid.stack[layer_index]
        return layer.conductivity_at(bool(self.die_mask[row, column]))

    def _vertical_conductance(self, lower: int, upper: int, row: int, column: int) -> float:
        """Conductance between vertically adjacent cells (lower below upper)."""
        area = self.grid.cell_area_m2
        k_lower = self._cell_conductivity(lower, row, column)
        k_upper = self._cell_conductivity(upper, row, column)
        t_lower = self.grid.stack[lower].thickness_m
        t_upper = self.grid.stack[upper].thickness_m
        resistance = t_lower / (2.0 * k_lower * area) + t_upper / (2.0 * k_upper * area)
        return 1.0 / resistance

    def _lateral_conductance(
        self,
        layer_index: int,
        row_a: int,
        col_a: int,
        row_b: int,
        col_b: int,
    ) -> float:
        """Conductance between two horizontally adjacent cells of one layer."""
        thickness = self.grid.stack[layer_index].thickness_m
        k_a = self._cell_conductivity(layer_index, row_a, col_a)
        k_b = self._cell_conductivity(layer_index, row_b, col_b)
        if col_a != col_b:
            # east-west neighbours: cross-section = thickness x cell height
            length = self.grid.cell_width_m
            cross_section = thickness * self.grid.cell_height_m
        else:
            # north-south neighbours: cross-section = thickness x cell width
            length = self.grid.cell_height_m
            cross_section = thickness * self.grid.cell_width_m
        resistance = length / (2.0 * k_a * cross_section) + length / (2.0 * k_b * cross_section)
        return 1.0 / resistance

    def _assemble_bulk(self) -> tuple[sparse.csr_matrix, np.ndarray]:
        """Conduction network plus the (fixed) bottom boundary."""
        grid = self.grid
        n = grid.n_cells
        rows: list[int] = []
        cols: list[int] = []
        values: list[float] = []
        diag = np.zeros(n, dtype=float)
        bottom_rhs = np.zeros(n, dtype=float)

        def add_conductance(i: int, j: int, g: float) -> None:
            rows.append(i)
            cols.append(j)
            values.append(-g)
            rows.append(j)
            cols.append(i)
            values.append(-g)
            diag[i] += g
            diag[j] += g

        for layer in range(grid.n_layers):
            for row in range(grid.n_rows):
                for column in range(grid.n_columns):
                    index = grid.flat_index(layer, row, column)
                    # lateral east neighbour
                    if column + 1 < grid.n_columns:
                        g = self._lateral_conductance(layer, row, column, row, column + 1)
                        add_conductance(index, grid.flat_index(layer, row, column + 1), g)
                    # lateral north neighbour
                    if row + 1 < grid.n_rows:
                        g = self._lateral_conductance(layer, row, column, row + 1, column)
                        add_conductance(index, grid.flat_index(layer, row + 1, column), g)
                    # vertical neighbour above
                    if layer + 1 < grid.n_layers:
                        g = self._vertical_conductance(layer, layer + 1, row, column)
                        add_conductance(index, grid.flat_index(layer + 1, row, column), g)

        # Bottom boundary: bottom layer to ambient through the substrate/board.
        bottom = self.bottom_boundary
        if bottom.htc_w_m2k > 0.0:
            area = grid.cell_area_m2
            for row in range(grid.n_rows):
                for column in range(grid.n_columns):
                    index = grid.flat_index(0, row, column)
                    k = self._cell_conductivity(0, row, column)
                    thickness = grid.stack[0].thickness_m
                    resistance = thickness / (2.0 * k * area) + 1.0 / (bottom.htc_w_m2k * area)
                    g = 1.0 / resistance
                    diag[index] += g
                    bottom_rhs[index] += g * bottom.ambient_temperature_c

        rows.extend(range(n))
        cols.extend(range(n))
        values.extend(diag)
        matrix = sparse.coo_matrix((values, (rows, cols)), shape=(n, n)).tocsr()
        return matrix, bottom_rhs

    def _assemble_capacitance(self) -> np.ndarray:
        """Per-cell heat capacity in J/K."""
        grid = self.grid
        capacitance = np.zeros(grid.n_cells, dtype=float)
        for layer_index in range(grid.n_layers):
            layer = grid.stack[layer_index]
            volume = grid.cell_area_m2 * layer.thickness_m
            for row in range(grid.n_rows):
                for column in range(grid.n_columns):
                    index = grid.flat_index(layer_index, row, column)
                    capacitance[index] = volume * layer.volumetric_capacity_at(
                        bool(self.die_mask[row, column])
                    )
        return capacitance

    # ------------------------------------------------------------------ #
    # Per-simulation system assembly
    # ------------------------------------------------------------------ #
    def _top_boundary_terms(
        self, cooling: CoolingBoundary
    ) -> tuple[np.ndarray, np.ndarray]:
        """Diagonal additions and RHS contributions of the top boundary."""
        grid = self.grid
        if cooling.shape != (grid.n_rows, grid.n_columns):
            raise ValidationError(
                f"cooling boundary shape {cooling.shape} does not match grid "
                f"({grid.n_rows}, {grid.n_columns})"
            )
        top_layer = grid.n_layers - 1
        area = grid.cell_area_m2
        thickness = grid.stack[top_layer].thickness_m
        diag_add = np.zeros(grid.n_cells, dtype=float)
        rhs_add = np.zeros(grid.n_cells, dtype=float)
        for row in range(grid.n_rows):
            for column in range(grid.n_columns):
                h = float(cooling.htc_w_m2k[row, column])
                if h <= 0.0:
                    continue
                k = self._cell_conductivity(top_layer, row, column)
                resistance = thickness / (2.0 * k * area) + 1.0 / (h * area)
                g = 1.0 / resistance
                index = grid.flat_index(top_layer, row, column)
                diag_add[index] = g
                rhs_add[index] = g * float(cooling.fluid_temperature_c[row, column])
        return diag_add, rhs_add

    def power_vector(self, power_map_w: np.ndarray) -> np.ndarray:
        """Flat power-injection vector from a per-cell power map (heat source layer)."""
        grid = self.grid
        power_map_w = np.asarray(power_map_w, dtype=float)
        if power_map_w.shape != (grid.n_rows, grid.n_columns):
            raise ValidationError(
                f"power map shape {power_map_w.shape} does not match grid "
                f"({grid.n_rows}, {grid.n_columns})"
            )
        if np.any(power_map_w < 0.0):
            raise ValidationError("power map must be non-negative")
        vector = np.zeros(grid.n_cells, dtype=float)
        source_layer = grid.stack.heat_source_index
        vector[grid.layer_slice(source_layer)] = power_map_w.ravel()
        return vector

    def conductance_system(
        self, cooling: CoolingBoundary
    ) -> tuple[sparse.csr_matrix, np.ndarray]:
        """Full conductance matrix and boundary RHS for a cooling boundary."""
        diag_add, rhs_add = self._top_boundary_terms(cooling)
        matrix = (self._bulk_matrix + sparse.diags(diag_add)).tocsr()
        return matrix, self._bottom_rhs + rhs_add

    def system(
        self, power_map_w: np.ndarray, cooling: CoolingBoundary
    ) -> tuple[sparse.csr_matrix, np.ndarray]:
        """Full steady-state system ``A @ T = b`` for given power and cooling."""
        matrix, boundary_rhs = self.conductance_system(cooling)
        return matrix, boundary_rhs + self.power_vector(power_map_w)

    @property
    def capacitance(self) -> np.ndarray:
        """Per-cell heat capacity vector in J/K."""
        return self._capacitance.copy()

    @property
    def bulk_matrix(self) -> sparse.csr_matrix:
        """Conduction-plus-bottom-boundary matrix (no top boundary)."""
        return self._bulk_matrix.copy()
