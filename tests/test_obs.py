"""Unit tests for the observability layer (``repro.obs``).

The load-bearing guarantees:

* the span ring buffer is bounded — overflow evicts the oldest record
  and counts drops, it never grows or throws;
* span attribution is correct under threads: per-thread nesting stacks
  mean concurrent spans carry their own thread id and depth, both from
  raw threads and from the thread-parallel floor engine;
* exporters round-trip — a JSONL dump parses back and feeds the report
  builder, the Chrome trace document is schema-valid (Perfetto-loadable),
  Prometheus text exposition renders every metric family;
* the legacy stats surfaces (:class:`CacheStats`, :class:`RomStats`,
  :class:`WarmStoreStats`) are *views* over telemetry counter bags that
  behave exactly like the dataclasses they replaced.
"""

import io
import json
import threading

import numpy as np
import pytest
from scipy import sparse

from repro import obs
from repro.obs import (
    NULL_TELEMETRY,
    Counters,
    Histogram,
    Telemetry,
    Tracer,
    build_report,
    get_telemetry,
    prometheus_text,
    read_jsonl,
    render_report,
    run_manifest,
    set_telemetry,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.report import main as report_main
from repro.thermal.rom import RomStats
from repro.thermal.warm_store import WarmStore, WarmStoreStats


@pytest.fixture()
def hub():
    """A fresh installed hub, restored to the previous hub afterwards."""
    hub = Telemetry()
    previous = set_telemetry(hub)
    try:
        yield hub
    finally:
        set_telemetry(previous)


class TestCounters:
    def test_add_get_snapshot(self):
        counters = Counters()
        counters.add("a")
        counters.add("a", 4)
        counters.add("b", 2)
        assert counters.get("a") == 5
        assert counters.get("missing") == 0
        assert counters.snapshot() == {"a": 5, "b": 2}
        assert len(counters) == 2

    def test_snapshot_is_independent(self):
        counters = Counters()
        counters.add("a")
        snap = counters.snapshot()
        counters.add("a")
        assert snap == {"a": 1}

    def test_concurrent_increments_are_lossless(self):
        counters = Counters()

        def work():
            for _ in range(1000):
                counters.add("n")

        threads = [threading.Thread(target=work) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counters.get("n") == 8000


class TestHistogram:
    def test_bucket_placement(self):
        histogram = Histogram((1.0, 10.0, 100.0))
        for value in (0.5, 1.0, 5.0, 50.0, 500.0):
            histogram.observe(value)
        snap = histogram.snapshot()
        # 0.5 and 1.0 land in the first bucket (inclusive upper bound),
        # 500.0 lands in the implicit overflow bucket.
        assert snap["counts"] == [2, 1, 1, 1]
        assert snap["total"] == 5
        assert snap["sum"] == pytest.approx(556.5)

    def test_rejects_unsorted_or_empty_bounds(self):
        with pytest.raises(ValueError):
            Histogram(())
        with pytest.raises(ValueError):
            Histogram((10.0, 1.0))


class TestHub:
    def test_null_hub_is_default_and_inert(self):
        hub = get_telemetry()
        assert hub is NULL_TELEMETRY
        assert not hub.enabled
        hub.inc("x")
        hub.gauge("g", 1.0)
        hub.observe("h", 3.0)
        with hub.span("s", attr=1) as span:
            span.set(more=2)
        assert hub.counters.snapshot() == {}
        assert hub.tracer.started == 0
        assert hub.footer() == ""

    def test_set_telemetry_returns_previous(self, hub):
        assert get_telemetry() is hub
        other = Telemetry()
        assert set_telemetry(other) is hub
        assert set_telemetry(hub) is other

    def test_metric_families(self, hub):
        hub.inc("cache.hits", 3)
        hub.inc("cache.misses")
        hub.gauge("queue.depth", 4.0)
        hub.observe("latency_us", 42.0, bounds=(10.0, 100.0))
        with hub.span("work", kind="test"):
            pass
        assert hub.counters.get("cache.hits") == 3
        assert hub.gauges_snapshot() == {"queue.depth": 4.0}
        assert hub.histograms_snapshot()["latency_us"]["total"] == 1
        assert hub.tracer.started == 1

    def test_footer_mentions_spans_fallbacks_and_hit_rate(self, hub):
        with hub.span("s"):
            pass
        hub.inc("rom.fallback.guard", 2)
        hub.inc("cache.hits", 3)
        hub.inc("cache.misses", 1)
        footer = hub.footer()
        assert "1 spans" in footer
        assert "guard=2" in footer
        assert "75.0%" in footer


class TestRingBounding:
    def test_overflow_evicts_oldest_and_counts_drops(self):
        tracer = Tracer(capacity=8)
        for index in range(20):
            with tracer.span("s", {"i": index}):
                pass
        records = tracer.records()
        assert len(records) == 8
        assert tracer.started == 20
        assert tracer.dropped == 12
        # Oldest-first, truncated to the newest `capacity` spans.
        assert [record.attrs["i"] for record in records] == list(range(12, 20))

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestThreadedAttribution:
    def test_threads_keep_independent_nesting_stacks(self):
        tracer = Tracer()
        barrier = threading.Barrier(4)

        def work(label):
            barrier.wait()
            for _ in range(50):
                with tracer.span("outer", {"who": label}):
                    with tracer.span("inner", {"who": label}):
                        pass

        threads = [
            threading.Thread(target=work, args=(index,)) for index in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        records = tracer.records()
        assert len(records) == 4 * 50 * 2
        for record in records:
            expected_depth = 0 if record.name == "outer" else 1
            assert record.depth == expected_depth, record
        # Each record is attributed to the thread that ran it: within one
        # thread id, inner/outer alternate and counts match exactly.
        by_thread = {}
        for record in records:
            by_thread.setdefault(record.thread_id, []).append(record)
        assert len(by_thread) == 4
        for thread_records in by_thread.values():
            names = [record.name for record in thread_records]
            assert names.count("inner") == names.count("outer") == 50
            whos = {record.attrs["who"] for record in thread_records}
            assert len(whos) == 1

    def test_span_nesting_depth_is_per_thread_not_global(self):
        tracer = Tracer()
        ready = threading.Event()
        release = threading.Event()

        def other():
            ready.set()
            release.wait()
            with tracer.span("other.top", {}):
                pass

        thread = threading.Thread(target=other)
        thread.start()
        ready.wait()
        with tracer.span("main.top", {}):
            release.set()
            thread.join()
        for record in tracer.records():
            assert record.depth == 0


class TestExporters:
    def _populated(self):
        hub = Telemetry()
        hub.inc("cache.hits", 7)
        hub.inc("rom.fallback.guard", 1)
        hub.gauge("pool.workers", 2.0)
        hub.observe("floor.queue_latency_us", 12.0, bounds=(10.0, 100.0))
        with hub.span("floor.advance", n_substeps=4):
            with hub.span("rom.march", group=0):
                pass
        return hub

    def test_jsonl_round_trip(self):
        hub = self._populated()
        buffer = io.StringIO()
        count = write_jsonl(
            hub, buffer, manifest=run_manifest(config={"x": 1}, seed=3)
        )
        buffer.seek(0)
        events = read_jsonl(buffer)
        assert len(events) == count
        types = [event["type"] for event in events]
        assert types[0] == "manifest"
        assert "counter" in types and "gauge" in types
        assert "histogram" in types and "span_summary" in types
        assert types.count("span") == 2
        manifest = events[0]
        assert manifest["seed"] == 3
        assert manifest["config_digest"]
        span_names = {e["name"] for e in events if e["type"] == "span"}
        assert span_names == {"floor.advance", "rom.march"}

    def test_report_builds_from_round_tripped_events(self):
        hub = self._populated()
        buffer = io.StringIO()
        write_jsonl(hub, buffer)
        buffer.seek(0)
        report = build_report(read_jsonl(buffer))
        assert report["counters"]["cache.hits"] == 7
        assert set(report["layers"]) == {"floor", "rom"}
        assert report["rom_fallbacks"] == {"error": 0, "guard": 1, "projection": 0}
        text = render_report(read_jsonl(io.StringIO(buffer.getvalue())))
        assert "floor" in text and "rom" in text

    def test_chrome_trace_schema(self):
        hub = self._populated()
        buffer = io.StringIO()
        document = write_chrome_trace(hub, buffer)
        # The returned document and the written file agree.
        assert json.loads(buffer.getvalue()) == json.loads(
            json.dumps(document, default=str)
        )
        events = document["traceEvents"]
        assert events[0]["ph"] == "M"
        complete = [event for event in events if event["ph"] == "X"]
        assert len(complete) == 2
        for event in complete:
            assert set(event) >= {"name", "ph", "ts", "dur", "pid", "tid", "args"}
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
        # Nested span starts at or after its parent, within its extent.
        parent = next(e for e in complete if e["name"] == "floor.advance")
        child = next(e for e in complete if e["name"] == "rom.march")
        assert parent["ts"] <= child["ts"]
        assert child["ts"] + child["dur"] <= parent["ts"] + parent["dur"] + 1e-6

    def test_prometheus_text(self):
        text = prometheus_text(self._populated())
        assert "# TYPE repro_cache_hits counter" in text
        assert "repro_cache_hits 7" in text
        assert "# TYPE repro_pool_workers gauge" in text
        assert 'repro_floor_queue_latency_us_bucket{le="+Inf"} 1' in text
        assert "repro_floor_queue_latency_us_count 1" in text

    def test_report_cli(self, tmp_path, capsys):
        hub = self._populated()
        path = tmp_path / "run.jsonl"
        write_jsonl(hub, path, manifest=run_manifest(seed=11))
        assert report_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "floor" in out
        assert "seed" in out


class TestStatsViews:
    """The legacy stats dataclasses as views over telemetry counters."""

    def test_cache_stats_view_matches_legacy_dataclass(self, floorplan):
        # Old behaviour: two plain ints on the cache.  New behaviour: a
        # Counters bag rendered through the same frozen CacheStats.  Equal
        # field-for-field after a miss + two hits.
        from repro.floorplan.grid_mapper import GridMapper
        from repro.thermal.boundary import (
            BottomBoundary,
            uniform_cooling_boundary,
        )
        from repro.thermal.grid import ThermalGrid
        from repro.thermal.layers import standard_thermosyphon_stack
        from repro.thermal.network import ThermalNetwork
        from repro.thermal.solver_cache import CacheStats, FactorizationCache

        outline = floorplan.spreader_outline
        grid = ThermalGrid(outline, standard_thermosyphon_stack(), 9, 9)
        mapper = GridMapper(floorplan, outline, 9, 9)
        network = ThermalNetwork(grid, mapper.die_mask(), BottomBoundary())
        cache = FactorizationCache(network)
        boundary = uniform_cooling_boundary(9, 9, 1.5e4, 40.0)
        for _ in range(3):
            cache.steady_operator(boundary)
        assert cache.stats == CacheStats(
            hits=2, misses=1, steady_entries=1, transient_entries=0
        )
        assert cache.stats.hit_rate == pytest.approx(2 / 3)
        assert cache.stats + CacheStats.zero() == cache.stats

    def test_rom_stats_view_matches_legacy_dataclass(self):
        stats = RomStats(basis_builds=2, fallback_guard=1)
        assert stats.basis_builds == 2
        assert stats.fallback_guard == 1
        assert stats.spans == 0
        # Legacy mutation styles: augmented assignment and plain set.
        stats.spans += 3
        stats.rom_periods = 12
        assert stats.spans == 3 and stats.rom_periods == 12
        # copy / merge / delta / equality semantics of the old dataclass.
        before = stats.copy()
        stats.merge(RomStats(fallback_error=4, spans=1))
        assert stats.spans == 4 and stats.fallback_error == 4
        delta = stats.delta(before)
        assert delta == RomStats(fallback_error=4, spans=1)
        assert stats.fallbacks == 5
        with pytest.raises(TypeError):
            RomStats(not_a_field=1)

    def test_warm_store_stats_view_matches_legacy_dataclass(self, tmp_path):
        store = WarmStore(tmp_path)
        matrix = sparse.identity(4, format="csc")
        rhs = np.ones(4)
        key = store.system_key("net", "steady", ("b",), None)
        assert store.load_system(key) is None  # miss
        assert store.store_system(key, matrix, rhs)
        assert store.load_system(key) is not None  # hit
        assert store.stats == WarmStoreStats(
            system_hits=1, system_misses=1, stores=1
        )
        assert store.stats.hits == 1
        assert store.stats.misses == 1


class TestInstrumentedEngine:
    def test_threaded_floor_spans_attributed_per_group(
        self, hub, floorplan, power_model
    ):
        # A mixed-SKU floor (two hardware groups) under parallel_groups=2:
        # the pool actually runs, and span attribution must name each group
        # and survive the worker threads.
        from dataclasses import replace

        from repro.datacenter.model import DatacenterModel
        from repro.datacenter.scenarios import build_scenario
        from repro.floorplan.xeon_e5_v4 import build_xeon_e5_v4_floorplan
        from repro.thermal.simulator import ThermalSimulator

        skus = (floorplan, build_xeon_e5_v4_floorplan(spreader_size_mm=42.0))
        racks = []
        for index, sku in enumerate(skus):
            scenario = build_scenario(
                "diurnal",
                n_racks=1,
                servers_per_rack=2,
                duration_s=8.0,
                seed=3 + index,
                floorplan=sku,
            )
            racks.append(
                replace(
                    scenario.racks[0],
                    name=f"sku{index}",
                    floorplan=None if index == 0 else sku,
                )
            )
        model = DatacenterModel(
            tuple(racks),
            floorplan=skus[0],
            thermal_simulator=ThermalSimulator(skus[0], cell_size_mm=4.0),
            control_period_s=2.0,
            parallel_groups=2,
        )
        model.run_trace(duration_s=8.0)
        records = hub.tracer.records()
        advance = [r for r in records if r.name == "floor.advance"]
        groups = [r for r in records if r.name == "floor.advance_group"]
        assert advance and groups
        assert {record.attrs["group"] for record in groups} == {0, 1}
        # Group spans ran on pool worker threads, never on the advancing
        # thread; per-thread stacks keep each at depth 0 on its worker.
        advancing_threads = {record.thread_id for record in advance}
        for record in groups:
            assert record.thread_id not in advancing_threads
            assert record.depth == 0
        # The queue-latency histogram saw one observation per group task.
        latency = hub.histograms_snapshot()["floor.queue_latency_us"]
        assert latency["total"] == len(groups)
        assert hub.counters.get("session.periods") == 4
