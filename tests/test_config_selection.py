"""Algorithm 1 configuration-selection tests."""

import pytest

from repro.core.config_selection import QoSAwareConfigSelector
from repro.exceptions import QoSViolationError
from repro.workloads.configuration import Configuration, baseline_configuration
from repro.workloads.parsec import PARSEC_BENCHMARKS
from repro.workloads.qos import QoSConstraint


@pytest.fixture(scope="module")
def selector(profiler):
    return QoSAwareConfigSelector(profiler)


class TestSelection:
    def test_selection_satisfies_constraint(self, selector, x264):
        for factor in (1.0, 2.0, 3.0):
            constraint = QoSConstraint(factor)
            selection = selector.select(x264, constraint)
            assert selection.selected.satisfies(constraint)

    def test_selection_is_minimum_power_feasible(self, selector, profiler, x264):
        constraint = QoSConstraint(2.0)
        selection = selector.select(x264, constraint)
        feasible = [
            record
            for record in profiler.profile(x264)
            if record.satisfies(constraint)
        ]
        assert selection.package_power_w == pytest.approx(
            min(record.package_power_w for record in feasible)
        )

    def test_1x_requires_full_configuration(self, selector, x264):
        selection = selector.select(x264, QoSConstraint(1.0))
        assert selection.configuration == baseline_configuration()

    def test_relaxed_qos_never_increases_power(self, selector):
        for benchmark in PARSEC_BENCHMARKS.values():
            powers = [
                selector.select(benchmark, QoSConstraint(factor)).package_power_w
                for factor in (1.0, 2.0, 3.0)
            ]
            assert powers[0] >= powers[1] >= powers[2]

    def test_relaxed_qos_uses_fewer_or_equal_cores(self, selector, x264):
        cores = [
            selector.select(x264, QoSConstraint(factor)).configuration.n_cores
            for factor in (1.0, 3.0)
        ]
        assert cores[1] <= cores[0]

    def test_select_all_covers_benchmarks(self, selector):
        benchmarks = tuple(PARSEC_BENCHMARKS.values())[:4]
        selections = selector.select_all(benchmarks, QoSConstraint(2.0))
        assert set(selections) == {benchmark.name for benchmark in benchmarks}

    def test_infeasible_space_raises(self, profiler, x264):
        restricted = QoSAwareConfigSelector(
            profiler, configurations=(Configuration(1, 1, 2.6),)
        )
        with pytest.raises(QoSViolationError):
            restricted.select(x264, QoSConstraint(1.0))

    def test_power_savings_vs_baseline(self, selector, x264):
        savings = selector.power_savings_vs_baseline(x264, QoSConstraint(3.0))
        assert 0.0 < savings < 1.0
        assert selector.power_savings_vs_baseline(x264, QoSConstraint(1.0)) == pytest.approx(
            0.0, abs=1e-9
        )
