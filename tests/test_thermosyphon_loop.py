"""Thermosyphon loop and design tests."""

import numpy as np
import pytest

from repro.thermosyphon.design import (
    PAPER_OPTIMIZED_DESIGN,
    SEURET_REFERENCE_DESIGN,
    ThermosyphonDesign,
)
from repro.thermosyphon.loop import ThermosyphonLoop
from repro.thermosyphon.orientation import Orientation


class TestDesign:
    def test_paper_design_parameters(self):
        assert PAPER_OPTIMIZED_DESIGN.refrigerant_name == "R236fa"
        assert PAPER_OPTIMIZED_DESIGN.filling_ratio == pytest.approx(0.55)
        assert PAPER_OPTIMIZED_DESIGN.orientation is Orientation.WEST_TO_EAST
        assert PAPER_OPTIMIZED_DESIGN.water_flow_rate_kg_h == pytest.approx(7.0)
        assert PAPER_OPTIMIZED_DESIGN.water_inlet_temperature_c == pytest.approx(30.0)

    def test_reference_design_differs(self):
        assert SEURET_REFERENCE_DESIGN.orientation is not PAPER_OPTIMIZED_DESIGN.orientation

    def test_variants(self):
        rotated = PAPER_OPTIMIZED_DESIGN.with_orientation(Orientation.SOUTH_TO_NORTH)
        assert rotated.orientation is Orientation.SOUTH_TO_NORTH
        assert rotated.name != PAPER_OPTIMIZED_DESIGN.name
        recharged = PAPER_OPTIMIZED_DESIGN.with_filling_ratio(0.4)
        assert recharged.filling_ratio == pytest.approx(0.4)
        swapped = PAPER_OPTIMIZED_DESIGN.with_refrigerant("R134a")
        assert swapped.refrigerant_name == "R134a"
        rewatered = PAPER_OPTIMIZED_DESIGN.with_water(25.0, 10.0)
        assert rewatered.water_loop().inlet_temperature_c == 25.0

    def test_invalid_design_rejected(self):
        with pytest.raises(Exception):
            ThermosyphonDesign(name="bad", filling_ratio=1.5)
        with pytest.raises(Exception):
            ThermosyphonDesign(name="bad", refrigerant_name="unknown")
        with pytest.raises(Exception):
            ThermosyphonDesign(name="")


class TestFillingRatioEffects:
    def test_nominal_fill_has_full_head_and_no_flooding(self):
        effects = ThermosyphonLoop(PAPER_OPTIMIZED_DESIGN).filling_ratio_effects()
        assert effects.head_factor == pytest.approx(1.0)
        assert effects.flooding_penalty == 0.0
        assert effects.inlet_quality == 0.0
        assert effects.inlet_subcooling_c > 0.0

    def test_undercharge_reduces_head_and_adds_inlet_vapor(self):
        loop = ThermosyphonLoop(PAPER_OPTIMIZED_DESIGN.with_filling_ratio(0.25))
        effects = loop.filling_ratio_effects()
        assert effects.head_factor < 1.0
        assert effects.inlet_quality > 0.0
        assert effects.inlet_subcooling_c == 0.0

    def test_overcharge_floods_condenser(self):
        loop = ThermosyphonLoop(PAPER_OPTIMIZED_DESIGN.with_filling_ratio(0.85))
        assert loop.filling_ratio_effects().flooding_penalty > 0.0


class TestOperatingPoint:
    def test_saturation_above_water_inlet(self, thermosyphon_loop):
        point = thermosyphon_loop.operating_point(70.0)
        assert point.saturation_temperature_c > 30.0
        assert point.water_outlet_temperature_c > 30.0

    def test_mass_flow_positive_and_reasonable(self, thermosyphon_loop):
        point = thermosyphon_loop.operating_point(70.0)
        assert 1.0 < point.mass_flow_kg_h < 40.0

    def test_more_heat_raises_saturation_and_quality(self, thermosyphon_loop):
        low = thermosyphon_loop.operating_point(40.0)
        high = thermosyphon_loop.operating_point(80.0)
        assert high.saturation_temperature_c > low.saturation_temperature_c
        assert high.mean_outlet_quality > low.mean_outlet_quality

    def test_zero_heat_is_benign(self, thermosyphon_loop):
        point = thermosyphon_loop.operating_point(0.0)
        assert point.saturation_temperature_c == pytest.approx(30.0, abs=0.5)

    def test_zero_heat_mass_flow_short_circuits(self, thermosyphon_loop):
        """Zero-heat calls never enter the iteration loop."""
        flow, outlet_quality, iterations = thermosyphon_loop.solve_mass_flow(0.0, 35.0, 0.1)
        assert iterations == 0
        assert flow > 0.0
        assert outlet_quality == pytest.approx(0.1)

    def test_colder_water_lowers_saturation(self, thermosyphon_loop):
        nominal = thermosyphon_loop.operating_point(70.0)
        cold = thermosyphon_loop.operating_point(
            70.0, PAPER_OPTIMIZED_DESIGN.water_loop().with_inlet_temperature(20.0)
        )
        assert cold.saturation_temperature_c < nominal.saturation_temperature_c

    def test_undercharged_loop_circulates_less(self):
        nominal = ThermosyphonLoop(PAPER_OPTIMIZED_DESIGN).operating_point(70.0)
        starved = ThermosyphonLoop(
            PAPER_OPTIMIZED_DESIGN.with_filling_ratio(0.25)
        ).operating_point(70.0)
        assert starved.mass_flow_kg_s < nominal.mass_flow_kg_s


class TestCoolingBoundaryConstruction:
    def _power_map(self, coarse_thermal_simulator, x264, power_model):
        from repro.power.power_model import CoreActivity

        activities = [
            CoreActivity.running(i, x264.core_power_parameters(), 2) for i in range(8)
        ]
        breakdown = power_model.evaluate(activities, 3.2, memory_intensity=x264.memory_intensity)
        return coarse_thermal_simulator.power_map(breakdown.component_power_w)

    def test_boundary_matches_grid_shape(
        self, thermosyphon_loop, coarse_thermal_simulator, x264, power_model
    ):
        power_map = self._power_map(coarse_thermal_simulator, x264, power_model)
        result = thermosyphon_loop.cooling_boundary(
            power_map, coarse_thermal_simulator.grid.cell_pitch_mm()
        )
        assert result.boundary.shape == power_map.shape
        assert result.max_quality >= result.outlet_quality_per_lane.max() - 1e-9

    def test_fluid_temperature_never_exceeds_saturation(
        self, thermosyphon_loop, coarse_thermal_simulator, x264, power_model
    ):
        power_map = self._power_map(coarse_thermal_simulator, x264, power_model)
        operating_point = thermosyphon_loop.operating_point(float(power_map.sum()))
        result = thermosyphon_loop.cooling_boundary(
            power_map, coarse_thermal_simulator.grid.cell_pitch_mm(), operating_point
        )
        assert (
            result.boundary.fluid_temperature_c
            <= operating_point.saturation_temperature_c + 1e-6
        ).all()

    def test_htc_positive_over_powered_region(
        self, thermosyphon_loop, coarse_thermal_simulator, x264, power_model
    ):
        power_map = self._power_map(coarse_thermal_simulator, x264, power_model)
        result = thermosyphon_loop.cooling_boundary(
            power_map, coarse_thermal_simulator.grid.cell_pitch_mm()
        )
        assert (result.boundary.htc_w_m2k > 0.0).all()

    def test_orientation_changes_boundary_pattern(
        self, coarse_thermal_simulator, x264, power_model
    ):
        power_map = self._power_map(coarse_thermal_simulator, x264, power_model)
        pitch = coarse_thermal_simulator.grid.cell_pitch_mm()
        east = ThermosyphonLoop(PAPER_OPTIMIZED_DESIGN).cooling_boundary(power_map, pitch)
        south = ThermosyphonLoop(
            PAPER_OPTIMIZED_DESIGN.with_orientation(Orientation.NORTH_TO_SOUTH)
        ).cooling_boundary(power_map, pitch)
        assert not np.allclose(east.boundary.htc_w_m2k, south.boundary.htc_w_m2k)

    def test_one_dimensional_power_map_rejected(self, thermosyphon_loop):
        with pytest.raises(Exception):
            thermosyphon_loop.cooling_boundary(np.ones(10), (1.0, 1.0))
