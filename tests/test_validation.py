"""Validation helper tests."""

import math

import pytest

from repro.exceptions import ValidationError
from repro.utils import validation


class TestCheckFinite:
    def test_accepts_numbers(self):
        assert validation.check_finite(3.5, "x") == 3.5
        assert validation.check_finite(-2, "x") == -2.0

    def test_rejects_nan_and_inf(self):
        with pytest.raises(ValidationError):
            validation.check_finite(math.nan, "x")
        with pytest.raises(ValidationError):
            validation.check_finite(math.inf, "x")

    def test_rejects_non_numbers(self):
        with pytest.raises(ValidationError):
            validation.check_finite("3.0", "x")
        with pytest.raises(ValidationError):
            validation.check_finite(True, "x")

    def test_error_message_includes_name(self):
        with pytest.raises(ValidationError, match="flow_rate"):
            validation.check_finite(math.nan, "flow_rate")


class TestCheckPositive:
    def test_accepts_positive(self):
        assert validation.check_positive(0.001, "x") == 0.001

    def test_rejects_zero_and_negative(self):
        with pytest.raises(ValidationError):
            validation.check_positive(0.0, "x")
        with pytest.raises(ValidationError):
            validation.check_positive(-1.0, "x")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert validation.check_non_negative(0.0, "x") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            validation.check_non_negative(-1e-9, "x")


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert validation.check_in_range(0.0, 0.0, 1.0, "x") == 0.0
        assert validation.check_in_range(1.0, 0.0, 1.0, "x") == 1.0

    def test_exclusive_bounds(self):
        with pytest.raises(ValidationError):
            validation.check_in_range(0.0, 0.0, 1.0, "x", inclusive=False)
        assert validation.check_in_range(0.5, 0.0, 1.0, "x", inclusive=False) == 0.5

    def test_out_of_range(self):
        with pytest.raises(ValidationError):
            validation.check_in_range(1.2, 0.0, 1.0, "x")


class TestCheckFraction:
    def test_accepts_fractions(self):
        assert validation.check_fraction(0.55, "fill") == 0.55

    def test_rejects_above_one(self):
        with pytest.raises(ValidationError):
            validation.check_fraction(1.01, "fill")


class TestIntegerChecks:
    def test_positive_int(self):
        assert validation.check_positive_int(3, "n") == 3
        with pytest.raises(ValidationError):
            validation.check_positive_int(0, "n")
        with pytest.raises(ValidationError):
            validation.check_positive_int(2.0, "n")
        with pytest.raises(ValidationError):
            validation.check_positive_int(True, "n")

    def test_non_negative_int(self):
        assert validation.check_non_negative_int(0, "n") == 0
        with pytest.raises(ValidationError):
            validation.check_non_negative_int(-1, "n")
