"""Runtime thermosyphon controller tests."""

import pytest

from repro.core.mapping import ThreadMapper
from repro.core.mapping_policies import ProposedThermalAwareMapping
from repro.core.pipeline import CooledServerSimulation
from repro.core.runtime_controller import (
    ControllerAction,
    ThermosyphonController,
)
from repro.thermal.simulator import ThermalSimulator
from repro.thermosyphon.design import PAPER_OPTIMIZED_DESIGN
from repro.workloads.configuration import Configuration
from repro.workloads.qos import QoSConstraint
from repro.workloads.trace import PhasedTrace, TracePhase


@pytest.fixture(scope="module")
def simulation(floorplan, power_model, coarse_thermal_simulator):
    return CooledServerSimulation(
        floorplan,
        design=PAPER_OPTIMIZED_DESIGN,
        power_model=power_model,
        thermal_simulator=coarse_thermal_simulator,
    )


@pytest.fixture(scope="module")
def mapping(floorplan, x264):
    mapper = ThreadMapper(floorplan)
    return mapper.map(x264, Configuration(8, 2, 3.2), ProposedThermalAwareMapping())


def _evaluate(simulation, x264, mapping, water_loop):
    return simulation.simulate_mapping(x264, mapping, water_loop=water_loop)


class TestDecisions:
    def test_no_action_when_cool(self, simulation, x264, mapping):
        controller = ThermosyphonController(simulation, t_case_max_c=85.0, relax_margin_c=100.0)
        water_loop = PAPER_OPTIMIZED_DESIGN.water_loop()
        result = _evaluate(simulation, x264, mapping, water_loop)
        action, new_loop, frequency = controller.decide(
            result, water_loop, x264, QoSConstraint(2.0)
        )
        assert action is ControllerAction.NONE
        assert new_loop.flow_rate_kg_h == water_loop.flow_rate_kg_h
        assert frequency == 3.2

    def test_emergency_opens_valve_first(self, simulation, x264, mapping):
        # An artificially low limit forces a thermal emergency.
        controller = ThermosyphonController(simulation, t_case_max_c=40.0)
        water_loop = PAPER_OPTIMIZED_DESIGN.water_loop()
        result = _evaluate(simulation, x264, mapping, water_loop)
        action, new_loop, frequency = controller.decide(
            result, water_loop, x264, QoSConstraint(2.0)
        )
        assert action is ControllerAction.INCREASE_FLOW
        assert new_loop.flow_rate_kg_h > water_loop.flow_rate_kg_h
        assert frequency == 3.2

    def test_valve_saturated_then_frequency_reduced_if_qos_allows(
        self, simulation, x264, mapping
    ):
        controller = ThermosyphonController(simulation, t_case_max_c=40.0)
        water_loop = PAPER_OPTIMIZED_DESIGN.water_loop().with_flow_rate(1000.0)
        assert water_loop.at_maximum_flow
        result = _evaluate(simulation, x264, mapping, water_loop)
        action, _, frequency = controller.decide(result, water_loop, x264, QoSConstraint(3.0))
        assert action is ControllerAction.LOWER_FREQUENCY
        assert frequency < 3.2

    def test_emergency_reported_when_qos_blocks_dvfs(self, simulation, x264, mapping):
        controller = ThermosyphonController(simulation, t_case_max_c=40.0)
        water_loop = PAPER_OPTIMIZED_DESIGN.water_loop().with_flow_rate(1000.0)
        result = _evaluate(simulation, x264, mapping, water_loop)
        # 1x QoS forbids any slowdown, so no frequency reduction is possible.
        action, _, frequency = controller.decide(result, water_loop, x264, QoSConstraint(1.0))
        assert action is ControllerAction.EMERGENCY
        assert frequency == 3.2

    def test_valve_relaxes_when_well_below_limit(self, simulation, x264, mapping):
        controller = ThermosyphonController(simulation, t_case_max_c=85.0, relax_margin_c=5.0)
        water_loop = PAPER_OPTIMIZED_DESIGN.water_loop().with_flow_rate(20.0)
        result = _evaluate(simulation, x264, mapping, water_loop)
        action, new_loop, _ = controller.decide(result, water_loop, x264, QoSConstraint(2.0))
        assert action is ControllerAction.DECREASE_FLOW
        assert new_loop.flow_rate_kg_h < 20.0


class TestTraceExecution:
    def test_run_trace_produces_decisions(self, simulation, x264, mapping):
        controller = ThermosyphonController(simulation, control_period_s=5.0)
        trace = PhasedTrace(
            "synthetic",
            (
                TracePhase(10.0, 1.0, 0.5),
                TracePhase(10.0, 0.6, 0.5),
            ),
        )
        record = controller.run_trace(x264, mapping, QoSConstraint(2.0), trace)
        assert len(record.decisions) == 4
        assert record.emergencies == 0
        assert record.peak_case_temperature_c > 30.0
        # Activity drop in the second phase lowers the package power.
        assert record.decisions[-1].package_power_w < record.decisions[0].package_power_w

    def test_run_trace_counts_actions(self, simulation, x264, mapping):
        controller = ThermosyphonController(
            simulation, t_case_max_c=40.0, control_period_s=5.0
        )
        trace = PhasedTrace("hot", (TracePhase(15.0, 1.0, 0.5),))
        record = controller.run_trace(x264, mapping, QoSConstraint(3.0), trace)
        assert record.flow_increases >= 1

    def test_run_trace_records_evaluated_flow_not_next_periods(
        self, simulation, x264, mapping
    ):
        """Regression: decisions must report the actuators the period ran with.

        The first period is evaluated at the initial water flow; even though
        the emergency action opens the valve for the *next* period, the first
        decision must still show the initial flow, and the raised flow must
        appear in the second decision.
        """
        controller = ThermosyphonController(
            simulation, t_case_max_c=40.0, control_period_s=5.0, flow_step_kg_h=2.0
        )
        initial_loop = PAPER_OPTIMIZED_DESIGN.water_loop()
        trace = PhasedTrace("hot", (TracePhase(15.0, 1.0, 0.5),))
        record = controller.run_trace(
            x264, mapping, QoSConstraint(3.0), trace, initial_water_loop=initial_loop
        )
        first, second = record.decisions[0], record.decisions[1]
        assert first.action is ControllerAction.INCREASE_FLOW
        assert first.water_flow_kg_h == pytest.approx(initial_loop.flow_rate_kg_h)
        assert second.water_flow_kg_h == pytest.approx(
            initial_loop.flow_rate_kg_h + controller.flow_step_kg_h
        )

    def test_run_trace_records_evaluated_frequency_not_next_periods(
        self, simulation, x264, mapping
    ):
        """Regression: a DVFS down-step belongs to the *following* decision."""
        controller = ThermosyphonController(
            simulation, t_case_max_c=40.0, control_period_s=5.0
        )
        saturated = PAPER_OPTIMIZED_DESIGN.water_loop().with_flow_rate(1000.0)
        trace = PhasedTrace("hot", (TracePhase(15.0, 1.0, 0.5),))
        record = controller.run_trace(
            x264, mapping, QoSConstraint(3.0), trace, initial_water_loop=saturated
        )
        first, second = record.decisions[0], record.decisions[1]
        assert first.action is ControllerAction.LOWER_FREQUENCY
        assert first.frequency_ghz == pytest.approx(3.2)
        assert second.frequency_ghz < 3.2

    def test_steady_mode_reuses_mapping_object(
        self, simulation, x264, mapping, monkeypatch
    ):
        """Without DVFS actions the controller must not rebuild mappings."""
        seen = []
        original = simulation.session.solve_steady_mapping

        def spy(benchmark, current_mapping, **kwargs):
            seen.append(current_mapping)
            return original(benchmark, current_mapping, **kwargs)

        monkeypatch.setattr(simulation.session, "solve_steady_mapping", spy)
        controller = ThermosyphonController(
            simulation, control_period_s=5.0, relax_margin_c=100.0
        )
        trace = PhasedTrace("calm", (TracePhase(15.0, 0.8, 0.5),))
        controller.run_trace(x264, mapping, QoSConstraint(2.0), trace)
        assert len(seen) == 3
        assert all(m is mapping for m in seen)

    def test_invalid_mode_rejected(self, simulation, x264, mapping):
        controller = ThermosyphonController(simulation)
        trace = PhasedTrace("t", (TracePhase(4.0, 1.0, 0.5),))
        with pytest.raises(Exception):
            controller.run_trace(x264, mapping, QoSConstraint(2.0), trace, mode="warp")


def _jittered_trace(n_periods: int, period_s: float) -> PhasedTrace:
    """Every period a distinct activity factor (small jitter around 0.9).

    This is the regime the paper's runtime claim cares about: real
    workloads jitter constantly, so the quasi-static path sees a new
    cooling boundary — and refactorizes — nearly every period, while the
    warm-start transient lane holds its operator.
    """
    phases = tuple(
        TracePhase(period_s, 0.9 + 0.001 * index, 0.5) for index in range(n_periods)
    )
    return PhasedTrace("jittered", phases)


class TestTransientMode:
    def test_transient_trace_produces_full_record(self, simulation, x264, mapping):
        controller = ThermosyphonController(simulation, control_period_s=5.0)
        trace = PhasedTrace(
            "synthetic",
            (
                TracePhase(10.0, 1.0, 0.5),
                TracePhase(10.0, 0.6, 0.5),
            ),
        )
        record = controller.run_trace(
            x264, mapping, QoSConstraint(2.0), trace, mode="transient"
        )
        assert record.mode == "transient"
        assert len(record.decisions) == 4
        assert record.peak_case_temperature_c > 30.0
        for decision in record.decisions:
            assert decision.settle_residual_c is not None
            assert decision.settle_residual_c >= 0.0
            assert decision.period_peak_case_c is not None
        assert "transient mode" in record.summary()

    def test_steady_decisions_have_no_transient_fields(self, simulation, x264, mapping):
        controller = ThermosyphonController(simulation, control_period_s=5.0)
        trace = PhasedTrace("t", (TracePhase(10.0, 1.0, 0.5),))
        record = controller.run_trace(x264, mapping, QoSConstraint(2.0), trace)
        assert record.mode == "steady"
        assert all(d.settle_residual_c is None for d in record.decisions)
        assert all(d.period_peak_case_c is None for d in record.decisions)

    def test_transient_tracks_steady_on_calm_trace(self, simulation, x264, mapping):
        """Both modes should agree closely when the load is near-constant."""
        controller = ThermosyphonController(
            simulation, control_period_s=5.0, relax_margin_c=100.0
        )
        trace = PhasedTrace("calm", (TracePhase(30.0, 0.9, 0.5),))
        steady = controller.run_trace(x264, mapping, QoSConstraint(2.0), trace)
        transient = controller.run_trace(
            x264, mapping, QoSConstraint(2.0), trace, mode="transient"
        )
        assert transient.peak_case_temperature_c == pytest.approx(
            steady.peak_case_temperature_c, abs=1.0
        )

    def test_transient_needs_10x_fewer_factorizations(self, floorplan, power_model, x264):
        """Acceptance gate: a jittered phased trace runs on >= 10x fewer
        operator factorizations in transient mode than in steady mode.

        Each mode gets a fresh simulation (empty factorization cache):
        sharing one cache would let the transient warm-start initialization
        hit operators the steady run already factorized, deflating its
        count and contaminating the comparison.
        """
        mapper = ThreadMapper(floorplan)
        mapping = mapper.map(x264, Configuration(8, 2, 3.2), ProposedThermalAwareMapping())
        trace = _jittered_trace(30, 2.0)
        constraint = QoSConstraint(2.0)

        records = {}
        for mode in ("steady", "transient"):
            simulation = CooledServerSimulation(
                floorplan,
                power_model=power_model,
                thermal_simulator=ThermalSimulator(floorplan, cell_size_mm=3.0),
            )
            # A huge relax margin keeps the valve untouched, so the
            # comparison isolates the workload-jitter effect from actuator
            # events.
            controller = ThermosyphonController(
                simulation, control_period_s=2.0, relax_margin_c=100.0
            )
            records[mode] = controller.run_trace(
                x264, mapping, constraint, trace, mode=mode
            )
            cache_stats = simulation.thermal_simulator.solver_cache.stats
            assert cache_stats.misses == records[mode].factorizations
        steady, transient = records["steady"], records["transient"]

        assert len(steady.decisions) == len(transient.decisions) == 30
        assert steady.factorizations is not None
        assert transient.factorizations is not None
        # The steady path refactorizes on (nearly) every jittered period...
        assert steady.factorizations >= 25
        # ...while the transient path runs on a handful of operators.
        assert transient.factorizations * 10 <= steady.factorizations


class TestDecisionDispatch:
    def test_subclass_decide_override_steers_rack_traces(
        self, floorplan, power_model, x264, mapping
    ):
        """run_rack_trace dispatches through self, so overrides keep working."""
        from repro.core.pipeline import CooledServerSimulation
        from repro.core.runtime_controller import RackServer
        from repro.thermal.simulator import ThermalSimulator
        from repro.workloads.trace import generate_trace

        class PassiveController(ThermosyphonController):
            def decide(self, result, water_loop, benchmark, constraint):
                return ControllerAction.NONE, water_loop, result.configuration.frequency_ghz

        simulation = CooledServerSimulation(
            floorplan,
            power_model=power_model,
            thermal_simulator=ThermalSimulator(floorplan, cell_size_mm=2.5),
        )
        controller = PassiveController(simulation, control_period_s=2.0)
        trace = generate_trace(x264, total_duration_s=6.0)
        rack = controller.run_rack_trace(
            [RackServer(x264, mapping, QoSConstraint(2.0))], trace
        )
        # The base rule would close the valve on these cool periods; the
        # override forces NONE everywhere.
        assert all(
            d.action is ControllerAction.NONE for period in rack.periods for d in period
        )

    def test_subclass_qos_override_steers_decide(self, simulation, x264, mapping):
        """A custom _qos_allows_frequency flows through the DecisionPolicy."""

        class NoDvfsController(ThermosyphonController):
            def _qos_allows_frequency(self, *args, **kwargs):
                return False

        controller = NoDvfsController(simulation, t_case_max_c=40.0)
        water_loop = PAPER_OPTIMIZED_DESIGN.water_loop().with_flow_rate(1000.0)
        assert water_loop.at_maximum_flow
        result = _evaluate(simulation, x264, mapping, water_loop)
        # Even a 3x QoS budget cannot authorize DVFS when the subclass
        # vetoes every frequency: the emergency is reported instead.
        action, _, frequency = controller.decide(
            result, water_loop, x264, QoSConstraint(3.0)
        )
        assert action is ControllerAction.EMERGENCY
        assert frequency == 3.2
