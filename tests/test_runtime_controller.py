"""Runtime thermosyphon controller tests."""

import pytest

from repro.core.mapping import ThreadMapper
from repro.core.mapping_policies import ProposedThermalAwareMapping
from repro.core.pipeline import CooledServerSimulation
from repro.core.runtime_controller import (
    ControllerAction,
    ThermosyphonController,
)
from repro.thermosyphon.design import PAPER_OPTIMIZED_DESIGN
from repro.workloads.configuration import Configuration
from repro.workloads.qos import QoSConstraint
from repro.workloads.trace import PhasedTrace, TracePhase


@pytest.fixture(scope="module")
def simulation(floorplan, power_model, coarse_thermal_simulator):
    return CooledServerSimulation(
        floorplan,
        design=PAPER_OPTIMIZED_DESIGN,
        power_model=power_model,
        thermal_simulator=coarse_thermal_simulator,
    )


@pytest.fixture(scope="module")
def mapping(floorplan, x264):
    mapper = ThreadMapper(floorplan)
    return mapper.map(x264, Configuration(8, 2, 3.2), ProposedThermalAwareMapping())


def _evaluate(simulation, x264, mapping, water_loop):
    return simulation.simulate_mapping(x264, mapping, water_loop=water_loop)


class TestDecisions:
    def test_no_action_when_cool(self, simulation, x264, mapping):
        controller = ThermosyphonController(simulation, t_case_max_c=85.0, relax_margin_c=100.0)
        water_loop = PAPER_OPTIMIZED_DESIGN.water_loop()
        result = _evaluate(simulation, x264, mapping, water_loop)
        action, new_loop, frequency = controller.decide(
            result, water_loop, x264, QoSConstraint(2.0)
        )
        assert action is ControllerAction.NONE
        assert new_loop.flow_rate_kg_h == water_loop.flow_rate_kg_h
        assert frequency == 3.2

    def test_emergency_opens_valve_first(self, simulation, x264, mapping):
        # An artificially low limit forces a thermal emergency.
        controller = ThermosyphonController(simulation, t_case_max_c=40.0)
        water_loop = PAPER_OPTIMIZED_DESIGN.water_loop()
        result = _evaluate(simulation, x264, mapping, water_loop)
        action, new_loop, frequency = controller.decide(
            result, water_loop, x264, QoSConstraint(2.0)
        )
        assert action is ControllerAction.INCREASE_FLOW
        assert new_loop.flow_rate_kg_h > water_loop.flow_rate_kg_h
        assert frequency == 3.2

    def test_valve_saturated_then_frequency_reduced_if_qos_allows(
        self, simulation, x264, mapping
    ):
        controller = ThermosyphonController(simulation, t_case_max_c=40.0)
        water_loop = PAPER_OPTIMIZED_DESIGN.water_loop().with_flow_rate(1000.0)
        assert water_loop.at_maximum_flow
        result = _evaluate(simulation, x264, mapping, water_loop)
        action, _, frequency = controller.decide(result, water_loop, x264, QoSConstraint(3.0))
        assert action is ControllerAction.LOWER_FREQUENCY
        assert frequency < 3.2

    def test_emergency_reported_when_qos_blocks_dvfs(self, simulation, x264, mapping):
        controller = ThermosyphonController(simulation, t_case_max_c=40.0)
        water_loop = PAPER_OPTIMIZED_DESIGN.water_loop().with_flow_rate(1000.0)
        result = _evaluate(simulation, x264, mapping, water_loop)
        # 1x QoS forbids any slowdown, so no frequency reduction is possible.
        action, _, frequency = controller.decide(result, water_loop, x264, QoSConstraint(1.0))
        assert action is ControllerAction.EMERGENCY
        assert frequency == 3.2

    def test_valve_relaxes_when_well_below_limit(self, simulation, x264, mapping):
        controller = ThermosyphonController(simulation, t_case_max_c=85.0, relax_margin_c=5.0)
        water_loop = PAPER_OPTIMIZED_DESIGN.water_loop().with_flow_rate(20.0)
        result = _evaluate(simulation, x264, mapping, water_loop)
        action, new_loop, _ = controller.decide(result, water_loop, x264, QoSConstraint(2.0))
        assert action is ControllerAction.DECREASE_FLOW
        assert new_loop.flow_rate_kg_h < 20.0


class TestTraceExecution:
    def test_run_trace_produces_decisions(self, simulation, x264, mapping):
        controller = ThermosyphonController(simulation, control_period_s=5.0)
        trace = PhasedTrace(
            "synthetic",
            (
                TracePhase(10.0, 1.0, 0.5),
                TracePhase(10.0, 0.6, 0.5),
            ),
        )
        record = controller.run_trace(x264, mapping, QoSConstraint(2.0), trace)
        assert len(record.decisions) == 4
        assert record.emergencies == 0
        assert record.peak_case_temperature_c > 30.0
        # Activity drop in the second phase lowers the package power.
        assert record.decisions[-1].package_power_w < record.decisions[0].package_power_w

    def test_run_trace_counts_actions(self, simulation, x264, mapping):
        controller = ThermosyphonController(
            simulation, t_case_max_c=40.0, control_period_s=5.0
        )
        trace = PhasedTrace("hot", (TracePhase(15.0, 1.0, 0.5),))
        record = controller.run_trace(x264, mapping, QoSConstraint(3.0), trace)
        assert record.flow_increases >= 1

    def test_run_trace_records_evaluated_flow_not_next_periods(
        self, simulation, x264, mapping
    ):
        """Regression: decisions must report the actuators the period ran with.

        The first period is evaluated at the initial water flow; even though
        the emergency action opens the valve for the *next* period, the first
        decision must still show the initial flow, and the raised flow must
        appear in the second decision.
        """
        controller = ThermosyphonController(
            simulation, t_case_max_c=40.0, control_period_s=5.0, flow_step_kg_h=2.0
        )
        initial_loop = PAPER_OPTIMIZED_DESIGN.water_loop()
        trace = PhasedTrace("hot", (TracePhase(15.0, 1.0, 0.5),))
        record = controller.run_trace(
            x264, mapping, QoSConstraint(3.0), trace, initial_water_loop=initial_loop
        )
        first, second = record.decisions[0], record.decisions[1]
        assert first.action is ControllerAction.INCREASE_FLOW
        assert first.water_flow_kg_h == pytest.approx(initial_loop.flow_rate_kg_h)
        assert second.water_flow_kg_h == pytest.approx(
            initial_loop.flow_rate_kg_h + controller.flow_step_kg_h
        )

    def test_run_trace_records_evaluated_frequency_not_next_periods(
        self, simulation, x264, mapping
    ):
        """Regression: a DVFS down-step belongs to the *following* decision."""
        controller = ThermosyphonController(
            simulation, t_case_max_c=40.0, control_period_s=5.0
        )
        saturated = PAPER_OPTIMIZED_DESIGN.water_loop().with_flow_rate(1000.0)
        trace = PhasedTrace("hot", (TracePhase(15.0, 1.0, 0.5),))
        record = controller.run_trace(
            x264, mapping, QoSConstraint(3.0), trace, initial_water_loop=saturated
        )
        first, second = record.decisions[0], record.decisions[1]
        assert first.action is ControllerAction.LOWER_FREQUENCY
        assert first.frequency_ghz == pytest.approx(3.2)
        assert second.frequency_ghz < 3.2
