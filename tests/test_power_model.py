"""Whole-package server power model tests."""

import pytest

from repro.exceptions import ConfigurationError
from repro.power.cstates import CState
from repro.power.power_model import CoreActivity, ServerPowerModel
from repro.workloads.parsec import PARSEC_BENCHMARKS


@pytest.fixture(scope="module")
def x264_params(x264):
    return x264.core_power_parameters()


class TestCoreActivity:
    def test_running_constructor(self, x264_params):
        activity = CoreActivity.running(3, x264_params, 2)
        assert activity.active and activity.core_index == 3 and activity.threads_on_core == 2

    def test_idle_constructor(self):
        activity = CoreActivity.idle(5, CState.C1E)
        assert not activity.active
        assert activity.idle_cstate is CState.C1E

    def test_active_requires_power_params(self):
        with pytest.raises(ConfigurationError):
            CoreActivity(core_index=0, active=True)

    def test_invalid_thread_count(self, x264_params):
        with pytest.raises(ConfigurationError):
            CoreActivity(core_index=0, active=True, power_params=x264_params, threads_on_core=4)


class TestEvaluation:
    def test_unlisted_cores_default_to_idle_poll(self, power_model, x264_params):
        breakdown = power_model.evaluate(
            [CoreActivity.running(0, x264_params, 1)], 3.2, memory_intensity=0.5
        )
        # 7 idle cores in POLL at 3.2 GHz contribute 7 * 5 W.
        assert breakdown.core_power_w > 7 * 5.0

    def test_unknown_core_rejected(self, power_model, x264_params):
        with pytest.raises(ConfigurationError):
            power_model.evaluate(
                [CoreActivity.running(42, x264_params, 1)], 3.2
            )

    def test_breakdown_covers_all_power_components(self, power_model, x264_params):
        breakdown = power_model.all_cores_active(x264_params, 3.2)
        names = set(breakdown.component_power_w)
        assert {"llc", "memory_controller", "uncore_io"} <= names
        assert {f"core{i}" for i in range(8)} <= names
        assert breakdown.package_power_w == pytest.approx(
            sum(breakdown.component_power_w.values())
        )

    def test_more_active_cores_more_power(self, power_model, x264_params):
        def package(n_active):
            activities = [
                CoreActivity.running(i, x264_params, 2) if i < n_active else CoreActivity.idle(i, CState.C1)
                for i in range(8)
            ]
            return power_model.evaluate(activities, 3.2, memory_intensity=0.5).package_power_w

        powers = [package(n) for n in (2, 4, 6, 8)]
        assert powers == sorted(powers)

    def test_deeper_idle_state_saves_power(self, power_model, x264_params):
        def package(cstate):
            activities = [
                CoreActivity.running(i, x264_params, 2) if i < 4 else CoreActivity.idle(i, cstate)
                for i in range(8)
            ]
            return power_model.evaluate(activities, 3.2, memory_intensity=0.5).package_power_w

        assert package(CState.POLL) > package(CState.C1) > package(CState.C1E)

    def test_higher_frequency_more_power(self, power_model, x264_params):
        low = power_model.all_cores_active(x264_params, 2.6).package_power_w
        high = power_model.all_cores_active(x264_params, 3.2).package_power_w
        assert high > low

    def test_leakage_coupling_increases_idle_power(self, floorplan, x264_params):
        coupled = ServerPowerModel(floorplan, leakage_coefficient=0.012)
        activities = [CoreActivity.idle(i, CState.C1) for i in range(8)]
        cold = coupled.evaluate(
            activities, 3.2, core_temperatures_c={i: 45.0 for i in range(8)}
        ).package_power_w
        hot = coupled.evaluate(
            activities, 3.2, core_temperatures_c={i: 85.0 for i in range(8)}
        ).package_power_w
        assert hot > cold


class TestPaperPowerRange:
    def test_package_power_spans_paper_range(self, profiler):
        """The paper reports 40.5-79.3 W across configurations and workloads."""
        low, high = profiler.power_range_w(tuple(PARSEC_BENCHMARKS.values()))
        assert 30.0 < low < 50.0
        assert 70.0 < high < 90.0

    def test_worst_case_close_to_paper_maximum(self, power_model):
        worst = max(
            PARSEC_BENCHMARKS.values(), key=lambda b: b.core_dynamic_power_fmax_w
        )
        breakdown = power_model.all_cores_active(
            worst.core_power_parameters(), 3.2, memory_intensity=worst.memory_intensity
        )
        assert 70.0 <= breakdown.package_power_w <= 90.0
