"""Evaporator geometry and flow-boiling model tests."""

import numpy as np
import pytest

from repro.thermosyphon.evaporator import (
    EvaporatorGeometry,
    EvaporatorModel,
    VAPOR_PHASE_HTC_W_M2K,
)
from repro.thermosyphon.refrigerant import get_refrigerant


@pytest.fixture(scope="module")
def model():
    return EvaporatorModel(get_refrigerant("R236fa"))


class TestGeometry:
    def test_defaults_cover_spreader(self):
        geometry = EvaporatorGeometry()
        assert geometry.base_width_mm == pytest.approx(38.0)
        assert geometry.channel_pitch_mm == pytest.approx(1.0)
        assert geometry.n_channels(38.0) == 38

    def test_hydraulic_diameter(self):
        geometry = EvaporatorGeometry()
        w, d = 0.5e-3, 1.5e-3
        assert geometry.hydraulic_diameter_m == pytest.approx(4 * w * d / (2 * (w + d)))

    def test_area_enhancement_greater_than_one(self):
        assert EvaporatorGeometry().area_enhancement > 1.0

    def test_invalid_geometry_rejected(self):
        with pytest.raises(Exception):
            EvaporatorGeometry(channel_width_mm=0.0)


class TestLocalHeatTransfer:
    def test_nucleate_boiling_increases_with_flux(self, model):
        low = model.nucleate_boiling_htc_w_m2k(5e4, 40.0)
        high = model.nucleate_boiling_htc_w_m2k(2e5, 40.0)
        assert high > low

    def test_two_phase_beats_single_phase(self, model):
        single = model.single_phase_htc_w_m2k(50.0)
        two_phase = model.two_phase_htc_w_m2k(0.1, 50.0, 1e5, 40.0)
        assert two_phase > single

    def test_htc_degrades_towards_dryout(self, model):
        """Quality degradation: the paper's 'inlet cools better than outlet'."""
        early = model.two_phase_htc_w_m2k(0.1, 50.0, 1e5, 40.0)
        late = model.two_phase_htc_w_m2k(0.7, 50.0, 1e5, 40.0)
        assert late < early

    def test_post_dryout_collapse(self, model):
        wet = model.two_phase_htc_w_m2k(0.5, 50.0, 1e5, 40.0)
        dry = model.two_phase_htc_w_m2k(0.99, 50.0, 1e5, 40.0)
        assert dry < 0.3 * wet
        assert dry >= VAPOR_PHASE_HTC_W_M2K * 0.5

    def test_base_htc_includes_fin_enhancement(self, model):
        wall = model.two_phase_htc_w_m2k(0.2, 50.0, 1e5, 40.0)
        base = model.base_htc_w_m2k(0.2, 50.0, 1e5, 40.0)
        assert base == pytest.approx(wall * model.geometry.area_enhancement)


class TestChannelMarching:
    def _solve(self, model, heats, mass_flow=6e-5, subcooling=3.0, inlet_quality=0.0):
        return model.solve_channel(
            np.asarray(heats, dtype=float),
            mass_flow,
            41.0,
            inlet_subcooling_c=subcooling,
            inlet_quality=inlet_quality,
            cell_base_area_m2=1e-6,
        )

    def test_quality_monotone_along_channel(self, model):
        solution = self._solve(model, [0.5] * 20)
        assert (np.diff(solution.quality) >= -1e-12).all()

    def test_energy_balance_sets_outlet_quality(self, model):
        heats = [0.4] * 25
        mass_flow = 8e-5
        solution = self._solve(model, heats, mass_flow=mass_flow, subcooling=0.0)
        latent = model.refrigerant.latent_heat_j_kg(41.0)
        expected = min(sum(heats) / (mass_flow * latent), 1.0)
        assert solution.outlet_quality == pytest.approx(expected, rel=1e-6)

    def test_subcooled_inlet_region_below_saturation(self, model):
        solution = self._solve(model, [0.2] * 30, subcooling=4.0)
        assert solution.fluid_temperature_c[0] < 41.0
        assert solution.fluid_temperature_c[-1] <= 41.0
        assert solution.quality[0] == 0.0

    def test_dryout_flag_when_overloaded(self, model):
        solution = self._solve(model, [2.0] * 30, mass_flow=3e-5, subcooling=0.0)
        assert solution.dryout
        assert solution.outlet_quality == pytest.approx(1.0)

    def test_no_dryout_for_light_load(self, model):
        solution = self._solve(model, [0.1] * 30)
        assert not solution.dryout

    def test_inlet_quality_offsets_capacity(self, model):
        clean = self._solve(model, [0.4] * 20, subcooling=0.0)
        preloaded = self._solve(model, [0.4] * 20, subcooling=0.0, inlet_quality=0.2)
        assert preloaded.outlet_quality > clean.outlet_quality

    def test_rejects_bad_inputs(self, model):
        with pytest.raises(Exception):
            model.solve_channel(
                np.ones((3, 3)), 1e-4, 41.0, cell_base_area_m2=1e-6
            )
        with pytest.raises(Exception):
            model.solve_channel(np.ones(5), -1.0, 41.0, cell_base_area_m2=1e-6)
