"""Simulated RAPL interface tests."""

import pytest

from repro.exceptions import ConfigurationError
from repro.power.rapl import RAPL_COUNTER_WRAP_UJ, RaplDomain, RaplSample, SimulatedRapl


class TestEnergyAccumulation:
    def test_energy_integrates_power(self):
        rapl = SimulatedRapl()
        rapl.advance(2.0, {RaplDomain.PACKAGE: 50.0})
        assert rapl.read_energy_uj(RaplDomain.PACKAGE) == pytest.approx(100.0 * 1e6)

    def test_domains_are_independent(self):
        rapl = SimulatedRapl()
        rapl.advance(1.0, {RaplDomain.PACKAGE: 60.0, RaplDomain.PP0: 40.0})
        assert rapl.read_energy_uj(RaplDomain.PACKAGE) == pytest.approx(60e6)
        assert rapl.read_energy_uj(RaplDomain.PP0) == pytest.approx(40e6)
        assert rapl.read_energy_uj(RaplDomain.DRAM) == 0.0

    def test_time_advances(self):
        rapl = SimulatedRapl()
        rapl.advance(0.5, {RaplDomain.PACKAGE: 10.0})
        rapl.advance(0.5, {RaplDomain.PACKAGE: 10.0})
        assert rapl.time_s == pytest.approx(1.0)

    def test_counter_wraps(self):
        rapl = SimulatedRapl()
        # Enough energy to wrap the 2^32 uJ counter.
        rapl.advance(1.0, {RaplDomain.PACKAGE: 5000.0})
        assert rapl.read_energy_uj(RaplDomain.PACKAGE) < RAPL_COUNTER_WRAP_UJ

    def test_last_power(self):
        rapl = SimulatedRapl()
        rapl.advance(1.0, {RaplDomain.PP0: 33.0})
        assert rapl.last_power_w(RaplDomain.PP0) == 33.0


class TestAveragePower:
    def test_average_power_between_samples(self):
        rapl = SimulatedRapl()
        first = RaplSample(RaplDomain.PACKAGE, rapl.time_s, rapl.read_energy_uj(RaplDomain.PACKAGE))
        rapl.advance(4.0, {RaplDomain.PACKAGE: 70.0})
        second = RaplSample(RaplDomain.PACKAGE, rapl.time_s, rapl.read_energy_uj(RaplDomain.PACKAGE))
        assert SimulatedRapl.average_power_w(first, second) == pytest.approx(70.0)

    def test_average_power_handles_wraparound(self):
        first = RaplSample(RaplDomain.PACKAGE, 0.0, RAPL_COUNTER_WRAP_UJ - 1e6)
        second = RaplSample(RaplDomain.PACKAGE, 1.0, 1e6)
        assert SimulatedRapl.average_power_w(first, second) == pytest.approx(2.0)

    def test_mismatched_domains_rejected(self):
        first = RaplSample(RaplDomain.PACKAGE, 0.0, 0.0)
        second = RaplSample(RaplDomain.DRAM, 1.0, 1e6)
        with pytest.raises(ConfigurationError):
            SimulatedRapl.average_power_w(first, second)

    def test_non_increasing_time_rejected(self):
        first = RaplSample(RaplDomain.PACKAGE, 1.0, 0.0)
        second = RaplSample(RaplDomain.PACKAGE, 1.0, 1e6)
        with pytest.raises(ConfigurationError):
            SimulatedRapl.average_power_w(first, second)


class TestValidation:
    def test_negative_power_rejected(self):
        rapl = SimulatedRapl()
        with pytest.raises(Exception):
            rapl.advance(1.0, {RaplDomain.PACKAGE: -1.0})

    def test_samples_recorded(self):
        rapl = SimulatedRapl()
        rapl.advance(1.0, {RaplDomain.PACKAGE: 10.0})
        rapl.read_energy_uj(RaplDomain.PACKAGE)
        rapl.read_energy_uj(RaplDomain.PP0)
        assert len(rapl.samples) == 2
