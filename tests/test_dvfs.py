"""DVFS operating point tests."""

import pytest

from repro.exceptions import ConfigurationError
from repro.power.dvfs import (
    CORE_FREQUENCIES_GHZ,
    FMAX_GHZ,
    FMIN_GHZ,
    UNCORE_FMAX_GHZ,
    UNCORE_FMIN_GHZ,
    VoltageFrequencyTable,
    uncore_frequency_for,
    validate_core_frequency,
)


class TestFrequencyLevels:
    def test_paper_levels(self):
        assert CORE_FREQUENCIES_GHZ == (2.6, 2.9, 3.2)
        assert FMIN_GHZ == 2.6
        assert FMAX_GHZ == 3.2

    def test_validate_accepts_supported_levels(self):
        for level in CORE_FREQUENCIES_GHZ:
            assert validate_core_frequency(level) == level

    def test_validate_rejects_unsupported(self):
        with pytest.raises(ConfigurationError):
            validate_core_frequency(2.0)


class TestVoltageFrequencyTable:
    def test_voltage_monotone_with_frequency(self):
        table = VoltageFrequencyTable()
        voltages = [table.voltage(f) for f in (1.2, 2.0, 2.6, 2.9, 3.2)]
        assert voltages == sorted(voltages)

    def test_dynamic_scale_reference_is_one(self):
        table = VoltageFrequencyTable()
        assert table.dynamic_scale(FMAX_GHZ) == pytest.approx(1.0)

    def test_dynamic_scale_below_one_for_lower_frequencies(self):
        table = VoltageFrequencyTable()
        assert table.dynamic_scale(2.6) < 1.0
        assert table.dynamic_scale(2.9) < 1.0
        assert table.dynamic_scale(2.6) < table.dynamic_scale(2.9)

    def test_rejects_non_positive_frequency(self):
        with pytest.raises(ConfigurationError):
            VoltageFrequencyTable().voltage(0.0)

    def test_rejects_single_point_table(self):
        from repro.power.dvfs import OperatingPoint

        with pytest.raises(ConfigurationError):
            VoltageFrequencyTable((OperatingPoint(2.0, 1.0),))


class TestUncoreFrequency:
    def test_range(self):
        for core_frequency in CORE_FREQUENCIES_GHZ:
            uncore = uncore_frequency_for(core_frequency)
            assert UNCORE_FMIN_GHZ <= uncore <= UNCORE_FMAX_GHZ

    def test_monotone_with_core_frequency(self):
        values = [uncore_frequency_for(f) for f in CORE_FREQUENCIES_GHZ]
        assert values == sorted(values)

    def test_maximum_core_frequency_gives_maximum_uncore(self):
        assert uncore_frequency_for(FMAX_GHZ) == pytest.approx(UNCORE_FMAX_GHZ)
