"""Property-based tests of the floor-wide span lattice.

Hypothesis sweeps the span-planning laws the example suites spot check:

* :meth:`~repro.datacenter.span.SpanPlanner.next_event_after` agrees with
  the golden model — the min over every trace of
  :meth:`~repro.workloads.trace.PhasedTrace.next_phase_change_after` —
  for query times randomized to land exactly on phase boundaries, where
  ``side=`` mistakes live;
* a planned span is 1 or a power of two inside the configured band, and
  replaying the run loop's own float accumulation over the span never
  crosses the next envelope event, the supervisory window boundary or
  the run end;
* the serial and thread-parallel floor engines stay bit-identical on
  randomized mixed-SKU floors, through a mid-run snapshot/restore.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datacenter.model import DatacenterModel
from repro.datacenter.scenarios import build_scenario
from repro.datacenter.span import SpanPlanner
from repro.floorplan.xeon_e5_v4 import build_xeon_e5_v4_floorplan
from repro.thermal.simulator import ThermalSimulator
from repro.workloads.trace import PhasedTrace, TracePhase


@st.composite
def traces(draw):
    n_phases = draw(st.integers(min_value=1, max_value=6))
    phases = tuple(
        TracePhase(
            duration_s=draw(st.floats(min_value=0.25, max_value=8.0)),
            activity_factor=draw(st.floats(min_value=0.0, max_value=1.3)),
            memory_intensity=draw(st.floats(min_value=0.0, max_value=1.0)),
        )
        for _ in range(n_phases)
    )
    return PhasedTrace("prop", phases)


@st.composite
def floors(draw):
    """A few traces plus a planner band and control period."""
    floor_traces = draw(st.lists(traces(), min_size=1, max_size=5))
    control_period_s = draw(st.floats(min_value=0.25, max_value=2.0))
    min_exp = draw(st.integers(min_value=1, max_value=3))
    max_exp = draw(st.integers(min_value=min_exp, max_value=6))
    return floor_traces, control_period_s, 2**min_exp, 2**max_exp


@st.composite
def query_times(draw, floor_traces):
    """A query time: arbitrary, or exactly on some trace's boundary."""
    if draw(st.booleans()):
        trace = draw(st.sampled_from(floor_traces))
        boundary = draw(
            st.sampled_from([float(b) for b in trace._boundaries])
        )
        return boundary
    return draw(st.floats(min_value=0.0, max_value=64.0))


class TestEventLattice:
    @given(floor=floors(), data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_next_event_matches_per_trace_golden_model(self, floor, data):
        floor_traces, control_period_s, min_span, max_span = floor
        planner = SpanPlanner(
            floor_traces, control_period_s, min_span=min_span, max_span=max_span
        )
        time_s = data.draw(query_times(floor_traces))
        golden = min(
            trace.next_phase_change_after(time_s) for trace in floor_traces
        )
        assert planner.next_event_after(time_s) == golden

    @given(floor=floors())
    @settings(max_examples=100, deadline=None)
    def test_duplicate_trace_objects_fold(self, floor):
        floor_traces, control_period_s, min_span, max_span = floor
        deduped = SpanPlanner(
            floor_traces, control_period_s, min_span=min_span, max_span=max_span
        )
        repeated = SpanPlanner(
            floor_traces * 3, control_period_s, min_span=min_span, max_span=max_span
        )
        assert repeated.n_events == deduped.n_events
        assert np.array_equal(repeated._lattice, deduped._lattice)


class TestSpanGeometry:
    @given(
        floor=floors(),
        data=st.data(),
        duration_s=st.floats(min_value=1.0, max_value=128.0),
        periods_per_window=st.sampled_from([0, 3, 5, 8, 16]),
        period_index=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=300, deadline=None)
    def test_span_is_dyadic_and_never_crosses(
        self, floor, data, duration_s, periods_per_window, period_index
    ):
        floor_traces, control_period_s, min_span, max_span = floor
        planner = SpanPlanner(
            floor_traces, control_period_s, min_span=min_span, max_span=max_span
        )
        time_s = data.draw(query_times(floor_traces))
        span = planner.plan(time_s, duration_s, periods_per_window, period_index)
        assert span == 1 or (
            min_span <= span <= max_span and (span & (span - 1)) == 0
        )
        if span <= 1:
            return
        # A macro-span never outlives the supervisory window it started in.
        if periods_per_window:
            assert span <= periods_per_window - period_index % periods_per_window
        # Replay the run loop's own accumulation: every period the span
        # covers must start before the run end and before the next
        # floor-wide envelope event (so no trace changes phase mid-span).
        boundary = planner.next_event_after(time_s)
        stamp = time_s
        for _ in range(span):
            assert stamp < duration_s
            assert stamp < boundary
            stamp += control_period_s


class TestSerialParallelEquivalence:
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        servers_per_rack=st.integers(min_value=1, max_value=2),
    )
    @settings(max_examples=3, deadline=None)
    def test_randomized_mixed_sku_floor_bit_identical(
        self, seed, servers_per_rack
    ):
        from dataclasses import replace

        cell_size_mm = 4.0
        duration_s = 24.0
        floorplans = (
            build_xeon_e5_v4_floorplan(),
            build_xeon_e5_v4_floorplan(spreader_size_mm=42.0),
        )
        racks = []
        for index, rack_floorplan in enumerate(floorplans):
            scenario = build_scenario(
                "mixed",
                n_racks=1,
                servers_per_rack=servers_per_rack,
                duration_s=duration_s,
                seed=seed + index,
                phase_dt_s=6.0,
                floorplan=rack_floorplan,
            )
            racks.append(
                replace(
                    scenario.racks[0],
                    name=f"sku{index}",
                    floorplan=None if index == 0 else rack_floorplan,
                )
            )

        def run(parallel_groups):
            model = DatacenterModel(
                racks,
                floorplan=floorplans[0],
                thermal_simulator=ThermalSimulator(
                    floorplans[0], cell_size_mm=cell_size_mm
                ),
                control_period_s=2.0,
                parallel_groups=parallel_groups,
            )
            session = model.session()
            try:
                periods = []
                time_s = 0.0
                # Exercise snapshot()/restore() mid-run under both engines:
                # the committed periods must be unaffected by the detour.
                for step in range(int(duration_s / 2.0)):
                    if step == 3:
                        snapshot = session.snapshot()
                        session.advance_period(time_s)
                        session.restore(snapshot)
                    periods.append(session.advance_period(time_s))
                    time_s += 2.0
                return periods
            finally:
                session.close()

        serial = run(0)
        parallel = run(2)
        for period_s, period_p in zip(serial, parallel):
            assert period_p.rack_chiller_power_w == period_s.rack_chiller_power_w
            assert (
                period_p.worst_period_peak_case_c
                == period_s.worst_period_peak_case_c
            )
            for rack_s, rack_p in zip(
                period_s.rack_decisions, period_p.rack_decisions
            ):
                for decision_s, decision_p in zip(rack_s, rack_p):
                    assert decision_p == decision_s
