"""Mapping policy tests (proposed policy and baselines)."""

import pytest

from repro.baselines.coskun_balancing import CoskunBalancingMapping
from repro.baselines.sabry_inlet_first import SabryInletFirstMapping
from repro.core.mapping_policies import (
    ClusteredMapping,
    ProposedThermalAwareMapping,
    corner_balanced_selection,
)
from repro.exceptions import MappingError
from repro.power.cstates import CState
from repro.thermosyphon.orientation import Orientation


@pytest.fixture(scope="module")
def proposed():
    return ProposedThermalAwareMapping()


class TestCommonPolicyBehaviour:
    @pytest.mark.parametrize(
        "policy",
        [
            ProposedThermalAwareMapping(),
            CoskunBalancingMapping(),
            SabryInletFirstMapping(),
            ClusteredMapping(),
        ],
    )
    @pytest.mark.parametrize("n_cores", [1, 2, 4, 6, 8])
    def test_returns_requested_number_of_distinct_cores(self, policy, n_cores, floorplan):
        selection = policy.select_cores(floorplan, n_cores, idle_cstate=CState.C1)
        assert len(selection) == n_cores
        assert len(set(selection)) == n_cores
        assert all(0 <= index < 8 for index in selection)

    @pytest.mark.parametrize(
        "policy",
        [ProposedThermalAwareMapping(), CoskunBalancingMapping(), ClusteredMapping()],
    )
    def test_too_many_cores_rejected(self, policy, floorplan):
        with pytest.raises(MappingError):
            policy.select_cores(floorplan, 9)

    def test_zero_cores_rejected(self, proposed, floorplan):
        with pytest.raises(MappingError):
            proposed.select_cores(floorplan, 0)


class TestProposedPolicy:
    def test_cstate_aware_flag(self, proposed):
        assert proposed.cstate_aware is True
        assert CoskunBalancingMapping().cstate_aware is False

    def test_deep_cstate_gives_one_core_per_row(self, proposed, floorplan):
        selection = proposed.select_cores(floorplan, 4, idle_cstate=CState.C1)
        rows = [floorplan.core_row_of(index) for index in selection]
        assert len(set(rows)) == 4, "each active core must sit on its own channel row"

    def test_deep_cstate_spreads_two_cores_apart(self, proposed, floorplan):
        """Two active cores land on different channel rows, far apart."""
        selection = proposed.select_cores(
            floorplan, 2, idle_cstate=CState.C1, orientation=Orientation.WEST_TO_EAST
        )
        first, second = selection
        assert floorplan.core_row_of(first) != floorplan.core_row_of(second)
        distance = floorplan.core(first).rect.distance_to(floorplan.core(second).rect)
        assert distance > 5.0

    def test_deep_cstate_four_cores_alternate_columns(self, proposed, floorplan):
        """The 4-core selection reproduces the checkerboard of scenario #1."""
        selection = proposed.select_cores(
            floorplan, 4, idle_cstate=CState.C1, orientation=Orientation.WEST_TO_EAST
        )
        columns = [floorplan.core_column_of(index) for index in selection]
        assert sorted(columns) == [0, 0, 1, 1]

    def test_poll_falls_back_to_corner_balancing(self, proposed, floorplan):
        selection = proposed.select_cores(floorplan, 4, idle_cstate=CState.POLL)
        assert set(selection) == set(floorplan.corner_cores())

    def test_more_than_rows_doubles_up_gracefully(self, proposed, floorplan):
        selection = proposed.select_cores(floorplan, 6, idle_cstate=CState.C1E)
        rows = [floorplan.core_row_of(index) for index in selection]
        # With six cores on four rows, no row holds more than two actives.
        assert max(rows.count(row) for row in set(rows)) == 2

    def test_vertical_channel_orientation_uses_columns(self, proposed, floorplan):
        selection = proposed.select_cores(
            floorplan, 2, idle_cstate=CState.C1, orientation=Orientation.NORTH_TO_SOUTH
        )
        columns = [floorplan.core_column_of(index) for index in selection]
        assert len(set(columns)) == 2, "one active core per vertical channel lane"

    def test_full_machine_selection_uses_all_cores(self, proposed, floorplan):
        assert set(proposed.select_cores(floorplan, 8, idle_cstate=CState.C1)) == set(range(8))


class TestBaselinePolicies:
    def test_coskun_starts_from_corners(self, floorplan):
        selection = CoskunBalancingMapping().select_cores(floorplan, 4)
        assert set(selection) == set(floorplan.corner_cores())

    def test_coskun_matches_shared_helper(self, floorplan):
        assert CoskunBalancingMapping().select_cores(floorplan, 5) == corner_balanced_selection(
            floorplan, 5
        )

    def test_sabry_prefers_cores_near_inlet(self, floorplan):
        selection = SabryInletFirstMapping().select_cores(
            floorplan, 4, orientation=Orientation.WEST_TO_EAST
        )
        # All four cores of the western column are closest to the west inlet.
        assert set(selection) == {0, 1, 2, 3}

    def test_sabry_follows_orientation(self, floorplan):
        selection = SabryInletFirstMapping().select_cores(
            floorplan, 4, orientation=Orientation.EAST_TO_WEST
        )
        assert set(selection) == {4, 5, 6, 7}

    def test_clustered_packs_in_index_order(self, floorplan):
        assert ClusteredMapping().select_cores(floorplan, 3) == (0, 1, 2)

    def test_corner_helper_spaces_remaining_cores(self, floorplan):
        selection = corner_balanced_selection(floorplan, 6)
        assert set(floorplan.corner_cores()) <= set(selection)
