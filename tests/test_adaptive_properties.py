"""Property-based tests of the adaptive-tolerance and trace-resampling laws.

Hypothesis sweeps the input spaces the example-based suites only spot
check:

* :func:`~repro.core.session.adaptive_refresh_tol` never loosens beyond
  the configured tolerance, is monotone non-increasing in the residual,
  and collapses to the configured tolerance at or below the reference
  residual (and always in static mode);
* :meth:`~repro.workloads.trace.PhasedTrace.resample` (one vectorized
  ``searchsorted``) agrees with the scalar golden model
  ``phase_at``/``activity_at`` sample for sample — with sampling grids
  randomized to land exactly on phase boundaries, where off-by-one
  ``side=`` mistakes live;
* :meth:`~repro.workloads.trace.PhasedTrace.next_phase_change_after`
  is consistent with ``phase_at``: the active phase is constant on
  ``[t, next)`` and different (or the trace over) at ``next``.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.session import adaptive_refresh_tol
from repro.workloads.trace import PhasedTrace, TracePhase

finite_tols = st.floats(min_value=1e-6, max_value=1e3)
references = st.floats(min_value=1e-6, max_value=1e3)
residuals = st.one_of(
    st.none(), st.floats(min_value=0.0, max_value=1e6)
)


@st.composite
def traces(draw):
    n_phases = draw(st.integers(min_value=1, max_value=6))
    phases = tuple(
        TracePhase(
            duration_s=draw(st.floats(min_value=0.25, max_value=8.0)),
            activity_factor=draw(st.floats(min_value=0.0, max_value=1.3)),
            memory_intensity=draw(st.floats(min_value=0.0, max_value=1.0)),
        )
        for _ in range(n_phases)
    )
    return PhasedTrace("prop", phases)


class TestAdaptiveRefreshTol:
    @given(tol=finite_tols, reference=references, residual=residuals)
    def test_never_loosens_beyond_configured_tol(self, tol, reference, residual):
        effective = adaptive_refresh_tol(tol, True, residual, reference)
        assert 0.0 < effective <= tol

    @given(
        tol=finite_tols,
        reference=references,
        lo=st.floats(min_value=0.0, max_value=1e6),
        hi=st.floats(min_value=0.0, max_value=1e6),
    )
    def test_monotone_non_increasing_in_residual(self, tol, reference, lo, hi):
        lo, hi = min(lo, hi), max(lo, hi)
        assert adaptive_refresh_tol(tol, True, hi, reference) <= adaptive_refresh_tol(
            tol, True, lo, reference
        )

    @given(tol=finite_tols, reference=references, residual=residuals)
    def test_static_mode_and_settled_residual_return_tol(
        self, tol, reference, residual
    ):
        assert adaptive_refresh_tol(tol, False, residual, reference) == tol
        assert adaptive_refresh_tol(tol, True, None, reference) == tol
        assert adaptive_refresh_tol(tol, True, reference, reference) == tol

    @given(tol=finite_tols, reference=references, scale=st.floats(2.0, 1e4))
    def test_tightens_proportionally_above_reference(self, tol, reference, scale):
        effective = adaptive_refresh_tol(tol, True, reference * scale, reference)
        assert effective < tol
        assert effective * scale == tol or abs(effective * scale - tol) < 1e-9 * tol


class TestResampleGoldenEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(trace=traces(), data=st.data())
    def test_resample_matches_scalar_golden_model(self, trace, data):
        # Randomize dt so sample points land exactly on phase boundaries
        # (dt = boundary / integer) as well as in general position.
        boundary = data.draw(
            st.sampled_from(
                [float(trace.duration_s)]
                + [float(p.duration_s) for p in trace.phases]
            )
        )
        divisor = data.draw(st.integers(min_value=1, max_value=7))
        exact = data.draw(st.booleans())
        dt = boundary / divisor if exact else data.draw(
            st.floats(min_value=trace.duration_s / 50, max_value=trace.duration_s)
        )
        times, activities, memory = trace.resample(dt)
        assert times.shape == activities.shape == memory.shape
        assert len(times) >= 1
        for t, activity, mem in zip(times, activities, memory):
            phase = trace.phase_at(float(t))
            assert activity == phase.activity_factor
            assert mem == phase.memory_intensity
            assert trace.activity_at(float(t)) == activity

    @settings(max_examples=60, deadline=None)
    @given(trace=traces(), data=st.data())
    def test_next_phase_change_is_consistent_with_phase_at(self, trace, data):
        t = data.draw(
            st.floats(min_value=0.0, max_value=float(trace.duration_s) * 1.1)
        )
        nxt = trace.next_phase_change_after(t)
        current = trace.phase_at(t)
        if not np.isfinite(nxt):
            # Final clamped phase: any later sample sees the same phase.
            assert trace.phase_at(trace.duration_s * 2.0) is current
            return
        assert nxt > t
        # Just before the boundary: still the same phase; at it: a new one.
        probe = np.nextafter(nxt, t)
        if probe > t:
            assert trace.phase_at(probe) is current
        assert trace.phase_at(nxt) is not current
