"""Floorplan container and Xeon E5 v4 floorplan tests."""

import pytest

from repro.exceptions import FloorplanError
from repro.floorplan.component import Component, ComponentKind
from repro.floorplan.floorplan import Floorplan
from repro.floorplan.xeon_e5_v4 import (
    XEON_E5_V4_DIE_HEIGHT_MM,
    XEON_E5_V4_DIE_WIDTH_MM,
    build_xeon_e5_v4_floorplan,
)
from repro.utils.geometry import Rect


def _simple_floorplan():
    die = Rect(0.0, 0.0, 10.0, 10.0)
    return Floorplan(
        "simple",
        die,
        [
            Component("core0", ComponentKind.CORE, Rect(0.0, 0.0, 4.0, 4.0), core_index=0),
            Component("core1", ComponentKind.CORE, Rect(6.0, 0.0, 4.0, 4.0), core_index=1),
            Component("llc", ComponentKind.LLC, Rect(0.0, 5.0, 10.0, 5.0)),
        ],
    )


class TestFloorplanValidation:
    def test_valid_floorplan_builds(self):
        floorplan = _simple_floorplan()
        assert len(floorplan) == 3
        assert floorplan.n_cores == 2

    def test_duplicate_names_rejected(self):
        die = Rect(0.0, 0.0, 10.0, 10.0)
        with pytest.raises(FloorplanError, match="duplicate"):
            Floorplan(
                "bad",
                die,
                [
                    Component("core0", ComponentKind.CORE, Rect(0.0, 0.0, 2.0, 2.0), core_index=0),
                    Component("core0", ComponentKind.CORE, Rect(4.0, 4.0, 2.0, 2.0), core_index=1),
                ],
            )

    def test_out_of_bounds_component_rejected(self):
        die = Rect(0.0, 0.0, 10.0, 10.0)
        with pytest.raises(FloorplanError, match="outside"):
            Floorplan(
                "bad",
                die,
                [Component("core0", ComponentKind.CORE, Rect(8.0, 8.0, 4.0, 4.0), core_index=0)],
            )

    def test_overlapping_components_rejected(self):
        die = Rect(0.0, 0.0, 10.0, 10.0)
        with pytest.raises(FloorplanError, match="overlap"):
            Floorplan(
                "bad",
                die,
                [
                    Component("a", ComponentKind.CORE, Rect(0.0, 0.0, 5.0, 5.0), core_index=0),
                    Component("b", ComponentKind.CORE, Rect(4.0, 4.0, 5.0, 5.0), core_index=1),
                ],
            )

    def test_duplicate_core_indices_rejected(self):
        die = Rect(0.0, 0.0, 10.0, 10.0)
        with pytest.raises(FloorplanError):
            Floorplan(
                "bad",
                die,
                [
                    Component("a", ComponentKind.CORE, Rect(0.0, 0.0, 2.0, 2.0), core_index=0),
                    Component("b", ComponentKind.CORE, Rect(4.0, 4.0, 2.0, 2.0), core_index=0),
                ],
            )

    def test_lookup_unknown_component(self):
        with pytest.raises(FloorplanError):
            _simple_floorplan().component("nonexistent")

    def test_contains_and_iteration(self):
        floorplan = _simple_floorplan()
        assert "llc" in floorplan
        assert "dram" not in floorplan
        assert {component.name for component in floorplan} == {"core0", "core1", "llc"}


class TestXeonFloorplan:
    def test_core_count_and_area(self, floorplan):
        assert floorplan.n_cores == 8
        assert floorplan.die_area_mm2 == pytest.approx(
            XEON_E5_V4_DIE_WIDTH_MM * XEON_E5_V4_DIE_HEIGHT_MM
        )
        # The paper quotes a 246 mm^2 die.
        assert 240.0 <= floorplan.die_area_mm2 <= 252.0

    def test_die_centred_on_spreader(self, floorplan):
        die = floorplan.die_outline
        spreader = floorplan.spreader_outline
        assert die.center[0] == pytest.approx(spreader.center[0])
        assert die.center[1] == pytest.approx(spreader.center[1])

    def test_has_expected_components(self, floorplan):
        for name in ("llc", "memory_controller", "uncore_io", "dead_east",
                     "reserved_west", "reserved_east"):
            assert name in floorplan
        for index in range(8):
            assert f"core{index}" in floorplan

    def test_core_rows_pair_west_and_east_columns(self, floorplan):
        rows = floorplan.core_rows()
        assert len(rows) == 4
        for row in rows:
            assert len(row) == 2
            west, east = row
            # Cores i and i+4 share a row by construction.
            assert east == west + 4

    def test_core_columns(self, floorplan):
        columns = floorplan.core_columns()
        assert len(columns) == 2
        assert columns[0] == (0, 1, 2, 3)
        assert columns[1] == (4, 5, 6, 7)

    def test_core_row_of_consistency(self, floorplan):
        for core in floorplan.cores:
            row = floorplan.core_row_of(core.core_index)
            assert core.core_index in floorplan.core_rows()[row]

    def test_corner_cores_are_extreme_rows(self, floorplan):
        corners = floorplan.corner_cores()
        assert len(corners) == 4
        rows = {floorplan.core_row_of(core) for core in corners}
        # Corner cores must come from the northernmost and southernmost rows.
        assert rows == {0, 3}

    def test_cores_sorted_by_distance_to_west_edge(self, floorplan):
        outline = floorplan.spreader_outline
        ordered = floorplan.cores_sorted_by_distance_to(outline.x, outline.center[1])
        # The first four must all be in the western column.
        assert set(ordered[:4]) == {0, 1, 2, 3}

    def test_dead_area_dissipates_no_power(self, floorplan):
        dead = floorplan.component("dead_east")
        assert not dead.kind.dissipates_power

    def test_summary_mentions_every_component(self, floorplan):
        summary = floorplan.summary()
        for component in floorplan:
            assert component.name in summary

    def test_component_areas_positive(self, floorplan):
        for name, area in floorplan.component_areas().items():
            assert area > 0.0, name

    def test_unknown_core_index(self, floorplan):
        with pytest.raises(FloorplanError):
            floorplan.core(42)

    def test_neighbouring_cores_symmetry(self, floorplan):
        neighbours_of_0 = floorplan.neighbouring_cores(0, radius_mm=3.0)
        for other in neighbours_of_0:
            assert 0 in floorplan.neighbouring_cores(other, radius_mm=3.0)
