"""Golden-model per-lane evaporator march (pre-batching reference).

This preserves the original ``ThermosyphonLoop.cooling_boundary`` lane loop
verbatim: each channel lane is sliced out of the smoothed power map and
marched individually through the scalar ``EvaporatorModel.solve_channel``.
The production path now gathers all lanes into one ``(n_lanes, n_cells)``
array and marches them together (``solve_channels``); the equivalence tests
require both paths to agree to <= 1e-12 so the batched march only counts if
it is the same physics.
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import gaussian_filter

from repro.exceptions import ValidationError
from repro.thermal.boundary import CoolingBoundary
from repro.thermosyphon.loop import (
    BoundaryResult,
    HEAT_SPREADING_SIGMA_MM,
    LoopOperatingPoint,
    ThermosyphonLoop,
)
from repro.utils.validation import check_positive


def reference_cooling_boundary(
    loop: ThermosyphonLoop,
    power_map_w: np.ndarray,
    cell_pitch_mm: tuple[float, float],
    operating_point: LoopOperatingPoint | None = None,
) -> BoundaryResult:
    """Per-cell HTC and fluid temperature via the original per-lane loop."""
    power_map_w = np.asarray(power_map_w, dtype=float)
    if power_map_w.ndim != 2:
        raise ValidationError("power map must be two-dimensional")
    pitch_x_mm, pitch_y_mm = cell_pitch_mm
    check_positive(pitch_x_mm, "pitch_x_mm")
    check_positive(pitch_y_mm, "pitch_y_mm")
    if operating_point is None:
        operating_point = loop.operating_point(float(power_map_w.sum()))

    total_power = float(power_map_w.sum())
    smoothed = gaussian_filter(
        power_map_w,
        sigma=(HEAT_SPREADING_SIGMA_MM / pitch_y_mm, HEAT_SPREADING_SIGMA_MM / pitch_x_mm),
        mode="nearest",
    )
    if smoothed.sum() > 0.0:
        smoothed *= total_power / smoothed.sum()

    n_rows, n_columns = power_map_w.shape
    orientation = loop.design.orientation
    n_lanes = orientation.channel_count(n_rows, n_columns)
    flow_per_lane = operating_point.mass_flow_kg_s / n_lanes
    cell_area_m2 = (pitch_x_mm * 1e-3) * (pitch_y_mm * 1e-3)

    htc = np.zeros_like(power_map_w)
    fluid = np.full_like(power_map_w, operating_point.saturation_temperature_c)
    outlet_qualities = np.zeros(n_lanes, dtype=float)
    dryout = False
    max_quality = 0.0

    for lane in range(n_lanes):
        if orientation.channels_run_east_west:
            lane_heat = smoothed[lane, :]
        else:
            lane_heat = smoothed[:, lane]
        if orientation.flow_reversed:
            lane_heat = lane_heat[::-1]

        solution = loop.evaporator.solve_channel(
            lane_heat,
            flow_per_lane,
            operating_point.saturation_temperature_c,
            inlet_subcooling_c=operating_point.inlet_subcooling_c,
            inlet_quality=operating_point.inlet_quality,
            cell_base_area_m2=cell_area_m2,
            saturation_slope_c_per_cell=0.015,
        )
        lane_htc = solution.base_htc_w_m2k
        lane_fluid = solution.fluid_temperature_c
        if orientation.flow_reversed:
            lane_htc = lane_htc[::-1]
            lane_fluid = lane_fluid[::-1]
        if orientation.channels_run_east_west:
            htc[lane, :] = lane_htc
            fluid[lane, :] = lane_fluid
        else:
            htc[:, lane] = lane_htc
            fluid[:, lane] = lane_fluid

        outlet_qualities[lane] = solution.outlet_quality
        max_quality = max(max_quality, float(solution.quality.max()))
        dryout = dryout or solution.dryout

    return BoundaryResult(
        boundary=CoolingBoundary(htc_w_m2k=htc, fluid_temperature_c=fluid),
        outlet_quality_per_lane=outlet_qualities,
        max_quality=max_quality,
        dryout=dryout,
    )
