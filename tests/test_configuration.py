"""Configuration and configuration-space tests."""

import pytest

from repro.exceptions import ConfigurationError
from repro.workloads.configuration import (
    Configuration,
    baseline_configuration,
    default_configuration_space,
    figure3_configuration_space,
)


class TestConfiguration:
    def test_total_threads(self):
        assert Configuration(4, 2, 3.2).total_threads == 8
        assert Configuration(4, 1, 3.2).total_threads == 4

    def test_label_format(self):
        assert Configuration(4, 2, 3.2).label() == "(4, 8, 3.2GHz)"

    def test_invalid_values_rejected(self):
        with pytest.raises(ConfigurationError):
            Configuration(0, 1, 3.2)
        with pytest.raises(ConfigurationError):
            Configuration(4, 3, 3.2)
        with pytest.raises(ConfigurationError):
            Configuration(4, 1, 0.0)

    def test_configurations_are_hashable_and_comparable(self):
        a = Configuration(2, 1, 2.6)
        b = Configuration(2, 1, 2.6)
        assert a == b
        assert len({a, b}) == 1


class TestBaseline:
    def test_baseline_is_full_machine_at_fmax(self):
        baseline = baseline_configuration()
        assert baseline.n_cores == 8
        assert baseline.total_threads == 16
        assert baseline.frequency_ghz == 3.2


class TestConfigurationSpace:
    def test_default_space_size(self):
        space = default_configuration_space()
        # 8 core counts x 2 thread levels x 3 frequencies.
        assert len(space) == 8 * 2 * 3
        assert len(set(space)) == len(space)

    def test_space_includes_baseline(self):
        assert baseline_configuration() in default_configuration_space()

    def test_min_cores_filter(self):
        space = default_configuration_space(min_cores=4)
        assert all(configuration.n_cores >= 4 for configuration in space)

    def test_invalid_min_cores(self):
        with pytest.raises(ConfigurationError):
            default_configuration_space(min_cores=0)
        with pytest.raises(ConfigurationError):
            default_configuration_space(min_cores=9)

    def test_figure3_space_matches_paper(self):
        space = figure3_configuration_space()
        labels = [(c.n_cores, c.total_threads) for c in space]
        assert labels == [(2, 4), (4, 4), (4, 8), (8, 8), (8, 16)]
        assert all(c.frequency_ghz == 3.2 for c in space)
