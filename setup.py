"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``.  This file exists so the
package can be installed in environments without the ``wheel`` package
(offline machines) via ``python setup.py develop`` or ``pip install -e .``
falling back to the legacy code path.
"""

from setuptools import setup

setup()
