"""Quickstart: run the paper's full flow for one application.

Selects the cheapest (Nc, Nt, f) configuration that satisfies a 2x QoS
constraint for the ``fluidanimate`` benchmark, maps its threads with the
thermosyphon-aware policy, and reports the resulting power, thermal metrics
and thermosyphon operating point.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.core.pipeline import CooledServerSimulation, ThermalAwarePipeline
from repro.thermosyphon.design import PAPER_OPTIMIZED_DESIGN
from repro.workloads.parsec import get_benchmark
from repro.workloads.qos import QoSConstraint


def main() -> None:
    # 1. Build a thermosyphon-cooled Xeon E5 v4 server with the paper's
    #    optimised design (R236fa, 55% fill, west-to-east flow, 7 kg/h of
    #    30 degC water).
    simulation = CooledServerSimulation(design=PAPER_OPTIMIZED_DESIGN, cell_size_mm=1.0)
    pipeline = ThermalAwarePipeline(simulation)

    # 2. Pick the application and its QoS requirement.
    benchmark = get_benchmark("fluidanimate")
    constraint = QoSConstraint(2.0)

    # 3. Run configuration selection (Algorithm 1), thread mapping and the
    #    coupled power / thermosyphon / thermal evaluation.
    result = pipeline.run(benchmark, constraint)

    print(f"Benchmark            : {benchmark.name}")
    print(f"QoS constraint       : {constraint.label()} degradation allowed")
    print(f"Chosen configuration : {result.configuration.label()}")
    print(f"Thread mapping       : {result.mapping.describe()}")
    print(f"Package power        : {result.package_power_w:.1f} W")
    print(f"Die hot spot         : {result.die_metrics.theta_max_c:.1f} C")
    print(f"Die average          : {result.die_metrics.theta_avg_c:.1f} C")
    print(f"Die max gradient     : {result.die_metrics.grad_max_c_per_mm:.2f} C/mm")
    print(f"Package hot spot     : {result.package_metrics.theta_max_c:.1f} C")
    print(f"T_case               : {result.case_temperature_c:.1f} C "
          f"(limit 85 C, within limit: {result.within_case_limit})")
    point = result.operating_point
    print(f"Saturation temp      : {point.saturation_temperature_c:.1f} C")
    print(f"Refrigerant flow     : {point.mass_flow_kg_h:.1f} kg/h, "
          f"outlet quality {point.mean_outlet_quality:.2f}")
    print(f"Water outlet         : {point.water_outlet_temperature_c:.1f} C "
          f"(delta-T {result.water_delta_t_c:.1f} C)")


if __name__ == "__main__":
    main()
