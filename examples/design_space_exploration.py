"""Design-space exploration of the thermosyphon (paper Section VI).

Sweeps the evaporator orientation, the refrigerant, the filling ratio and
the water operating point for the worst-case workload, then runs the full
Section-VI optimisation flow and prints the selected design.

Run with::

    python examples/design_space_exploration.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.analysis.reporting import format_table
from repro.core.design_optimizer import ThermosyphonDesignOptimizer
from repro.floorplan.xeon_e5_v4 import build_xeon_e5_v4_floorplan
from repro.thermosyphon.design import PAPER_OPTIMIZED_DESIGN


def print_candidates(title: str, candidates) -> None:
    rows = [
        (
            candidate.design.name,
            f"{candidate.die_hot_spot_c:.1f}",
            f"{candidate.die_gradient_c_per_mm:.2f}",
            f"{candidate.case_temperature_c:.1f}",
            "yes" if candidate.dryout else "no",
            "yes" if candidate.feasible else "no",
        )
        for candidate in candidates
    ]
    print(
        format_table(
            ("Design", "Die hot spot (C)", "Die grad (C/mm)", "T_case (C)", "Dryout", "Feasible"),
            rows,
            title=title,
        )
    )
    print()


def main() -> None:
    floorplan = build_xeon_e5_v4_floorplan()
    optimizer = ThermosyphonDesignOptimizer(floorplan, cell_size_mm=1.5)
    base = PAPER_OPTIMIZED_DESIGN

    print_candidates(
        "Orientation sweep (worst-case workload)", optimizer.sweep_orientations(base)
    )
    print_candidates(
        "Refrigerant sweep",
        optimizer.sweep_refrigerants(base, ("R236fa", "R134a", "R245fa", "R1234ze")),
    )
    print_candidates(
        "Filling-ratio sweep",
        optimizer.sweep_filling_ratios(base, (0.25, 0.35, 0.45, 0.55, 0.65, 0.80)),
    )
    print_candidates(
        "Water operating-point sweep",
        optimizer.sweep_water(base, (20.0, 25.0, 30.0, 35.0), (5.0, 7.0, 10.0)),
    )

    chosen = optimizer.optimize(base)
    print("Design selected by the Section-VI flow:")
    print(f"  refrigerant      : {chosen.refrigerant_name}")
    print(f"  filling ratio    : {chosen.filling_ratio:.2f}")
    print(f"  orientation      : {chosen.orientation.value}")
    print(f"  water inlet      : {chosen.water_inlet_temperature_c:.1f} C")
    print(f"  water flow rate  : {chosen.water_flow_rate_kg_h:.1f} kg/h")


if __name__ == "__main__":
    main()
