"""Runtime water-flow control under a phased workload (paper Section VII).

Maps a benchmark on all eight cores, then plays a phased activity trace
through the runtime controller.  To make the controller act, the water loop
starts with a deliberately warm supply; the controller first opens the valve
(flow-rate increase) and only lowers the frequency if the QoS constraint
still holds.

Run with::

    python examples/runtime_control.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.core.mapping import ThreadMapper
from repro.core.mapping_policies import ProposedThermalAwareMapping
from repro.core.pipeline import CooledServerSimulation
from repro.core.runtime_controller import ThermosyphonController
from repro.thermosyphon.design import PAPER_OPTIMIZED_DESIGN
from repro.workloads.configuration import Configuration
from repro.workloads.parsec import get_benchmark
from repro.workloads.qos import QoSConstraint
from repro.workloads.trace import generate_trace


def main() -> None:
    simulation = CooledServerSimulation(design=PAPER_OPTIMIZED_DESIGN, cell_size_mm=1.5)
    benchmark = get_benchmark("x264")
    constraint = QoSConstraint(2.0)

    mapper = ThreadMapper(simulation.floorplan, orientation=PAPER_OPTIMIZED_DESIGN.orientation)
    mapping = mapper.map(benchmark, Configuration(8, 2, 3.2), ProposedThermalAwareMapping())

    # A stressed operating point: warm chiller water and a tight case limit
    # so that thermal emergencies actually occur during the trace.
    warm_water = PAPER_OPTIMIZED_DESIGN.water_loop().with_inlet_temperature(42.0)
    controller = ThermosyphonController(
        simulation, t_case_max_c=68.0, control_period_s=5.0, flow_step_kg_h=4.0
    )
    trace = generate_trace(benchmark, total_duration_s=60.0)

    record = controller.run_trace(
        benchmark, mapping, constraint, trace, initial_water_loop=warm_water
    )

    print(f"{'t (s)':>6} {'T_case (C)':>11} {'die max (C)':>12} {'P (W)':>7} "
          f"{'flow (kg/h)':>12} {'f (GHz)':>8}  action")
    for decision in record.decisions:
        print(
            f"{decision.time_s:6.1f} {decision.case_temperature_c:11.1f} "
            f"{decision.die_hot_spot_c:12.1f} {decision.package_power_w:7.1f} "
            f"{decision.water_flow_kg_h:12.1f} {decision.frequency_ghz:8.1f}  "
            f"{decision.action.value}"
        )
    print()
    print(f"valve openings        : {record.flow_increases}")
    print(f"frequency reductions  : {record.frequency_reductions}")
    print(f"unresolved emergencies: {record.emergencies}")
    print(f"peak case temperature : {record.peak_case_temperature_c:.1f} C")


if __name__ == "__main__":
    main()
