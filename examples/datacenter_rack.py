"""Rack-level study: shared chiller water temperature and cooling power.

Builds a small rack in which every server runs a different PARSEC workload
under a 2x QoS constraint, finds the warmest chiller water temperature that
keeps every CPU within its case-temperature limit, and reports the chiller
power (Eq. 1) at that operating point — first with the proposed mapping
stack, then with the conventional balancing baseline.

Run with::

    python examples/datacenter_rack.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.baselines.coskun_balancing import CoskunBalancingMapping
from repro.core.mapping_policies import ProposedThermalAwareMapping
from repro.core.rack import RackModel, ServerSlot
from repro.workloads.parsec import get_benchmark
from repro.workloads.qos import QoSConstraint


WORKLOADS = ("x264", "canneal", "ferret", "streamcluster")


def build_rack(policy) -> RackModel:
    slots = [
        ServerSlot(get_benchmark(name), QoSConstraint(2.0)) for name in WORKLOADS
    ]
    return RackModel(slots, policy=policy, cell_size_mm=1.5)


def report(label: str, rack: RackModel) -> float:
    result = rack.warmest_feasible_water_temperature(low_c=15.0, high_c=40.0, tolerance_c=1.0)
    print(f"--- {label} ---")
    print(f"warmest feasible water temperature : {result.water_inlet_temperature_c:.1f} C")
    print(f"worst case T_case                  : {result.worst_case_temperature_c:.1f} C")
    print(f"worst die hot spot                 : {result.worst_die_hot_spot_c:.1f} C")
    print(f"total IT power                     : {result.total_it_power_w:.1f} W")
    print(f"chiller power (Eq. 1)              : {result.chiller_power_w:.1f} W")
    for slot, server in zip(rack.slots, result.server_results):
        print(
            f"  {slot.benchmark.name:<14s} {server.configuration.label():<18s} "
            f"P={server.package_power_w:5.1f} W  die max={server.die_metrics.theta_max_c:5.1f} C"
        )
    print()
    return result.chiller_power_w


def main() -> None:
    proposed_power = report("Proposed mapping stack", build_rack(ProposedThermalAwareMapping()))
    baseline_power = report("Conventional balancing baseline", build_rack(CoskunBalancingMapping()))
    if baseline_power > 0.0:
        saving = (baseline_power - proposed_power) / baseline_power * 100.0
        print(f"Chiller power saving of the proposed stack: {saving:.1f}%")


if __name__ == "__main__":
    main()
