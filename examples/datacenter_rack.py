"""Datacenter demo: MPC vs reactive setpoint control over a staged bank.

Builds a seeded diurnal scenario — four racks of four servers, each server
running its own PARSEC workload trace — behind a staged
:class:`repro.thermosyphon.chiller.ChillerBank` of three chiller units
(part-load COP curves, one unit taken offline mid-trace for maintenance),
and runs the floor three times through the stacked
:class:`repro.datacenter.FloorEngine`:

1. **fixed** — the chiller water supply stays at the design setpoint; only
   the paper's fast per-server valve/DVFS rule acts;
2. **reactive** — the :class:`repro.datacenter.SupervisoryController`
   raises the setpoint one step at a time while a conservative bound on
   the post-raise peak clears ``T_CASE_MAX`` by the guard margin;
3. **mpc** — the :class:`repro.datacenter.MpcSupervisoryController`
   snapshots the warm floor each supervisory period, rolls six candidate
   setpoint trajectories over a receding horizon through the *real*
   engine, and commits the first step of the cheapest trajectory predicted
   to keep every server under the guard margin — including the multi-step
   raises the reactive bound never authorizes.

The report compares plant energy, violations, setpoint schedules and the
bank's unit commitment, then prints each MPC planning step (every
candidate's predicted energy/peak and the winner).

Run with::

    python examples/datacenter_rack.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.datacenter import (
    DatacenterModel,
    MpcSupervisoryController,
    SupervisoryController,
    build_scenario,
)
from repro.floorplan.xeon_e5_v4 import build_xeon_e5_v4_floorplan
from repro.thermal.simulator import ThermalSimulator
from repro.thermosyphon.chiller import ChillerBank, ChillerPlant

DURATION_S = 48.0
CELL_SIZE_MM = 1.5
SUPERVISORY_PERIOD_S = 8.0
SETPOINT_MAX_C = 40.0


def main() -> None:
    floorplan = build_xeon_e5_v4_floorplan()
    # One simulator for the whole study: all three runs share its
    # factorization cache, so the MPC rollouts replay through warm solves.
    thermal_simulator = ThermalSimulator(floorplan, cell_size_mm=CELL_SIZE_MM)
    scenario = build_scenario(
        "diurnal",
        n_racks=4,
        servers_per_rack=4,
        duration_s=DURATION_S,
        seed=7,
        floorplan=floorplan,
    )
    # A staged bank: three units sized so one unit cannot carry the floor
    # alone at peak, with the middle unit offline for a maintenance window
    # in the second half of the trace.
    bank = ChillerBank.uniform(
        3,
        120.0 * scenario.n_servers / 3,
        plant=ChillerPlant(free_cooling_outdoor_c=18.0),
        maintenance_windows=[(), ((32.0, 44.0),), ()],
    )
    print(f"scenario: {scenario.description}")
    print(
        f"plant:    {bank.n_units}-unit staged bank, "
        f"{bank.total_capacity_w:.0f} W rated, chiller1 offline 32-44 s\n"
    )

    def floor() -> DatacenterModel:
        return DatacenterModel(
            scenario.racks,
            plant=bank,
            floorplan=floorplan,
            thermal_simulator=thermal_simulator,
        )

    fixed = floor().run_trace(duration_s=DURATION_S)
    print("--- fixed setpoint ---")
    print(fixed.summary())
    print()

    reactive_controller = SupervisoryController(
        period_s=SUPERVISORY_PERIOD_S, setpoint_max_c=SETPOINT_MAX_C
    )
    reactive = floor().run_trace(
        duration_s=DURATION_S, supervisory=reactive_controller
    )
    print("--- reactive supervisory setpoint ---")
    print(reactive.summary())
    print()

    planner = MpcSupervisoryController(
        period_s=SUPERVISORY_PERIOD_S, setpoint_max_c=SETPOINT_MAX_C, horizon=4
    )
    mpc = floor().run_trace(duration_s=DURATION_S, supervisory=planner)
    print("--- mpc supervisory setpoint ---")
    print(mpc.summary())
    print()

    print("mpc planning log (receding horizon, first step committed):")
    for plan in planner.planning_log:
        print(f"  t={plan.time_s:5.1f} s  from {plan.setpoint_c:.1f} C:")
        for rollout in plan.rollouts:
            marker = " <- chosen" if rollout is plan.chosen else ""
            feasibility = "ok  " if rollout.feasible else "hot "
            print(
                f"    {rollout.candidate.name:<11} {feasibility}"
                f"E={rollout.plant_energy_j / 1e3:6.2f} kJ  "
                f"peak={rollout.worst_peak_case_c:5.1f} C{marker}"
            )
    print()

    print("setpoint schedules (reactive vs mpc):")
    for label, trace in (("reactive", reactive), ("mpc", mpc)):
        for decision in trace.supervisory_decisions:
            print(
                f"  {label:>8}  t={decision.time_s:5.1f} s  "
                f"{decision.setpoint_c:4.1f} C -> {decision.next_setpoint_c:4.1f} C  "
                f"({decision.action.value}, worst peak "
                f"{decision.worst_peak_case_c:.1f} C)"
            )
    print()

    if fixed.plant_energy_j > 0.0:
        for label, trace in (("reactive", reactive), ("mpc", mpc)):
            saved = fixed.plant_energy_j - trace.plant_energy_j
            print(
                f"plant energy saved by {label} control: {saved / 1e3:.2f} kJ "
                f"({saved / fixed.plant_energy_j * 100.0:.1f}%) at "
                f"{trace.thermal_violations} thermal violations"
            )
        extra = reactive.plant_energy_j - mpc.plant_energy_j
        if reactive.plant_energy_j > 0.0:
            print(
                f"mpc vs reactive: {extra / 1e3:.2f} kJ further "
                f"({extra / reactive.plant_energy_j * 100.0:.1f}%) — the "
                f"multi-step raises the reactive bound never authorizes"
            )


if __name__ == "__main__":
    main()
