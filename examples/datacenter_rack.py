"""Datacenter demo: a shared chiller plant under supervisory setpoint control.

Builds a seeded diurnal scenario — two racks of four servers, each server
running its own PARSEC workload trace — behind one chiller plant, then runs
the floor twice through :class:`repro.datacenter.DatacenterModel`:

1. with the chiller water supply fixed at the design setpoint, and
2. with the supervisory outer loop raising the setpoint whenever every
   server's predicted peak case temperature clears ``T_CASE_MAX``,

and reports the plant energy saved, the setpoint schedule and the floor's
operator-factorization count (every rack draws from one shared solver
cache).  The per-server fast loop (water valve first, DVFS second) is the
paper's runtime controller in both runs.

Run with::

    python examples/datacenter_rack.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.datacenter import (
    DatacenterModel,
    SupervisoryController,
    build_scenario,
)
from repro.floorplan.xeon_e5_v4 import build_xeon_e5_v4_floorplan
from repro.thermal.simulator import ThermalSimulator
from repro.thermosyphon.chiller import ChillerPlant

DURATION_S = 48.0
CELL_SIZE_MM = 1.5


def build_floor(scenario, floorplan, thermal_simulator) -> DatacenterModel:
    return DatacenterModel(
        scenario.racks,
        plant=ChillerPlant(free_cooling_outdoor_c=18.0),
        floorplan=floorplan,
        thermal_simulator=thermal_simulator,
    )


def main() -> None:
    floorplan = build_xeon_e5_v4_floorplan()
    # One simulator for the whole study: every rack of both runs shares its
    # factorization cache.
    thermal_simulator = ThermalSimulator(floorplan, cell_size_mm=CELL_SIZE_MM)
    scenario = build_scenario(
        "diurnal",
        n_racks=2,
        servers_per_rack=4,
        duration_s=DURATION_S,
        seed=7,
        floorplan=floorplan,
    )
    print(f"scenario: {scenario.description}\n")

    fixed = build_floor(scenario, floorplan, thermal_simulator).run_trace(
        duration_s=DURATION_S
    )
    print("--- fixed setpoint ---")
    print(fixed.summary())
    print()

    supervisory = SupervisoryController(period_s=8.0, setpoint_max_c=40.0)
    controlled = build_floor(scenario, floorplan, thermal_simulator).run_trace(
        duration_s=DURATION_S, supervisory=supervisory
    )
    print("--- supervisory setpoint ---")
    print(controlled.summary())
    print()
    for decision in controlled.supervisory_decisions:
        print(
            f"  t={decision.time_s:5.1f} s  {decision.setpoint_c:4.1f} C -> "
            f"{decision.next_setpoint_c:4.1f} C  ({decision.action.value}, "
            f"worst peak {decision.worst_peak_case_c:.1f} C)"
        )
    print()

    saved = fixed.plant_energy_j - controlled.plant_energy_j
    if fixed.plant_energy_j > 0.0:
        print(
            f"plant energy saved by supervisory control: {saved / 1e3:.2f} kJ "
            f"({saved / fixed.plant_energy_j * 100.0:.1f}%) at "
            f"{controlled.thermal_violations} thermal violations"
        )


if __name__ == "__main__":
    main()
