"""Datacenter demo: a heterogeneous floor under supervisory setpoint control.

Builds a seeded diurnal scenario — four racks of four servers, each server
running its own PARSEC workload trace — and makes the floor *mixed-SKU*:
racks alternate between the paper-optimized thermosyphon design on the
stock Xeon E5 v4 package and the Seuret reference design on a wider-spreader
variant of the package, so the floor carries two hardware groups.  The
:class:`repro.datacenter.FloorEngine` advances each group through one
stacked multi-RHS back-substitution per cooling boundary per substep —
there is no per-rack loop and no fallback path; a mixed floor runs through
the same stacked engine as a homogeneous one.

The floor then runs twice behind one shared chiller plant:

1. with the chiller water supply fixed at the design setpoint, and
2. with the supervisory outer loop raising the setpoint whenever every
   server's predicted peak case temperature clears ``T_CASE_MAX``,

and reports the plant energy saved, the setpoint schedule, the floor's
hardware-group count and its operator-factorization total (each hardware
group draws from its own solver cache; the session merges the stats).
The per-server fast loop (water valve first, DVFS second) is the paper's
runtime controller in both runs.

Run with::

    python examples/datacenter_rack.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.datacenter import (
    DatacenterModel,
    RackSpec,
    SupervisoryController,
    build_scenario,
)
from repro.floorplan.xeon_e5_v4 import build_xeon_e5_v4_floorplan
from repro.thermal.simulator import ThermalSimulator
from repro.thermosyphon.chiller import ChillerPlant
from repro.thermosyphon.design import (
    PAPER_OPTIMIZED_DESIGN,
    SEURET_REFERENCE_DESIGN,
)

DURATION_S = 48.0
CELL_SIZE_MM = 1.5


def build_floor(racks, floorplan, thermal_simulator) -> DatacenterModel:
    return DatacenterModel(
        racks,
        plant=ChillerPlant(free_cooling_outdoor_c=18.0),
        floorplan=floorplan,
        thermal_simulator=thermal_simulator,
    )


def main() -> None:
    floorplan = build_xeon_e5_v4_floorplan()
    # The second SKU: same die, a wider heat spreader — a genuinely
    # different thermal network, so its racks form a second hardware group
    # with their own operator factorizations.
    wide_spreader = build_xeon_e5_v4_floorplan(spreader_size_mm=42.0)
    # One simulator for the whole study: racks on the stock package share
    # its factorization cache across both runs.  The model builds (and
    # reuses) a simulator per distinct floorplan for the rest.
    thermal_simulator = ThermalSimulator(floorplan, cell_size_mm=CELL_SIZE_MM)
    scenario = build_scenario(
        "diurnal",
        n_racks=4,
        servers_per_rack=4,
        duration_s=DURATION_S,
        seed=7,
        floorplan=floorplan,
        designs=(PAPER_OPTIMIZED_DESIGN, SEURET_REFERENCE_DESIGN),
    )
    racks = tuple(
        RackSpec(
            name=spec.name,
            servers=spec.servers,
            trace=spec.trace,
            floorplan=None if index % 2 == 0 else wide_spreader,
            design=spec.design,
        )
        for index, spec in enumerate(scenario.racks)
    )
    print(f"scenario: {scenario.description}")
    designs = " / ".join(
        f"{spec.name}: {spec.design.orientation.value if spec.design else 'default'}"
        f"{' (wide spreader)' if index % 2 else ''}"
        for index, spec in enumerate(racks)
    )
    print(f"designs:  {designs}\n")

    model = build_floor(racks, floorplan, thermal_simulator)
    print(f"hardware groups on the floor: {model.n_hardware_groups}\n")

    fixed = model.run_trace(duration_s=DURATION_S)
    print("--- fixed setpoint ---")
    print(fixed.summary())
    print()

    supervisory = SupervisoryController(period_s=8.0, setpoint_max_c=40.0)
    controlled = build_floor(racks, floorplan, thermal_simulator).run_trace(
        duration_s=DURATION_S, supervisory=supervisory
    )
    print("--- supervisory setpoint ---")
    print(controlled.summary())
    print()
    for decision in controlled.supervisory_decisions:
        print(
            f"  t={decision.time_s:5.1f} s  {decision.setpoint_c:4.1f} C -> "
            f"{decision.next_setpoint_c:4.1f} C  ({decision.action.value}, "
            f"worst peak {decision.worst_peak_case_c:.1f} C)"
        )
    print()

    saved = fixed.plant_energy_j - controlled.plant_energy_j
    if fixed.plant_energy_j > 0.0:
        print(
            f"plant energy saved by supervisory control: {saved / 1e3:.2f} kJ "
            f"({saved / fixed.plant_energy_j * 100.0:.1f}%) at "
            f"{controlled.thermal_violations} thermal violations"
        )


if __name__ == "__main__":
    main()
