"""Steady vs transient controller trace (paper Section VII runtime study).

Plays the same phased workload trace through the runtime controller twice:

* ``mode="steady"`` re-solves thermal equilibrium every control period —
  every power jitter re-keys the cooling boundary and costs an operator
  factorization;
* ``mode="transient"`` carries the temperature field across periods in a
  warm-start ``SimulationSession`` and advances it with cached
  backward-Euler steps — the boundary is held between actuator events, so
  the whole trace runs on a handful of factorizations.

Run with::

    python examples/controller_trace.py
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.core.mapping import ThreadMapper
from repro.core.mapping_policies import ProposedThermalAwareMapping
from repro.core.pipeline import CooledServerSimulation
from repro.core.runtime_controller import ThermosyphonController
from repro.thermosyphon.design import PAPER_OPTIMIZED_DESIGN
from repro.workloads.configuration import Configuration
from repro.workloads.parsec import get_benchmark
from repro.workloads.qos import QoSConstraint
from repro.workloads.trace import generate_trace


def main() -> None:
    benchmark = get_benchmark("x264")
    constraint = QoSConstraint(2.0)
    trace = generate_trace(benchmark, n_steady_phases=10, total_duration_s=60.0)

    records = {}
    for mode in ("steady", "transient"):
        # Fresh simulation per mode: a shared factorization cache would let
        # the second run start warm and skew the printed comparison.
        simulation = CooledServerSimulation(design=PAPER_OPTIMIZED_DESIGN, cell_size_mm=1.5)
        mapper = ThreadMapper(
            simulation.floorplan, orientation=PAPER_OPTIMIZED_DESIGN.orientation
        )
        mapping = mapper.map(benchmark, Configuration(8, 2, 3.2), ProposedThermalAwareMapping())
        controller = ThermosyphonController(simulation, control_period_s=2.0)
        start = time.perf_counter()
        records[mode] = controller.run_trace(
            benchmark, mapping, constraint, trace, mode=mode
        )
        elapsed = time.perf_counter() - start
        print(f"=== {mode} mode ({elapsed:.2f} s) ===")
        print(records[mode].summary())
        print()

    transient = records["transient"]
    print(f"{'t (s)':>6} {'T_case (C)':>11} {'peak (C)':>9} {'residual':>9} "
          f"{'P (W)':>7} {'flow (kg/h)':>12}  action")
    for decision in transient.decisions:
        print(
            f"{decision.time_s:6.1f} {decision.case_temperature_c:11.1f} "
            f"{decision.period_peak_case_c:9.1f} {decision.settle_residual_c:9.4f} "
            f"{decision.package_power_w:7.1f} {decision.water_flow_kg_h:12.1f}  "
            f"{decision.action.value}"
        )


if __name__ == "__main__":
    main()
