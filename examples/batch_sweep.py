"""Batched sweep over water flow rates and configurations.

Demonstrates the batch-evaluation engine: many (benchmark, configuration,
water-flow) points are evaluated through one ``CooledServerSimulation``, so
the thermal factorization cache is shared across the whole sweep.  Run with
``PYTHONPATH=src python examples/batch_sweep.py``; pass ``--parallel N`` to
fan the points out over N worker processes.
"""

from __future__ import annotations

import argparse
import time

from repro.core.batch import BatchEvaluator, SweepPoint
from repro.core.pipeline import CooledServerSimulation
from repro.workloads.configuration import Configuration
from repro.workloads.parsec import get_benchmark


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--parallel", type=int, default=None, metavar="N")
    parser.add_argument("--cell-size-mm", type=float, default=1.5)
    arguments = parser.parse_args()

    simulation = CooledServerSimulation(cell_size_mm=arguments.cell_size_mm)

    benchmarks = [get_benchmark(name) for name in ("x264", "canneal", "streamcluster")]
    flows_kg_h = (5.0, 7.0, 10.0, 14.0)
    configuration = Configuration(n_cores=8, threads_per_core=2, frequency_ghz=3.2)

    points = [
        SweepPoint(
            benchmark=benchmark,
            configuration=configuration,
            water_loop=simulation.design.water_loop().with_flow_rate(flow),
        )
        for benchmark in benchmarks
        for flow in flows_kg_h
    ]

    # The context manager shuts the worker pool down; the pool (and the
    # workers' warm factorization caches) persists between the two passes.
    with BatchEvaluator(simulation) as evaluator:
        start = time.perf_counter()
        results = evaluator.evaluate_many(points, max_workers=arguments.parallel)
        elapsed = time.perf_counter() - start

        # Each sweep point has a distinct cooling boundary (the boundary
        # depends on the power map and flow), so the first pass is all
        # misses.  Re-evaluating the same operating points — what a
        # controller trace or an optimizer refinement loop does — runs
        # entirely on cached factorizations.
        start = time.perf_counter()
        evaluator.evaluate_many(points, max_workers=arguments.parallel)
        second_pass = time.perf_counter() - start

    print(f"{'benchmark':<14} {'flow kg/h':>9} {'P_pkg W':>8} {'T_hot C':>8} "
          f"{'T_case C':>8} {'P_chiller W':>11}")
    for point, result in zip(points, results):
        print(
            f"{result.benchmark_name:<14} "
            f"{point.water_loop.flow_rate_kg_h:>9.1f} "
            f"{result.package_power_w:>8.1f} "
            f"{result.die_metrics.theta_max_c:>8.1f} "
            f"{result.case_temperature_c:>8.1f} "
            f"{result.chiller_power_w():>11.1f}"
        )
    print(f"\n{len(points)} evaluations in {elapsed:.2f} s")
    print(f"second pass over the same points: {second_pass:.2f} s")
    cache = simulation.thermal_simulator.solver_cache
    serial = arguments.parallel is None or arguments.parallel <= 1
    if cache is not None and serial:
        stats = cache.stats
        print(
            f"factorization cache: {stats.hits} hits / {stats.misses} misses "
            f"(hit rate {stats.hit_rate:.0%})"
        )
    elif not serial:
        print("(parallel run: factorization caches live in the worker processes)")


if __name__ == "__main__":
    main()
