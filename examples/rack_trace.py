"""Rack-scale runtime control: every server batched through one operator.

Drives the flow-rate-first/DVFS-second runtime controller over a whole
homogeneous rack at once.  The rack engine
(:class:`repro.core.rack_session.RackSession`) stacks the per-server
temperature fields into one ``(n_servers, n_cells)`` array and advances all
servers holding the same cooling boundary through a single cached
factorization per substep (multi-column back-substitution), so the rack
trace costs roughly ``n_servers`` times fewer factorizations than the
independent per-server traces it reproduces to round-off.

For comparison the same trace is also run server-by-server through
independent simulations — the golden path the batched engine is checked
against in ``tests/test_rack_session.py``.

Run with::

    python examples/rack_trace.py
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.core.mapping import ThreadMapper
from repro.core.mapping_policies import ProposedThermalAwareMapping
from repro.core.pipeline import CooledServerSimulation
from repro.core.runtime_controller import RackServer, ThermosyphonController
from repro.thermosyphon.design import PAPER_OPTIMIZED_DESIGN
from repro.workloads.configuration import Configuration
from repro.workloads.parsec import get_benchmark
from repro.workloads.qos import QoSConstraint
from repro.workloads.trace import generate_trace

N_SERVERS = 4


def build_controller() -> ThermosyphonController:
    simulation = CooledServerSimulation(
        design=PAPER_OPTIMIZED_DESIGN, cell_size_mm=1.5
    )
    return ThermosyphonController(simulation, control_period_s=2.0)


def main() -> None:
    benchmark = get_benchmark("x264")
    constraint = QoSConstraint(2.0)
    trace = generate_trace(benchmark, n_steady_phases=10, total_duration_s=60.0)

    controller = build_controller()
    mapper = ThreadMapper(
        controller.simulation.floorplan, orientation=PAPER_OPTIMIZED_DESIGN.orientation
    )
    mapping = mapper.map(
        benchmark, Configuration(8, 2, 3.2), ProposedThermalAwareMapping()
    )
    servers = [RackServer(benchmark, mapping, constraint) for _ in range(N_SERVERS)]

    start = time.perf_counter()
    rack = controller.run_rack_trace(servers, trace)
    rack_s = time.perf_counter() - start
    print(f"=== batched rack engine ({rack_s:.2f} s) ===")
    print(rack.summary())
    print()

    # The golden path: the same servers as independent transient traces.
    start = time.perf_counter()
    per_server_factorizations = 0
    for _ in range(N_SERVERS):
        solo = build_controller()
        record = solo.run_trace(
            benchmark, mapping, constraint, trace, mode="transient"
        )
        per_server_factorizations += record.factorizations or 0
    per_server_s = time.perf_counter() - start
    print(f"=== independent per-server traces ({per_server_s:.2f} s) ===")
    print(f"  total factorizations  : {per_server_factorizations}")
    print()
    print(
        f"batched rack engine: "
        f"{per_server_factorizations / max(rack.factorizations or 0, 1):.1f}x fewer "
        f"factorizations, {per_server_s / max(rack_s, 1e-9):.1f}x faster"
    )
    print()

    print(f"{'t (s)':>6} {'worst T_case':>13} {'rack P_chiller':>15}  actions")
    for period, (decisions, chiller_w) in enumerate(
        zip(rack.periods, rack.chiller_power_w)
    ):
        worst = max(d.case_temperature_c for d in decisions)
        actions = ",".join(
            f"s{i}:{d.action.value}"
            for i, d in enumerate(decisions)
            if d.action.value != "none"
        )
        print(
            f"{period * rack.control_period_s:6.1f} {worst:12.1f}C "
            f"{chiller_w:14.1f}W  {actions or '-'}"
        )


if __name__ == "__main__":
    main()
