"""Chilled-water loop feeding the thermosyphon condenser."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.exceptions import ConfigurationError
from repro.utils.units import WATER_DENSITY, WATER_SPECIFIC_HEAT, kg_per_hour_to_kg_per_second
from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class WaterLoop:
    """Operating point of the condenser water loop.

    The paper's thermosyphon is equipped with a flow meter and valve so the
    flow rate can be adjusted at runtime; the inlet temperature is set per
    rack by the chiller and changes only slowly.
    """

    inlet_temperature_c: float
    flow_rate_kg_h: float
    min_flow_rate_kg_h: float = 2.0
    max_flow_rate_kg_h: float = 30.0
    specific_heat_j_kgk: float = WATER_SPECIFIC_HEAT
    density_kg_m3: float = WATER_DENSITY

    def __post_init__(self) -> None:
        check_positive(self.flow_rate_kg_h, "flow_rate_kg_h")
        check_positive(self.min_flow_rate_kg_h, "min_flow_rate_kg_h")
        check_positive(self.max_flow_rate_kg_h, "max_flow_rate_kg_h")
        check_positive(self.specific_heat_j_kgk, "specific_heat_j_kgk")
        check_positive(self.density_kg_m3, "density_kg_m3")
        if self.min_flow_rate_kg_h > self.max_flow_rate_kg_h:
            raise ConfigurationError("min_flow_rate_kg_h must be <= max_flow_rate_kg_h")
        if not (self.min_flow_rate_kg_h <= self.flow_rate_kg_h <= self.max_flow_rate_kg_h):
            raise ConfigurationError(
                f"flow rate {self.flow_rate_kg_h} kg/h outside the valve range "
                f"[{self.min_flow_rate_kg_h}, {self.max_flow_rate_kg_h}]"
            )

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def mass_flow_kg_s(self) -> float:
        """Mass flow rate in kg/s."""
        return kg_per_hour_to_kg_per_second(self.flow_rate_kg_h)

    @property
    def volumetric_flow_l_s(self) -> float:
        """Volumetric flow rate in litres per second."""
        return self.mass_flow_kg_s / self.density_kg_m3 * 1000.0

    @property
    def heat_capacity_rate_w_per_k(self) -> float:
        """``m_dot * c_p`` in W/K."""
        return self.mass_flow_kg_s * self.specific_heat_j_kgk

    def outlet_temperature_c(self, heat_w: float) -> float:
        """Water outlet temperature after absorbing ``heat_w``."""
        check_non_negative(heat_w, "heat_w")
        return self.inlet_temperature_c + heat_w / self.heat_capacity_rate_w_per_k

    def delta_t_c(self, heat_w: float) -> float:
        """Water temperature rise across the condenser."""
        return self.outlet_temperature_c(heat_w) - self.inlet_temperature_c

    # ------------------------------------------------------------------ #
    # Actuation
    # ------------------------------------------------------------------ #
    def with_flow_rate(self, flow_rate_kg_h: float) -> "WaterLoop":
        """Copy with a new flow rate, clamped to the valve range."""
        clamped = min(max(flow_rate_kg_h, self.min_flow_rate_kg_h), self.max_flow_rate_kg_h)
        return replace(self, flow_rate_kg_h=clamped)

    def with_inlet_temperature(self, inlet_temperature_c: float) -> "WaterLoop":
        """Copy with a new inlet (chiller supply) temperature."""
        return replace(self, inlet_temperature_c=inlet_temperature_c)

    @property
    def at_maximum_flow(self) -> bool:
        """True when the valve is fully open."""
        return abs(self.flow_rate_kg_h - self.max_flow_rate_kg_h) < 1e-9
