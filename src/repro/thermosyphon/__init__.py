"""Two-phase gravity-driven thermosyphon model.

This subsystem reproduces (at system level) the micro-scale thermosyphon of
Seuret et al. that the paper designs and tunes: a micro-channel evaporator
sitting on the CPU heat spreader, a riser carrying the two-phase mixture up
to a water-cooled micro-condenser, and a downcomer returning liquid by
gravity.  The models capture the behaviours the paper's design-space and
mapping studies rely on:

* the saturation temperature set by the condenser water loop (inlet
  temperature and flow rate),
* flow-boiling heat transfer that varies along the channel with local vapor
  quality, with dryout above a critical quality,
* the gravity-driven circulation rate as a balance between the driving head
  and the loop pressure drop, modulated by the filling ratio,
* the chiller electrical power needed to cool the return water (Eq. 1).
"""

from repro.thermosyphon.refrigerant import (
    REFRIGERANTS,
    Refrigerant,
    get_refrigerant,
)
from repro.thermosyphon.orientation import Orientation
from repro.thermosyphon.evaporator import (
    ChannelBatchSolution,
    ChannelSolution,
    EvaporatorGeometry,
    EvaporatorModel,
)
from repro.thermosyphon.condenser import CondenserModel
from repro.thermosyphon.water_loop import WaterLoop
from repro.thermosyphon.chiller import ChillerModel, ChillerPlant, chiller_power_w
from repro.thermosyphon.design import (
    PAPER_OPTIMIZED_DESIGN,
    SEURET_REFERENCE_DESIGN,
    ThermosyphonDesign,
)
from repro.thermosyphon.loop import LoopOperatingPoint, ThermosyphonLoop

__all__ = [
    "REFRIGERANTS",
    "Refrigerant",
    "get_refrigerant",
    "Orientation",
    "EvaporatorGeometry",
    "EvaporatorModel",
    "ChannelBatchSolution",
    "ChannelSolution",
    "CondenserModel",
    "WaterLoop",
    "ChillerModel",
    "ChillerPlant",
    "chiller_power_w",
    "ThermosyphonDesign",
    "PAPER_OPTIMIZED_DESIGN",
    "SEURET_REFERENCE_DESIGN",
    "LoopOperatingPoint",
    "ThermosyphonLoop",
]
