"""Micro-channel evaporator geometry and flow-boiling heat transfer model.

The evaporator is a copper plate with parallel rectangular micro-channels
machined into its top surface.  Refrigerant enters slightly subcooled, heats
up to saturation, boils as it traverses the channel, and may dry out if the
local vapor quality exceeds a critical value.  The local heat transfer
coefficient is modelled with a standard flow-boiling composition: a Cooper
pool-boiling (nucleate) term combined with a Dittus-Boelter convective term
enhanced by the vapor quality, and a sharp degradation beyond the dryout
quality.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.thermosyphon.refrigerant import Refrigerant
from repro.utils.validation import check_fraction, check_positive


#: Heat transfer coefficient of pure vapor convection after full dryout [W/m^2 K].
VAPOR_PHASE_HTC_W_M2K = 400.0

#: Fin efficiency applied to the channel side walls when converting the
#: channel-wall HTC into an equivalent base-area HTC.
FIN_EFFICIENCY = 0.82


@dataclass(frozen=True)
class EvaporatorGeometry:
    """Geometry of the micro-channel evaporator.

    The evaporator base covers the heat-spreader footprint.  Channels run
    across the full base in the direction given by the orientation; the
    channel/fin pitch fixes how many parallel channels fit.
    """

    base_width_mm: float = 38.0
    base_height_mm: float = 38.0
    channel_width_mm: float = 0.5
    channel_depth_mm: float = 1.5
    fin_width_mm: float = 0.5

    def __post_init__(self) -> None:
        check_positive(self.base_width_mm, "base_width_mm")
        check_positive(self.base_height_mm, "base_height_mm")
        check_positive(self.channel_width_mm, "channel_width_mm")
        check_positive(self.channel_depth_mm, "channel_depth_mm")
        check_positive(self.fin_width_mm, "fin_width_mm")

    @property
    def channel_pitch_mm(self) -> float:
        """Channel-to-channel pitch (channel plus fin width)."""
        return self.channel_width_mm + self.fin_width_mm

    def n_channels(self, span_mm: float) -> int:
        """Number of channels that fit across ``span_mm``."""
        return max(int(span_mm / self.channel_pitch_mm), 1)

    @property
    def hydraulic_diameter_m(self) -> float:
        """Hydraulic diameter of one rectangular channel in metres."""
        w = self.channel_width_mm * 1e-3
        d = self.channel_depth_mm * 1e-3
        return 4.0 * w * d / (2.0 * (w + d))

    @property
    def channel_flow_area_m2(self) -> float:
        """Cross-sectional flow area of one channel in m^2."""
        return (self.channel_width_mm * 1e-3) * (self.channel_depth_mm * 1e-3)

    @property
    def area_enhancement(self) -> float:
        """Wetted-perimeter to base-pitch ratio (fin area enhancement).

        Converts a channel-wall heat transfer coefficient into an equivalent
        coefficient per unit of evaporator base area.
        """
        wetted = self.channel_width_mm + 2.0 * self.channel_depth_mm * FIN_EFFICIENCY
        return wetted / self.channel_pitch_mm


@dataclass
class ChannelSolution:
    """Per-cell state along one micro-channel lane (flow direction order)."""

    quality: np.ndarray
    fluid_temperature_c: np.ndarray
    base_htc_w_m2k: np.ndarray
    dryout: bool

    @property
    def outlet_quality(self) -> float:
        """Vapor quality at the channel outlet."""
        return float(self.quality[-1])


@dataclass
class ChannelBatchSolution:
    """Per-cell state of many lanes marched together.

    All arrays have shape ``(n_lanes, n_cells)`` with cells in flow
    direction order; ``dryout_per_lane`` has shape ``(n_lanes,)``.
    """

    quality: np.ndarray
    fluid_temperature_c: np.ndarray
    base_htc_w_m2k: np.ndarray
    dryout_per_lane: np.ndarray

    @property
    def n_lanes(self) -> int:
        """Number of lanes in the batch."""
        return self.quality.shape[0]

    @property
    def outlet_quality_per_lane(self) -> np.ndarray:
        """Vapor quality at each lane's outlet, shape ``(n_lanes,)``."""
        return self.quality[:, -1].copy()

    @property
    def dryout(self) -> bool:
        """True if any lane exceeded the dryout quality anywhere."""
        return bool(self.dryout_per_lane.any())

    def lane(self, index: int) -> ChannelSolution:
        """View one lane of the batch as a :class:`ChannelSolution`."""
        return ChannelSolution(
            quality=self.quality[index].copy(),
            fluid_temperature_c=self.fluid_temperature_c[index].copy(),
            base_htc_w_m2k=self.base_htc_w_m2k[index].copy(),
            dryout=bool(self.dryout_per_lane[index]),
        )


class EvaporatorModel:
    """Flow-boiling heat transfer along the evaporator channels."""

    def __init__(
        self,
        refrigerant: Refrigerant,
        geometry: EvaporatorGeometry | None = None,
        *,
        dryout_quality: float = 0.85,
    ) -> None:
        self.refrigerant = refrigerant
        self.geometry = geometry if geometry is not None else EvaporatorGeometry()
        self.dryout_quality = check_fraction(dryout_quality, "dryout_quality")

    # ------------------------------------------------------------------ #
    # Local heat transfer coefficients (channel-wall referenced)
    # ------------------------------------------------------------------ #
    def single_phase_htc_w_m2k(self, mass_flux_kg_m2s: float) -> float:
        """Liquid single-phase HTC from Dittus-Boelter with a laminar floor."""
        check_positive(mass_flux_kg_m2s, "mass_flux_kg_m2s")
        refrigerant = self.refrigerant
        diameter = self.geometry.hydraulic_diameter_m
        reynolds = mass_flux_kg_m2s * diameter / refrigerant.liquid_viscosity_pa_s
        prandtl = refrigerant.liquid_prandtl()
        nusselt_turbulent = 0.023 * reynolds**0.8 * prandtl**0.4
        nusselt = max(4.36, nusselt_turbulent)
        return nusselt * refrigerant.liquid_conductivity_w_mk / diameter

    def nucleate_boiling_htc_w_m2k(self, heat_flux_w_m2: float, t_sat_c: float) -> float:
        """Cooper pool-boiling correlation."""
        heat_flux_w_m2 = max(heat_flux_w_m2, 100.0)
        reduced = self.refrigerant.reduced_pressure(t_sat_c)
        molar_mass = self.refrigerant.molar_mass_kg_kmol
        return (
            55.0
            * reduced**0.12
            * (-math.log10(reduced)) ** (-0.55)
            * molar_mass ** (-0.5)
            * heat_flux_w_m2**0.67
        )

    def two_phase_htc_w_m2k(
        self,
        quality: float,
        mass_flux_kg_m2s: float,
        heat_flux_w_m2: float,
        t_sat_c: float,
    ) -> float:
        """Channel-wall HTC in the saturated boiling regime.

        In micro-channel flow boiling at the heat fluxes of interest the
        nucleate term dominates at low quality; as the vapor quality grows
        the liquid film thins and intermittent local dryout progressively
        degrades the coefficient, until the dryout quality is reached and it
        collapses towards single-phase vapor cooling.  This monotone
        degradation with quality is what makes the evaporator inlet cool
        better than its outlet — the effect the paper's orientation choice
        and channel-row mapping rule exploit.
        """
        quality = min(max(quality, 0.0), 1.0)
        h_liquid = self.single_phase_htc_w_m2k(mass_flux_kg_m2s)
        h_nucleate = self.nucleate_boiling_htc_w_m2k(heat_flux_w_m2, t_sat_c)
        convective_enhancement = 1.0 + 1.0 * quality**0.8
        h_convective = h_liquid * convective_enhancement
        h_wet = (h_nucleate**2 + h_convective**2) ** 0.5

        # Progressive film-thinning degradation before full dryout.
        onset_quality = 0.10
        if quality > onset_quality:
            span = max(self.dryout_quality - onset_quality, 1e-6)
            progress = min((quality - onset_quality) / span, 1.0)
            h_wet *= 1.0 - 0.65 * progress

        if quality <= self.dryout_quality:
            return h_wet
        # Collapse from the dryout quality to pure vapor cooling.
        span = max(1.0 - self.dryout_quality, 1e-6)
        weight = (quality - self.dryout_quality) / span
        return h_wet * (1.0 - weight) + VAPOR_PHASE_HTC_W_M2K * weight

    def base_htc_w_m2k(
        self,
        quality: float,
        mass_flux_kg_m2s: float,
        heat_flux_w_m2: float,
        t_sat_c: float,
        *,
        subcooled: bool = False,
    ) -> float:
        """Heat transfer coefficient referenced to the evaporator base area."""
        if subcooled:
            wall_htc = self.single_phase_htc_w_m2k(mass_flux_kg_m2s) * 1.5
        else:
            wall_htc = self.two_phase_htc_w_m2k(
                quality, mass_flux_kg_m2s, heat_flux_w_m2, t_sat_c
            )
        return wall_htc * self.geometry.area_enhancement

    def _two_phase_htc_array(
        self,
        quality: np.ndarray,
        mass_flux_kg_m2s: float,
        heat_flux_w_m2: np.ndarray,
        t_sat_c: float,
    ) -> np.ndarray:
        """Vectorized :meth:`two_phase_htc_w_m2k` over lanes at one cell.

        Operation-for-operation identical to the scalar method (same
        association order, same guards) so the batched march reproduces the
        per-lane golden path to round-off.
        """
        quality = np.clip(quality, 0.0, 1.0)
        h_liquid = self.single_phase_htc_w_m2k(mass_flux_kg_m2s)
        reduced = self.refrigerant.reduced_pressure(t_sat_c)
        prefactor = (
            55.0
            * reduced**0.12
            * (-math.log10(reduced)) ** (-0.55)
            * self.refrigerant.molar_mass_kg_kmol ** (-0.5)
        )
        h_nucleate = prefactor * np.maximum(heat_flux_w_m2, 100.0) ** 0.67
        h_convective = h_liquid * (1.0 + 1.0 * quality**0.8)
        h_wet = (h_nucleate**2 + h_convective**2) ** 0.5

        onset_quality = 0.10
        span = max(self.dryout_quality - onset_quality, 1e-6)
        progress = np.minimum((quality - onset_quality) / span, 1.0)
        h_wet = np.where(quality > onset_quality, h_wet * (1.0 - 0.65 * progress), h_wet)

        dry_span = max(1.0 - self.dryout_quality, 1e-6)
        weight = (quality - self.dryout_quality) / dry_span
        return np.where(
            quality <= self.dryout_quality,
            h_wet,
            h_wet * (1.0 - weight) + VAPOR_PHASE_HTC_W_M2K * weight,
        )

    # ------------------------------------------------------------------ #
    # Channel marching
    # ------------------------------------------------------------------ #
    def solve_channel(
        self,
        heat_per_cell_w: np.ndarray,
        mass_flow_kg_s: float,
        t_sat_c: float,
        *,
        inlet_subcooling_c: float = 3.0,
        inlet_quality: float = 0.0,
        cell_base_area_m2: float,
        saturation_slope_c_per_cell: float = 0.0,
    ) -> ChannelSolution:
        """March the refrigerant state along one channel lane.

        Parameters
        ----------
        heat_per_cell_w:
            Heat absorbed from the base in each cell along the flow
            direction (W); the first entry is the inlet cell.
        mass_flow_kg_s:
            Refrigerant mass flow through this lane.
        t_sat_c:
            Saturation temperature set by the condenser.
        inlet_subcooling_c:
            How far below saturation the liquid enters.
        inlet_quality:
            Non-zero when the filling ratio is too low and vapor reaches the
            evaporator inlet.
        cell_base_area_m2:
            Base area of one grid cell, used to convert heat to heat flux.
        saturation_slope_c_per_cell:
            Small decrease of the local saturation temperature along the
            channel caused by the two-phase pressure drop.
        """
        heat_per_cell_w = np.asarray(heat_per_cell_w, dtype=float)
        if heat_per_cell_w.ndim != 1:
            raise ValidationError("heat_per_cell_w must be one-dimensional")
        check_positive(mass_flow_kg_s, "mass_flow_kg_s")
        check_positive(cell_base_area_m2, "cell_base_area_m2")

        refrigerant = self.refrigerant
        latent = refrigerant.latent_heat_j_kg(t_sat_c)
        cp_liquid = refrigerant.liquid_specific_heat_j_kgk
        mass_flux = mass_flow_kg_s / self.geometry.channel_flow_area_m2
        enhancement = self.geometry.area_enhancement

        n_cells = heat_per_cell_w.size
        quality = np.zeros(n_cells, dtype=float)
        fluid_temperature = np.zeros(n_cells, dtype=float)
        htc = np.zeros(n_cells, dtype=float)

        current_quality = min(max(inlet_quality, 0.0), 1.0)
        subcooling = max(inlet_subcooling_c, 0.0) if current_quality == 0.0 else 0.0
        dryout = False

        for index in range(n_cells):
            local_t_sat = t_sat_c - saturation_slope_c_per_cell * index
            cell_heat = float(heat_per_cell_w[index])
            heat_flux = cell_heat / (cell_base_area_m2 * enhancement)

            if subcooling > 0.0:
                # Sensible heating region: the liquid warms towards saturation.
                fluid_temperature[index] = local_t_sat - subcooling
                htc[index] = self.base_htc_w_m2k(
                    0.0, mass_flux, heat_flux, local_t_sat, subcooled=True
                )
                temperature_rise = cell_heat / max(mass_flow_kg_s * cp_liquid, 1e-9)
                subcooling = max(subcooling - temperature_rise, 0.0)
                quality[index] = 0.0
                continue

            # Saturated boiling region.
            fluid_temperature[index] = local_t_sat
            htc[index] = self.base_htc_w_m2k(
                current_quality, mass_flux, heat_flux, local_t_sat
            )
            current_quality = min(
                current_quality + cell_heat / max(mass_flow_kg_s * latent, 1e-9), 1.0
            )
            quality[index] = current_quality
            if current_quality > self.dryout_quality:
                dryout = True

        return ChannelSolution(
            quality=quality,
            fluid_temperature_c=fluid_temperature,
            base_htc_w_m2k=htc,
            dryout=dryout,
        )

    def solve_channels(
        self,
        heat_per_cell_w: np.ndarray,
        mass_flow_kg_s: float,
        t_sat_c: float,
        *,
        inlet_subcooling_c: float = 3.0,
        inlet_quality: float = 0.0,
        cell_base_area_m2: float,
        saturation_slope_c_per_cell: float = 0.0,
    ) -> ChannelBatchSolution:
        """March many parallel lanes at once.

        The batched counterpart of :meth:`solve_channel`: ``heat_per_cell_w``
        has shape ``(n_lanes, n_cells)`` (cells in flow-direction order) and
        every lane carries ``mass_flow_kg_s`` and shares the inlet state.
        Cells remain the sequential axis — the refrigerant state depends on
        everything upstream — but all lanes advance together through NumPy
        array arithmetic, removing the per-lane Python loop from the hot
        path.  :meth:`solve_channel` is kept as the scalar golden model; the
        two must agree to round-off (see ``tests/test_lane_march_equivalence``).
        """
        heat_per_cell_w = np.asarray(heat_per_cell_w, dtype=float)
        if heat_per_cell_w.ndim != 2:
            raise ValidationError("heat_per_cell_w must be two-dimensional (n_lanes, n_cells)")
        check_positive(mass_flow_kg_s, "mass_flow_kg_s")
        check_positive(cell_base_area_m2, "cell_base_area_m2")

        refrigerant = self.refrigerant
        latent = refrigerant.latent_heat_j_kg(t_sat_c)
        cp_liquid = refrigerant.liquid_specific_heat_j_kgk
        mass_flux = mass_flow_kg_s / self.geometry.channel_flow_area_m2
        enhancement = self.geometry.area_enhancement

        n_lanes, n_cells = heat_per_cell_w.shape
        quality = np.zeros((n_lanes, n_cells), dtype=float)
        fluid_temperature = np.zeros((n_lanes, n_cells), dtype=float)
        htc = np.zeros((n_lanes, n_cells), dtype=float)

        inlet = min(max(inlet_quality, 0.0), 1.0)
        current_quality = np.full(n_lanes, inlet, dtype=float)
        initial_subcooling = max(inlet_subcooling_c, 0.0) if inlet == 0.0 else 0.0
        subcooling = np.full(n_lanes, initial_subcooling, dtype=float)
        dryout = np.zeros(n_lanes, dtype=bool)

        flux_denominator = cell_base_area_m2 * enhancement
        sensible_denominator = max(mass_flow_kg_s * cp_liquid, 1e-9)
        latent_denominator = max(mass_flow_kg_s * latent, 1e-9)
        h_subcooled = (self.single_phase_htc_w_m2k(mass_flux) * 1.5) * enhancement

        for index in range(n_cells):
            local_t_sat = t_sat_c - saturation_slope_c_per_cell * index
            cell_heat = heat_per_cell_w[:, index]
            heat_flux = cell_heat / flux_denominator
            subcooled = subcooling > 0.0
            saturated = ~subcooled

            h_two_phase = (
                self._two_phase_htc_array(current_quality, mass_flux, heat_flux, local_t_sat)
                * enhancement
            )
            fluid_temperature[:, index] = np.where(
                subcooled, local_t_sat - subcooling, local_t_sat
            )
            htc[:, index] = np.where(subcooled, h_subcooled, h_two_phase)

            # Sensible heating region: the liquid warms towards saturation.
            temperature_rise = cell_heat / sensible_denominator
            subcooling = np.where(
                subcooled, np.maximum(subcooling - temperature_rise, 0.0), subcooling
            )
            # Saturated boiling region: quality advances by the energy balance.
            advanced = np.minimum(current_quality + cell_heat / latent_denominator, 1.0)
            current_quality = np.where(saturated, advanced, current_quality)
            quality[:, index] = np.where(saturated, current_quality, 0.0)
            dryout |= saturated & (current_quality > self.dryout_quality)

        return ChannelBatchSolution(
            quality=quality,
            fluid_temperature_c=fluid_temperature,
            base_htc_w_m2k=htc,
            dryout_per_lane=dryout,
        )
