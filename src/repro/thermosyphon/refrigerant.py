"""Refrigerant thermophysical property models.

Properties are stored as small saturation-line tables (0-80 degC) with linear
interpolation, which is accurate to a few percent over the thermosyphon's
operating range and keeps the library dependency-free.  Anchor values follow
published saturation tables for each fluid.

The paper's design uses R236fa; R134a, R245fa and R1234ze(E) are provided for
the refrigerant-selection design sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError
from repro.utils.interpolation import LinearTable1D
from repro.utils.validation import check_in_range

#: Temperatures (degC) at which the saturation-line tables are anchored.
_TABLE_TEMPERATURES_C = (0.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0)


@dataclass(frozen=True)
class Refrigerant:
    """Saturation-line property model of one refrigerant.

    All property accessors take the saturation temperature in degrees
    Celsius and clamp it to the tabulated 0-80 degC range.
    """

    name: str
    molar_mass_kg_kmol: float
    critical_temperature_c: float
    critical_pressure_kpa: float
    #: Saturation pressure (kPa) vs temperature (degC).
    _pressure_table: LinearTable1D = field(repr=False)
    #: Latent heat of vaporisation (kJ/kg) vs temperature.
    _latent_heat_table: LinearTable1D = field(repr=False)
    #: Saturated liquid density (kg/m^3) vs temperature.
    _liquid_density_table: LinearTable1D = field(repr=False)
    #: Saturated vapor density (kg/m^3) vs temperature.
    _vapor_density_table: LinearTable1D = field(repr=False)
    #: Liquid thermal conductivity (W/m K), weakly temperature dependent.
    liquid_conductivity_w_mk: float = 0.08
    #: Liquid dynamic viscosity (Pa s).
    liquid_viscosity_pa_s: float = 3.0e-4
    #: Liquid specific heat (J/kg K).
    liquid_specific_heat_j_kgk: float = 1300.0
    #: Surface tension (N/m).
    surface_tension_n_m: float = 0.010

    # ------------------------------------------------------------------ #
    # Saturation-line properties
    # ------------------------------------------------------------------ #
    def saturation_pressure_kpa(self, temperature_c: float) -> float:
        """Saturation pressure in kPa at ``temperature_c``."""
        return self._pressure_table(temperature_c)

    def saturation_temperature_c(self, pressure_kpa: float) -> float:
        """Saturation temperature in degC at ``pressure_kpa``."""
        return self._pressure_table.inverse(pressure_kpa)

    def latent_heat_j_kg(self, temperature_c: float) -> float:
        """Latent heat of vaporisation in J/kg."""
        return self._latent_heat_table(temperature_c) * 1e3

    def liquid_density_kg_m3(self, temperature_c: float) -> float:
        """Saturated liquid density in kg/m^3."""
        return self._liquid_density_table(temperature_c)

    def vapor_density_kg_m3(self, temperature_c: float) -> float:
        """Saturated vapor density in kg/m^3."""
        return self._vapor_density_table(temperature_c)

    def reduced_pressure(self, temperature_c: float) -> float:
        """Reduced pressure ``p_sat / p_crit`` (used by boiling correlations)."""
        reduced = self.saturation_pressure_kpa(temperature_c) / self.critical_pressure_kpa
        return check_in_range(reduced, 1e-4, 0.999, "reduced pressure")

    def liquid_prandtl(self) -> float:
        """Liquid Prandtl number (from the constant transport properties)."""
        return (
            self.liquid_specific_heat_j_kgk
            * self.liquid_viscosity_pa_s
            / self.liquid_conductivity_w_mk
        )

    def two_phase_density_kg_m3(self, temperature_c: float, quality: float) -> float:
        """Homogeneous two-phase mixture density at a given vapor quality."""
        quality = check_in_range(quality, 0.0, 1.0, "quality")
        rho_l = self.liquid_density_kg_m3(temperature_c)
        rho_v = self.vapor_density_kg_m3(temperature_c)
        return 1.0 / (quality / rho_v + (1.0 - quality) / rho_l)


def _make_refrigerant(
    name: str,
    molar_mass: float,
    t_crit_c: float,
    p_crit_kpa: float,
    pressures_kpa: tuple[float, ...],
    latent_heats_kj_kg: tuple[float, ...],
    liquid_densities: tuple[float, ...],
    vapor_densities: tuple[float, ...],
    *,
    conductivity: float,
    viscosity: float,
    specific_heat: float,
    surface_tension: float,
) -> Refrigerant:
    return Refrigerant(
        name=name,
        molar_mass_kg_kmol=molar_mass,
        critical_temperature_c=t_crit_c,
        critical_pressure_kpa=p_crit_kpa,
        _pressure_table=LinearTable1D(_TABLE_TEMPERATURES_C, pressures_kpa),
        _latent_heat_table=LinearTable1D(_TABLE_TEMPERATURES_C, latent_heats_kj_kg),
        _liquid_density_table=LinearTable1D(_TABLE_TEMPERATURES_C, liquid_densities),
        _vapor_density_table=LinearTable1D(_TABLE_TEMPERATURES_C, vapor_densities),
        liquid_conductivity_w_mk=conductivity,
        liquid_viscosity_pa_s=viscosity,
        liquid_specific_heat_j_kgk=specific_heat,
        surface_tension_n_m=surface_tension,
    )


#: Property database.  Anchor points at 0/10/20/30/40/50/60/70/80 degC.
REFRIGERANTS: dict[str, Refrigerant] = {
    refrigerant.name: refrigerant
    for refrigerant in (
        _make_refrigerant(
            "R236fa",
            molar_mass=152.04,
            t_crit_c=124.9,
            p_crit_kpa=3200.0,
            pressures_kpa=(160.0, 207.0, 272.0, 321.0, 434.0, 551.0, 687.0, 848.0, 1034.0),
            latent_heats_kj_kg=(168.0, 164.0, 160.0, 155.0, 150.0, 145.0, 139.0, 133.0, 126.0),
            liquid_densities=(1425.0, 1399.0, 1373.0, 1346.0, 1318.0, 1289.0, 1258.0, 1225.0, 1190.0),
            vapor_densities=(10.4, 13.6, 17.6, 22.4, 28.2, 35.2, 43.6, 53.6, 65.6),
            conductivity=0.075,
            viscosity=3.05e-4,
            specific_heat=1265.0,
            surface_tension=0.0105,
        ),
        _make_refrigerant(
            "R134a",
            molar_mass=102.03,
            t_crit_c=101.1,
            p_crit_kpa=4059.0,
            pressures_kpa=(293.0, 415.0, 572.0, 665.0, 1017.0, 1318.0, 1682.0, 2117.0, 2633.0),
            latent_heats_kj_kg=(199.0, 191.0, 182.0, 173.0, 163.0, 152.0, 140.0, 126.0, 109.0),
            liquid_densities=(1295.0, 1261.0, 1225.0, 1187.0, 1147.0, 1102.0, 1053.0, 996.0, 929.0),
            vapor_densities=(14.4, 20.2, 27.8, 32.4, 50.1, 66.3, 87.4, 115.6, 155.2),
            conductivity=0.083,
            viscosity=1.95e-4,
            specific_heat=1425.0,
            surface_tension=0.0081,
        ),
        _make_refrigerant(
            "R245fa",
            molar_mass=134.05,
            t_crit_c=154.0,
            p_crit_kpa=3651.0,
            pressures_kpa=(53.0, 74.0, 101.0, 149.0, 250.0, 344.0, 463.0, 611.0, 791.0),
            latent_heats_kj_kg=(204.0, 200.0, 196.0, 190.0, 184.0, 178.0, 171.0, 164.0, 156.0),
            liquid_densities=(1404.0, 1381.0, 1357.0, 1333.0, 1308.0, 1282.0, 1255.0, 1226.0, 1196.0),
            vapor_densities=(3.1, 4.3, 5.8, 8.6, 13.0, 17.6, 23.4, 30.6, 39.5),
            conductivity=0.081,
            viscosity=4.02e-4,
            specific_heat=1322.0,
            surface_tension=0.0135,
        ),
        _make_refrigerant(
            "R1234ze",
            molar_mass=114.04,
            t_crit_c=109.4,
            p_crit_kpa=3636.0,
            pressures_kpa=(218.0, 310.0, 428.0, 500.0, 766.0, 998.0, 1293.0, 1637.0, 2046.0),
            latent_heats_kj_kg=(184.0, 178.0, 172.0, 163.0, 156.0, 148.0, 139.0, 128.0, 116.0),
            liquid_densities=(1240.0, 1211.0, 1180.0, 1146.0, 1111.0, 1073.0, 1031.0, 985.0, 933.0),
            vapor_densities=(11.7, 16.4, 22.5, 26.3, 40.6, 53.6, 70.3, 92.0, 120.7),
            conductivity=0.075,
            viscosity=1.88e-4,
            specific_heat=1383.0,
            surface_tension=0.0089,
        ),
    )
}


def get_refrigerant(name: str) -> Refrigerant:
    """Return the refrigerant called ``name`` or raise ``ConfigurationError``."""
    try:
        return REFRIGERANTS[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown refrigerant {name!r}; available: {sorted(REFRIGERANTS)}"
        ) from exc
