"""Gravity-driven thermosyphon loop solver.

Couples the condenser energy balance (which sets the saturation temperature
for a given heat load and water condition), the gravity-driven circulation
(driving head from the density difference between the liquid downcomer and
the two-phase riser, balanced against the loop friction), the filling-ratio
effects (inlet subcooling, inlet quality, condenser flooding), and the
evaporator channel model (per-cell heat transfer coefficient and fluid
temperature for the thermal simulator).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.ndimage import gaussian_filter

from repro.exceptions import ConvergenceError, ValidationError
from repro.thermal.boundary import CoolingBoundary
from repro.thermosyphon.condenser import CondenserModel
from repro.thermosyphon.design import ThermosyphonDesign
from repro.thermosyphon.evaporator import EvaporatorModel
from repro.thermosyphon.water_loop import WaterLoop
from repro.utils.units import GRAVITY
from repro.utils.validation import check_non_negative, check_positive


#: Standard deviation (mm) of the Gaussian kernel used to approximate heat
#: spreading between the die and the evaporator channels.
HEAT_SPREADING_SIGMA_MM = 1.5


@dataclass(frozen=True)
class FillingRatioEffects:
    """How the refrigerant charge level influences the loop."""

    inlet_subcooling_c: float
    inlet_quality: float
    flooding_penalty: float
    head_factor: float


@dataclass(frozen=True)
class LoopOperatingPoint:
    """Converged thermodynamic state of the thermosyphon loop."""

    total_heat_w: float
    saturation_temperature_c: float
    mass_flow_kg_s: float
    inlet_subcooling_c: float
    inlet_quality: float
    mean_outlet_quality: float
    water_outlet_temperature_c: float
    condenser_effectiveness: float
    iterations: int

    @property
    def mass_flow_kg_h(self) -> float:
        """Refrigerant circulation rate in kg/h."""
        return self.mass_flow_kg_s * 3600.0


@dataclass
class BoundaryResult:
    """Cooling boundary plus evaporator-side diagnostics."""

    boundary: CoolingBoundary
    outlet_quality_per_lane: np.ndarray
    max_quality: float
    dryout: bool


class ThermosyphonLoop:
    """System-level model of one thermosyphon attached to one CPU."""

    def __init__(self, design: ThermosyphonDesign) -> None:
        self.design = design
        self.refrigerant = design.refrigerant
        effects = self.filling_ratio_effects()
        self.condenser = CondenserModel(
            design.condenser_ua_w_per_k, flooding_penalty=effects.flooding_penalty
        )
        self.evaporator = EvaporatorModel(
            self.refrigerant,
            design.evaporator_geometry,
            dryout_quality=design.dryout_quality,
        )

    # ------------------------------------------------------------------ #
    # Filling ratio
    # ------------------------------------------------------------------ #
    def filling_ratio_effects(self) -> FillingRatioEffects:
        """Inlet subcooling, inlet quality, flooding and head factors.

        The filling ratio is a design-time charge level.  Around the optimum
        (~55%) the downcomer stays full of liquid (maximum driving head and
        a few degrees of subcooling at the evaporator inlet).  Undercharging
        starves the downcomer — the driving head shrinks and vapor reaches
        the evaporator inlet.  Overcharging floods part of the condenser,
        reducing its effective surface.
        """
        fr = self.design.filling_ratio
        # Subcooling grows with charge until the downcomer is full (~0.5).
        inlet_subcooling = min(max(8.0 * (fr - 0.30), 0.0), 4.0)
        # Severe undercharge lets vapor recirculate to the evaporator inlet.
        inlet_quality = min(max(0.35 - fr, 0.0) * 0.6, 0.3)
        # Overcharge floods condenser surface.
        flooding_penalty = min(max(fr - 0.62, 0.0) * 1.6, 0.6)
        # The driving head needs a full liquid leg.
        head_factor = min(fr / 0.50, 1.0)
        return FillingRatioEffects(
            inlet_subcooling_c=inlet_subcooling,
            inlet_quality=inlet_quality,
            flooding_penalty=flooding_penalty,
            head_factor=head_factor,
        )

    # ------------------------------------------------------------------ #
    # Loop thermodynamics
    # ------------------------------------------------------------------ #
    def solve_mass_flow(
        self, total_heat_w: float, saturation_temperature_c: float, inlet_quality: float
    ) -> tuple[float, float, int]:
        """Gravity/friction balance; returns (mass flow, outlet quality, iterations)."""
        check_non_negative(total_heat_w, "total_heat_w")
        design = self.design
        refrigerant = self.refrigerant
        effects = self.filling_ratio_effects()
        latent = refrigerant.latent_heat_j_kg(saturation_temperature_c)
        rho_liquid = refrigerant.liquid_density_kg_m3(saturation_temperature_c)

        mass_flow = 1.0e-3  # kg/s initial guess
        if total_heat_w <= 0.0:
            # No heat, no vapor generation: the loop idles at the initial
            # circulation guess with the inlet quality unchanged.
            return mass_flow, inlet_quality, 0
        outlet_quality = inlet_quality
        for iteration in range(1, 61):
            outlet_quality = min(inlet_quality + total_heat_w / (mass_flow * latent), 1.0)
            mean_quality = 0.5 * (inlet_quality + outlet_quality)
            rho_riser = refrigerant.two_phase_density_kg_m3(
                saturation_temperature_c, mean_quality
            )
            driving_pa = (
                (rho_liquid - rho_riser)
                * GRAVITY
                * design.riser_height_m
                * effects.head_factor
            )
            driving_pa = max(driving_pa, 1.0)
            new_mass_flow = (driving_pa / design.loop_friction_coefficient) ** 0.5
            if abs(new_mass_flow - mass_flow) < 1e-8:
                return new_mass_flow, outlet_quality, iteration
            mass_flow = 0.5 * mass_flow + 0.5 * new_mass_flow
        raise ConvergenceError("thermosyphon mass-flow iteration did not converge")

    def operating_point(
        self, total_heat_w: float, water_loop: WaterLoop | None = None
    ) -> LoopOperatingPoint:
        """Converged loop state for a total heat load and water condition."""
        check_non_negative(total_heat_w, "total_heat_w")
        if water_loop is None:
            water_loop = self.design.water_loop()
        effects = self.filling_ratio_effects()
        condenser_point = self.condenser.required_saturation_temperature_c(
            total_heat_w, water_loop
        )
        mass_flow, outlet_quality, iterations = self.solve_mass_flow(
            total_heat_w, condenser_point.saturation_temperature_c, effects.inlet_quality
        )
        return LoopOperatingPoint(
            total_heat_w=total_heat_w,
            saturation_temperature_c=condenser_point.saturation_temperature_c,
            mass_flow_kg_s=mass_flow,
            inlet_subcooling_c=effects.inlet_subcooling_c,
            inlet_quality=effects.inlet_quality,
            mean_outlet_quality=outlet_quality,
            water_outlet_temperature_c=condenser_point.water_outlet_temperature_c,
            condenser_effectiveness=condenser_point.effectiveness,
            iterations=iterations,
        )

    # ------------------------------------------------------------------ #
    # Boundary condition for the thermal simulator
    # ------------------------------------------------------------------ #
    def cooling_boundary(
        self,
        power_map_w: np.ndarray,
        cell_pitch_mm: tuple[float, float],
        operating_point: LoopOperatingPoint | None = None,
        *,
        water_loop: WaterLoop | None = None,
    ) -> BoundaryResult:
        """Per-cell HTC and fluid temperature for a die power map.

        The die power map is smoothed with a Gaussian kernel to approximate
        lateral spreading through the heat spreader, split into channel
        lanes according to the design orientation, and each lane is marched
        with the evaporator flow-boiling model.  This is the single-server
        entry of :meth:`cooling_boundaries` (one implementation, identical
        numerics).
        """
        power_map_w = np.asarray(power_map_w, dtype=float)
        if power_map_w.ndim != 2:
            raise ValidationError("power map must be two-dimensional")
        if operating_point is None:
            pitch_x_mm, pitch_y_mm = cell_pitch_mm
            check_positive(pitch_x_mm, "pitch_x_mm")
            check_positive(pitch_y_mm, "pitch_y_mm")
            operating_point = self.operating_point(float(power_map_w.sum()), water_loop)
        return self.cooling_boundaries(
            power_map_w[np.newaxis], cell_pitch_mm, operating_point
        )[0]

    def cooling_boundaries(
        self,
        power_maps_w: np.ndarray,
        cell_pitch_mm: tuple[float, float],
        operating_point: LoopOperatingPoint,
    ) -> list[BoundaryResult]:
        """Cooling boundaries for many servers sharing one operating point.

        The rack-engine generalisation of :meth:`cooling_boundary` (which
        delegates here with a single-map stack): ``power_maps_w`` has shape
        ``(n_servers, n_rows, n_columns)`` and every server shares
        ``operating_point`` (identical thermosyphon hardware at the same
        total heat and water condition — the homogeneous rack case).  The
        already-vectorized ``(n_lanes, n_cells)`` evaporator march is
        stacked into one ``(n_servers * n_lanes, n_cells)`` call, so the
        whole rack marches in a single pass; because smoothing and the
        march are elementwise per server/lane, each server's entry is
        identical to a single-map call (and to the per-lane golden loop of
        ``tests/reference_lane_march.py``).
        """
        power_maps_w = np.asarray(power_maps_w, dtype=float)
        if power_maps_w.ndim != 3:
            raise ValidationError(
                "power map stack must be three-dimensional (n_servers, n_rows, n_columns)"
            )
        pitch_x_mm, pitch_y_mm = cell_pitch_mm
        check_positive(pitch_x_mm, "pitch_x_mm")
        check_positive(pitch_y_mm, "pitch_y_mm")

        n_servers, n_rows, n_columns = power_maps_w.shape
        orientation = self.design.orientation
        n_lanes = orientation.channel_count(n_rows, n_columns)
        flow_per_lane = operating_point.mass_flow_kg_s / n_lanes
        cell_area_m2 = (pitch_x_mm * 1e-3) * (pitch_y_mm * 1e-3)

        # One smoothing pass over the whole stack: a zero sigma along the
        # server axis makes the 3D filter identical to filtering each map,
        # and the per-server renormalization broadcasts.  Lanes are grid
        # rows for east-west channels and grid columns (transposed) for
        # north-south channels; reversed-flow orientations march against
        # the grid index direction.
        smoothed = gaussian_filter(
            power_maps_w,
            sigma=(
                0.0,
                HEAT_SPREADING_SIGMA_MM / pitch_y_mm,
                HEAT_SPREADING_SIGMA_MM / pitch_x_mm,
            ),
            mode="nearest",
        )
        totals = power_maps_w.sum(axis=(1, 2))
        sums = smoothed.sum(axis=(1, 2))
        positive = sums > 0.0
        scale = np.where(positive, totals / np.where(positive, sums, 1.0), 1.0)
        smoothed *= scale[:, np.newaxis, np.newaxis]
        lane_heat_stack = (
            smoothed
            if orientation.channels_run_east_west
            else smoothed.transpose(0, 2, 1)
        )
        if orientation.flow_reversed:
            lane_heat_stack = lane_heat_stack[:, :, ::-1]
        lane_heat_stack = np.ascontiguousarray(lane_heat_stack)

        n_cells = lane_heat_stack.shape[2]
        batch = self.evaporator.solve_channels(
            lane_heat_stack.reshape(n_servers * n_lanes, n_cells),
            flow_per_lane,
            operating_point.saturation_temperature_c,
            inlet_subcooling_c=operating_point.inlet_subcooling_c,
            inlet_quality=operating_point.inlet_quality,
            cell_base_area_m2=cell_area_m2,
            saturation_slope_c_per_cell=0.015,
        )

        # Split back per server and undo the flow-order gather.
        quality = batch.quality.reshape(n_servers, n_lanes, n_cells)
        htc_stack = batch.base_htc_w_m2k.reshape(n_servers, n_lanes, n_cells)
        fluid_stack = batch.fluid_temperature_c.reshape(n_servers, n_lanes, n_cells)
        dryout = batch.dryout_per_lane.reshape(n_servers, n_lanes)

        results: list[BoundaryResult] = []
        for index in range(n_servers):
            lane_htc = htc_stack[index]
            lane_fluid = fluid_stack[index]
            if orientation.flow_reversed:
                lane_htc = lane_htc[:, ::-1]
                lane_fluid = lane_fluid[:, ::-1]
            if orientation.channels_run_east_west:
                htc, fluid = lane_htc, lane_fluid
            else:
                htc, fluid = lane_htc.T, lane_fluid.T
            results.append(
                BoundaryResult(
                    boundary=CoolingBoundary(htc_w_m2k=htc, fluid_temperature_c=fluid),
                    outlet_quality_per_lane=quality[index, :, -1].copy(),
                    max_quality=float(quality[index].max()) if quality[index].size else 0.0,
                    dryout=bool(dryout[index].any()),
                )
            )
        return results
