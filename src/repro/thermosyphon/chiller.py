"""Chiller cooling-power model (Eq. 1 of the paper).

The paper estimates the electrical power needed to cool the return water
back to the supply temperature as

    P = V_dot * rho * C_w * delta_T

with ``V_dot`` the volumetric flow rate in litres per second, ``rho`` the
density in kg/litre and ``C_w`` the specific heat in J/(kg K).  This is the
thermodynamic heat rate removed from the water; an optional coefficient of
performance converts it into compressor electrical power, and an optional
free-cooling fraction models the case where outside air removes part of the
load (the paper notes the real chiller burden is lower than Eq. 1 suggests).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.thermosyphon.water_loop import WaterLoop
from repro.utils.validation import check_fraction, check_non_negative, check_positive


def chiller_power_w(
    volumetric_flow_l_s: float,
    density_kg_per_l: float,
    specific_heat_j_kgk: float,
    delta_t_k: float,
) -> float:
    """Direct implementation of Eq. 1: ``P = V_dot * rho * C_w * delta_T``."""
    check_non_negative(volumetric_flow_l_s, "volumetric_flow_l_s")
    check_positive(density_kg_per_l, "density_kg_per_l")
    check_positive(specific_heat_j_kgk, "specific_heat_j_kgk")
    check_non_negative(delta_t_k, "delta_t_k")
    return volumetric_flow_l_s * density_kg_per_l * specific_heat_j_kgk * delta_t_k


@dataclass(frozen=True)
class ChillerModel:
    """Per-rack chiller supplying cold water to all thermosyphons.

    Attributes
    ----------
    coefficient_of_performance:
        Ratio of heat removed to electrical power drawn by the compressor;
        1.0 reproduces the paper's pessimistic Eq. 1 accounting.
    free_cooling_fraction:
        Fraction of the load removed for free by outside air (0 = none).
    """

    coefficient_of_performance: float = 1.0
    free_cooling_fraction: float = 0.0

    def __post_init__(self) -> None:
        check_positive(self.coefficient_of_performance, "coefficient_of_performance")
        check_fraction(self.free_cooling_fraction, "free_cooling_fraction")

    def cooling_power_w(self, water_loop: WaterLoop, heat_w: float) -> float:
        """Electrical power to cool the loop's return water back to supply."""
        check_non_negative(heat_w, "heat_w")
        delta_t = water_loop.delta_t_c(heat_w)
        thermal = chiller_power_w(
            water_loop.volumetric_flow_l_s,
            water_loop.density_kg_m3 / 1000.0,
            water_loop.specific_heat_j_kgk,
            delta_t,
        )
        remaining = thermal * (1.0 - self.free_cooling_fraction)
        return remaining / self.coefficient_of_performance

    def rack_cooling_power_w(self, water_loops_and_heats: list[tuple[WaterLoop, float]]) -> float:
        """Total chiller power for every thermosyphon fed by this rack chiller."""
        return sum(self.cooling_power_w(loop, heat) for loop, heat in water_loops_and_heats)
