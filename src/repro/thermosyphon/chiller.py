"""Chiller cooling-power model (Eq. 1 of the paper) and the shared plant.

The paper estimates the electrical power needed to cool the return water
back to the supply temperature as

    P = V_dot * rho * C_w * delta_T

with ``V_dot`` the volumetric flow rate in litres per second, ``rho`` the
density in kg/litre and ``C_w`` the specific heat in J/(kg K).  This is the
thermodynamic heat rate removed from the water; an optional coefficient of
performance converts it into compressor electrical power, and an optional
free-cooling fraction models the case where outside air removes part of the
load (the paper notes the real chiller burden is lower than Eq. 1 suggests).

:class:`ChillerPlant` extends the fixed-COP :class:`ChillerModel` into the
datacenter's supply-setpoint lever: the compressor COP follows a
Carnot-fraction law in the supply temperature and the free-cooling fraction
ramps in once the setpoint clears the outdoor air temperature, so *raising*
the chiller water supply temperature lowers the electrical power drawn for
the same heat load — the saving the supervisory setpoint controller of
:mod:`repro.datacenter` chases.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.thermosyphon.water_loop import WaterLoop
from repro.utils.validation import check_fraction, check_non_negative, check_positive


def chiller_power_w(
    volumetric_flow_l_s: float,
    density_kg_per_l: float,
    specific_heat_j_kgk: float,
    delta_t_k: float,
) -> float:
    """Direct implementation of Eq. 1: ``P = V_dot * rho * C_w * delta_T``."""
    check_non_negative(volumetric_flow_l_s, "volumetric_flow_l_s")
    check_positive(density_kg_per_l, "density_kg_per_l")
    check_positive(specific_heat_j_kgk, "specific_heat_j_kgk")
    check_non_negative(delta_t_k, "delta_t_k")
    return volumetric_flow_l_s * density_kg_per_l * specific_heat_j_kgk * delta_t_k


@dataclass(frozen=True)
class ChillerModel:
    """Per-rack chiller supplying cold water to all thermosyphons.

    Attributes
    ----------
    coefficient_of_performance:
        Ratio of heat removed to electrical power drawn by the compressor;
        1.0 reproduces the paper's pessimistic Eq. 1 accounting.
    free_cooling_fraction:
        Fraction of the load removed for free by outside air (0 = none).
    """

    coefficient_of_performance: float = 1.0
    free_cooling_fraction: float = 0.0

    def __post_init__(self) -> None:
        check_positive(self.coefficient_of_performance, "coefficient_of_performance")
        check_fraction(self.free_cooling_fraction, "free_cooling_fraction")

    def cooling_power_w(self, water_loop: WaterLoop, heat_w: float) -> float:
        """Electrical power to cool the loop's return water back to supply."""
        check_non_negative(heat_w, "heat_w")
        delta_t = water_loop.delta_t_c(heat_w)
        thermal = chiller_power_w(
            water_loop.volumetric_flow_l_s,
            water_loop.density_kg_m3 / 1000.0,
            water_loop.specific_heat_j_kgk,
            delta_t,
        )
        remaining = thermal * (1.0 - self.free_cooling_fraction)
        return remaining / self.coefficient_of_performance

    def cooling_power_w_many(
        self,
        water_loops: Sequence[WaterLoop] | WaterLoop,
        heats_w,
    ) -> np.ndarray:
        """Array-valued :meth:`cooling_power_w` for batched per-rack accounting.

        ``heats_w`` is an array of per-server (or per-rack) heat loads;
        ``water_loops`` is either one loop per entry or a single
        :class:`WaterLoop` broadcast across all of them (the shared-chiller
        case).  COP and free cooling are applied per loop exactly as in the
        scalar path, so ``cooling_power_w_many(loops, heats)[i] ==
        cooling_power_w(loops[i], heats[i])``.
        """
        heats = np.asarray(heats_w, dtype=float)
        if heats.ndim != 1:
            raise ConfigurationError(
                f"heats_w must be one-dimensional, got shape {heats.shape}"
            )
        if np.any(heats < 0.0):
            raise ConfigurationError("heats_w must be non-negative")
        if isinstance(water_loops, WaterLoop):
            loops: Sequence[WaterLoop] = (water_loops,) * heats.size
        else:
            loops = tuple(water_loops)
            if len(loops) != heats.size:
                raise ConfigurationError(
                    f"got {len(loops)} water loops for {heats.size} heat loads"
                )
        volumetric_l_s = np.array([loop.volumetric_flow_l_s for loop in loops])
        density_kg_l = np.array([loop.density_kg_m3 for loop in loops]) / 1000.0
        specific_heat = np.array([loop.specific_heat_j_kgk for loop in loops])
        rates = np.array([loop.heat_capacity_rate_w_per_k for loop in loops])
        delta_t = heats / rates
        thermal = volumetric_l_s * density_kg_l * specific_heat * delta_t
        return thermal * (1.0 - self.free_cooling_fraction) / self.coefficient_of_performance

    def rack_cooling_power_w(
        self, water_loops_and_heats: Iterable[tuple[WaterLoop, float]]
    ) -> float:
        """Total chiller power for every thermosyphon fed by this rack chiller.

        Accepts any iterable of ``(water_loop, heat_w)`` pairs; the COP and
        free-cooling corrections are applied per loop (each term is one
        Eq. 1 evaluation scaled by ``(1 - free_cooling) / COP``), so the
        total equals the sum of the individual :meth:`cooling_power_w`
        calls.
        """
        return sum(self.cooling_power_w(loop, heat) for loop, heat in water_loops_and_heats)


@dataclass(frozen=True)
class ChillerPlant:
    """Shared chiller plant whose efficiency tracks the supply setpoint.

    One plant serves every rack of the datacenter floor.  Two effects make
    the water supply temperature an energy lever (both well established in
    datacenter practice, and the reason the paper's Section VIII pushes for
    the warmest feasible water temperature):

    * **Compressor COP** follows a Carnot-fraction law,
      ``COP = eta * T_supply / (T_reject - T_supply)`` (temperatures in
      kelvin), so a warmer supply setpoint means a smaller thermal lift and
      a more efficient compressor.
    * **Free cooling** ramps in once the setpoint clears the outdoor air
      temperature by an approach margin: part of the load is rejected
      without running the compressor at all.

    Attributes
    ----------
    carnot_efficiency:
        Fraction of the ideal (Carnot) COP the real compressor achieves.
    heat_rejection_temperature_c:
        Condenser-side (heat rejection) temperature of the chiller.
    max_cop:
        Upper clamp on the COP as the lift approaches zero.
    min_lift_c:
        Lower clamp on ``T_reject - T_supply`` guarding the Carnot pole.
    free_cooling_outdoor_c:
        Outdoor air (wet-bulb) temperature; ``None`` disables free cooling.
    free_cooling_approach_c:
        The setpoint must exceed the outdoor temperature by this margin
        before any free cooling is available.
    free_cooling_ramp_c:
        Span (degC above the approach point) over which the free-cooling
        fraction ramps from zero to ``max_free_cooling_fraction``.
    max_free_cooling_fraction:
        Largest fraction of the load the free-cooling path can absorb.
    """

    carnot_efficiency: float = 0.35
    heat_rejection_temperature_c: float = 45.0
    max_cop: float = 10.0
    min_lift_c: float = 2.0
    free_cooling_outdoor_c: float | None = None
    free_cooling_approach_c: float = 4.0
    free_cooling_ramp_c: float = 10.0
    max_free_cooling_fraction: float = 0.75

    def __post_init__(self) -> None:
        check_positive(self.carnot_efficiency, "carnot_efficiency")
        check_positive(self.max_cop, "max_cop")
        check_positive(self.min_lift_c, "min_lift_c")
        check_non_negative(self.free_cooling_approach_c, "free_cooling_approach_c")
        check_positive(self.free_cooling_ramp_c, "free_cooling_ramp_c")
        check_fraction(self.max_free_cooling_fraction, "max_free_cooling_fraction")

    def cop_at(self, supply_temperature_c: float) -> float:
        """Compressor COP at a given water supply setpoint.

        Monotonically non-decreasing in the setpoint: a warmer supply
        shrinks the thermal lift, clamped to ``[min_lift_c, inf)`` below and
        ``max_cop`` above so the model stays finite when the setpoint
        approaches (or exceeds) the rejection temperature.
        """
        supply_k = supply_temperature_c + 273.15
        lift_k = max(
            self.heat_rejection_temperature_c - supply_temperature_c, self.min_lift_c
        )
        return min(self.carnot_efficiency * supply_k / lift_k, self.max_cop)

    def free_cooling_fraction_at(self, supply_temperature_c: float) -> float:
        """Fraction of the load removed for free at a given setpoint.

        Zero until the setpoint clears the outdoor temperature by the
        approach margin, then ramping linearly to the maximum fraction;
        monotonically non-decreasing in the setpoint and non-increasing in
        the outdoor temperature.
        """
        if self.free_cooling_outdoor_c is None:
            return 0.0
        onset = self.free_cooling_outdoor_c + self.free_cooling_approach_c
        headroom = supply_temperature_c - onset
        if headroom <= 0.0:
            return 0.0
        fraction = headroom / self.free_cooling_ramp_c * self.max_free_cooling_fraction
        return min(fraction, self.max_free_cooling_fraction)

    def chiller_at(self, supply_temperature_c: float) -> ChillerModel:
        """The per-rack :class:`ChillerModel` this plant presents at a setpoint."""
        return ChillerModel(
            coefficient_of_performance=self.cop_at(supply_temperature_c),
            free_cooling_fraction=self.free_cooling_fraction_at(supply_temperature_c),
        )

    def plant_power_w(
        self,
        supply_temperature_c: float,
        water_loops_and_heats: Iterable[tuple[WaterLoop, float]],
    ) -> float:
        """Total plant electrical power across every loop it feeds.

        Equals the sum of the per-rack chiller powers at the same setpoint
        (:meth:`chiller_at` + :meth:`ChillerModel.rack_cooling_power_w`) —
        the plant is one chiller shared by all racks, not a second model.
        """
        return self.chiller_at(supply_temperature_c).rack_cooling_power_w(
            water_loops_and_heats
        )
