"""Chiller cooling-power model (Eq. 1 of the paper) and the shared plant.

The paper estimates the electrical power needed to cool the return water
back to the supply temperature as

    P = V_dot * rho * C_w * delta_T

with ``V_dot`` the volumetric flow rate in litres per second, ``rho`` the
density in kg/litre and ``C_w`` the specific heat in J/(kg K).  This is the
thermodynamic heat rate removed from the water; an optional coefficient of
performance converts it into compressor electrical power, and an optional
free-cooling fraction models the case where outside air removes part of the
load (the paper notes the real chiller burden is lower than Eq. 1 suggests).

:class:`ChillerPlant` extends the fixed-COP :class:`ChillerModel` into the
datacenter's supply-setpoint lever: the compressor COP follows a
Carnot-fraction law in the supply temperature and the free-cooling fraction
ramps in once the setpoint clears the outdoor air temperature, so *raising*
the chiller water supply temperature lowers the electrical power drawn for
the same heat load — the saving the supervisory setpoint controller of
:mod:`repro.datacenter` chases.

:class:`ChillerBank` is the staged version of the plant: N
:class:`ChillerUnit`\\ s, each with a rated thermal capacity, a part-load
efficiency curve (compressors are least efficient far from their design
load) and optional maintenance windows.  Every period the bank *commits* a
subset of the available units to the floor's thermal load — the cheapest
feasible commitment at equal part-load ratio — so unit staging becomes a
second plant-side degree of freedom next to the supply setpoint, and the
MPC supervisory layer of :mod:`repro.datacenter.mpc` optimizes over both.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError, ValidationError
from repro.thermosyphon.water_loop import WaterLoop
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_positive_int,
)


def chiller_power_w(
    volumetric_flow_l_s: float,
    density_kg_per_l: float,
    specific_heat_j_kgk: float,
    delta_t_k: float,
) -> float:
    """Direct implementation of Eq. 1: ``P = V_dot * rho * C_w * delta_T``."""
    check_non_negative(volumetric_flow_l_s, "volumetric_flow_l_s")
    check_positive(density_kg_per_l, "density_kg_per_l")
    check_positive(specific_heat_j_kgk, "specific_heat_j_kgk")
    check_non_negative(delta_t_k, "delta_t_k")
    return volumetric_flow_l_s * density_kg_per_l * specific_heat_j_kgk * delta_t_k


@dataclass(frozen=True)
class ChillerModel:
    """Per-rack chiller supplying cold water to all thermosyphons.

    Attributes
    ----------
    coefficient_of_performance:
        Ratio of heat removed to electrical power drawn by the compressor;
        1.0 reproduces the paper's pessimistic Eq. 1 accounting.
    free_cooling_fraction:
        Fraction of the load removed for free by outside air (0 = none).
    """

    coefficient_of_performance: float = 1.0
    free_cooling_fraction: float = 0.0

    def __post_init__(self) -> None:
        check_positive(self.coefficient_of_performance, "coefficient_of_performance")
        check_fraction(self.free_cooling_fraction, "free_cooling_fraction")

    def cooling_power_w(self, water_loop: WaterLoop, heat_w: float) -> float:
        """Electrical power to cool the loop's return water back to supply."""
        check_non_negative(heat_w, "heat_w")
        delta_t = water_loop.delta_t_c(heat_w)
        thermal = chiller_power_w(
            water_loop.volumetric_flow_l_s,
            water_loop.density_kg_m3 / 1000.0,
            water_loop.specific_heat_j_kgk,
            delta_t,
        )
        remaining = thermal * (1.0 - self.free_cooling_fraction)
        return remaining / self.coefficient_of_performance

    def cooling_power_w_many(
        self,
        water_loops: Sequence[WaterLoop] | WaterLoop,
        heats_w,
    ) -> np.ndarray:
        """Array-valued :meth:`cooling_power_w` for batched per-rack accounting.

        ``heats_w`` is an array of per-server (or per-rack) heat loads;
        ``water_loops`` is either one loop per entry or a single
        :class:`WaterLoop` broadcast across all of them (the shared-chiller
        case).  COP and free cooling are applied per loop exactly as in the
        scalar path, and the per-loop temperature rise follows the same
        rounding route as :meth:`WaterLoop.delta_t_c` (outlet minus inlet),
        so ``cooling_power_w_many(loops, heats)[i] ==
        cooling_power_w(loops[i], heats[i])`` **element for element, to the
        last bit** — asserted by the golden-model suite in
        ``tests/test_water_condenser_chiller.py``.  Validation matches the
        scalar path too: negative or non-finite heats raise
        :class:`~repro.exceptions.ValidationError`.
        """
        heats = np.asarray(heats_w, dtype=float)
        if heats.ndim != 1:
            raise ConfigurationError(
                f"heats_w must be one-dimensional, got shape {heats.shape}"
            )
        # Same contract as the scalar path's check_non_negative(heat_w):
        # every entry finite and >= 0, with the same exception type.
        if not np.all(np.isfinite(heats)):
            raise ValidationError("heats_w must be finite")
        if np.any(heats < 0.0):
            raise ValidationError("heats_w must be >= 0")
        if isinstance(water_loops, WaterLoop):
            loops: Sequence[WaterLoop] = (water_loops,) * heats.size
        else:
            loops = tuple(water_loops)
            if len(loops) != heats.size:
                raise ConfigurationError(
                    f"got {len(loops)} water loops for {heats.size} heat loads"
                )
        volumetric_l_s = np.array([loop.volumetric_flow_l_s for loop in loops])
        density_kg_l = np.array([loop.density_kg_m3 for loop in loops]) / 1000.0
        specific_heat = np.array([loop.specific_heat_j_kgk for loop in loops])
        rates = np.array([loop.heat_capacity_rate_w_per_k for loop in loops])
        inlets = np.array([loop.inlet_temperature_c for loop in loops])
        # (inlet + q/rate) - inlet, NOT q/rate: WaterLoop.delta_t_c computes
        # the rise as outlet minus inlet, and the two expressions differ in
        # the last float bits — the element-wise equality promised above
        # requires the identical rounding route.
        delta_t = (inlets + heats / rates) - inlets
        thermal = volumetric_l_s * density_kg_l * specific_heat * delta_t
        return thermal * (1.0 - self.free_cooling_fraction) / self.coefficient_of_performance

    def rack_cooling_power_w(
        self, water_loops_and_heats: Iterable[tuple[WaterLoop, float]]
    ) -> float:
        """Total chiller power for every thermosyphon fed by this rack chiller.

        Accepts any iterable of ``(water_loop, heat_w)`` pairs; the COP and
        free-cooling corrections are applied per loop (each term is one
        Eq. 1 evaluation scaled by ``(1 - free_cooling) / COP``), so the
        total equals the sum of the individual :meth:`cooling_power_w`
        calls.
        """
        return sum(self.cooling_power_w(loop, heat) for loop, heat in water_loops_and_heats)


@dataclass(frozen=True)
class ChillerPlant:
    """Shared chiller plant whose efficiency tracks the supply setpoint.

    One plant serves every rack of the datacenter floor.  Two effects make
    the water supply temperature an energy lever (both well established in
    datacenter practice, and the reason the paper's Section VIII pushes for
    the warmest feasible water temperature):

    * **Compressor COP** follows a Carnot-fraction law,
      ``COP = eta * T_supply / (T_reject - T_supply)`` (temperatures in
      kelvin), so a warmer supply setpoint means a smaller thermal lift and
      a more efficient compressor.
    * **Free cooling** ramps in once the setpoint clears the outdoor air
      temperature by an approach margin: part of the load is rejected
      without running the compressor at all.

    Attributes
    ----------
    carnot_efficiency:
        Fraction of the ideal (Carnot) COP the real compressor achieves.
    heat_rejection_temperature_c:
        Condenser-side (heat rejection) temperature of the chiller.
    max_cop:
        Upper clamp on the COP as the lift approaches zero.
    min_lift_c:
        Lower clamp on ``T_reject - T_supply`` guarding the Carnot pole.
    free_cooling_outdoor_c:
        Outdoor air (wet-bulb) temperature; ``None`` disables free cooling.
    free_cooling_approach_c:
        The setpoint must exceed the outdoor temperature by this margin
        before any free cooling is available.
    free_cooling_ramp_c:
        Span (degC above the approach point) over which the free-cooling
        fraction ramps from zero to ``max_free_cooling_fraction``.
    max_free_cooling_fraction:
        Largest fraction of the load the free-cooling path can absorb.
    """

    carnot_efficiency: float = 0.35
    heat_rejection_temperature_c: float = 45.0
    max_cop: float = 10.0
    min_lift_c: float = 2.0
    free_cooling_outdoor_c: float | None = None
    free_cooling_approach_c: float = 4.0
    free_cooling_ramp_c: float = 10.0
    max_free_cooling_fraction: float = 0.75

    def __post_init__(self) -> None:
        check_positive(self.carnot_efficiency, "carnot_efficiency")
        check_positive(self.max_cop, "max_cop")
        check_positive(self.min_lift_c, "min_lift_c")
        check_non_negative(self.free_cooling_approach_c, "free_cooling_approach_c")
        check_positive(self.free_cooling_ramp_c, "free_cooling_ramp_c")
        check_fraction(self.max_free_cooling_fraction, "max_free_cooling_fraction")

    def cop_at(self, supply_temperature_c: float) -> float:
        """Compressor COP at a given water supply setpoint.

        Monotonically non-decreasing in the setpoint: a warmer supply
        shrinks the thermal lift, clamped to ``[min_lift_c, inf)`` below and
        ``max_cop`` above so the model stays finite when the setpoint
        approaches (or exceeds) the rejection temperature.
        """
        supply_k = supply_temperature_c + 273.15
        lift_k = max(
            self.heat_rejection_temperature_c - supply_temperature_c, self.min_lift_c
        )
        return min(self.carnot_efficiency * supply_k / lift_k, self.max_cop)

    def free_cooling_fraction_at(self, supply_temperature_c: float) -> float:
        """Fraction of the load removed for free at a given setpoint.

        Zero until the setpoint clears the outdoor temperature by the
        approach margin, then ramping linearly to the maximum fraction;
        monotonically non-decreasing in the setpoint and non-increasing in
        the outdoor temperature.
        """
        if self.free_cooling_outdoor_c is None:
            return 0.0
        onset = self.free_cooling_outdoor_c + self.free_cooling_approach_c
        headroom = supply_temperature_c - onset
        if headroom <= 0.0:
            return 0.0
        fraction = headroom / self.free_cooling_ramp_c * self.max_free_cooling_fraction
        return min(fraction, self.max_free_cooling_fraction)

    def chiller_at(self, supply_temperature_c: float) -> ChillerModel:
        """The per-rack :class:`ChillerModel` this plant presents at a setpoint."""
        return ChillerModel(
            coefficient_of_performance=self.cop_at(supply_temperature_c),
            free_cooling_fraction=self.free_cooling_fraction_at(supply_temperature_c),
        )

    def plant_power_w(
        self,
        supply_temperature_c: float,
        water_loops_and_heats: Iterable[tuple[WaterLoop, float]],
    ) -> float:
        """Total plant electrical power across every loop it feeds.

        Equals the sum of the per-rack chiller powers at the same setpoint
        (:meth:`chiller_at` + :meth:`ChillerModel.rack_cooling_power_w`) —
        the plant is one chiller shared by all racks, not a second model.
        """
        return self.chiller_at(supply_temperature_c).rack_cooling_power_w(
            water_loops_and_heats
        )


@dataclass(frozen=True)
class ChillerUnit:
    """One chiller of a staged bank: capacity, part-load curve, maintenance.

    The unit's setpoint-dependent base efficiency (Carnot-fraction COP +
    free-cooling ramp) comes from its :class:`ChillerPlant`; on top of it a
    **part-load curve** degrades the COP when the unit runs far from its
    rated load — the standard behaviour of real compressors, and the reason
    staging matters: two units at 30% load each burn more electricity than
    one unit at 60%.

    Attributes
    ----------
    name:
        Stable identifier, recorded in :class:`StagingDecision.units_on`.
    capacity_w:
        Rated *thermal* load of the unit.  ``load_fraction = load / capacity``
        is the part-load ratio the efficiency curve is evaluated at.
    plant:
        The unit's setpoint-dependent COP / free-cooling laws.
    part_load_degradation:
        COP multiplier lost at zero load: the effective COP is
        ``COP * (1 - part_load_degradation * (1 - x)^2)`` at part-load ratio
        ``x`` — 1.0 at rated load, degrading quadratically away from it
        (both below rated load and in overload).
    min_part_load_cop_factor:
        Lower clamp of the part-load multiplier, keeping the model finite
        under deep part-load or heavy overload.
    maintenance_windows:
        ``(start_s, end_s)`` half-open intervals during which the unit is
        offline and cannot be committed.
    """

    name: str
    capacity_w: float
    plant: ChillerPlant = field(default_factory=ChillerPlant)
    part_load_degradation: float = 0.4
    min_part_load_cop_factor: float = 0.1
    maintenance_windows: tuple[tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        check_positive(self.capacity_w, "capacity_w")
        check_fraction(self.part_load_degradation, "part_load_degradation")
        check_positive(self.min_part_load_cop_factor, "min_part_load_cop_factor")
        for start_s, end_s in self.maintenance_windows:
            if end_s <= start_s:
                raise ConfigurationError(
                    f"maintenance window ({start_s}, {end_s}) of unit "
                    f"{self.name!r} must have end > start"
                )

    def available(self, time_s: float) -> bool:
        """True when the unit is not inside a maintenance window."""
        return not any(
            start_s <= time_s < end_s for start_s, end_s in self.maintenance_windows
        )

    def part_load_cop_factor(self, load_fraction: float) -> float:
        """COP multiplier at a part-load ratio (1.0 at rated load)."""
        check_non_negative(load_fraction, "load_fraction")
        factor = 1.0 - self.part_load_degradation * (1.0 - load_fraction) ** 2
        return max(factor, self.min_part_load_cop_factor)

    def electrical_power_w(
        self, supply_temperature_c: float, thermal_load_w: float
    ) -> float:
        """Electrical power drawn while removing ``thermal_load_w``.

        The free-cooling path absorbs its setpoint-dependent fraction for
        free; the compressor removes the rest at the part-load-degraded COP.
        """
        check_non_negative(thermal_load_w, "thermal_load_w")
        if thermal_load_w == 0.0:
            return 0.0
        cop = self.plant.cop_at(supply_temperature_c)
        free = self.plant.free_cooling_fraction_at(supply_temperature_c)
        factor = self.part_load_cop_factor(thermal_load_w / self.capacity_w)
        return thermal_load_w * (1.0 - free) / (cop * factor)


@dataclass(frozen=True)
class StagingDecision:
    """One period's unit commitment of a :class:`ChillerBank`.

    ``load_fraction`` is the common part-load ratio of the committed units
    (load split proportionally to capacity); ``overloaded`` is set when
    even the full available bank cannot carry the load at rated capacity
    (the units then run past 1.0 with part-load-degraded efficiency).
    """

    time_s: float
    setpoint_c: float
    thermal_load_w: float
    units_on: tuple[str, ...]
    electrical_power_w: float
    load_fraction: float
    overloaded: bool
    n_available: int

    @property
    def n_units_on(self) -> int:
        """Number of committed units."""
        return len(self.units_on)


@dataclass(frozen=True)
class ChillerBank:
    """A staged bank of chiller units behind one shared water supply.

    The datacenter-scale plant: N :class:`ChillerUnit`\\ s share the supply
    setpoint, and every period the bank commits the **cheapest feasible
    subset** of the units available at that time — the subset minimizing
    total electrical power while carrying the floor's thermal load within
    rated capacity, with the load split proportionally to capacity so every
    committed unit runs at the same part-load ratio.  Small banks are
    staged by exact subset enumeration; banks larger than
    ``max_enumerated_units`` fall back to capacity-sorted prefixes.

    Exposes the same ``plant_power_w`` entry point as
    :class:`ChillerPlant` (plus :meth:`stage`, which also reports *which*
    units ran), so the datacenter session can drive either plant kind; the
    supervisory MPC optimizes the setpoint *through* the bank's staging —
    every rollout period re-stages at that period's load and time.
    """

    units: tuple[ChillerUnit, ...]
    max_enumerated_units: int = 8

    def __post_init__(self) -> None:
        if not self.units:
            raise ConfigurationError("a chiller bank needs at least one unit")
        names = [unit.name for unit in self.units]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"chiller unit names must be unique, got {names}")
        check_positive_int(self.max_enumerated_units, "max_enumerated_units")

    @classmethod
    def uniform(
        cls,
        n_units: int,
        unit_capacity_w: float,
        *,
        plant: ChillerPlant | None = None,
        part_load_degradation: float = 0.4,
        maintenance_windows: Sequence[tuple[tuple[float, float], ...]] | None = None,
    ) -> "ChillerBank":
        """N identical units named ``chiller0..N-1``.

        ``maintenance_windows[i]`` optionally gives unit ``i`` its offline
        intervals (shorter sequences leave the remaining units always on).
        """
        check_positive_int(n_units, "n_units")
        plant = plant if plant is not None else ChillerPlant()
        windows = list(maintenance_windows) if maintenance_windows is not None else []
        windows += [()] * (n_units - len(windows))
        return cls(
            units=tuple(
                ChillerUnit(
                    name=f"chiller{index}",
                    capacity_w=unit_capacity_w,
                    plant=plant,
                    part_load_degradation=part_load_degradation,
                    maintenance_windows=tuple(windows[index]),
                )
                for index in range(n_units)
            )
        )

    @property
    def n_units(self) -> int:
        """Number of units in the bank."""
        return len(self.units)

    @property
    def total_capacity_w(self) -> float:
        """Rated thermal capacity of the whole bank."""
        return sum(unit.capacity_w for unit in self.units)

    def available_units(self, time_s: float) -> tuple[ChillerUnit, ...]:
        """The units not under maintenance at ``time_s``."""
        return tuple(unit for unit in self.units if unit.available(time_s))

    def accounting_chiller(self) -> ChillerModel:
        """Unit-COP chiller for per-server *thermal* load accounting.

        Eq. 1 at COP 1 and zero free cooling returns exactly the heat rate
        each server dumps into the condenser water; the datacenter session
        sums these and hands the total to :meth:`stage` for the bank-level
        electrical conversion.
        """
        return ChillerModel(coefficient_of_performance=1.0, free_cooling_fraction=0.0)

    def _candidate_subsets(
        self, available: tuple[ChillerUnit, ...]
    ) -> list[tuple[ChillerUnit, ...]]:
        if len(available) <= self.max_enumerated_units:
            return [
                subset
                for size in range(1, len(available) + 1)
                for subset in itertools.combinations(available, size)
            ]
        ranked = sorted(available, key=lambda unit: -unit.capacity_w)
        return [tuple(ranked[: size + 1]) for size in range(len(ranked))]

    def stage(
        self, supply_temperature_c: float, thermal_load_w: float, time_s: float = 0.0
    ) -> StagingDecision:
        """Commit the cheapest feasible unit subset to a thermal load.

        Zero load commits nothing; a load beyond the available capacity
        commits every available unit in overload (part-load curve degrading
        past rated); no available unit at a positive load is a
        configuration error — the floor would boil.
        """
        check_non_negative(thermal_load_w, "thermal_load_w")
        available = self.available_units(time_s)
        if thermal_load_w == 0.0:
            return StagingDecision(
                time_s=time_s,
                setpoint_c=supply_temperature_c,
                thermal_load_w=0.0,
                units_on=(),
                electrical_power_w=0.0,
                load_fraction=0.0,
                overloaded=False,
                n_available=len(available),
            )
        if not available:
            raise ConfigurationError(
                f"no chiller unit available at t={time_s} s for a "
                f"{thermal_load_w:.1f} W load (all units under maintenance)"
            )

        def commitment_power(subset: tuple[ChillerUnit, ...]) -> tuple[float, float]:
            capacity = sum(unit.capacity_w for unit in subset)
            fraction = thermal_load_w / capacity
            power = sum(
                unit.electrical_power_w(
                    supply_temperature_c, unit.capacity_w * fraction
                )
                for unit in subset
            )
            return power, fraction

        best: tuple[ChillerUnit, ...] | None = None
        best_power = float("inf")
        best_fraction = 0.0
        for subset in self._candidate_subsets(available):
            power, fraction = commitment_power(subset)
            if fraction > 1.0:
                continue
            if power < best_power:
                best, best_power, best_fraction = subset, power, fraction
        overloaded = best is None
        if overloaded:
            best = available
            best_power, best_fraction = commitment_power(available)
        return StagingDecision(
            time_s=time_s,
            setpoint_c=supply_temperature_c,
            thermal_load_w=thermal_load_w,
            units_on=tuple(unit.name for unit in best),
            electrical_power_w=best_power,
            load_fraction=best_fraction,
            overloaded=overloaded,
            n_available=len(available),
        )

    def plant_power_w(
        self,
        supply_temperature_c: float,
        water_loops_and_heats: Iterable[tuple[WaterLoop, float]],
        time_s: float = 0.0,
    ) -> float:
        """Bank electrical power for a set of loops — staged, then summed.

        The per-loop heat rates (Eq. 1 at unit COP — the exact thermal
        loads) are summed and staged through :meth:`stage`; the signature
        mirrors :meth:`ChillerPlant.plant_power_w` with the staging time
        appended.
        """
        accounting = self.accounting_chiller()
        total = sum(
            accounting.cooling_power_w(loop, heat)
            for loop, heat in water_loops_and_heats
        )
        return self.stage(supply_temperature_c, total, time_s).electrical_power_w
