"""Water-cooled micro-condenser model (effectiveness-NTU)."""

from __future__ import annotations

from dataclasses import dataclass

import math

from repro.thermosyphon.water_loop import WaterLoop
from repro.utils.validation import check_fraction, check_non_negative, check_positive


@dataclass(frozen=True)
class CondenserOperatingPoint:
    """Result of a condenser energy balance."""

    saturation_temperature_c: float
    water_outlet_temperature_c: float
    effectiveness: float
    heat_w: float


class CondenserModel:
    """Condensation-side heat exchange with the chilled-water loop.

    Because the refrigerant condenses at (nearly) constant temperature, the
    condensing stream behaves as an infinite-heat-capacity stream and the
    effectiveness reduces to ``1 - exp(-NTU)`` with
    ``NTU = UA / (m_dot_w * c_p_w)``.  Solving the energy balance for the
    saturation temperature gives the loop temperature the thermosyphon will
    settle at for a given heat load and water condition.
    """

    def __init__(self, ua_w_per_k: float = 15.0, *, flooding_penalty: float = 0.0) -> None:
        self.ua_w_per_k = check_positive(ua_w_per_k, "ua_w_per_k")
        #: Fraction of the condenser surface flooded by excess liquid charge
        #: (high filling ratios); reduces the effective UA.
        self.flooding_penalty = check_fraction(flooding_penalty, "flooding_penalty")

    @property
    def effective_ua_w_per_k(self) -> float:
        """UA after the flooding penalty."""
        return self.ua_w_per_k * (1.0 - self.flooding_penalty)

    def effectiveness(self, water_loop: WaterLoop) -> float:
        """Heat-exchanger effectiveness for the given water flow."""
        capacity_rate = water_loop.heat_capacity_rate_w_per_k
        ntu = self.effective_ua_w_per_k / capacity_rate
        return 1.0 - math.exp(-ntu)

    def required_saturation_temperature_c(
        self, heat_w: float, water_loop: WaterLoop
    ) -> CondenserOperatingPoint:
        """Saturation temperature needed to reject ``heat_w`` into the water."""
        check_non_negative(heat_w, "heat_w")
        effectiveness = self.effectiveness(water_loop)
        capacity_rate = water_loop.heat_capacity_rate_w_per_k
        saturation = water_loop.inlet_temperature_c + heat_w / (effectiveness * capacity_rate)
        water_out = water_loop.outlet_temperature_c(heat_w)
        return CondenserOperatingPoint(
            saturation_temperature_c=saturation,
            water_outlet_temperature_c=water_out,
            effectiveness=effectiveness,
            heat_w=heat_w,
        )

    def heat_rejected_w(self, saturation_temperature_c: float, water_loop: WaterLoop) -> float:
        """Heat the condenser rejects at a given saturation temperature."""
        effectiveness = self.effectiveness(water_loop)
        capacity_rate = water_loop.heat_capacity_rate_w_per_k
        driving = saturation_temperature_c - water_loop.inlet_temperature_c
        return max(effectiveness * capacity_rate * driving, 0.0)
