"""Evaporator orientation: micro-channel direction and flow sense.

The thermosyphon can be mounted in four orientations on the square heat
spreader.  The orientation fixes (i) the axis along which the micro-channels
run and therefore which cores share a channel, and (ii) the direction in
which the refrigerant flows, which matters because the fluid enters slightly
subcooled and its quality — and eventually dryout risk — grows downstream.

The paper's *Design 1* routes the flow eastwards (channels run east-west,
inlet on the west edge) so that the quality-rich downstream end of the
channels sits over the dead, power-free area on the east side of the die.
*Design 2* routes the flow from north to south.
"""

from __future__ import annotations

import enum


class Orientation(enum.Enum):
    """Flow orientation of the evaporator micro-channels."""

    WEST_TO_EAST = "west_to_east"
    EAST_TO_WEST = "east_to_west"
    NORTH_TO_SOUTH = "north_to_south"
    SOUTH_TO_NORTH = "south_to_north"

    @property
    def channels_run_east_west(self) -> bool:
        """True if channels are horizontal (each grid row is a channel)."""
        return self in (Orientation.WEST_TO_EAST, Orientation.EAST_TO_WEST)

    @property
    def channels_run_north_south(self) -> bool:
        """True if channels are vertical (each grid column is a channel)."""
        return not self.channels_run_east_west

    @property
    def flow_reversed(self) -> bool:
        """True if the flow runs against the grid index direction.

        Grid columns increase eastwards and grid rows increase northwards, so
        WEST_TO_EAST and SOUTH_TO_NORTH follow increasing indices while the
        other two orientations run against them.
        """
        return self in (Orientation.EAST_TO_WEST, Orientation.NORTH_TO_SOUTH)

    def channel_count(self, n_rows: int, n_columns: int) -> int:
        """Number of grid lanes acting as channels for a given grid shape."""
        return n_rows if self.channels_run_east_west else n_columns

    def cells_per_channel(self, n_rows: int, n_columns: int) -> int:
        """Number of grid cells along one channel."""
        return n_columns if self.channels_run_east_west else n_rows

    def inlet_edge(self) -> str:
        """Compass name of the edge where the subcooled refrigerant enters."""
        return {
            Orientation.WEST_TO_EAST: "west",
            Orientation.EAST_TO_WEST: "east",
            Orientation.NORTH_TO_SOUTH: "north",
            Orientation.SOUTH_TO_NORTH: "south",
        }[self]

    def inlet_point_mm(self, outline_x: float, outline_y: float, width: float, height: float) -> tuple[float, float]:
        """Centre of the inlet edge in floorplan millimetres.

        Used by the inlet-first baseline mapping policy ([7]), which loads
        the cores closest to the coolant inlet first.
        """
        centre_x = outline_x + width / 2.0
        centre_y = outline_y + height / 2.0
        return {
            Orientation.WEST_TO_EAST: (outline_x, centre_y),
            Orientation.EAST_TO_WEST: (outline_x + width, centre_y),
            Orientation.NORTH_TO_SOUTH: (centre_x, outline_y + height),
            Orientation.SOUTH_TO_NORTH: (centre_x, outline_y),
        }[self]
