"""Thermosyphon design descriptions (design-time parameters).

A design fixes everything chosen before deployment: the refrigerant and its
filling ratio, the evaporator orientation and channel geometry, the riser
height, the condenser size, and the nominal water-loop operating point.  The
runtime controller may later adjust the water flow rate (fast) and, per
rack, the water inlet temperature (slow), but not the design parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.exceptions import ConfigurationError
from repro.thermosyphon.evaporator import EvaporatorGeometry
from repro.thermosyphon.orientation import Orientation
from repro.thermosyphon.refrigerant import Refrigerant, get_refrigerant
from repro.thermosyphon.water_loop import WaterLoop
from repro.utils.validation import check_fraction, check_positive


@dataclass(frozen=True)
class ThermosyphonDesign:
    """A complete set of thermosyphon design-time parameters."""

    name: str
    refrigerant_name: str = "R236fa"
    filling_ratio: float = 0.55
    orientation: Orientation = Orientation.WEST_TO_EAST
    evaporator_geometry: EvaporatorGeometry = field(default_factory=EvaporatorGeometry)
    riser_height_m: float = 0.12
    condenser_ua_w_per_k: float = 15.0
    water_inlet_temperature_c: float = 30.0
    water_flow_rate_kg_h: float = 7.0
    loop_friction_coefficient: float = 2.6e8
    dryout_quality: float = 0.85

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("design name must not be empty")
        check_fraction(self.filling_ratio, "filling_ratio")
        check_positive(self.riser_height_m, "riser_height_m")
        check_positive(self.condenser_ua_w_per_k, "condenser_ua_w_per_k")
        check_positive(self.water_flow_rate_kg_h, "water_flow_rate_kg_h")
        check_positive(self.loop_friction_coefficient, "loop_friction_coefficient")
        check_fraction(self.dryout_quality, "dryout_quality")
        # Validates the refrigerant name eagerly.
        get_refrigerant(self.refrigerant_name)

    # ------------------------------------------------------------------ #
    # Derived objects
    # ------------------------------------------------------------------ #
    @property
    def refrigerant(self) -> Refrigerant:
        """The refrigerant property model for this design."""
        return get_refrigerant(self.refrigerant_name)

    def water_loop(self) -> WaterLoop:
        """The nominal water-loop operating point of this design."""
        return WaterLoop(
            inlet_temperature_c=self.water_inlet_temperature_c,
            flow_rate_kg_h=self.water_flow_rate_kg_h,
        )

    # ------------------------------------------------------------------ #
    # Variants
    # ------------------------------------------------------------------ #
    def with_orientation(self, orientation: Orientation) -> "ThermosyphonDesign":
        """Copy of this design with a different evaporator orientation."""
        return replace(self, orientation=orientation, name=f"{self.name}@{orientation.value}")

    def with_refrigerant(self, refrigerant_name: str) -> "ThermosyphonDesign":
        """Copy of this design with a different refrigerant."""
        get_refrigerant(refrigerant_name)
        return replace(self, refrigerant_name=refrigerant_name, name=f"{self.name}@{refrigerant_name}")

    def with_filling_ratio(self, filling_ratio: float) -> "ThermosyphonDesign":
        """Copy of this design with a different filling ratio."""
        return replace(self, filling_ratio=filling_ratio, name=f"{self.name}@fr{filling_ratio:.2f}")

    def with_water(self, inlet_temperature_c: float, flow_rate_kg_h: float) -> "ThermosyphonDesign":
        """Copy of this design with different nominal water conditions."""
        return replace(
            self,
            water_inlet_temperature_c=inlet_temperature_c,
            water_flow_rate_kg_h=flow_rate_kg_h,
        )


#: The workload- and platform-aware design proposed by the paper
#: (Section VI): R236fa at a 55% filling ratio, channels running east-west
#: with the quality-rich outlet over the die's dead area, 7 kg/h of water
#: at 30 degC.
PAPER_OPTIMIZED_DESIGN = ThermosyphonDesign(
    name="paper_optimized",
    refrigerant_name="R236fa",
    filling_ratio=0.55,
    orientation=Orientation.WEST_TO_EAST,
    water_inlet_temperature_c=30.0,
    water_flow_rate_kg_h=7.0,
)

#: The reference design of Seuret et al. [8]: sized for a uniform heat flux
#: over the package, without considering the die floorplan.  The orientation
#: (Design 2, north-to-south flow) and the slightly lower filling ratio make
#: it the state-of-the-art baseline the paper compares against.
SEURET_REFERENCE_DESIGN = ThermosyphonDesign(
    name="seuret_reference",
    refrigerant_name="R236fa",
    filling_ratio=0.50,
    orientation=Orientation.NORTH_TO_SOUTH,
    water_inlet_temperature_c=30.0,
    water_flow_rate_kg_h=7.0,
)
