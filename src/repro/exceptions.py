"""Exception hierarchy for the ``repro`` package.

All exceptions raised intentionally by this library derive from
:class:`ReproError` so that callers can distinguish library failures from
programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong range, sign, or shape)."""


class ConfigurationError(ReproError):
    """A workload or platform configuration is inconsistent or unsupported."""


class FloorplanError(ReproError):
    """A floorplan is malformed (overlapping or out-of-bounds components)."""


class ConvergenceError(ReproError):
    """An iterative solver failed to converge within its iteration budget."""


class DryoutError(ReproError):
    """The evaporator reached dryout (vapor quality above the critical value).

    Dryout means the micro-channel wall is no longer wetted, the two-phase
    heat transfer coefficient collapses, and the computed wall temperature is
    no longer meaningful.  The thermosyphon design must be changed (larger
    filling ratio, different refrigerant, colder water) or the workload
    mapping revised.
    """


class ThermalEmergencyError(ReproError):
    """The case temperature exceeded ``T_CASE_MAX`` and no actuator remained.

    Raised by the runtime controller only when raising the water flow rate to
    its maximum and lowering the frequency to the minimum QoS-feasible level
    are both insufficient.
    """


class QoSViolationError(ReproError):
    """No configuration of the application satisfies the QoS constraint."""


class MappingError(ReproError):
    """A thread-to-core mapping request cannot be satisfied."""
