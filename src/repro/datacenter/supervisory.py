"""Supervisory chiller-setpoint controller: the slow outer control loop.

The paper's runtime story has two time scales: the water valve and DVFS act
within a control period (seconds), while the chiller water supply
temperature is set per rack and "changes only slowly"
(:class:`~repro.thermosyphon.water_loop.WaterLoop`).  This module is that
slow loop.  Every supervisory period it looks at the worst within-period
peak case temperature any server on the floor reported since its last
decision and moves the shared supply setpoint:

* **raise** the setpoint one step when even the *predicted* peak at the
  raised setpoint stays under ``T_CASE_MAX`` by a guard margin — warmer
  supply water means a smaller chiller lift (better COP) and more free
  cooling, so every degree gained is electrical power saved at the plant;
* **lower** it one step as soon as any server's peak enters the violation
  band, handing headroom back to the fast per-server controllers;
* **hold** otherwise.

The prediction is deliberately a conservative bound rather than a model
call: the case temperature rises at most one-for-one with the condenser
water supply temperature (the thermosyphon saturation point tracks the
water inlet with sensitivity < 1), so ``peak + peak_sensitivity * step``
with ``peak_sensitivity = 1`` upper-bounds the post-raise peak without
paying a speculative rack solve.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.session import T_CASE_MAX_C
from repro.utils.validation import check_non_negative, check_positive


class SupervisoryAction(enum.Enum):
    """What the supervisory loop did at one of its decision points."""

    HOLD = "hold"
    RAISE_SETPOINT = "raise_setpoint"
    LOWER_SETPOINT = "lower_setpoint"


@dataclass(frozen=True)
class SupervisoryDecision:
    """One decision of the slow setpoint loop.

    ``setpoint_c`` is the supply temperature the elapsed window *ran* with;
    ``next_setpoint_c`` is what the following window will run with.
    ``worst_peak_case_c`` is the highest within-period peak case temperature
    any server reported during the window, and ``predicted_peak_case_c`` the
    conservative bound used to authorize a raise.
    """

    time_s: float
    setpoint_c: float
    next_setpoint_c: float
    action: SupervisoryAction
    worst_peak_case_c: float
    predicted_peak_case_c: float


class SupervisoryController:
    """Slow outer-loop actuator on the shared chiller supply temperature.

    Parameters
    ----------
    period_s:
        Supervisory decision period; must be an integer multiple of the
        fast control period it is layered over (validated by the
        datacenter session).
    setpoint_min_c, setpoint_max_c:
        Clamp range of the supply setpoint (plant limits).
    step_c:
        Setpoint move per decision — the actuator is slow and smooth, one
        step per supervisory period.
    guard_margin_c:
        Raises are only authorized while the predicted peak stays below
        ``t_case_max_c - guard_margin_c``.
    violation_margin_c:
        Lowers trigger once the observed peak reaches
        ``t_case_max_c - violation_margin_c`` (0 = only on an actual
        limit hit).
    peak_sensitivity:
        Assumed worst-case rise of the peak case temperature per degree of
        setpoint raise (1.0 is a physical upper bound for a loop whose
        saturation point tracks the water inlet).
    """

    def __init__(
        self,
        *,
        period_s: float = 8.0,
        setpoint_min_c: float = 18.0,
        setpoint_max_c: float = 45.0,
        step_c: float = 1.0,
        guard_margin_c: float = 2.0,
        violation_margin_c: float = 0.0,
        peak_sensitivity: float = 1.0,
        t_case_max_c: float = T_CASE_MAX_C,
    ) -> None:
        self.period_s = check_positive(period_s, "period_s")
        if setpoint_min_c > setpoint_max_c:
            raise ValueError(
                f"setpoint_min_c {setpoint_min_c} must be <= setpoint_max_c "
                f"{setpoint_max_c}"
            )
        self.setpoint_min_c = setpoint_min_c
        self.setpoint_max_c = setpoint_max_c
        self.step_c = check_positive(step_c, "step_c")
        self.guard_margin_c = check_non_negative(guard_margin_c, "guard_margin_c")
        self.violation_margin_c = check_non_negative(
            violation_margin_c, "violation_margin_c"
        )
        self.peak_sensitivity = check_non_negative(peak_sensitivity, "peak_sensitivity")
        self.t_case_max_c = t_case_max_c

    def clamp(self, setpoint_c: float) -> float:
        """The setpoint clamped to the plant's range."""
        return min(max(setpoint_c, self.setpoint_min_c), self.setpoint_max_c)

    def decide(
        self, time_s: float, setpoint_c: float, worst_peak_case_c: float
    ) -> SupervisoryDecision:
        """One slow-loop decision from the window's worst observed peak."""
        predicted = worst_peak_case_c + self.peak_sensitivity * self.step_c
        if (
            worst_peak_case_c >= self.t_case_max_c - self.violation_margin_c
            and setpoint_c > self.setpoint_min_c
        ):
            action = SupervisoryAction.LOWER_SETPOINT
            next_setpoint = self.clamp(setpoint_c - self.step_c)
        elif (
            predicted <= self.t_case_max_c - self.guard_margin_c
            and setpoint_c < self.setpoint_max_c
        ):
            action = SupervisoryAction.RAISE_SETPOINT
            next_setpoint = self.clamp(setpoint_c + self.step_c)
        else:
            action = SupervisoryAction.HOLD
            next_setpoint = setpoint_c
        return SupervisoryDecision(
            time_s=time_s,
            setpoint_c=setpoint_c,
            next_setpoint_c=next_setpoint,
            action=action,
            worst_peak_case_c=worst_peak_case_c,
            predicted_peak_case_c=predicted,
        )
