"""Supervisory chiller-setpoint controller: the slow outer control loop.

The paper's runtime story has two time scales: the water valve and DVFS act
within a control period (seconds), while the chiller water supply
temperature is set per rack and "changes only slowly"
(:class:`~repro.thermosyphon.water_loop.WaterLoop`).  This module is that
slow loop.  Every supervisory period it looks at the worst within-period
peak case temperature any server on the floor reported since its last
decision and moves the shared supply setpoint:

* **raise** the setpoint one step when even the *predicted* peak at the
  raised setpoint stays under ``T_CASE_MAX`` by a guard margin — warmer
  supply water means a smaller chiller lift (better COP) and more free
  cooling, so every degree gained is electrical power saved at the plant;
* **lower** it one step as soon as any server's peak enters the violation
  band, handing headroom back to the fast per-server controllers;
* **hold** otherwise.

The prediction is deliberately a conservative bound rather than a model
call: the case temperature rises at most one-for-one with the condenser
water supply temperature (the thermosyphon saturation point tracks the
water inlet with sensitivity < 1), so ``peak + peak_sensitivity * step``
with ``peak_sensitivity = 1`` upper-bounds the post-raise peak without
paying a speculative rack solve.

:class:`MpcSupervisoryController` replaces that bound with the model
itself: each supervisory period it snapshots the warm floor state, rolls a
small family of candidate setpoint trajectories over a receding horizon
through the real engine (:mod:`repro.datacenter.mpc`) and commits the
first step of the cheapest trajectory whose predicted floor-wide peak
stays under ``T_CASE_MAX`` minus the guard margin.  Because the rollout
*measures* the post-raise peak instead of upper-bounding it, the MPC can
take multi-step raises the reactive rule would never authorize and run
closer to the true feasibility frontier — less plant energy at the same
zero-violation guarantee.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.session import T_CASE_MAX_C
from repro.datacenter.mpc import (
    CandidateTrajectory,
    MpcPlan,
    default_candidates,
    plan_setpoint,
)
from repro.utils.validation import check_non_negative, check_positive, check_positive_int


class SupervisoryAction(enum.Enum):
    """What the supervisory loop did at one of its decision points.

    ``SATURATED`` records a violation observed while the setpoint is
    already clamped at ``setpoint_min_c``: the slow actuator *wants* to
    lower but has no range left, so the plant holds — distinguishable in
    the decision log from a genuinely quiet HOLD window.
    """

    HOLD = "hold"
    RAISE_SETPOINT = "raise_setpoint"
    LOWER_SETPOINT = "lower_setpoint"
    SATURATED = "saturated"


@dataclass(frozen=True)
class SupervisoryDecision:
    """One decision of the slow setpoint loop.

    ``setpoint_c`` is the supply temperature the elapsed window *ran* with;
    ``next_setpoint_c`` is what the following window will run with.
    ``worst_peak_case_c`` is the highest within-period peak case temperature
    any server reported during the window, and ``predicted_peak_case_c`` the
    conservative bound used to authorize a raise.
    """

    time_s: float
    setpoint_c: float
    next_setpoint_c: float
    action: SupervisoryAction
    worst_peak_case_c: float
    predicted_peak_case_c: float


class SupervisoryController:
    """Slow outer-loop actuator on the shared chiller supply temperature.

    Parameters
    ----------
    period_s:
        Supervisory decision period; must be an integer multiple of the
        fast control period it is layered over (validated by the
        datacenter session).
    setpoint_min_c, setpoint_max_c:
        Clamp range of the supply setpoint (plant limits).
    step_c:
        Setpoint move per decision — the actuator is slow and smooth, one
        step per supervisory period.
    guard_margin_c:
        Raises are only authorized while the predicted peak stays below
        ``t_case_max_c - guard_margin_c``.
    violation_margin_c:
        Lowers trigger once the observed peak reaches
        ``t_case_max_c - violation_margin_c`` (0 = only on an actual
        limit hit).
    peak_sensitivity:
        Assumed worst-case rise of the peak case temperature per degree of
        setpoint raise (1.0 is a physical upper bound for a loop whose
        saturation point tracks the water inlet).
    """

    def __init__(
        self,
        *,
        period_s: float = 8.0,
        setpoint_min_c: float = 18.0,
        setpoint_max_c: float = 45.0,
        step_c: float = 1.0,
        guard_margin_c: float = 2.0,
        violation_margin_c: float = 0.0,
        peak_sensitivity: float = 1.0,
        t_case_max_c: float = T_CASE_MAX_C,
    ) -> None:
        self.period_s = check_positive(period_s, "period_s")
        if setpoint_min_c > setpoint_max_c:
            raise ValueError(
                f"setpoint_min_c {setpoint_min_c} must be <= setpoint_max_c "
                f"{setpoint_max_c}"
            )
        self.setpoint_min_c = setpoint_min_c
        self.setpoint_max_c = setpoint_max_c
        self.step_c = check_positive(step_c, "step_c")
        self.guard_margin_c = check_non_negative(guard_margin_c, "guard_margin_c")
        self.violation_margin_c = check_non_negative(
            violation_margin_c, "violation_margin_c"
        )
        self.peak_sensitivity = check_non_negative(peak_sensitivity, "peak_sensitivity")
        self.t_case_max_c = t_case_max_c

    def clamp(self, setpoint_c: float) -> float:
        """The setpoint clamped to the plant's range."""
        return min(max(setpoint_c, self.setpoint_min_c), self.setpoint_max_c)

    def decide(
        self, time_s: float, setpoint_c: float, worst_peak_case_c: float
    ) -> SupervisoryDecision:
        """One slow-loop decision from the window's worst observed peak."""
        predicted = worst_peak_case_c + self.peak_sensitivity * self.step_c
        if worst_peak_case_c >= self.t_case_max_c - self.violation_margin_c:
            if setpoint_c > self.setpoint_min_c:
                action = SupervisoryAction.LOWER_SETPOINT
                next_setpoint = self.clamp(setpoint_c - self.step_c)
            else:
                # Violation with the setpoint clamped at the plant minimum:
                # nothing left to actuate, but the log must say so — a
                # silent HOLD here is indistinguishable from a quiet window.
                action = SupervisoryAction.SATURATED
                next_setpoint = setpoint_c
        elif (
            predicted <= self.t_case_max_c - self.guard_margin_c
            and setpoint_c < self.setpoint_max_c
        ):
            action = SupervisoryAction.RAISE_SETPOINT
            next_setpoint = self.clamp(setpoint_c + self.step_c)
        else:
            action = SupervisoryAction.HOLD
            next_setpoint = setpoint_c
        return SupervisoryDecision(
            time_s=time_s,
            setpoint_c=setpoint_c,
            next_setpoint_c=next_setpoint,
            action=action,
            worst_peak_case_c=worst_peak_case_c,
            predicted_peak_case_c=predicted,
        )


class MpcSupervisoryController(SupervisoryController):
    """Model-predictive supervisory setpoint control over the real engine.

    Replaces the reactive controller's conservative raise bound with
    receding-horizon rollouts: :meth:`plan` snapshots the warm datacenter
    session, simulates every candidate setpoint trajectory ``horizon``
    supervisory windows forward through the *actual* floor engine (same
    operators, shared factorization caches — a rollout costs only
    back-substitutions), and commits the first step of the cheapest
    trajectory whose predicted floor-wide peak case temperature clears
    ``t_case_max_c - guard_margin_c`` everywhere.  The observed-violation
    case keeps the reactive rule: safety does not wait for a rollout.

    Parameters (beyond :class:`SupervisoryController`)
    --------------------------------------------------
    horizon:
        Number of supervisory windows each rollout looks ahead.
    candidates:
        The trajectory family to evaluate; defaults to
        :func:`~repro.datacenter.mpc.default_candidates` (hold,
        single/double-step raise ramps, one-shot raise, one-shot lower,
        lower ramp — six candidates).  Steps are in units of ``step_c``.
    rollout_periods_per_window, rollout_substeps:
        Rollout fidelity: how many fast control periods of each window are
        actually simulated (the window's plant power is billed at their
        mean) and how many backward-Euler substeps each simulated period
        takes.  The defaults (1, 1) keep the MPC overhead within a few
        reactive-baseline wall-clocks; the guard margin absorbs the
        coarser integration.

    ``planning_log`` keeps every :class:`~repro.datacenter.mpc.MpcPlan`
    (all rollouts + the chosen one) for tests and analysis.
    """

    def __init__(
        self,
        *,
        horizon: int = 4,
        candidates: tuple[CandidateTrajectory, ...] | None = None,
        rollout_periods_per_window: int = 1,
        rollout_substeps: int = 1,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        self.horizon = check_positive_int(horizon, "horizon")
        self.candidates = (
            tuple(candidates) if candidates is not None else default_candidates(horizon)
        )
        if not self.candidates:
            raise ValueError("MPC needs at least one candidate trajectory")
        self.rollout_periods_per_window = check_positive_int(
            rollout_periods_per_window, "rollout_periods_per_window"
        )
        self.rollout_substeps = check_positive_int(
            rollout_substeps, "rollout_substeps"
        )
        self.planning_log: list[MpcPlan] = []

    def plan(
        self,
        session,
        time_s: float,
        worst_peak_case_c: float,
        *,
        duration_s: float | None = None,
    ) -> SupervisoryDecision:
        """One MPC decision: roll out candidates, commit the first step.

        ``session`` is the live :class:`~repro.datacenter.model.\
DatacenterSession`; its state is snapshot before and restored after the
        rollouts, so planning leaves the committed trace untouched.  An
        *observed* violation short-circuits to the reactive
        :meth:`~SupervisoryController.decide` (lower now — or record
        SATURATED at the range floor — rather than spend a rollout).
        """
        if worst_peak_case_c >= self.t_case_max_c - self.violation_margin_c:
            return self.decide(time_s, session.setpoint_c, worst_peak_case_c)
        plan = plan_setpoint(session, self, time_s=time_s, duration_s=duration_s)
        self.planning_log.append(plan)
        chosen = plan.chosen
        next_setpoint = chosen.setpoints_c[0] if chosen.setpoints_c else plan.setpoint_c
        if next_setpoint > plan.setpoint_c:
            action = SupervisoryAction.RAISE_SETPOINT
        elif next_setpoint < plan.setpoint_c:
            action = SupervisoryAction.LOWER_SETPOINT
        else:
            action = SupervisoryAction.HOLD
        return SupervisoryDecision(
            time_s=time_s,
            setpoint_c=plan.setpoint_c,
            next_setpoint_c=next_setpoint,
            action=action,
            worst_peak_case_c=worst_peak_case_c,
            predicted_peak_case_c=chosen.worst_peak_case_c,
        )
