"""Floor engine: every server on the floor stacked through shared operators.

PR 5's datacenter layer advanced racks one :class:`RackSession` at a time,
so a homogeneous 20-rack floor paid 20 multi-RHS back-substitutions per
substep where the physics permits one.  :class:`FloorEngine` inverts the
ownership of floor state: the *floor* holds one stacked
``(n_servers_in_group, n_cells)`` temperature array per **hardware group**
(racks sharing one thermal network, i.e. one
:class:`~repro.thermal.simulator.ThermalSimulator`), and every rack
session's state becomes a row-block view into its group's array.  Each
control period runs four floor-wide batched stages:

1. **Power** — per-server power models, memoized per hardware group:
   servers carrying the same (benchmark, mapping, activity) triple share
   one evaluation, because the power model is a deterministic pure
   function of them.
2. **Refresh** — every stale cooling boundary on the floor is grouped by
   (thermosyphon design, water condition, total power); each group
   converges the loop operating point *once* and marches its evaporator
   lanes through **one** stacked
   :meth:`~repro.thermosyphon.loop.ThermosyphonLoop.cooling_boundaries`
   call per water-condition group — across racks, not per rack.
3. **Solve** — steady initialization and every backward-Euler substep run
   one :meth:`~repro.thermal.simulator.ThermalSimulator.\
transient_step_many_from_maps` (or ``steady_state_many_from_maps``) per
   (hardware group, cooling-boundary content) — one factorization and one
   multi-RHS back-substitution for *all* servers sharing an operator,
   whatever rack they sit in.
4. **Finish** — each rack session adopts its row-block view of the group
   array through :meth:`RackSession.finish_advance`, so the rack-level API
   (results, residual tracking, boundary hold policy) is unchanged.

Because SuperLU back-substitutes multi-column right-hand sides column by
column and the lane march is elementwise across servers, stacking across
racks changes *nothing numerically*: a fixed-setpoint floor run is
bit-identical to standalone per-rack traces, which remain the golden
model.  Heterogeneous floors (mixed SKUs/designs) need no fallback — each
hardware group simply stacks fewer rows.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.rack_session import (
    RackAdvance,
    RackSession,
    RackSessionSnapshot,
    ServerLoad,
)
from repro.exceptions import ConfigurationError, ValidationError
from repro.thermosyphon.loop import BoundaryResult, LoopOperatingPoint

__all__ = ["FloorAdvance", "FloorEngine", "FloorSnapshot"]


@dataclass(frozen=True)
class FloorSnapshot:
    """Frozen copy of the floor's warm state for speculative rollouts.

    Captures the stacked group temperature arrays plus every rack session's
    :class:`RackSessionSnapshot` (held boundaries, residual history) and
    whether each session's field was a row-block view of its group array —
    :meth:`FloorEngine.restore` re-establishes exactly that view
    relationship, so a restored floor is *warm*: the next advance carries
    fields instead of re-solving steady state, and every cached
    factorization and memoized operating point survives (they live on the
    shared simulators/engine, not in the snapshot).
    """

    group_fields: tuple[np.ndarray | None, ...]
    rack_snapshots: tuple[RackSessionSnapshot, ...]
    rack_viewed_group: tuple[bool, ...]


@dataclass(frozen=True)
class FloorAdvance:
    """Outcome of one floor-wide control period of physics.

    ``racks[r]`` is rack ``r``'s :class:`RackAdvance`, exactly as the
    per-rack engine would have produced it.  ``worst_period_peak_case_c``
    is the highest within-period case temperature across *every* server on
    the floor, computed vectorized from the stacked group arrays — the
    floor-level predicted-peak input of the supervisory setpoint loop.
    """

    racks: tuple[RackAdvance, ...]
    worst_period_peak_case_c: float

    @property
    def n_racks(self) -> int:
        """Number of racks advanced."""
        return len(self.racks)


class _HardwareGroup:
    """One stack of racks sharing a thermal network (and its cache)."""

    def __init__(self, rack_indices: list[int], sessions: Sequence[RackSession]):
        self.rack_indices = rack_indices
        self.simulator = sessions[rack_indices[0]].thermal_simulator
        self.case_cell_index = sessions[rack_indices[0]].case_cell_index
        self.n_servers = sum(sessions[r].n_servers for r in rack_indices)
        # Contiguous row blocks, one per rack, in rack order.
        self.rack_rows: dict[int, slice] = {}
        offset = 0
        for r in rack_indices:
            self.rack_rows[r] = slice(offset, offset + sessions[r].n_servers)
            offset += sessions[r].n_servers
        self.fields: np.ndarray | None = None


class FloorEngine:
    """Advances every rack on the floor through stacked group solves.

    Parameters
    ----------
    rack_sessions:
        One :class:`RackSession` per rack.  Sessions sharing a thermal
        simulator form one hardware group and stack their state; sessions
        with distinct simulators (mixed SKUs) form separate groups — the
        engine handles any mix, there is no homogeneous-only fast path to
        fall back from.
    """

    def __init__(self, rack_sessions: Sequence[RackSession]) -> None:
        self.rack_sessions = list(rack_sessions)
        if not self.rack_sessions:
            raise ConfigurationError("a floor engine needs at least one rack session")
        by_simulator: dict[int, list[int]] = {}
        for r, session in enumerate(self.rack_sessions):
            by_simulator.setdefault(id(session.thermal_simulator), []).append(r)
        self._groups = [
            _HardwareGroup(rack_indices, self.rack_sessions)
            for rack_indices in by_simulator.values()
        ]
        self._group_of_rack: dict[int, _HardwareGroup] = {}
        for group in self._groups:
            for r in group.rack_indices:
                self._group_of_rack[r] = group
        # Floor-lifetime operating-point memo: the loop convergence is a
        # deterministic pure function of (design, water condition, total
        # power), so a key converged during an MPC rollout is free when the
        # committed trajectory replays it — and vice versa.  Insertion-order
        # eviction bounds it on long traces with ever-fresh loads.
        self._point_memo: dict[tuple, LoopOperatingPoint] = {}
        self._point_memo_max_entries = 4096

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def n_racks(self) -> int:
        """Number of racks on the floor."""
        return len(self.rack_sessions)

    @property
    def n_servers(self) -> int:
        """Total number of servers across the floor."""
        return sum(session.n_servers for session in self.rack_sessions)

    @property
    def n_hardware_groups(self) -> int:
        """Number of distinct thermal networks (stacked state arrays)."""
        return len(self._groups)

    def boundary_groups(self) -> list[list[tuple[int, int]]]:
        """Current solve partition: ``(rack, server)`` pairs per operator.

        Servers land in the same group when they share both a thermal
        network and a cooling-boundary content
        (:meth:`~repro.thermal.boundary.CoolingBoundary.cache_token`) —
        exactly the servers whose next substep is one stacked solve.  A
        valve action, DVFS move or water-setpoint change re-partitions the
        floor at the next advance.  Servers that have not held a boundary
        yet (before the first advance) are omitted.
        """
        partition: dict[tuple, list[tuple[int, int]]] = {}
        for group in self._groups:
            for r in group.rack_indices:
                session = self.rack_sessions[r]
                for s, state in enumerate(session._boundaries):
                    if state is None:
                        continue
                    token = (id(group), state.boundary_result.boundary.cache_token())
                    partition.setdefault(token, []).append((r, s))
        return list(partition.values())

    def reset(self) -> None:
        """Cold-start the floor: group arrays and every rack session."""
        for group in self._groups:
            group.fields = None
        for session in self.rack_sessions:
            session.reset()

    # ------------------------------------------------------------------ #
    # Snapshot / restore for speculative rollouts
    # ------------------------------------------------------------------ #
    def snapshot(self) -> FloorSnapshot:
        """Copy the floor's warm mutable state for a later :meth:`restore`.

        One array copy per hardware group plus each session's (frozen)
        boundary/residual tuples — no simulator, cache or network state is
        copied, which is what keeps an MPC rollout's cost down to the
        back-substitutions the rollout itself performs.
        """
        return FloorSnapshot(
            group_fields=tuple(
                None if group.fields is None else group.fields.copy()
                for group in self._groups
            ),
            rack_snapshots=tuple(
                session.snapshot() for session in self.rack_sessions
            ),
            rack_viewed_group=tuple(
                session.fields is not None
                and self._group_of_rack[r].fields is not None
                and session.fields.base is self._group_of_rack[r].fields
                for r, session in enumerate(self.rack_sessions)
            ),
        )

    def restore(self, snapshot: FloorSnapshot) -> None:
        """Rewind the floor to a :meth:`snapshot`'s state, still warm.

        Group arrays are reinstalled from copies (the snapshot stays valid
        for further restores — one snapshot serves every candidate of an
        MPC planning step) and each rack session is rebound to its
        row-block view when it held one at snapshot time, so the next
        advance passes the warm check and carries fields bit-identically.
        """
        if len(snapshot.rack_snapshots) != self.n_racks:
            raise ValidationError(
                f"snapshot holds {len(snapshot.rack_snapshots)} racks, "
                f"floor has {self.n_racks}"
            )
        if len(snapshot.group_fields) != len(self._groups):
            raise ValidationError(
                f"snapshot holds {len(snapshot.group_fields)} hardware groups, "
                f"floor has {len(self._groups)}"
            )
        for group, saved in zip(self._groups, snapshot.group_fields):
            group.fields = None if saved is None else saved.copy()
        for r, session in enumerate(self.rack_sessions):
            group = self._group_of_rack[r]
            if snapshot.rack_viewed_group[r]:
                session.restore(
                    snapshot.rack_snapshots[r],
                    fields=group.fields[group.rack_rows[r]],
                )
            else:
                session.restore(snapshot.rack_snapshots[r])

    # ------------------------------------------------------------------ #
    # The floor-wide period step
    # ------------------------------------------------------------------ #
    def advance(
        self,
        rack_loads: Sequence[Sequence[ServerLoad]],
        dt_s: float,
        *,
        n_substeps: int = 1,
        force_boundary_refresh: Sequence[bool | Sequence[bool]] | None = None,
    ) -> FloorAdvance:
        """Advance every server on the floor by ``dt_s``.

        ``rack_loads[r]`` is rack ``r``'s per-server loads (as for
        :meth:`RackSession.advance`); ``force_boundary_refresh[r]`` is that
        rack's flag or per-server flags.  Results are bit-identical to
        calling each rack session's own ``advance`` in rack order — the
        stacking only changes how many rows each factorized operator
        back-substitutes at once.
        """
        if len(rack_loads) != self.n_racks:
            raise ValidationError(
                f"expected loads for {self.n_racks} racks, got {len(rack_loads)}"
            )
        if n_substeps < 1:
            raise ValueError(f"n_substeps must be >= 1, got {n_substeps}")
        if force_boundary_refresh is None:
            force_boundary_refresh = [False] * self.n_racks
        elif len(force_boundary_refresh) != self.n_racks:
            raise ValidationError(
                f"expected refresh flags for {self.n_racks} racks, "
                f"got {len(force_boundary_refresh)}"
            )

        # Stage 1: power models, memoized within each hardware group.  The
        # memo key is (benchmark, mapping, activity) identity, so it is only
        # shared between sessions agreeing on power model, mapper
        # orientation and grid — keyed accordingly.
        memos: dict[tuple, dict] = {}
        loads: list[list[ServerLoad]] = []
        breakdowns: list[list] = []
        power_maps: list[np.ndarray] = []
        water_loops: list[list] = []
        refreshed: list[list[bool]] = []
        for r, session in enumerate(self.rack_sessions):
            checked = session._check_loads(rack_loads[r])
            force = session.normalize_force_flags(force_boundary_refresh[r])
            memo = memos.setdefault(
                (
                    id(session.thermal_simulator),
                    id(session.power_model),
                    session.design.orientation,
                ),
                {},
            )
            rack_breakdowns, rack_maps, rack_loops = session._evaluate_power(
                checked, memo=memo
            )
            loads.append(checked)
            breakdowns.append(rack_breakdowns)
            power_maps.append(rack_maps)
            water_loops.append(rack_loops)
            refreshed.append(session.plan_refresh(rack_maps, rack_loops, force))

        self._refresh_boundaries_floor_wide(power_maps, water_loops, refreshed)

        boundaries = [
            [state.boundary_result for state in self.rack_sessions[r].held_boundaries()]
            for r in range(self.n_racks)
        ]

        # Stages 3-4 run per hardware group on the stacked arrays.
        rack_advances: list[RackAdvance | None] = [None] * self.n_racks
        worst_peak = float("-inf")
        for group in self._groups:
            group_peak = self._advance_group(
                group,
                loads,
                breakdowns,
                power_maps,
                water_loops,
                boundaries,
                refreshed,
                rack_advances,
                dt_s,
                n_substeps,
            )
            worst_peak = max(worst_peak, group_peak)
        return FloorAdvance(
            racks=tuple(rack_advances),  # type: ignore[arg-type]
            worst_period_peak_case_c=worst_peak,
        )

    # ------------------------------------------------------------------ #
    # Stage 2: floor-wide boundary refresh
    # ------------------------------------------------------------------ #
    def _refresh_boundaries_floor_wide(
        self,
        power_maps: Sequence[np.ndarray],
        water_loops: Sequence[Sequence],
        refreshed: Sequence[Sequence[bool]],
    ) -> None:
        """Converge and march every stale boundary on the floor, batched.

        Identical hardware at the same water condition and heat load
        reaches the same loop operating point, so the condenser iteration
        runs once per distinct (design, water loop, total power) across the
        *whole floor*; the evaporator lane march then runs once per
        operating-point group with the power maps of every member server —
        whatever rack it sits in — stacked into a single call.
        """
        # (design, water loop, total power) -> [(rack, server, total), ...]
        point_members: dict[tuple, list[tuple[int, int, float]]] = {}
        for r, session in enumerate(self.rack_sessions):
            for s in range(session.n_servers):
                if not refreshed[r][s]:
                    continue
                total = float(power_maps[r][s].sum())
                key = (session.design, water_loops[r][s], total)
                point_members.setdefault(key, []).append((r, s, total))
        if not point_members:
            return

        # One loop convergence per group, then one lane march per group of
        # members sharing the grid pitch (the pitch is fixed per hardware
        # group; designs shared across SKUs march separately per pitch).
        for key, members in point_members.items():
            _, water_loop, total = key
            point: LoopOperatingPoint | None = self._point_memo.get(key)
            if point is None:
                first_session = self.rack_sessions[members[0][0]]
                point = first_session.loop.operating_point(total, water_loop)
                while len(self._point_memo) >= self._point_memo_max_entries:
                    self._point_memo.pop(next(iter(self._point_memo)))
                self._point_memo[key] = point
            by_pitch: dict[tuple, list[tuple[int, int, float]]] = {}
            for r, s, member_total in members:
                pitch = self.rack_sessions[r].thermal_simulator.grid.cell_pitch_mm()
                by_pitch.setdefault(tuple(pitch), []).append((r, s, member_total))
            for pitch_members in by_pitch.values():
                r0 = pitch_members[0][0]
                session0 = self.rack_sessions[r0]
                pitch = session0.thermal_simulator.grid.cell_pitch_mm()
                stacked = np.stack(
                    [power_maps[r][s] for r, s, _ in pitch_members]
                )
                results: list[BoundaryResult] = session0.loop.cooling_boundaries(
                    stacked, pitch, point
                )
                for (r, s, member_total), result in zip(pitch_members, results):
                    self.rack_sessions[r].store_boundary(
                        s, point, result, water_loops[r][s], member_total
                    )

    # ------------------------------------------------------------------ #
    # Stages 3-4: stacked init and substep marching of one hardware group
    # ------------------------------------------------------------------ #
    def _advance_group(
        self,
        group: _HardwareGroup,
        loads: Sequence[Sequence[ServerLoad]],
        breakdowns: Sequence[Sequence],
        power_maps: Sequence[np.ndarray],
        water_loops: Sequence[Sequence],
        boundaries: Sequence[Sequence[BoundaryResult]],
        refreshed: Sequence[Sequence[bool]],
        rack_advances: list[RackAdvance | None],
        dt_s: float,
        n_substeps: int,
    ) -> float:
        simulator = group.simulator
        n_cells = simulator.grid.n_cells

        # Stack this group's power maps and boundaries in rack-row order.
        group_maps = np.concatenate([power_maps[r] for r in group.rack_indices])
        group_boundaries: list[BoundaryResult] = []
        for r in group.rack_indices:
            group_boundaries.extend(boundaries[r])

        # Solve partition: rows sharing a cooling-boundary content advance
        # through one cached factorization per substep.
        token_rows: dict[tuple, list[int]] = {}
        for row, boundary in enumerate(group_boundaries):
            token_rows.setdefault(boundary.boundary.cache_token(), []).append(row)
        row_groups = list(token_rows.values())

        # Steady initialization of any cold rack, batched per operator
        # across the whole group; warm racks keep their carried fields.  A
        # session advanced standalone (or reset) between floor periods no
        # longer views the group array, so its rows are re-seeded from its
        # own state.
        fields = group.fields
        warm = fields is not None and all(
            self.rack_sessions[r].fields is not None
            and self.rack_sessions[r].fields.base is fields
            for r in group.rack_indices
        )
        if not warm:
            fields = np.empty((group.n_servers, n_cells), dtype=float)
            cold_rows: list[int] = []
            for r in group.rack_indices:
                rows = group.rack_rows[r]
                carried = self.rack_sessions[r].fields
                if carried is None:
                    cold_rows.extend(range(rows.start, rows.stop))
                else:
                    fields[rows] = carried
            cold = set(cold_rows)
            for rows in row_groups:
                init_rows = [row for row in rows if row in cold]
                if init_rows:
                    fields[init_rows] = simulator.steady_state_many_from_maps(
                        group_maps[init_rows], group_boundaries[init_rows[0]].boundary
                    )

        sub_dt = dt_s / n_substeps
        residuals = np.zeros(group.n_servers, dtype=float)
        peak_case = np.full(group.n_servers, float("-inf"), dtype=float)
        for _ in range(n_substeps):
            new_fields = np.empty_like(fields)
            for rows in row_groups:
                new_fields[rows] = simulator.transient_step_many_from_maps(
                    fields[rows],
                    group_maps[rows],
                    group_boundaries[rows[0]].boundary,
                    sub_dt,
                )
            residuals = np.max(np.abs(new_fields - fields), axis=1)
            fields = new_fields
            peak_case = np.maximum(peak_case, fields[:, group.case_cell_index])
        group.fields = fields

        # Stage 5: every rack session adopts its row-block view and builds
        # its per-server results — the rack is now a view over floor state.
        for r in group.rack_indices:
            rows = group.rack_rows[r]
            rack_advances[r] = self.rack_sessions[r].finish_advance(
                loads[r],
                breakdowns[r],
                water_loops[r],
                fields[rows],
                residuals[rows],
                peak_case[rows],
                refreshed[r],
                dt_s,
                n_substeps,
            )
        return float(peak_case.max())
