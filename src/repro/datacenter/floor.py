"""Floor engine: every server on the floor stacked through shared operators.

PR 5's datacenter layer advanced racks one :class:`RackSession` at a time,
so a homogeneous 20-rack floor paid 20 multi-RHS back-substitutions per
substep where the physics permits one.  :class:`FloorEngine` inverts the
ownership of floor state: the *floor* holds one stacked
``(n_servers_in_group, n_cells)`` temperature array per **hardware group**
(racks sharing one thermal network, i.e. one
:class:`~repro.thermal.simulator.ThermalSimulator`), and every rack
session's state becomes a row-block view into its group's array.  Each
control period runs four floor-wide batched stages:

1. **Power** — per-server power models, memoized per hardware group:
   servers carrying the same (benchmark, mapping, activity) triple share
   one evaluation, because the power model is a deterministic pure
   function of them.
2. **Refresh** — every stale cooling boundary on the floor is grouped by
   (thermosyphon design, water condition, total power); each group
   converges the loop operating point *once* and marches its evaporator
   lanes through **one** stacked
   :meth:`~repro.thermosyphon.loop.ThermosyphonLoop.cooling_boundaries`
   call per water-condition group — across racks, not per rack.
3. **Solve** — steady initialization and every backward-Euler substep run
   one :meth:`~repro.thermal.simulator.ThermalSimulator.\
transient_step_many_from_maps` (or ``steady_state_many_from_maps``) per
   (hardware group, cooling-boundary content) — one factorization and one
   multi-RHS back-substitution for *all* servers sharing an operator,
   whatever rack they sit in.
4. **Finish** — each rack session adopts its row-block view of the group
   array through :meth:`RackSession.finish_advance`, so the rack-level API
   (results, residual tracking, boundary hold policy) is unchanged.

Because SuperLU back-substitutes multi-column right-hand sides column by
column and the lane march is elementwise across servers, stacking across
racks changes *nothing numerically*: a fixed-setpoint floor run is
bit-identical to standalone per-rack traces, which remain the golden
model.  Heterogeneous floors (mixed SKUs/designs) need no fallback — each
hardware group simply stacks fewer rows.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.core.rack_session import (
    RackAdvance,
    RackSession,
    RackSessionSnapshot,
    ServerLoad,
)
from repro.exceptions import ConfigurationError, ValidationError
from repro.obs.telemetry import get_telemetry
from repro.thermal.rom import RomConfig, RomStats, build_reduced_operator
from repro.thermosyphon.loop import BoundaryResult, LoopOperatingPoint

__all__ = ["FloorAdvance", "FloorEngine", "FloorSnapshot", "FloorSpanAdvance"]


@dataclass(frozen=True)
class FloorSnapshot:
    """Frozen copy of the floor's warm state for speculative rollouts.

    Captures the stacked group temperature arrays plus every rack session's
    :class:`RackSessionSnapshot` (held boundaries, residual history) and
    whether each session's field was a row-block view of its group array —
    :meth:`FloorEngine.restore` re-establishes exactly that view
    relationship, so a restored floor is *warm*: the next advance carries
    fields instead of re-solving steady state, and every cached
    factorization and memoized operating point survives (they live on the
    shared simulators/engine, not in the snapshot).
    """

    group_fields: tuple[np.ndarray | None, ...]
    rack_snapshots: tuple[RackSessionSnapshot, ...]
    rack_viewed_group: tuple[bool, ...]


@dataclass(frozen=True)
class FloorAdvance:
    """Outcome of one floor-wide control period of physics.

    ``racks[r]`` is rack ``r``'s :class:`RackAdvance`, exactly as the
    per-rack engine would have produced it.  ``worst_period_peak_case_c``
    is the highest within-period case temperature across *every* server on
    the floor, computed vectorized from the stacked group arrays — the
    floor-level predicted-peak input of the supervisory setpoint loop.
    """

    racks: tuple[RackAdvance, ...]
    worst_period_peak_case_c: float

    @property
    def n_racks(self) -> int:
        """Number of racks advanced."""
        return len(self.racks)


@dataclass(frozen=True)
class FloorSpanAdvance:
    """Outcome of one quasi-steady macro-step spanning several periods.

    ``racks[r]`` is rack ``r``'s :class:`RackAdvance` *for the final
    control period of the span* (the one the controller's decision rule
    evaluates).  ``period_case_c[r]`` / ``period_peak_case_c[r]`` are
    ``(span, n_servers)`` arrays of per-period-end case temperatures and
    within-period peaks, reconstructed from the reduced-order readout (ROM
    rows), the full substep march (fallback rows) or endpoint
    interpolation (macro rows) — the per-period observability that lets a
    coarse trace keep the fine lane's record shape.
    ``period_worst_peak_c[j]`` is the floor-wide worst within-period peak
    of period ``j``.
    """

    racks: tuple[RackAdvance, ...]
    span: int
    period_case_c: tuple[np.ndarray, ...]
    period_peak_case_c: tuple[np.ndarray, ...]
    period_worst_peak_c: np.ndarray

    @property
    def worst_period_peak_case_c(self) -> float:
        """Highest within-span peak case temperature across the floor."""
        return float(self.period_worst_peak_c.max())

    @property
    def n_racks(self) -> int:
        """Number of racks advanced."""
        return len(self.racks)


class _HardwareGroup:
    """One stack of racks sharing a thermal network (and its cache)."""

    def __init__(
        self, index: int, rack_indices: list[int], sessions: Sequence[RackSession]
    ):
        # Stable position in the floor's group list — the ``group=`` span
        # attribute, so traces attribute work to groups across threads.
        self.index = index
        self.rack_indices = rack_indices
        self.simulator = sessions[rack_indices[0]].thermal_simulator
        self.case_cell_index = sessions[rack_indices[0]].case_cell_index
        self.n_servers = sum(sessions[r].n_servers for r in rack_indices)
        # Contiguous row blocks, one per rack, in rack order.
        self.rack_rows: dict[int, slice] = {}
        offset = 0
        for r in rack_indices:
            self.rack_rows[r] = slice(offset, offset + sessions[r].n_servers)
            offset += sessions[r].n_servers
        self.fields: np.ndarray | None = None


class FloorEngine:
    """Advances every rack on the floor through stacked group solves.

    Parameters
    ----------
    rack_sessions:
        One :class:`RackSession` per rack.  Sessions sharing a thermal
        simulator form one hardware group and stack their state; sessions
        with distinct simulators (mixed SKUs) form separate groups — the
        engine handles any mix, there is no homogeneous-only fast path to
        fall back from.
    parallel_groups:
        Worker-thread budget for advancing hardware groups concurrently.
        ``0`` (the default) and ``1`` run the serial loop; ``>= 2`` fans
        the per-group solves of :meth:`advance` / :meth:`advance_span`
        over a persistent thread pool.  Every hardware group owns a
        disjoint slice of floor state (its own simulator, factorization
        cache, stacked field array and rack sessions), and the SuperLU
        back-substitutions that dominate a group's step release the GIL,
        so mixed-SKU floors overlap their groups' solves on real cores.
        Results are **bit-identical** to the serial loop: workers never
        share mutable state, and all commits that have an order (RomStats
        merging, worst-peak reduction) happen on the calling thread in
        group-index order after the join.
    """

    def __init__(
        self, rack_sessions: Sequence[RackSession], *, parallel_groups: int = 0
    ) -> None:
        self.rack_sessions = list(rack_sessions)
        if not self.rack_sessions:
            raise ConfigurationError("a floor engine needs at least one rack session")
        by_simulator: dict[int, list[int]] = {}
        for r, session in enumerate(self.rack_sessions):
            by_simulator.setdefault(id(session.thermal_simulator), []).append(r)
        self._groups = [
            _HardwareGroup(index, rack_indices, self.rack_sessions)
            for index, rack_indices in enumerate(by_simulator.values())
        ]
        self._group_of_rack: dict[int, _HardwareGroup] = {}
        for group in self._groups:
            for r in group.rack_indices:
                self._group_of_rack[r] = group
        # Floor-lifetime operating-point memo: the loop convergence is a
        # deterministic pure function of (design, water condition, total
        # power), so a key converged during an MPC rollout is free when the
        # committed trajectory replays it — and vice versa.  Insertion-order
        # eviction bounds it on long traces with ever-fresh loads.
        self._point_memo: dict[tuple, LoopOperatingPoint] = {}
        self._point_memo_max_entries = 4096
        # Reduced-order lane (repro.thermal.rom): set ``rom_config`` to a
        # RomConfig to let :meth:`advance_span` step quasi-steady spans in a
        # Krylov subspace; leave None for pure macro-step coarsening.
        # ``rom_stats`` accumulates the lane's decisions for the floor's
        # lifetime — trace engines report deltas.
        self.rom_config: RomConfig | None = None
        self.rom_stats = RomStats()
        if parallel_groups < 0:
            raise ConfigurationError(
                f"parallel_groups must be >= 0, got {parallel_groups}"
            )
        self.parallel_groups = parallel_groups
        self._executor: ThreadPoolExecutor | None = None

    # ------------------------------------------------------------------ #
    # Thread-parallel group dispatch
    # ------------------------------------------------------------------ #
    def _map_groups(self, worker: Callable[[_HardwareGroup], object]) -> list:
        """Run ``worker`` once per hardware group, results in group order.

        The threaded path only changes *where* each group's solves run;
        workers write exclusively to their group's disjoint state (plus
        disjoint indices of caller-owned result lists, which is safe under
        the GIL), and the returned list is always in group-index order so
        every order-sensitive commit on the caller side is deterministic
        regardless of completion order.
        """
        if self.parallel_groups >= 2 and len(self._groups) >= 2:
            obs = get_telemetry()
            if obs.enabled:
                # Thread-pool queue latency: time from submission to the
                # moment a worker actually picks the group up.  Observation
                # only — the map result order is unchanged.
                submit_ns = time.perf_counter_ns()

                def timed_worker(group: _HardwareGroup) -> object:
                    obs.observe(
                        "floor.queue_latency_us",
                        (time.perf_counter_ns() - submit_ns) / 1_000.0,
                    )
                    return worker(group)

                return list(self._ensure_executor().map(timed_worker, self._groups))
            return list(self._ensure_executor().map(worker, self._groups))
        return [worker(group) for group in self._groups]

    def _ensure_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=min(self.parallel_groups, len(self._groups)),
                thread_name_prefix="floor-group",
            )
        return self._executor

    def close(self) -> None:
        """Shut down the worker pool (idempotent; serial floors are no-ops)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def n_racks(self) -> int:
        """Number of racks on the floor."""
        return len(self.rack_sessions)

    @property
    def n_servers(self) -> int:
        """Total number of servers across the floor."""
        return sum(session.n_servers for session in self.rack_sessions)

    @property
    def n_hardware_groups(self) -> int:
        """Number of distinct thermal networks (stacked state arrays)."""
        return len(self._groups)

    def boundary_groups(self) -> list[list[tuple[int, int]]]:
        """Current solve partition: ``(rack, server)`` pairs per operator.

        Servers land in the same group when they share both a thermal
        network and a cooling-boundary content
        (:meth:`~repro.thermal.boundary.CoolingBoundary.cache_token`) —
        exactly the servers whose next substep is one stacked solve.  A
        valve action, DVFS move or water-setpoint change re-partitions the
        floor at the next advance.  Servers that have not held a boundary
        yet (before the first advance) are omitted.
        """
        partition: dict[tuple, list[tuple[int, int]]] = {}
        for group in self._groups:
            for r in group.rack_indices:
                session = self.rack_sessions[r]
                for s, state in enumerate(session._boundaries):
                    if state is None:
                        continue
                    token = (id(group), state.boundary_result.boundary.cache_token())
                    partition.setdefault(token, []).append((r, s))
        return list(partition.values())

    def reset(self) -> None:
        """Cold-start the floor: group arrays and every rack session."""
        for group in self._groups:
            group.fields = None
        for session in self.rack_sessions:
            session.reset()

    # ------------------------------------------------------------------ #
    # Snapshot / restore for speculative rollouts
    # ------------------------------------------------------------------ #
    def snapshot(self) -> FloorSnapshot:
        """Copy the floor's warm mutable state for a later :meth:`restore`.

        One array copy per hardware group plus each session's (frozen)
        boundary/residual tuples — no simulator, cache or network state is
        copied, which is what keeps an MPC rollout's cost down to the
        back-substitutions the rollout itself performs.
        """
        return FloorSnapshot(
            group_fields=tuple(
                None if group.fields is None else group.fields.copy()
                for group in self._groups
            ),
            rack_snapshots=tuple(
                session.snapshot() for session in self.rack_sessions
            ),
            rack_viewed_group=tuple(
                session.fields is not None
                and self._group_of_rack[r].fields is not None
                and session.fields.base is self._group_of_rack[r].fields
                for r, session in enumerate(self.rack_sessions)
            ),
        )

    def restore(self, snapshot: FloorSnapshot) -> None:
        """Rewind the floor to a :meth:`snapshot`'s state, still warm.

        Group arrays are reinstalled from copies (the snapshot stays valid
        for further restores — one snapshot serves every candidate of an
        MPC planning step) and each rack session is rebound to its
        row-block view when it held one at snapshot time, so the next
        advance passes the warm check and carries fields bit-identically.
        """
        if len(snapshot.rack_snapshots) != self.n_racks:
            raise ValidationError(
                f"snapshot holds {len(snapshot.rack_snapshots)} racks, "
                f"floor has {self.n_racks}"
            )
        if len(snapshot.group_fields) != len(self._groups):
            raise ValidationError(
                f"snapshot holds {len(snapshot.group_fields)} hardware groups, "
                f"floor has {len(self._groups)}"
            )
        for group, saved in zip(self._groups, snapshot.group_fields):
            group.fields = None if saved is None else saved.copy()
        for r, session in enumerate(self.rack_sessions):
            group = self._group_of_rack[r]
            if snapshot.rack_viewed_group[r]:
                session.restore(
                    snapshot.rack_snapshots[r],
                    fields=group.fields[group.rack_rows[r]],
                )
            else:
                session.restore(snapshot.rack_snapshots[r])

    # ------------------------------------------------------------------ #
    # The floor-wide period step
    # ------------------------------------------------------------------ #
    def advance(
        self,
        rack_loads: Sequence[Sequence[ServerLoad]],
        dt_s: float,
        *,
        n_substeps: int = 1,
        force_boundary_refresh: Sequence[bool | Sequence[bool]] | None = None,
    ) -> FloorAdvance:
        """Advance every server on the floor by ``dt_s``.

        ``rack_loads[r]`` is rack ``r``'s per-server loads (as for
        :meth:`RackSession.advance`); ``force_boundary_refresh[r]`` is that
        rack's flag or per-server flags.  Results are bit-identical to
        calling each rack session's own ``advance`` in rack order — the
        stacking only changes how many rows each factorized operator
        back-substitutes at once.
        """
        if n_substeps < 1:
            raise ValueError(f"n_substeps must be >= 1, got {n_substeps}")
        obs = get_telemetry()
        with obs.span("floor.advance", n_substeps=n_substeps):
            loads, breakdowns, power_maps, water_loops, refreshed, boundaries = (
                self._prepare_period(rack_loads, force_boundary_refresh)
            )

            # Stages 3-4 run per hardware group on the stacked arrays —
            # concurrently when ``parallel_groups`` allows, since each
            # group's state is disjoint and its solves release the GIL.
            rack_advances: list[RackAdvance | None] = [None] * self.n_racks

            def run_group(group: _HardwareGroup) -> float:
                with obs.span("floor.advance_group", group=group.index):
                    return self._advance_group(
                        group,
                        loads,
                        breakdowns,
                        power_maps,
                        water_loops,
                        boundaries,
                        refreshed,
                        rack_advances,
                        dt_s,
                        n_substeps,
                    )

            worst_peak = max(self._map_groups(run_group))
            return FloorAdvance(
                racks=tuple(rack_advances),  # type: ignore[arg-type]
                worst_period_peak_case_c=worst_peak,
            )

    # ------------------------------------------------------------------ #
    # Stages 1-2: shared per-period preparation
    # ------------------------------------------------------------------ #
    def _prepare_period(
        self,
        rack_loads: Sequence[Sequence[ServerLoad]],
        force_boundary_refresh: Sequence[bool | Sequence[bool]] | None,
    ):
        """Stage 1 (memoized power) + stage 2 (batched boundary refresh).

        Shared verbatim between :meth:`advance` and :meth:`advance_span`, so
        a coarse span sees exactly the power maps and held boundaries a fine
        period at the same loads would.
        """
        if len(rack_loads) != self.n_racks:
            raise ValidationError(
                f"expected loads for {self.n_racks} racks, got {len(rack_loads)}"
            )
        if force_boundary_refresh is None:
            force_boundary_refresh = [False] * self.n_racks
        elif len(force_boundary_refresh) != self.n_racks:
            raise ValidationError(
                f"expected refresh flags for {self.n_racks} racks, "
                f"got {len(force_boundary_refresh)}"
            )

        # Stage 1: power models, memoized within each hardware group.  The
        # memo key is (benchmark, mapping, activity) identity, so it is only
        # shared between sessions agreeing on power model, mapper
        # orientation and grid — keyed accordingly.
        memos: dict[tuple, dict] = {}
        loads: list[list[ServerLoad]] = []
        breakdowns: list[list] = []
        power_maps: list[np.ndarray] = []
        water_loops: list[list] = []
        refreshed: list[list[bool]] = []
        for r, session in enumerate(self.rack_sessions):
            checked = session._check_loads(rack_loads[r])
            force = session.normalize_force_flags(force_boundary_refresh[r])
            memo = memos.setdefault(
                (
                    id(session.thermal_simulator),
                    id(session.power_model),
                    session.design.orientation,
                ),
                {},
            )
            rack_breakdowns, rack_maps, rack_loops = session._evaluate_power(
                checked, memo=memo
            )
            loads.append(checked)
            breakdowns.append(rack_breakdowns)
            power_maps.append(rack_maps)
            water_loops.append(rack_loops)
            refreshed.append(session.plan_refresh(rack_maps, rack_loops, force))

        self._refresh_boundaries_floor_wide(power_maps, water_loops, refreshed)

        boundaries = [
            [state.boundary_result for state in self.rack_sessions[r].held_boundaries()]
            for r in range(self.n_racks)
        ]
        return loads, breakdowns, power_maps, water_loops, refreshed, boundaries

    # ------------------------------------------------------------------ #
    # Quasi-steady span advance (adaptive control-period coarsening)
    # ------------------------------------------------------------------ #
    def advance_span(
        self,
        rack_loads: Sequence[Sequence[ServerLoad]],
        dt_s: float,
        span: int,
        *,
        n_substeps: int = 1,
        force_boundary_refresh: Sequence[bool | Sequence[bool]] | None = None,
        t_case_max_c: float | None = None,
    ) -> FloorSpanAdvance:
        """Advance every server by ``span`` control periods of ``dt_s`` each.

        The caller (the datacenter session's coarsening planner) guarantees
        the span is quasi-steady: loads are held, no actuator fired last
        period and every settle residual is below tolerance.  Under that
        contract the floor advances the whole span without per-period
        decision evaluation, through one of three lanes per solve group:

        * **ROM lane** (``rom_config`` set): step in the cached Krylov
          subspace at the fine substep size — ``O(k^2)`` per substep plus
          two ``(n, k)`` mat-vecs for the rigorous a-posteriori error
          bound — lifting only the case-cell readout per substep and the
          full field once at span end.
        * **Full fallback lane**: rows whose projection/error bound trips
          or whose lifted case temperature enters the ``t_case_max_c``
          guard band rerun the *entire* span at full fine resolution
          (identical physics to ``span`` calls of :meth:`advance`); the
          :class:`~repro.thermal.rom.RomStats` counters record why.
        * **Macro lane** (``rom_config`` is None): one stacked
          backward-Euler macro-step of ``n_substeps`` substeps at
          ``span * dt_s / n_substeps`` each, with per-period observables
          reconstructed by endpoint interpolation — the pure-coarsening
          mode.

        Requires a warm floor (every session viewing its group array);
        cold starts must go through :meth:`advance` first.
        """
        if span < 1:
            raise ValueError(f"span must be >= 1, got {span}")
        if n_substeps < 1:
            raise ValueError(f"n_substeps must be >= 1, got {n_substeps}")
        obs = get_telemetry()
        with obs.span("floor.advance_span", span=span, n_substeps=n_substeps):
            loads, breakdowns, power_maps, water_loops, refreshed, boundaries = (
                self._prepare_period(rack_loads, force_boundary_refresh)
            )

            # Warm check for every group *before* dispatching workers, so a
            # cold floor raises deterministically (and no worker has started
            # mutating group state when it does).
            for group in self._groups:
                if not self._group_is_warm(group):
                    raise ConfigurationError(
                        "advance_span requires a warm floor; advance at least "
                        "one fine control period first"
                    )

            rack_advances: list[RackAdvance | None] = [None] * self.n_racks
            period_case: list[np.ndarray | None] = [None] * self.n_racks
            period_peak: list[np.ndarray | None] = [None] * self.n_racks

            def run_group(group: _HardwareGroup) -> RomStats:
                # Each worker accumulates ROM decisions on a private scratch
                # counter set; the merge below happens serially in
                # group-index order, keeping ``rom_stats`` deterministic
                # under threads.
                scratch = RomStats()
                with obs.span(
                    "floor.advance_group_span", group=group.index, span=span
                ):
                    self._advance_group_span(
                        group,
                        loads,
                        breakdowns,
                        power_maps,
                        water_loops,
                        boundaries,
                        refreshed,
                        rack_advances,
                        period_case,
                        period_peak,
                        dt_s,
                        span,
                        n_substeps,
                        t_case_max_c,
                        scratch,
                    )
                return scratch

            for scratch in self._map_groups(run_group):
                self.rom_stats.merge(scratch)
                if obs.enabled:
                    # Publish the span's ROM decisions to the hub on the
                    # calling thread, in group-index order — the live
                    # counters behind the fallback-cause report.
                    for name in (
                        "basis_builds",
                        "basis_rebuilds",
                        "fallback_error",
                        "fallback_guard",
                        "fallback_projection",
                    ):
                        value = getattr(scratch, name)
                        if value:
                            prefix = "rom.fallback." if name.startswith("fallback_") else "rom."
                            obs.inc(prefix + name.removeprefix("fallback_"), value)
            period_worst = np.max(
                np.concatenate([peaks for peaks in period_peak], axis=1), axis=1
            )
            return FloorSpanAdvance(
                racks=tuple(rack_advances),  # type: ignore[arg-type]
                span=span,
                period_case_c=tuple(period_case),  # type: ignore[arg-type]
                period_peak_case_c=tuple(period_peak),  # type: ignore[arg-type]
                period_worst_peak_c=period_worst,
            )

    def _group_is_warm(self, group: _HardwareGroup) -> bool:
        """True when every session of the group views the group array."""
        fields = group.fields
        return fields is not None and all(
            self.rack_sessions[r].fields is not None
            and self.rack_sessions[r].fields.base is fields
            for r in group.rack_indices
        )

    # ------------------------------------------------------------------ #
    # Stage 2: floor-wide boundary refresh
    # ------------------------------------------------------------------ #
    def _refresh_boundaries_floor_wide(
        self,
        power_maps: Sequence[np.ndarray],
        water_loops: Sequence[Sequence],
        refreshed: Sequence[Sequence[bool]],
    ) -> None:
        """Converge and march every stale boundary on the floor, batched.

        Identical hardware at the same water condition and heat load
        reaches the same loop operating point, so the condenser iteration
        runs once per distinct (design, water loop, total power) across the
        *whole floor*; the evaporator lane march then runs once per
        operating-point group with the power maps of every member server —
        whatever rack it sits in — stacked into a single call.
        """
        # (design, water loop, total power) -> [(rack, server, total), ...]
        point_members: dict[tuple, list[tuple[int, int, float]]] = {}
        for r, session in enumerate(self.rack_sessions):
            for s in range(session.n_servers):
                if not refreshed[r][s]:
                    continue
                total = float(power_maps[r][s].sum())
                key = (session.design, water_loops[r][s], total)
                point_members.setdefault(key, []).append((r, s, total))
        if not point_members:
            return
        with get_telemetry().span(
            "floor.refresh_boundaries", points=len(point_members)
        ):
            self._converge_and_march_points(point_members, power_maps, water_loops)

    def _converge_and_march_points(
        self,
        point_members: dict[tuple, list[tuple[int, int, float]]],
        power_maps: Sequence[np.ndarray],
        water_loops: Sequence[Sequence],
    ) -> None:

        # One loop convergence per group, then one lane march per group of
        # members sharing the grid pitch (the pitch is fixed per hardware
        # group; designs shared across SKUs march separately per pitch).
        for key, members in point_members.items():
            _, water_loop, total = key
            point: LoopOperatingPoint | None = self._point_memo.get(key)
            if point is None:
                first_session = self.rack_sessions[members[0][0]]
                point = first_session.loop.operating_point(total, water_loop)
                while len(self._point_memo) >= self._point_memo_max_entries:
                    self._point_memo.pop(next(iter(self._point_memo)))
                self._point_memo[key] = point
            by_pitch: dict[tuple, list[tuple[int, int, float]]] = {}
            for r, s, member_total in members:
                pitch = self.rack_sessions[r].thermal_simulator.grid.cell_pitch_mm()
                by_pitch.setdefault(tuple(pitch), []).append((r, s, member_total))
            for pitch_members in by_pitch.values():
                r0 = pitch_members[0][0]
                session0 = self.rack_sessions[r0]
                pitch = session0.thermal_simulator.grid.cell_pitch_mm()
                stacked = np.stack(
                    [power_maps[r][s] for r, s, _ in pitch_members]
                )
                results: list[BoundaryResult] = session0.loop.cooling_boundaries(
                    stacked, pitch, point
                )
                for (r, s, member_total), result in zip(pitch_members, results):
                    self.rack_sessions[r].store_boundary(
                        s, point, result, water_loops[r][s], member_total
                    )

    # ------------------------------------------------------------------ #
    # Stages 3-4: stacked init and substep marching of one hardware group
    # ------------------------------------------------------------------ #
    def _advance_group(
        self,
        group: _HardwareGroup,
        loads: Sequence[Sequence[ServerLoad]],
        breakdowns: Sequence[Sequence],
        power_maps: Sequence[np.ndarray],
        water_loops: Sequence[Sequence],
        boundaries: Sequence[Sequence[BoundaryResult]],
        refreshed: Sequence[Sequence[bool]],
        rack_advances: list[RackAdvance | None],
        dt_s: float,
        n_substeps: int,
    ) -> float:
        simulator = group.simulator
        n_cells = simulator.grid.n_cells

        # Stack this group's power maps and boundaries in rack-row order.
        group_maps = np.concatenate([power_maps[r] for r in group.rack_indices])
        group_boundaries: list[BoundaryResult] = []
        for r in group.rack_indices:
            group_boundaries.extend(boundaries[r])

        # Solve partition: rows sharing a cooling-boundary content advance
        # through one cached factorization per substep.
        token_rows: dict[tuple, list[int]] = {}
        for row, boundary in enumerate(group_boundaries):
            token_rows.setdefault(boundary.boundary.cache_token(), []).append(row)
        row_groups = list(token_rows.values())

        # Steady initialization of any cold rack, batched per operator
        # across the whole group; warm racks keep their carried fields.  A
        # session advanced standalone (or reset) between floor periods no
        # longer views the group array, so its rows are re-seeded from its
        # own state.
        fields = group.fields
        warm = fields is not None and all(
            self.rack_sessions[r].fields is not None
            and self.rack_sessions[r].fields.base is fields
            for r in group.rack_indices
        )
        if not warm:
            fields = np.empty((group.n_servers, n_cells), dtype=float)
            cold_rows: list[int] = []
            for r in group.rack_indices:
                rows = group.rack_rows[r]
                carried = self.rack_sessions[r].fields
                if carried is None:
                    cold_rows.extend(range(rows.start, rows.stop))
                else:
                    fields[rows] = carried
            cold = set(cold_rows)
            for rows in row_groups:
                init_rows = [row for row in rows if row in cold]
                if init_rows:
                    fields[init_rows] = simulator.steady_state_many_from_maps(
                        group_maps[init_rows], group_boundaries[init_rows[0]].boundary
                    )

        sub_dt = dt_s / n_substeps
        residuals = np.zeros(group.n_servers, dtype=float)
        peak_case = np.full(group.n_servers, float("-inf"), dtype=float)
        for _ in range(n_substeps):
            new_fields = np.empty_like(fields)
            for rows in row_groups:
                new_fields[rows] = simulator.transient_step_many_from_maps(
                    fields[rows],
                    group_maps[rows],
                    group_boundaries[rows[0]].boundary,
                    sub_dt,
                )
            residuals = np.max(np.abs(new_fields - fields), axis=1)
            fields = new_fields
            peak_case = np.maximum(peak_case, fields[:, group.case_cell_index])
        group.fields = fields

        # Stage 5: every rack session adopts its row-block view and builds
        # its per-server results — the rack is now a view over floor state.
        for r in group.rack_indices:
            rows = group.rack_rows[r]
            rack_advances[r] = self.rack_sessions[r].finish_advance(
                loads[r],
                breakdowns[r],
                water_loops[r],
                fields[rows],
                residuals[rows],
                peak_case[rows],
                refreshed[r],
                dt_s,
                n_substeps,
            )
        return float(peak_case.max())

    # ------------------------------------------------------------------ #
    # Span marching of one hardware group (coarsening + ROM lanes)
    # ------------------------------------------------------------------ #
    def _advance_group_span(
        self,
        group: _HardwareGroup,
        loads: Sequence[Sequence[ServerLoad]],
        breakdowns: Sequence[Sequence],
        power_maps: Sequence[np.ndarray],
        water_loops: Sequence[Sequence],
        boundaries: Sequence[Sequence[BoundaryResult]],
        refreshed: Sequence[Sequence[bool]],
        rack_advances: list[RackAdvance | None],
        period_case: list[np.ndarray | None],
        period_peak: list[np.ndarray | None],
        dt_s: float,
        span: int,
        n_substeps: int,
        t_case_max_c: float | None,
        stats: RomStats,
    ) -> None:
        simulator = group.simulator

        group_maps = np.concatenate([power_maps[r] for r in group.rack_indices])
        group_boundaries: list[BoundaryResult] = []
        for r in group.rack_indices:
            group_boundaries.extend(boundaries[r])

        token_rows: dict[tuple, list[int]] = {}
        for row, boundary in enumerate(group_boundaries):
            token_rows.setdefault(boundary.boundary.cache_token(), []).append(row)

        # Warmth was verified for every group by :meth:`advance_span`
        # before dispatch.
        fields = group.fields
        sub_dt = dt_s / n_substeps
        rom = self.rom_config if simulator.solver_cache is not None else None
        n = group.n_servers
        new_fields = np.empty_like(fields)
        case_hist = np.empty((span, n), dtype=float)
        peak_hist = np.empty((span, n), dtype=float)
        residuals = np.empty(n, dtype=float)

        obs = get_telemetry()
        for rows in token_rows.values():
            boundary = group_boundaries[rows[0]].boundary
            maps_rows = group_maps[rows]
            state = fields[rows]
            if rom is not None:
                stats.spans += 1
                with obs.span(
                    "rom.march", group=group.index, rows=len(rows)
                ) as march_span:
                    causes_before = (
                        stats.fallback_projection,
                        stats.fallback_error,
                        stats.fallback_guard,
                    )
                    ok, end, cases, peaks, res = self._rom_march(
                        group, boundary, maps_rows, state, sub_dt, span,
                        n_substeps, t_case_max_c, rom, stats,
                    )
                    # The *why* of every row returned to the full solver:
                    # projection drift, error-bound trip, or guard band.
                    march_span.set(
                        fallback_projection=stats.fallback_projection
                        - causes_before[0],
                        fallback_error=stats.fallback_error - causes_before[1],
                        fallback_guard=stats.fallback_guard - causes_before[2],
                    )
                fallback = [row for i, row in enumerate(rows) if not ok[i]]
                kept = np.flatnonzero(ok)
                kept_rows = [rows[i] for i in kept]
                if kept_rows:
                    new_fields[kept_rows] = end[kept]
                    case_hist[:, kept_rows] = cases[:, kept]
                    peak_hist[:, kept_rows] = peaks[:, kept]
                    residuals[kept_rows] = res[kept]
                if fallback:
                    stats.fallback_rows += len(fallback)
                    with obs.span(
                        "rom.full_march", group=group.index, rows=len(fallback)
                    ):
                        f_end, f_cases, f_peaks, f_res = self._full_march(
                            simulator, boundary, group_maps[fallback],
                            fields[fallback], sub_dt, span, n_substeps,
                            group.case_cell_index,
                        )
                    new_fields[fallback] = f_end
                    case_hist[:, fallback] = f_cases
                    peak_hist[:, fallback] = f_peaks
                    residuals[fallback] = f_res
            else:
                with obs.span(
                    "floor.macro_march", group=group.index, rows=len(rows)
                ):
                    end, cases, peaks, res = self._macro_march(
                        simulator, boundary, maps_rows, state, dt_s, span,
                        n_substeps, group.case_cell_index,
                    )
                new_fields[rows] = end
                case_hist[:, rows] = cases
                peak_hist[:, rows] = peaks
                residuals[rows] = res

        group.fields = new_fields

        for r in group.rack_indices:
            rows = group.rack_rows[r]
            rack_advances[r] = self.rack_sessions[r].finish_advance(
                loads[r],
                breakdowns[r],
                water_loops[r],
                new_fields[rows],
                residuals[rows],
                peak_hist[-1, rows],
                refreshed[r],
                dt_s,
                n_substeps,
            )
            period_case[r] = case_hist[:, rows]
            period_peak[r] = peak_hist[:, rows]

    def _rom_march(
        self,
        group: _HardwareGroup,
        boundary,
        power_maps_rows: np.ndarray,
        state: np.ndarray,
        sub_dt: float,
        span: int,
        n_substeps: int,
        t_case_max_c: float | None,
        config: RomConfig,
        stats: RomStats,
    ):
        """March one solve group through the reduced space.

        Returns ``(ok, end_fields, case_hist, peak_hist, residuals)``;
        entries of rows with ``ok[i]`` False are unspecified — those rows
        rerun through :meth:`_full_march`.  Fallback causes are counted on
        ``stats`` (a row can trip both the error and guard tests) — the
        caller's scratch counters under thread-parallel dispatch.
        """
        simulator = group.simulator
        cache = simulator.solver_cache
        network = simulator.network
        m = state.shape[0]
        power_vecs = network.power_vectors(power_maps_rows)
        obs = get_telemetry()

        op = cache.reduced_operator(boundary, sub_dt, config)
        if op is None:
            with obs.span("rom.build_basis", group=group.index, rebuild=False):
                op = build_reduced_operator(
                    network, cache, boundary, sub_dt, state, power_vecs,
                    group.case_cell_index, config,
                )
            cache.store_reduced_operator(boundary, sub_dt, op, config)
            stats.basis_builds += 1
            coords, entry_error = op.project(state)
        else:
            coords, entry_error = op.project(state)
            if bool(np.any(entry_error > config.projection_tol_c)):
                # The floor drifted out of the cached basis's span: rebuild
                # once from the current states (folding the stale basis back
                # in, so recurring boundaries accrete their whole operating
                # envelope), then give up per-row.
                with obs.span("rom.build_basis", group=group.index, rebuild=True):
                    op = build_reduced_operator(
                        network, cache, boundary, sub_dt, state, power_vecs,
                        group.case_cell_index, config, previous_basis=op.basis,
                    )
                cache.store_reduced_operator(boundary, sub_dt, op, config)
                stats.basis_rebuilds += 1
                coords, entry_error = op.project(state)
        ok = entry_error <= config.projection_tol_c
        stats.fallback_projection += int(np.sum(~ok))

        full_rhs = op.boundary_rhs[np.newaxis, :] + power_vecs
        reduced_rhs = op.reduce_rhs(power_vecs)
        affine = op.affine_term(reduced_rhs)
        step_matrix = op.step_matrix
        case_readout = op.basis[op.case_cell_index]
        total_substeps = span * n_substeps
        sampled_bound = np.zeros(m, dtype=float)
        case_hist = np.empty((span, m), dtype=float)
        peak_hist = np.empty((span, m), dtype=float)
        previous_end = coords
        step_index = 0
        for j in range(span):
            if j == span - 1:
                previous_end = coords.copy()
            peak = np.full(m, float("-inf"))
            for _ in range(n_substeps):
                new_coords = step_matrix @ coords + affine
                if step_index in (0, total_substeps // 2, total_substeps - 1):
                    # Power is held across the span, so the residual varies
                    # smoothly along it: sampling the full-space bound at the
                    # first, middle and last substep keeps every other step
                    # free of O(n) work (the whole point of the reduced lane).
                    np.maximum(
                        sampled_bound,
                        op.step_error_bound(new_coords, coords, full_rhs),
                        out=sampled_bound,
                    )
                coords = new_coords
                step_index += 1
                case = case_readout @ coords
                np.maximum(peak, case, out=peak)
            case_hist[j] = case
            peak_hist[j] = peak
        error = entry_error + sampled_bound * total_substeps
        error_fail = error > config.step_error_tol_c
        guard_fail = np.zeros(m, dtype=bool)
        if t_case_max_c is not None:
            # Error-inflated proximity test: the ROM never arbitrates a
            # constraint decision.
            guard_fail = (
                np.max(peak_hist, axis=0) + error
                >= t_case_max_c - config.guard_band_c
            )
        stats.fallback_error += int(np.sum(error_fail & ok))
        stats.fallback_guard += int(np.sum(guard_fail & ok))
        ok &= ~(error_fail | guard_fail)
        n_ok = int(np.sum(ok))
        stats.rom_rows += n_ok
        stats.rom_periods += n_ok * span

        end_fields = op.lift(coords)
        residuals = np.max(np.abs(op.lift(coords - previous_end)), axis=1)
        return ok, end_fields, case_hist, peak_hist, residuals

    def _full_march(
        self,
        simulator,
        boundary,
        maps_rows: np.ndarray,
        state: np.ndarray,
        sub_dt: float,
        span: int,
        n_substeps: int,
        case_cell_index: int,
    ):
        """Full-resolution fallback: the fine lane's physics for a span.

        Identical solves to ``span`` consecutive :meth:`advance` calls at
        held loads (same operator, same substep size), so rows that fall
        back lose nothing to the coarse lane.
        """
        m = state.shape[0]
        case_hist = np.empty((span, m), dtype=float)
        peak_hist = np.empty((span, m), dtype=float)
        residual = np.zeros(m, dtype=float)
        for j in range(span):
            peak = np.full(m, float("-inf"))
            for _ in range(n_substeps):
                new_state = simulator.transient_step_many_from_maps(
                    state, maps_rows, boundary, sub_dt
                )
                residual = np.max(np.abs(new_state - state), axis=1)
                state = new_state
                np.maximum(peak, state[:, case_cell_index], out=peak)
            case_hist[j] = state[:, case_cell_index]
            peak_hist[j] = peak
        return state, case_hist, peak_hist, residual

    def _macro_march(
        self,
        simulator,
        boundary,
        maps_rows: np.ndarray,
        state: np.ndarray,
        dt_s: float,
        span: int,
        n_substeps: int,
        case_cell_index: int,
    ):
        """Pure-coarsening lane: one backward-Euler macro-step for the span.

        ``n_substeps`` substeps of ``span * dt_s / n_substeps`` each through
        the cached factorization keyed by that macro substep size (spans are
        dyadic, so the key variety stays within the LRU bound).  Per-period
        case temperatures are endpoint-interpolated — admissible only under
        the caller's quasi-steady contract — and the per-period residual
        estimate conservatively divides the span's total movement by
        ``span`` (not ``span * n_substeps``), so the planner reads a
        *larger* residual than the fine lane would and drops back sooner.
        """
        entry_case = state[:, case_cell_index].copy()
        macro_sub_dt = span * dt_s / n_substeps
        total_move = np.zeros(state.shape[0], dtype=float)
        for _ in range(n_substeps):
            new_state = simulator.transient_step_many_from_maps(
                state, maps_rows, boundary, macro_sub_dt
            )
            total_move = np.maximum(
                total_move, np.max(np.abs(new_state - state), axis=1)
            )
            state = new_state
        end_case = state[:, case_cell_index]
        fractions = (np.arange(1, span + 1, dtype=float) / span)[:, np.newaxis]
        case_hist = entry_case[np.newaxis, :] + fractions * (
            end_case - entry_case
        )[np.newaxis, :]
        starts = np.vstack([entry_case[np.newaxis, :], case_hist[:-1]])
        peak_hist = np.maximum(case_hist, starts)
        residuals = total_move / span
        return state, case_hist, peak_hist, residuals
