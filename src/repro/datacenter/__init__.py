"""Datacenter layer: racks behind one chiller plant, two control loops.

The top of the scaling ladder this repository climbs (server -> rack ->
datacenter).  A floor of racks shares one chiller plant
(:class:`~repro.thermosyphon.chiller.ChillerPlant`) whose water supply
temperature is the *slow* actuator: the
:class:`~repro.datacenter.supervisory.SupervisoryController` raises it to
save plant electrical power while every server's predicted peak case
temperature clears ``T_CASE_MAX``, and drops it the moment any server
enters the violation band — layered on top of the paper's *fast*
per-server valve/DVFS rule.  The scenario engine
(:mod:`repro.datacenter.scenarios`) generates seeded, replayable
floor-wide load shapes (diurnal, flash crowd, rolling batch, mixed) from
the existing PARSEC phase traces.
"""

from repro.datacenter.model import (
    DatacenterModel,
    DatacenterPeriod,
    DatacenterSession,
    DatacenterTrace,
    RackSpec,
)
from repro.datacenter.scenarios import (
    DEFAULT_BENCHMARKS,
    SCENARIO_KINDS,
    DatacenterScenario,
    build_scenario,
    modulate_trace,
)
from repro.datacenter.supervisory import (
    SupervisoryAction,
    SupervisoryController,
    SupervisoryDecision,
)

__all__ = [
    "DatacenterModel",
    "DatacenterPeriod",
    "DatacenterSession",
    "DatacenterTrace",
    "RackSpec",
    "DatacenterScenario",
    "DEFAULT_BENCHMARKS",
    "SCENARIO_KINDS",
    "build_scenario",
    "modulate_trace",
    "SupervisoryAction",
    "SupervisoryController",
    "SupervisoryDecision",
]
