"""Datacenter layer: a floor of racks advanced through stacked group solves.

The top of the scaling ladder this repository climbs (server -> rack ->
datacenter).  A floor of racks — homogeneous or **mixed-SKU**, each
:class:`~repro.datacenter.model.RackSpec` optionally carrying its own
floorplan, thermosyphon design and power model — shares one chiller plant
(:class:`~repro.thermosyphon.chiller.ChillerPlant`) whose water supply
temperature is the *slow* actuator: the
:class:`~repro.datacenter.supervisory.SupervisoryController` raises it to
save plant electrical power while every server's predicted peak case
temperature clears ``T_CASE_MAX``, and drops it the moment any server
enters the violation band — layered on top of the paper's *fast*
per-server valve/DVFS rule.  The
:class:`~repro.datacenter.supervisory.MpcSupervisoryController` replaces
the reactive bound with receding-horizon rollouts through the real engine
(:mod:`repro.datacenter.mpc`) — snapshot the warm floor, simulate a small
family of candidate setpoint trajectories, commit the first step of the
cheapest one predicted to keep every server under the guard margin — and
a staged :class:`~repro.thermosyphon.chiller.ChillerBank` gives the plant
unit-commitment degrees of freedom on top of the setpoint.

The physics of every control period belongs to the
:class:`~repro.datacenter.floor.FloorEngine`: servers across the whole
floor are grouped by hardware (one
:class:`~repro.thermal.simulator.ThermalSimulator` per distinct
floorplan) and by cooling-boundary content, and each group advances
through **one** stacked multi-RHS back-substitution per substep and one
evaporator lane march per water-condition group — rack sessions become
row-block views over the floor's group arrays.  A homogeneous N-rack
floor therefore costs roughly one rack's factorizations and solves, and
a heterogeneous floor simply stacks fewer rows per group; both stay
bit-identical to standalone per-rack traces because batching never
changes the arithmetic.  The scenario engine
(:mod:`repro.datacenter.scenarios`) generates seeded, replayable
floor-wide load shapes (diurnal, flash crowd, rolling batch, mixed) from
the existing PARSEC phase traces, optionally cycling several thermosyphon
designs across racks for mixed-SKU floors.
"""

from repro.datacenter.floor import FloorAdvance, FloorEngine, FloorSnapshot
from repro.datacenter.model import (
    DatacenterModel,
    DatacenterPeriod,
    DatacenterSession,
    DatacenterSnapshot,
    DatacenterTrace,
    RackSpec,
)
from repro.datacenter.mpc import (
    CandidateTrajectory,
    MpcPlan,
    RolloutResult,
    default_candidates,
    plan_setpoint,
    rollout_trajectory,
)
from repro.datacenter.scenarios import (
    DEFAULT_BENCHMARKS,
    SCENARIO_KINDS,
    DatacenterScenario,
    build_scenario,
    modulate_trace,
)
from repro.datacenter.supervisory import (
    MpcSupervisoryController,
    SupervisoryAction,
    SupervisoryController,
    SupervisoryDecision,
)

__all__ = [
    "DatacenterModel",
    "DatacenterPeriod",
    "DatacenterSession",
    "DatacenterSnapshot",
    "DatacenterTrace",
    "FloorAdvance",
    "FloorEngine",
    "FloorSnapshot",
    "RackSpec",
    "DatacenterScenario",
    "DEFAULT_BENCHMARKS",
    "SCENARIO_KINDS",
    "build_scenario",
    "modulate_trace",
    "CandidateTrajectory",
    "MpcPlan",
    "MpcSupervisoryController",
    "RolloutResult",
    "SupervisoryAction",
    "SupervisoryController",
    "SupervisoryDecision",
    "default_candidates",
    "plan_setpoint",
    "rollout_trajectory",
]
