"""Floor-wide span lattice: one planner for the dyadic macro-span.

PR 8's coarsening planner re-derived the next scenario-envelope event on
every plan call by asking **every server's trace** for its
:meth:`~repro.workloads.trace.PhasedTrace.next_phase_change_after` — an
``O(n_servers)`` Python loop per control step that survives even when the
floor spends the whole run in macro-spans.  :class:`SpanPlanner` hoists
that work to construction time: the phase boundaries of every distinct
trace on the floor are merged once into a single sorted **event lattice**,
and each plan call finds the next floor-wide event with one
``np.searchsorted``.

The planner owns only the *geometry* of a span — where the next envelope
event, supervisory window boundary and run end sit, and the dyadic
quantization between ``min_span`` and ``max_span``.  Physics eligibility
(quasi-steady residuals, actuator quiescence, constraint guards) stays
with the session, which consults the planner only after every trigger is
clear.

Bit-identity
------------
Both reductions are exact, not approximate:

* ``next_event_after`` returns the smallest lattice element strictly
  greater than ``time_s``.  Each trace's ``next_phase_change_after`` is
  the smallest of *its* boundaries strictly greater than ``time_s`` (its
  final boundary — the trace end — is never returned; the active phase
  clamps), so the min over traces is exactly the union lattice's answer.
* :meth:`plan` counts the horizon by replaying the run loop's own float
  time accumulation (``stamp += control_period_s`` from the current
  stamp), so the span can neither overshoot the ``while`` condition nor
  sample a new envelope phase mid-span — the exact loop PR 8's planner
  ran, now bounded by ``max_span`` instead of hiding an ``O(n_servers)``
  event scan behind it.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.workloads.trace import PhasedTrace

__all__ = ["SpanPlanner"]


class SpanPlanner:
    """Plans dyadic macro-spans against a floor-wide event lattice.

    Parameters
    ----------
    traces:
        Every server's :class:`~repro.workloads.trace.PhasedTrace` (any
        iterable; duplicates — servers sharing a trace object — are folded
        by identity before the lattice is built).
    control_period_s:
        The fast loop's period; horizon counting replays the run loop's
        float accumulation at this step.
    min_span, max_span:
        The dyadic quantization band (spans below ``min_span`` collapse to
        fine stepping; the horizon is capped at ``max_span``).
    """

    def __init__(
        self,
        traces: Iterable[PhasedTrace],
        control_period_s: float,
        *,
        min_span: int,
        max_span: int,
    ) -> None:
        self.control_period_s = float(control_period_s)
        self.min_span = int(min_span)
        self.max_span = int(max_span)
        distinct: dict[int, PhasedTrace] = {}
        for trace in traces:
            distinct.setdefault(id(trace), trace)
        boundaries = [
            trace._boundaries[:-1]
            for trace in distinct.values()
            if len(trace._boundaries) > 1
        ]
        if boundaries:
            self._lattice = np.unique(np.concatenate(boundaries))
        else:
            self._lattice = np.empty(0, dtype=float)

    @property
    def n_events(self) -> int:
        """Number of distinct envelope events on the lattice."""
        return int(self._lattice.size)

    def next_event_after(self, time_s: float) -> float:
        """First floor-wide envelope event strictly after ``time_s``.

        Exactly ``min(trace.next_phase_change_after(time_s))`` over every
        trace on the floor, or ``inf`` once every trace is in its final
        (clamped) phase.
        """
        index = int(np.searchsorted(self._lattice, time_s, side="right"))
        if index >= self._lattice.size:
            return float("inf")
        return float(self._lattice[index])

    def plan(
        self,
        time_s: float,
        duration_s: float,
        periods_per_window: int,
        period_index: int,
    ) -> int:
        """The dyadic span the next macro-step may cover, or 1.

        The span never crosses the next envelope event, the current
        supervisory window's boundary (``periods_per_window`` of 0 means
        no supervisory loop) or the run end, and is quantized to the
        largest power of two at most the horizon — dyadic spans keep the
        macro-``dt`` variety within the factorization cache's LRU bound.
        Horizons below ``min_span`` collapse to 1 (fine stepping).
        """
        cap = self.max_span
        if periods_per_window:
            cap = min(cap, periods_per_window - period_index % periods_per_window)
        boundary = self.next_event_after(time_s)
        horizon = 0
        stamp = time_s
        while horizon < cap and stamp < duration_s and stamp < boundary:
            horizon += 1
            stamp += self.control_period_s
        span = 1
        while span * 2 <= horizon:
            span *= 2
        if span < self.min_span:
            return 1
        return span
