"""Datacenter floor: N racks, one shared chiller plant, two control loops.

The top layer of the simulation stack.  A :class:`DatacenterModel` owns a
floor of racks — each rack a set of servers with their own workloads,
mappings, QoS contracts, phased activity traces and (optionally) its own
hardware: a :class:`RackSpec` may carry a per-rack floorplan, thermosyphon
design and power model, so the floor can mix SKUs.  One shared
:class:`~repro.thermosyphon.chiller.ChillerPlant` supplies every rack's
condenser water.  :class:`DatacenterSession` executes the floor over time:

* every control period, the
  :class:`~repro.datacenter.floor.FloorEngine` advances **every server on
  the floor** through stacked per-hardware-group state arrays — one
  :class:`~repro.thermal.simulator.ThermalSimulator` (and factorization
  cache) per distinct floorplan, one multi-RHS back-substitution per
  (hardware group, cooling boundary) per substep, one lane march per
  water-condition group across racks.  Each rack's
  :class:`~repro.core.rack_session.RackSession` becomes a row-block view
  over its group array; ``engine="per-rack"`` keeps the rack-at-a-time
  loop as a reference baseline;
* each server then runs the paper's fast flow-first/DVFS-second rule
  (:class:`~repro.core.runtime_controller.DecisionPolicy` — the exact rule
  :meth:`ThermosyphonController.run_rack_trace` applies, so a fixed-setpoint
  datacenter trace reproduces the standalone rack traces bit for bit);
* a :class:`~repro.datacenter.supervisory.SupervisoryController`, when
  given, closes the slow outer loop on the chiller water supply setpoint,
  reading the floor-level within-period peak straight off the stacked
  group arrays and trading thermal headroom for plant electrical power.

The result is a :class:`DatacenterTrace`: per-rack
:class:`~repro.core.runtime_controller.RackTrace` series, the setpoint
schedule, per-period plant power/energy, the supervisory decision log and
the merged solver-cache statistics of the whole floor.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

from repro.core.mapping import WorkloadMapping
from repro.core.rack_session import RackSession, RackSessionSnapshot
from repro.core.runtime_controller import (
    ControllerAction,
    ControllerDecision,
    DecisionPolicy,
    RackServer,
    RackTrace,
    apply_rack_decisions,
    build_rack_loads,
    mapping_at_frequency,
    run_rack_period,
)
from repro.core.session import T_CASE_MAX_C
from repro.datacenter.floor import FloorEngine, FloorSnapshot
from repro.datacenter.span import SpanPlanner
from repro.thermal.rom import RomConfig, RomStats
from repro.thermal.warm_store import WarmStore
from repro.datacenter.supervisory import (
    SupervisoryAction,
    SupervisoryController,
    SupervisoryDecision,
)
from repro.exceptions import ConfigurationError
from repro.floorplan.floorplan import Floorplan
from repro.obs.telemetry import get_telemetry
from repro.floorplan.xeon_e5_v4 import build_xeon_e5_v4_floorplan
from repro.power.power_model import ServerPowerModel
from repro.thermal.simulator import ThermalSimulator
from repro.thermal.solver_cache import CacheStats
from repro.thermosyphon.chiller import ChillerBank, ChillerPlant, StagingDecision
from repro.thermosyphon.design import PAPER_OPTIMIZED_DESIGN, ThermosyphonDesign
from repro.thermosyphon.water_loop import WaterLoop
from repro.workloads.trace import PhasedTrace
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class RackSpec:
    """One rack of the floor: name, servers, trace and optional hardware.

    ``trace`` is the rack-level fallback activity trace; servers carrying
    their own :attr:`RackServer.trace` follow that instead.  Every server
    must end up with a trace one way or the other.

    ``floorplan``, ``design`` and ``power_model`` override the floor-wide
    hardware substrate for this rack (``None`` inherits the model default).
    Racks naming the same floorplan object share one thermal simulator and
    factorization cache; racks with distinct floorplans form separate
    hardware groups in the floor engine — that is what a mixed-SKU floor
    looks like.
    """

    name: str
    servers: tuple[RackServer, ...]
    trace: PhasedTrace | None = None
    floorplan: Floorplan | None = None
    design: ThermosyphonDesign | None = None
    power_model: ServerPowerModel | None = None

    def __post_init__(self) -> None:
        if not self.servers:
            raise ConfigurationError(f"rack {self.name!r} needs at least one server")

    @property
    def n_servers(self) -> int:
        """Number of servers in this rack."""
        return len(self.servers)

    def server_trace(self, index: int) -> PhasedTrace:
        """The resolved activity trace of server ``index``."""
        server = self.servers[index]
        trace = server.trace if server.trace is not None else self.trace
        if trace is None:
            raise ConfigurationError(
                f"server {index} of rack {self.name!r} has no trace: give the "
                "RackServer its own or set the rack-level fallback"
            )
        return trace


@dataclass(frozen=True)
class CoarseningConfig:
    """Knobs of adaptive control-period coarsening (the million-period lane).

    A span of ``K`` control periods is advanced in one quasi-steady
    macro-step only while, at the last evaluated period, **all** of these
    held: every fast decision was ``NONE`` (no actuator event), every
    settle residual was at most ``quasi_steady_tol_c`` (the signal the
    adaptive boundary-refresh mode already computes), the floor's worst
    within-period peak stayed ``guard_band_c`` below the policy's
    ``t_case_max_c``, no server with an open valve sat within
    ``relax_guard_c`` of the relax (``DECREASE_FLOW``) threshold, no
    boundary refresh was pending, and no scenario-trace phase boundary,
    supervisory window boundary or run end falls inside the span.  Any
    trigger drops the run back to single-period stepping.

    Spans are quantized to powers of two between ``min_span`` and
    ``max_span`` so the macro-step ``dt`` values stay within the
    factorization cache's LRU bound.  ``rom`` configures the reduced-order
    lane the span steps through (:class:`~repro.thermal.rom.RomConfig`);
    ``None`` keeps pure macro-stepping through the full solver.
    """

    min_span: int = 4
    max_span: int = 64
    quasi_steady_tol_c: float = 0.05
    guard_band_c: float = 2.0
    relax_guard_c: float = 0.5
    rom: RomConfig | None = RomConfig()

    def __post_init__(self) -> None:
        if self.min_span < 2:
            raise ConfigurationError(
                f"min_span must be >= 2, got {self.min_span}"
            )
        if self.max_span < self.min_span:
            raise ConfigurationError(
                f"max_span ({self.max_span}) must be >= min_span "
                f"({self.min_span})"
            )
        check_positive(self.quasi_steady_tol_c, "quasi_steady_tol_c")
        check_positive(self.guard_band_c, "guard_band_c")
        check_positive(self.relax_guard_c, "relax_guard_c")


@dataclass
class DatacenterTrace:
    """Everything one datacenter run produced.

    ``racks[r]`` is rack ``r``'s :class:`RackTrace` (per-server decisions
    and per-period rack chiller power at the plant's efficiency for the
    period's setpoint); its per-rack ``factorizations``/``cache_stats`` are
    left ``None`` because the whole floor shares one operator cache —
    the floor-wide counters live on this object instead.
    ``setpoint_c[t]`` and ``plant_power_w[t]`` carry the supply setpoint
    and total plant electrical power of control period ``t``, and
    ``supervisory_decisions`` logs the slow loop (empty on a fixed-setpoint
    run).  On a :class:`~repro.thermosyphon.chiller.ChillerBank` plant,
    ``staging[t]`` records period ``t``'s unit commitment (empty on a
    single-``ChillerPlant`` run).
    """

    rack_names: tuple[str, ...]
    racks: list[RackTrace]
    control_period_s: float
    t_case_max_c: float = T_CASE_MAX_C
    setpoint_c: list[float] = field(default_factory=list)
    plant_power_w: list[float] = field(default_factory=list)
    supervisory_decisions: list[SupervisoryDecision] = field(default_factory=list)
    staging: list[StagingDecision] = field(default_factory=list)
    factorizations: int | None = None
    cache_stats: CacheStats | None = None
    coarse_spans: int = 0
    coarse_periods: int = 0
    rom_stats: RomStats | None = None

    @property
    def n_racks(self) -> int:
        """Number of racks on the floor."""
        return len(self.racks)

    @property
    def n_servers(self) -> int:
        """Total number of servers across all racks."""
        return sum(rack.n_servers for rack in self.racks)

    @property
    def n_periods(self) -> int:
        """Number of executed control periods."""
        return len(self.plant_power_w)

    @property
    def plant_energy_j(self) -> float:
        """Plant electrical energy over the whole trace."""
        return sum(self.plant_power_w) * self.control_period_s

    @property
    def mean_plant_power_w(self) -> float:
        """Average plant electrical power over the trace."""
        if not self.plant_power_w:
            return float("nan")
        return sum(self.plant_power_w) / len(self.plant_power_w)

    @property
    def peak_case_temperature_c(self) -> float:
        """Highest period-end case temperature across the floor."""
        return max(
            (rack.peak_case_temperature_c for rack in self.racks),
            default=float("nan"),
        )

    @property
    def peak_period_case_temperature_c(self) -> float:
        """Highest case temperature including within-period transient peaks."""
        return max(
            (rack.peak_period_case_temperature_c for rack in self.racks),
            default=float("nan"),
        )

    @property
    def thermal_violations(self) -> int:
        """(period, server) pairs whose within-period peak hit ``T_CASE_MAX``.

        Counts against the within-period transient peak — the strictest
        reading of the constraint — falling back to the period-end value
        where no transient diagnostic is present.
        """
        count = 0
        for rack in self.racks:
            for period in rack.periods:
                for decision in period:
                    peak = (
                        decision.period_peak_case_c
                        if decision.period_peak_case_c is not None
                        else decision.case_temperature_c
                    )
                    if peak >= self.t_case_max_c:
                        count += 1
        return count

    @property
    def emergencies(self) -> int:
        """Unresolved thermal emergencies across the whole floor."""
        return sum(rack.emergencies for rack in self.racks)

    @property
    def setpoint_raises(self) -> int:
        """Number of supervisory setpoint raises."""
        return sum(
            1
            for d in self.supervisory_decisions
            if d.action is SupervisoryAction.RAISE_SETPOINT
        )

    @property
    def setpoint_lowers(self) -> int:
        """Number of supervisory setpoint lowers."""
        return sum(
            1
            for d in self.supervisory_decisions
            if d.action is SupervisoryAction.LOWER_SETPOINT
        )

    @property
    def setpoint_saturations(self) -> int:
        """Windows that violated while clamped at the setpoint minimum."""
        return sum(
            1
            for d in self.supervisory_decisions
            if d.action is SupervisoryAction.SATURATED
        )

    @property
    def overloaded_periods(self) -> int:
        """Periods the chiller bank ran beyond its available rated capacity."""
        return sum(1 for s in self.staging if s.overloaded)

    def summary(self) -> str:
        """Human-readable digest of the datacenter trace."""
        lines = [
            f"datacenter trace ({self.n_racks} racks / {self.n_servers} servers, "
            f"{self.n_periods} periods)",
            f"  setpoint schedule     : {self.setpoint_c[0]:.1f} C -> "
            f"{self.setpoint_c[-1]:.1f} C "
            f"({self.setpoint_raises} raises, {self.setpoint_lowers} lowers)"
            if self.setpoint_c
            else "  setpoint schedule     : (empty)",
            f"  plant energy          : {self.plant_energy_j / 1e3:.1f} kJ "
            f"(mean {self.mean_plant_power_w:.1f} W)",
            f"  peak case temperature : {self.peak_case_temperature_c:.1f} C "
            f"(within-period {self.peak_period_case_temperature_c:.1f} C)",
            f"  thermal violations    : {self.thermal_violations}",
            f"  unresolved emergencies: {self.emergencies}",
        ]
        if self.supervisory_decisions:
            lines.append(
                f"  setpoint saturations  : {self.setpoint_saturations} "
                f"(violation while clamped at the setpoint minimum)"
            )
        if self.staging:
            units_on = [s.n_units_on for s in self.staging]
            lines.append(
                f"  chiller staging       : {min(units_on)}-{max(units_on)} "
                f"units on, {self.overloaded_periods} overloaded periods"
            )
        if self.coarse_spans:
            lines.append(
                f"  coarse spans          : {self.coarse_spans} "
                f"({self.coarse_periods}/{self.n_periods} periods coarsened)"
            )
        if self.rom_stats is not None and self.rom_stats.spans:
            lines.append(
                f"  reduced-order lane    : {self.rom_stats.rom_periods} "
                f"periods in reduced space, {self.rom_stats.fallbacks} "
                f"row fallbacks, {self.rom_stats.basis_builds} basis builds"
            )
        if self.factorizations is not None:
            lines.append(f"  operator factorizations: {self.factorizations}")
        if self.cache_stats is not None:
            lines.append(
                f"  solver cache hit rate  : {self.cache_stats.hit_rate:.1%} "
                f"({self.cache_stats.hits} hits / {self.cache_stats.misses} misses)"
            )
        obs = get_telemetry()
        if obs.enabled:
            # Compact telemetry footer (spans, fallback causes, cache hit
            # rate) — counter-derived only, never wall-clock, so summaries
            # stay reproducible across machines.
            footer = obs.footer()
            if footer:
                lines.append(f"  telemetry             : {footer}")
        return "\n".join(lines)


@dataclass(frozen=True)
class DatacenterPeriod:
    """Outcome of one floor-wide control period (step-wise API).

    On a :class:`~repro.thermosyphon.chiller.ChillerBank` plant,
    ``staging`` records the period's unit commitment and
    ``rack_chiller_power_w`` carries each rack's *prorated share* of the
    bank's electrical power (prorated by the rack's thermal load), so
    ``plant_power_w == sum(rack_chiller_power_w)`` holds for both plant
    kinds.  ``staging`` is ``None`` on a single-``ChillerPlant`` floor.
    """

    time_s: float
    setpoint_c: float
    rack_decisions: tuple[tuple[ControllerDecision, ...], ...]
    rack_chiller_power_w: tuple[float, ...]
    worst_period_peak_case_c: float
    staging: StagingDecision | None = None

    @property
    def plant_power_w(self) -> float:
        """Total plant electrical power this period."""
        return sum(self.rack_chiller_power_w)


@dataclass(frozen=True)
class DatacenterSnapshot:
    """Frozen copy of a :class:`DatacenterSession`'s mutable state.

    Everything :meth:`DatacenterSession.advance_period` evolves: the
    setpoint, the per-server actuator state (water loops, frequencies,
    resolved mappings, pending refresh flags) and the floor physics state
    (one :class:`~repro.datacenter.floor.FloorSnapshot`, or per-rack
    :class:`~repro.core.rack_session.RackSessionSnapshot` tuples on the
    per-rack engine).  The MPC planner takes one snapshot per supervisory
    decision and restores it after every candidate rollout.
    """

    setpoint_c: float
    water_loops: tuple[tuple[WaterLoop, ...], ...]
    frequencies: tuple[tuple[float, ...], ...]
    mappings: tuple[tuple[WorkloadMapping, ...], ...]
    force_refresh: tuple[tuple[bool, ...], ...]
    floor: FloorSnapshot | None
    rack_snapshots: tuple[RackSessionSnapshot, ...] | None
    # Coarsening-eligibility signals of the last committed period, restored
    # so MPC rollouts (which mutate the setpoint mid-plan) leave the
    # committed trace's span pattern untouched.
    coarse_state: tuple | None = None


class DatacenterModel:
    """A floor of racks behind one shared chiller plant.

    Parameters
    ----------
    racks:
        The floor layout: one :class:`RackSpec` per rack.
    plant:
        The shared :class:`ChillerPlant`; its COP/free-cooling laws make
        the supply setpoint an energy lever.  A
        :class:`~repro.thermosyphon.chiller.ChillerBank` adds unit
        staging: per-server loads are accounted thermally (Eq. 1 at unit
        COP) and the bank commits the cheapest feasible unit subset to
        the floor total every period.
    floorplan, design, power_model, thermal_simulator, cell_size_mm:
        The *default* hardware substrate — racks whose :class:`RackSpec`
        does not override it share this floorplan, design, power model and
        thermal simulator (and therefore one factorization cache).  Racks
        carrying their own floorplan get one simulator per distinct
        floorplan, built at the default simulator's cell size.
    engine:
        ``"floor"`` (default) advances the whole floor through the stacked
        :class:`~repro.datacenter.floor.FloorEngine`; ``"per-rack"`` keeps
        the rack-at-a-time loop of the earlier datacenter layer as a
        reference baseline.  Both are bit-identical — the floor engine
        only changes how many rows each factorized operator
        back-substitutes at once.
    control_period_s, transient_substeps:
        The fast loop's period and backward-Euler substeps, as in
        :meth:`ThermosyphonController.run_rack_trace`.
    policy:
        The per-server fast decision rule (valve first, DVFS second).
    supply_setpoint_c:
        Initial chiller water supply temperature (default: the design's
        nominal water inlet).
    boundary_refresh_tol, adaptive_boundary_refresh:
        Optional cooling-boundary refresh-policy overrides pushed onto
        every rack session (``None`` keeps the session defaults).
    coarsening:
        A :class:`CoarseningConfig` enables adaptive control-period
        coarsening (floor engine only): quasi-steady stretches advance in
        dyadic multi-period macro-steps — through the reduced-order
        Krylov lane when the config carries a
        :class:`~repro.thermal.rom.RomConfig` — and any actuator event,
        residual growth, envelope step or constraint proximity drops back
        to single-period stepping.  ``None`` (default) keeps every period
        at full resolution.
    parallel_groups:
        Worker-thread budget handed to the
        :class:`~repro.datacenter.floor.FloorEngine`: ``>= 2`` advances
        the floor's hardware groups concurrently (mixed-SKU floors
        overlap their stacked solves on real cores — the SuperLU
        back-substitutions release the GIL); ``0`` (default) and ``1``
        keep the serial loop.  Results are bit-identical either way.
    warm_store:
        A :class:`~repro.thermal.warm_store.WarmStore` (or a directory
        path for one) attached to every hardware group's factorization
        cache, so reduced-order bases and assembled operator systems
        persist across runs — run ``N+1`` of the same floor skips every
        Arnoldi build and operator assembly while staying bit-identical
        to the cold run.  ``None`` (default) consults the
        ``REPRO_WARM_STORE`` environment variable for a directory path
        and runs fully cold when that is unset too.
    """

    def __init__(
        self,
        racks,
        *,
        plant: ChillerPlant | ChillerBank | None = None,
        floorplan: Floorplan | None = None,
        design: ThermosyphonDesign = PAPER_OPTIMIZED_DESIGN,
        power_model: ServerPowerModel | None = None,
        thermal_simulator: ThermalSimulator | None = None,
        cell_size_mm: float = 1.0,
        engine: str = "floor",
        control_period_s: float = 2.0,
        transient_substeps: int = 4,
        policy: DecisionPolicy | None = None,
        supply_setpoint_c: float | None = None,
        boundary_refresh_tol: float | None = None,
        adaptive_boundary_refresh: bool | None = None,
        coarsening: CoarseningConfig | None = None,
        parallel_groups: int = 0,
        warm_store: WarmStore | str | os.PathLike | None = None,
    ) -> None:
        self.racks = tuple(racks)
        if not self.racks:
            raise ConfigurationError("a datacenter needs at least one rack")
        for rack in self.racks:
            for index in range(rack.n_servers):
                rack.server_trace(index)  # raises when a server has no trace
        self.plant = plant if plant is not None else ChillerPlant()
        self.floorplan = floorplan if floorplan is not None else build_xeon_e5_v4_floorplan()
        self.design = design
        self.power_model = (
            power_model if power_model is not None else ServerPowerModel(self.floorplan)
        )
        self.thermal_simulator = (
            thermal_simulator
            if thermal_simulator is not None
            else ThermalSimulator(self.floorplan, cell_size_mm=cell_size_mm)
        )
        if engine not in ("floor", "per-rack"):
            raise ConfigurationError(
                f"engine must be 'floor' or 'per-rack', got {engine!r}"
            )
        self.engine = engine
        # Resolve each rack's hardware once: racks naming the same floorplan
        # object share one simulator (and one power model, unless the spec
        # carries its own) — the floor engine groups stacked state by these
        # simulator identities.
        simulators: dict[int, ThermalSimulator] = {
            id(self.floorplan): self.thermal_simulator
        }
        power_models: dict[int, ServerPowerModel] = {
            id(self.floorplan): self.power_model
        }
        rack_floorplans: list[Floorplan] = []
        rack_designs: list[ThermosyphonDesign] = []
        rack_power_models: list[ServerPowerModel] = []
        rack_simulators: list[ThermalSimulator] = []
        for rack in self.racks:
            rack_floorplan = rack.floorplan if rack.floorplan is not None else self.floorplan
            simulator = simulators.get(id(rack_floorplan))
            if simulator is None:
                simulator = ThermalSimulator(
                    rack_floorplan, cell_size_mm=self.thermal_simulator.cell_size_mm
                )
                simulators[id(rack_floorplan)] = simulator
            if rack.power_model is not None:
                rack_power_model = rack.power_model
            else:
                rack_power_model = power_models.get(id(rack_floorplan))
                if rack_power_model is None:
                    rack_power_model = ServerPowerModel(rack_floorplan)
                    power_models[id(rack_floorplan)] = rack_power_model
            rack_floorplans.append(rack_floorplan)
            rack_designs.append(rack.design if rack.design is not None else self.design)
            rack_power_models.append(rack_power_model)
            rack_simulators.append(simulator)
        self.rack_floorplans = tuple(rack_floorplans)
        self.rack_designs = tuple(rack_designs)
        self.rack_power_models = tuple(rack_power_models)
        self.rack_simulators = tuple(rack_simulators)
        self.control_period_s = check_positive(control_period_s, "control_period_s")
        if transient_substeps < 1:
            raise ConfigurationError(
                f"transient_substeps must be >= 1, got {transient_substeps}"
            )
        self.transient_substeps = int(transient_substeps)
        self.policy = policy if policy is not None else DecisionPolicy()
        self.supply_setpoint_c = (
            supply_setpoint_c
            if supply_setpoint_c is not None
            else design.water_inlet_temperature_c
        )
        self.boundary_refresh_tol = boundary_refresh_tol
        self.adaptive_boundary_refresh = adaptive_boundary_refresh
        if coarsening is not None and engine != "floor":
            raise ConfigurationError(
                "control-period coarsening requires the floor engine"
            )
        self.coarsening = coarsening
        if parallel_groups < 0:
            raise ConfigurationError(
                f"parallel_groups must be >= 0, got {parallel_groups}"
            )
        self.parallel_groups = int(parallel_groups)
        if warm_store is None:
            env_path = os.environ.get("REPRO_WARM_STORE")
            if env_path:
                warm_store = env_path
        if warm_store is not None and not isinstance(warm_store, WarmStore):
            warm_store = WarmStore(warm_store)
        self.warm_store = warm_store
        if self.warm_store is not None:
            for simulator in simulators.values():
                if simulator.solver_cache is not None:
                    simulator.solver_cache.attach_warm_store(self.warm_store)

    @property
    def n_racks(self) -> int:
        """Number of racks on the floor."""
        return len(self.racks)

    @property
    def n_servers(self) -> int:
        """Total number of servers across all racks."""
        return sum(rack.n_servers for rack in self.racks)

    @property
    def n_hardware_groups(self) -> int:
        """Distinct thermal networks across the floor (1 when homogeneous)."""
        return len({id(simulator) for simulator in self.rack_simulators})

    @property
    def duration_s(self) -> float:
        """Longest trace duration across the floor."""
        return max(
            rack.server_trace(index).duration_s
            for rack in self.racks
            for index in range(rack.n_servers)
        )

    def session(self, *, setpoint_c: float | None = None) -> "DatacenterSession":
        """A fresh execution session over this floor."""
        return DatacenterSession(self, setpoint_c=setpoint_c)

    def run_trace(
        self,
        *,
        supervisory: SupervisoryController | None = None,
        setpoint_c: float | None = None,
        duration_s: float | None = None,
    ) -> DatacenterTrace:
        """Run the whole floor: fixed setpoint, or supervisory outer loop."""
        return self.session(setpoint_c=setpoint_c).run(
            duration_s=duration_s, supervisory=supervisory
        )


class DatacenterSession:
    """Executes a :class:`DatacenterModel` period by period.

    Owns the mutable floor state: one :class:`RackSession` per rack (each
    on its rack's resolved hardware), the :class:`FloorEngine` stacking
    those sessions into per-hardware-group state arrays, the per-server
    actuator settings (water valve and DVFS level) and the current chiller
    supply setpoint.  The per-period logic mirrors
    :meth:`ThermosyphonController.run_rack_trace` operation for operation,
    so a fixed-setpoint datacenter run reproduces standalone rack traces
    exactly; the supervisory loop only ever acts *between* periods by
    re-issuing every server's water loop at a new inlet temperature (the
    rack sessions then refresh their cooling boundaries because the water
    condition changed — the same path a valve action takes).
    """

    def __init__(self, model: DatacenterModel, *, setpoint_c: float | None = None) -> None:
        self.model = model
        self.setpoint_c = (
            setpoint_c if setpoint_c is not None else model.supply_setpoint_c
        )
        self.rack_sessions = [
            RackSession(
                rack.n_servers,
                floorplan=model.rack_floorplans[r],
                design=model.rack_designs[r],
                power_model=model.rack_power_models[r],
                thermal_simulator=model.rack_simulators[r],
            )
            for r, rack in enumerate(model.racks)
        ]
        for session in self.rack_sessions:
            if model.boundary_refresh_tol is not None:
                session.boundary_refresh_tol = model.boundary_refresh_tol
            if model.adaptive_boundary_refresh is not None:
                session.adaptive_boundary_refresh = model.adaptive_boundary_refresh
        self.floor_engine = (
            FloorEngine(self.rack_sessions, parallel_groups=model.parallel_groups)
            if model.engine == "floor"
            else None
        )
        if self.floor_engine is not None and model.coarsening is not None:
            self.floor_engine.rom_config = model.coarsening.rom
        # Eligibility signals of the last committed period, feeding the
        # coarsening planner: (all decisions NONE, worst settle residual,
        # floor worst peak, the decisions themselves).  None = not
        # quasi-steady (cold start, or the setpoint just moved).
        self._coarse_state: tuple | None = None
        self._traces = [
            [rack.server_trace(index) for index in range(rack.n_servers)]
            for rack in model.racks
        ]
        # One floor-wide event lattice for span planning: the per-plan cost
        # becomes a single searchsorted instead of an O(n_servers) scan of
        # every trace's next phase boundary.
        self._span_planner = (
            SpanPlanner(
                (trace for rack_traces in self._traces for trace in rack_traces),
                model.control_period_s,
                min_span=model.coarsening.min_span,
                max_span=model.coarsening.max_span,
            )
            if model.coarsening is not None
            else None
        )
        base_loops = [
            model.rack_designs[r].water_loop().with_inlet_temperature(self.setpoint_c)
            for r in range(model.n_racks)
        ]
        self._water_loops = [
            [base_loops[r]] * rack.n_servers for r, rack in enumerate(model.racks)
        ]
        self._frequencies = [
            [server.mapping.configuration.frequency_ghz for server in rack.servers]
            for rack in model.racks
        ]
        # Identical servers share mapping objects; memoize per (mapping,
        # frequency) so the floor resolves each distinct pair once instead
        # of once per server — here and on every later DVFS rebuild.
        self._mapping_memo: dict = {}
        self._mappings = [
            [
                self._memoized_mapping(
                    server.mapping, server.mapping.configuration.frequency_ghz
                )
                for server in rack.servers
            ]
            for rack in model.racks
        ]
        self._force_refresh = [[False] * rack.n_servers for rack in model.racks]

    def _memoized_mapping(self, mapping, frequency_ghz: float):
        key = (id(mapping), frequency_ghz)
        resolved = self._mapping_memo.get(key)
        if resolved is None:
            resolved = mapping_at_frequency(mapping, frequency_ghz)
            self._mapping_memo[key] = resolved
        return resolved

    def reset(self) -> None:
        """Cold-start the floor (group arrays, fields, held boundaries)."""
        if self.floor_engine is not None:
            self.floor_engine.reset()
        else:
            for session in self.rack_sessions:
                session.reset()
        self._coarse_state = None

    def close(self) -> None:
        """Release the floor engine's worker pool (serial floors: no-op)."""
        if self.floor_engine is not None:
            self.floor_engine.close()

    def snapshot(self) -> DatacenterSnapshot:
        """Copy the session's mutable state for a later :meth:`restore`.

        Cheap by design: the actuator state is a few tuples of frozen
        values and the physics state copies one temperature array per
        hardware group — no simulator, factorization cache or memo is
        duplicated, so a restored session replays through warm caches.
        """
        return DatacenterSnapshot(
            setpoint_c=self.setpoint_c,
            water_loops=tuple(tuple(loops) for loops in self._water_loops),
            frequencies=tuple(tuple(f) for f in self._frequencies),
            mappings=tuple(tuple(m) for m in self._mappings),
            force_refresh=tuple(tuple(f) for f in self._force_refresh),
            floor=self.floor_engine.snapshot() if self.floor_engine is not None else None,
            rack_snapshots=(
                None
                if self.floor_engine is not None
                else tuple(session.snapshot() for session in self.rack_sessions)
            ),
            coarse_state=self._coarse_state,
        )

    def restore(self, snapshot: DatacenterSnapshot) -> None:
        """Rewind the session to a :meth:`snapshot`'s state.

        The snapshot stays valid — one snapshot serves every candidate
        rollout of an MPC planning step.
        """
        self.setpoint_c = snapshot.setpoint_c
        self._water_loops = [list(loops) for loops in snapshot.water_loops]
        self._frequencies = [list(f) for f in snapshot.frequencies]
        self._mappings = [list(m) for m in snapshot.mappings]
        self._force_refresh = [list(f) for f in snapshot.force_refresh]
        self._coarse_state = snapshot.coarse_state
        if snapshot.floor is not None:
            self.floor_engine.restore(snapshot.floor)
        else:
            for session, rack_snapshot in zip(
                self.rack_sessions, snapshot.rack_snapshots
            ):
                session.restore(rack_snapshot)

    def _distinct_caches(self) -> list:
        """The floor's factorization caches, each exactly once.

        Racks sharing a simulator share its cache; heterogeneous floors
        carry one cache per hardware group.  Dedupe by cache identity so
        merged floor-wide stats neither double-count a shared cache nor
        drop a per-SKU one.
        """
        caches: dict[int, object] = {}
        for simulator in self.model.rack_simulators:
            cache = simulator.solver_cache
            if cache is not None:
                caches.setdefault(id(cache), cache)
        return list(caches.values())

    def cache_stats(self) -> CacheStats:
        """Merged counters of every distinct factorization cache on the floor."""
        return sum(
            (cache.stats for cache in self._distinct_caches()), CacheStats.zero()
        )

    def set_setpoint(self, setpoint_c: float) -> None:
        """Move the chiller supply setpoint (the slow actuator).

        Re-issues every server's water loop at the new inlet temperature
        while keeping each server's own valve (flow-rate) state; the rack
        sessions rebuild their cooling boundaries at the next advance
        because the water condition changed.
        """
        if setpoint_c == self.setpoint_c:
            return
        self.setpoint_c = setpoint_c
        self._water_loops = [
            [loop.with_inlet_temperature(setpoint_c) for loop in rack_loops]
            for rack_loops in self._water_loops
        ]
        # The floor's thermal response to the new inlet temperature is a
        # transient: the last period's residuals no longer certify
        # quasi-steadiness, so the next period steps at full resolution.
        self._coarse_state = None

    def advance_period(
        self, time_s: float, *, n_substeps: int | None = None
    ) -> DatacenterPeriod:
        """One floor-wide control period: floor physics + fast decisions.

        Loads are resolved per server through :func:`build_rack_loads` and
        decisions applied through :func:`apply_rack_decisions` — the exact
        stages :meth:`ThermosyphonController.run_rack_trace` composes — so
        fixed-setpoint parity with standalone rack traces holds by
        construction, not by mirrored code.  Between them, the floor engine
        advances every server through one stacked solve per (hardware
        group, cooling boundary) per substep; ``engine="per-rack"`` models
        step their racks one :func:`run_rack_period` at a time instead.

        ``n_substeps`` overrides the model's backward-Euler substep count
        for this period only — MPC rollouts trade integration resolution
        for speed; the committed trace always runs the model's own.
        """
        model = self.model
        substeps = n_substeps if n_substeps is not None else model.transient_substeps
        bank = model.plant if isinstance(model.plant, ChillerBank) else None
        # A staged bank accounts per-server loads *thermally* (Eq. 1 at
        # unit COP — the exact condenser heat rate) and converts the floor
        # total to electrical power through its unit commitment below; a
        # single plant keeps the setpoint-dependent per-rack chiller.
        chiller = (
            bank.accounting_chiller()
            if bank is not None
            else model.plant.chiller_at(self.setpoint_c)
        )
        rack_decisions: list[tuple[ControllerDecision, ...]] = []
        rack_chiller_w: list[float] = []
        worst_peak = float("-inf")
        if self.floor_engine is not None:
            rack_loads = [
                build_rack_loads(
                    rack.servers,
                    self._traces[r],
                    self._mappings[r],
                    self._frequencies[r],
                    self._water_loops[r],
                    time_s,
                    mapping_memo=self._mapping_memo,
                )
                for r, rack in enumerate(model.racks)
            ]
            floor_advance = self.floor_engine.advance(
                rack_loads,
                model.control_period_s,
                n_substeps=substeps,
                force_boundary_refresh=self._force_refresh,
            )
            worst_peak = floor_advance.worst_period_peak_case_c
            for r, rack in enumerate(model.racks):
                decisions, period_chiller_w = apply_rack_decisions(
                    floor_advance.racks[r],
                    rack.servers,
                    self._frequencies[r],
                    self._water_loops[r],
                    self._force_refresh[r],
                    time_s,
                    model.policy,
                    chiller,
                )
                rack_decisions.append(decisions)
                rack_chiller_w.append(period_chiller_w)
        else:
            for r, rack in enumerate(model.racks):
                decisions, period_chiller_w = run_rack_period(
                    self.rack_sessions[r],
                    rack.servers,
                    self._traces[r],
                    self._mappings[r],
                    self._frequencies[r],
                    self._water_loops[r],
                    self._force_refresh[r],
                    time_s,
                    model.control_period_s,
                    substeps,
                    model.policy,
                    chiller,
                )
                worst_peak = max(
                    worst_peak, max(d.period_peak_case_c for d in decisions)
                )
                rack_decisions.append(decisions)
                rack_chiller_w.append(period_chiller_w)
        staging = None
        if bank is not None:
            thermal_load_w = sum(rack_chiller_w)
            staging = bank.stage(self.setpoint_c, thermal_load_w, time_s)
            if thermal_load_w > 0.0:
                # Prorate the bank's electrical power back onto the racks by
                # their thermal share, so plant_power_w stays the sum of the
                # per-rack chiller powers for both plant kinds.
                scale = staging.electrical_power_w / thermal_load_w
                rack_chiller_w = [power * scale for power in rack_chiller_w]
        return DatacenterPeriod(
            time_s=time_s,
            setpoint_c=self.setpoint_c,
            rack_decisions=tuple(rack_decisions),
            rack_chiller_power_w=tuple(rack_chiller_w),
            worst_period_peak_case_c=worst_peak,
            staging=staging,
        )

    # ------------------------------------------------------------------ #
    # Adaptive control-period coarsening
    # ------------------------------------------------------------------ #
    def advance_span(
        self, time_s: float, span: int, *, n_substeps: int | None = None
    ) -> list[DatacenterPeriod]:
        """Advance ``span`` control periods in one quasi-steady macro-step.

        Only valid under :meth:`_plan_span`'s eligibility contract (held
        loads, no pending actuator event, warm floor).  The floor marches
        the whole span through :meth:`FloorEngine.advance_span` (reduced
        space, full fallback, or macro-step — see there); the fast decision
        rule is evaluated once, on the final period's physics, exactly
        where the fine lane would next be allowed to act.  Held periods
        are recorded as full :class:`DatacenterPeriod`\\ s at the held
        operating point — per-period case temperatures and within-period
        peaks come from the span lanes' readouts, the energy bill
        replicates the held actuator settings' chiller power (a staged
        bank is still re-staged per period: unit commitments may be
        time-dependent through maintenance windows) — so every
        trace-shape invariant (period counts, energy accounting,
        violation scanning) is preserved.
        """
        model = self.model
        substeps = n_substeps if n_substeps is not None else model.transient_substeps
        bank = model.plant if isinstance(model.plant, ChillerBank) else None
        chiller = (
            bank.accounting_chiller()
            if bank is not None
            else model.plant.chiller_at(self.setpoint_c)
        )
        rack_loads = [
            build_rack_loads(
                rack.servers,
                self._traces[r],
                self._mappings[r],
                self._frequencies[r],
                self._water_loops[r],
                time_s,
                mapping_memo=self._mapping_memo,
            )
            for r, rack in enumerate(model.racks)
        ]
        span_advance = self.floor_engine.advance_span(
            rack_loads,
            model.control_period_s,
            span,
            n_substeps=substeps,
            force_boundary_refresh=self._force_refresh,
            t_case_max_c=model.policy.t_case_max_c,
        )
        # Period stamps accumulate exactly like run()'s outer loop, so a
        # coarse trace's time axis is bit-identical to the fine lane's.
        times = []
        stamp = time_s
        for _ in range(span):
            times.append(stamp)
            stamp += model.control_period_s
        final_time = times[-1]

        final_decisions: list[tuple[ControllerDecision, ...]] = []
        rack_chiller_w: list[float] = []
        for r, rack in enumerate(model.racks):
            decisions, period_chiller_w = apply_rack_decisions(
                span_advance.racks[r],
                rack.servers,
                self._frequencies[r],
                self._water_loops[r],
                self._force_refresh[r],
                final_time,
                model.policy,
                chiller,
            )
            final_decisions.append(decisions)
            rack_chiller_w.append(period_chiller_w)

        periods: list[DatacenterPeriod] = []
        for j in range(span):
            if j == span - 1:
                decisions_j = tuple(final_decisions)
            else:
                decisions_j = tuple(
                    tuple(
                        replace(
                            decision,
                            time_s=times[j],
                            action=ControllerAction.NONE,
                            case_temperature_c=float(
                                span_advance.period_case_c[r][j, s]
                            ),
                            period_peak_case_c=float(
                                span_advance.period_peak_case_c[r][j, s]
                            ),
                        )
                        for s, decision in enumerate(final_decisions[r])
                    )
                    for r in range(model.n_racks)
                )
            staging_j = None
            chiller_w_j = rack_chiller_w
            if bank is not None:
                thermal_load_w = sum(rack_chiller_w)
                staging_j = bank.stage(self.setpoint_c, thermal_load_w, times[j])
                if thermal_load_w > 0.0:
                    scale = staging_j.electrical_power_w / thermal_load_w
                    chiller_w_j = [power * scale for power in rack_chiller_w]
            periods.append(
                DatacenterPeriod(
                    time_s=times[j],
                    setpoint_c=self.setpoint_c,
                    rack_decisions=decisions_j,
                    rack_chiller_power_w=tuple(chiller_w_j),
                    worst_period_peak_case_c=float(
                        span_advance.period_worst_peak_c[j]
                    ),
                    staging=staging_j,
                )
            )
        return periods

    def _note_period(self, period: DatacenterPeriod) -> None:
        """Record the eligibility signals the coarsening planner reads."""
        if self.model.coarsening is None:
            return
        all_none = True
        max_residual = 0.0
        for decisions in period.rack_decisions:
            for decision in decisions:
                if decision.action is not ControllerAction.NONE:
                    all_none = False
                residual = decision.settle_residual_c
                if residual is None:
                    max_residual = float("inf")
                else:
                    max_residual = max(max_residual, residual)
        self._coarse_state = (
            all_none,
            max_residual,
            period.worst_period_peak_case_c,
            period.rack_decisions,
        )

    def _plan_span(
        self,
        time_s: float,
        duration: float,
        periods_per_window: int,
        period_index: int,
    ) -> tuple[int, str | None]:
        """``(span, dropback_reason)`` for the next step.

        The span is 1 (fine stepping) unless every coarsening trigger is
        clear: the last committed period saw only ``NONE`` decisions with
        settle residuals inside ``quasi_steady_tol_c``, the floor's peak
        clears the constraint guard band, no open-valve server sits within
        the relax drift guard of a ``DECREASE_FLOW`` trigger, no boundary
        refresh is pending, and the span fits before the next scenario
        phase boundary, supervisory window boundary and run end.  The
        geometric part — event lattice, window cap, run end, dyadic
        quantization — is the floor-wide
        :class:`~repro.datacenter.span.SpanPlanner`'s
        :meth:`~repro.datacenter.span.SpanPlanner.plan`.

        ``dropback_reason`` names the trigger that forced a fine step
        (``None`` for a coarse span) — the explainability record behind
        the ``coarsen.dropback.*`` telemetry counters: why did *this*
        period run at full resolution?
        """
        cfg = self.model.coarsening
        if cfg is None or self.floor_engine is None:
            return 1, "disabled"
        state = self._coarse_state
        if state is None:
            # Cold start, or an actuator/setpoint move cleared the signals.
            return 1, "cold_start"
        all_none, max_residual, worst_peak, rack_decisions = state
        if not all_none:
            return 1, "actuator"
        if max_residual > cfg.quasi_steady_tol_c:
            return 1, "residual"
        policy = self.model.policy
        if worst_peak > policy.t_case_max_c - cfg.guard_band_c:
            return 1, "peak_guard"
        if any(any(flags) for flags in self._force_refresh):
            return 1, "refresh_pending"
        # Relax-band drift guard: a server with an open valve whose case
        # temperature is barely above the DECREASE_FLOW threshold could
        # drift across it mid-span; keep such periods at full resolution.
        relax_threshold_c = policy.t_case_max_c - policy.relax_margin_c
        for r, decisions in enumerate(rack_decisions):
            for s, decision in enumerate(decisions):
                loop = self._water_loops[r][s]
                if (
                    loop.flow_rate_kg_h > loop.min_flow_rate_kg_h
                    and decision.case_temperature_c
                    < relax_threshold_c + cfg.relax_guard_c
                ):
                    return 1, "relax_guard"
        span = self._span_planner.plan(
            time_s, duration, periods_per_window, period_index
        )
        if span <= 1:
            # Quasi-steady, but the event lattice (phase boundary, window
            # boundary or run end) left no room for a macro-span.
            return 1, "lattice"
        return span, None

    def run(
        self,
        *,
        duration_s: float | None = None,
        supervisory: SupervisoryController | None = None,
    ) -> DatacenterTrace:
        """Run the floor from a cold start and assemble the trace.

        With ``supervisory`` the slow loop decides every
        ``supervisory.period_s`` (which must be an integer multiple of the
        fast control period); its setpoint moves take effect from the next
        control period.  A controller exposing a callable ``plan``
        attribute (:class:`~repro.datacenter.supervisory.\
MpcSupervisoryController`) is handed the live session for receding-horizon
        rollouts; otherwise the reactive ``decide`` runs on the window's
        observed peak.  A window that produced no peak observation (the
        worst peak is still ``-inf``) holds the setpoint and logs the
        previous window's peak — it must never reach the raise predicate,
        where ``-inf`` would authorize an unconditional raise.  Without
        ``supervisory`` the setpoint stays fixed and the run is the
        per-rack equivalent of
        :meth:`ThermosyphonController.run_rack_trace`.
        """
        model = self.model
        duration = duration_s if duration_s is not None else model.duration_s
        check_positive(duration, "duration_s")
        periods_per_window = 0
        if supervisory is not None:
            ratio = supervisory.period_s / model.control_period_s
            periods_per_window = int(round(ratio))
            if periods_per_window < 1 or abs(ratio - periods_per_window) > 1e-9:
                raise ConfigurationError(
                    f"supervisory period {supervisory.period_s} s must be an "
                    f"integer multiple of the control period "
                    f"{model.control_period_s} s"
                )
        self.reset()
        obs = get_telemetry()
        caches = self._distinct_caches()
        stats_before = [cache.stats for cache in caches]
        stores = {
            id(cache.warm_store): cache.warm_store
            for cache in caches
            if getattr(cache, "warm_store", None) is not None
        }
        store_stats_before = {key: store.stats for key, store in stores.items()}
        rom_before = (
            self.floor_engine.rom_stats.copy()
            if self.floor_engine is not None and model.coarsening is not None
            else None
        )

        trace = DatacenterTrace(
            rack_names=tuple(rack.name for rack in model.racks),
            racks=[
                RackTrace(control_period_s=model.control_period_s)
                for _ in model.racks
            ],
            control_period_s=model.control_period_s,
            t_case_max_c=model.policy.t_case_max_c,
        )
        window_peak = float("-inf")
        carried_peak = float("nan")
        period_index = 0
        time_s = 0.0
        while time_s < duration:
            # Coarsening: when the last period certified quasi-steadiness
            # (and no trigger is pending), a whole dyadic span advances in
            # one macro-step; otherwise a single fine period.  Spans never
            # cross a supervisory window boundary, so the window block
            # below can stay per-period.
            span, dropback = self._plan_span(
                time_s, duration, periods_per_window, period_index
            )
            with obs.span("session.span", span=span, reason=dropback):
                if span > 1:
                    periods = self.advance_span(time_s, span)
                    trace.coarse_spans += 1
                    trace.coarse_periods += span
                else:
                    periods = [self.advance_period(time_s)]
            if obs.enabled:
                obs.inc("session.spans")
                obs.inc("session.periods", span)
                if dropback is not None:
                    obs.inc(f"coarsen.dropback.{dropback}")
            # Span-boundary accounting: one bulk commit per span.  The
            # planner never lets a span cross a supervisory window
            # boundary, so the window block below only needs to run at the
            # span end — per-period bookkeeping collapses to list extends,
            # a max over the span's peaks and one eligibility note on the
            # final period (intermediate notes are never read: no plan
            # happens inside a span).  The per-period float time
            # accumulation is kept verbatim so phase lookups stay
            # bit-identical to the fine lane's.
            for r in range(model.n_racks):
                rack_trace = trace.racks[r]
                rack_trace.periods.extend(
                    period.rack_decisions[r] for period in periods
                )
                rack_trace.chiller_power_w.extend(
                    period.rack_chiller_power_w[r] for period in periods
                )
            trace.setpoint_c.extend(period.setpoint_c for period in periods)
            trace.plant_power_w.extend(period.plant_power_w for period in periods)
            if periods[0].staging is not None:
                trace.staging.extend(period.staging for period in periods)
            window_peak = max(
                window_peak,
                max(period.worst_period_peak_case_c for period in periods),
            )
            period_index += len(periods)
            for _ in periods:
                # Accumulate exactly like run_rack_trace so the per-period
                # phase lookups see bit-identical times on a fixed-setpoint
                # run.
                time_s += model.control_period_s
            # Note the final period's eligibility signals *before* the
            # window block: a setpoint move below must leave the next
            # period fine (set_setpoint clears the signals).
            self._note_period(periods[-1])
            if (
                supervisory is not None
                and period_index % periods_per_window == 0
                and time_s < duration
            ):
                if window_peak == float("-inf"):
                    # No server reported a peak this window.  The raise
                    # predicate must never see -inf (the predicted peak
                    # would be -inf too and a raise always authorized):
                    # hold, carrying the previous window's peak in the log.
                    decision = SupervisoryDecision(
                        time_s=time_s,
                        setpoint_c=self.setpoint_c,
                        next_setpoint_c=self.setpoint_c,
                        action=SupervisoryAction.HOLD,
                        worst_peak_case_c=carried_peak,
                        predicted_peak_case_c=carried_peak,
                    )
                else:
                    carried_peak = window_peak
                    plan = getattr(supervisory, "plan", None)
                    if callable(plan):
                        decision = plan(
                            self, time_s, window_peak, duration_s=duration
                        )
                    else:
                        decision = supervisory.decide(
                            time_s, self.setpoint_c, window_peak
                        )
                trace.supervisory_decisions.append(decision)
                self.set_setpoint(decision.next_setpoint_c)
                window_peak = float("-inf")
        if rom_before is not None:
            trace.rom_stats = self.floor_engine.rom_stats.delta(rom_before)
        if caches:
            trace.cache_stats = sum(
                (
                    cache.stats.delta(before)
                    for cache, before in zip(caches, stats_before)
                ),
                CacheStats.zero(),
            )
            trace.factorizations = trace.cache_stats.misses
        if obs.enabled:
            # Publish this run's cache and warm-store *deltas* to the hub
            # once, at the end — the live per-instance bags keep counting
            # across runs, the hub records what this run contributed.
            if trace.cache_stats is not None:
                obs.inc("cache.hits", trace.cache_stats.hits)
                obs.inc("cache.misses", trace.cache_stats.misses)
            for key, store in stores.items():
                before = store_stats_before[key]
                after = store.stats
                for name in (
                    "reduced_hits",
                    "reduced_misses",
                    "system_hits",
                    "system_misses",
                    "stores",
                    "stale",
                ):
                    delta = getattr(after, name) - getattr(before, name)
                    if delta:
                        obs.inc(f"warm_store.{name}", delta)
        return trace
