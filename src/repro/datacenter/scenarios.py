"""Datacenter workload scenarios: seeded, replayable floor-wide load shapes.

Experiments so far hand-built their traces (one
:func:`~repro.workloads.trace.generate_trace` per benchmark).  Datacenter
studies need *floor-wide* load shapes — the whole point of a shared chiller
plant is how racks load it together — so this module composes the existing
PARSEC phase traces with slow envelope functions into the classic
datacenter patterns:

``diurnal``
    Every rack follows a day curve (compressed to the scenario duration)
    with a small seeded phase offset per rack — the canonical
    follow-the-sun web load.
``flash_crowd``
    A low baseline with one seeded burst window per rack ramping to
    overload — the cache-stampede / breaking-news shape.
``rolling_batch``
    Racks take turns running flat-out while the rest idle — staggered
    batch windows rolling across the floor.
``mixed``
    Each rack draws its envelope kind *and* its benchmark assignment from
    the seeded generator — the heterogeneous steady state of a real floor.

Every scenario is deterministic in ``(kind, seed, shape arguments)``: the
same call returns phase-for-phase identical traces, so experiments are
replayable and failures reproducible.  The envelopes are applied through
the vectorized :meth:`PhasedTrace.resample`, one array multiply per server.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.mapping import ThreadMapper
from repro.core.mapping_policies import MappingPolicy, ProposedThermalAwareMapping
from repro.core.runtime_controller import RackServer
from repro.datacenter.model import RackSpec
from repro.exceptions import ConfigurationError
from repro.floorplan.floorplan import Floorplan
from repro.floorplan.xeon_e5_v4 import build_xeon_e5_v4_floorplan
from repro.thermosyphon.design import PAPER_OPTIMIZED_DESIGN, ThermosyphonDesign
from repro.utils.validation import check_positive
from repro.workloads.configuration import Configuration
from repro.workloads.parsec import get_benchmark
from repro.workloads.qos import QoSConstraint
from repro.workloads.trace import PhasedTrace, TracePhase, generate_trace

#: The scenario families the engine can build.
SCENARIO_KINDS: tuple[str, ...] = ("diurnal", "flash_crowd", "rolling_batch", "mixed")

#: Default benchmark rotation: two compute-heavy and two memory-bound codes.
DEFAULT_BENCHMARKS: tuple[str, ...] = ("x264", "canneal", "ferret", "streamcluster")

#: Activity clamp matching the jitter range of :func:`generate_trace`.
_MAX_ACTIVITY = 1.3


@dataclass(frozen=True)
class DatacenterScenario:
    """A fully resolved, replayable floor-wide workload assignment."""

    name: str
    kind: str
    seed: int
    duration_s: float
    racks: tuple[RackSpec, ...]
    description: str = ""

    @property
    def n_racks(self) -> int:
        """Number of racks in the scenario."""
        return len(self.racks)

    @property
    def n_servers(self) -> int:
        """Total number of servers across the scenario's racks."""
        return sum(rack.n_servers for rack in self.racks)


def modulate_trace(
    base: PhasedTrace,
    envelope: Callable[[np.ndarray], np.ndarray],
    dt_s: float,
    *,
    name: str | None = None,
) -> PhasedTrace:
    """Multiply a phase trace by a slow activity envelope.

    Resamples ``base`` on a uniform ``dt_s`` grid (one vectorized
    :meth:`PhasedTrace.resample` call), scales the activity samples by
    ``envelope(times)`` and rebuilds a :class:`PhasedTrace`; memory
    intensity is carried through unchanged.
    """
    check_positive(dt_s, "dt_s")
    times, activities, memory = base.resample(dt_s)
    scale = np.asarray(envelope(times), dtype=float)
    if scale.shape != times.shape:
        raise ConfigurationError(
            f"envelope returned shape {scale.shape} for {times.shape} samples"
        )
    scaled = np.clip(activities * scale, 0.0, _MAX_ACTIVITY)
    # The final sample covers only the remainder of the base trace, so the
    # modulated trace keeps the base duration even when dt does not divide
    # it (otherwise the floor would run extra control periods).  A float
    # artifact in the cumsum-derived duration can land the last arange
    # sample exactly on the trace end (zero remainder) — drop that sample
    # and fold its span into the previous phase.
    durations = np.full(times.shape, dt_s)
    durations[-1] = base.duration_s - times[-1]
    if durations[-1] <= 0.0 and times.size > 1:
        times, scaled, memory = times[:-1], scaled[:-1], memory[:-1]
        durations = durations[:-1]
        durations[-1] = base.duration_s - times[-1]
    phases = tuple(
        TracePhase(
            duration_s=float(d), activity_factor=float(a), memory_intensity=float(m)
        )
        for d, a, m in zip(durations, scaled, memory)
    )
    return PhasedTrace(name if name is not None else base.name, phases)


# --------------------------------------------------------------------------- #
# Envelope families (each returns a vectorized callable over a times array)
# --------------------------------------------------------------------------- #
def _diurnal_envelope(
    duration_s: float, offset: float, *, floor: float = 0.40, peak: float = 1.05
) -> Callable[[np.ndarray], np.ndarray]:
    """One compressed day: a raised cosine from night floor to midday peak."""

    def envelope(times: np.ndarray) -> np.ndarray:
        phase = times / duration_s + offset
        return floor + (peak - floor) * 0.5 * (1.0 - np.cos(2.0 * np.pi * phase))

    return envelope


def _flash_crowd_envelope(
    burst_start_s: float,
    burst_width_s: float,
    *,
    baseline: float = 0.45,
    burst: float = 1.25,
) -> Callable[[np.ndarray], np.ndarray]:
    """Low baseline with one rectangular overload window."""

    def envelope(times: np.ndarray) -> np.ndarray:
        in_burst = (times >= burst_start_s) & (times < burst_start_s + burst_width_s)
        return np.where(in_burst, burst, baseline)

    return envelope


def _rolling_batch_envelope(
    window_start_s: float,
    window_width_s: float,
    *,
    idle: float = 0.35,
    busy: float = 1.10,
) -> Callable[[np.ndarray], np.ndarray]:
    """Idle except for this rack's turn in the rolling batch schedule."""

    def envelope(times: np.ndarray) -> np.ndarray:
        in_window = (times >= window_start_s) & (times < window_start_s + window_width_s)
        return np.where(in_window, busy, idle)

    return envelope


def _rack_envelope(
    kind: str,
    rack_index: int,
    n_racks: int,
    duration_s: float,
    rng: np.random.Generator,
    *,
    envelope_period_s: float | None = None,
) -> Callable[[np.ndarray], np.ndarray]:
    """The (seeded) envelope one rack follows under a scenario kind."""
    if kind == "diurnal":
        offset = rack_index / max(n_racks, 1) * 0.08 + float(rng.uniform(-0.02, 0.02))
        period = envelope_period_s if envelope_period_s is not None else duration_s
        return _diurnal_envelope(period, offset)
    if kind == "flash_crowd":
        start = float(rng.uniform(0.15, 0.45)) * duration_s
        width = float(rng.uniform(0.15, 0.30)) * duration_s
        return _flash_crowd_envelope(start, width)
    if kind == "rolling_batch":
        width = duration_s / max(n_racks, 1)
        jitter = float(rng.uniform(0.0, 0.1)) * width
        return _rolling_batch_envelope(rack_index * width + jitter, width)
    raise ConfigurationError(f"unknown envelope kind {kind!r}")


def build_scenario(
    kind: str,
    *,
    n_racks: int = 2,
    servers_per_rack: int = 4,
    duration_s: float = 120.0,
    seed: int = 0,
    benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
    qos_factor: float = 2.0,
    frequency_ghz: float = 3.2,
    phase_dt_s: float | None = None,
    envelope_period_s: float | None = None,
    floorplan: Floorplan | None = None,
    design: ThermosyphonDesign = PAPER_OPTIMIZED_DESIGN,
    designs: Sequence[ThermosyphonDesign] | None = None,
    policy: MappingPolicy | None = None,
) -> DatacenterScenario:
    """Build a replayable datacenter scenario of the given kind.

    Servers rotate through ``benchmarks`` (seeded random draws under
    ``kind="mixed"``); each server's phase trace is the benchmark's
    deterministic :func:`generate_trace` modulated by the rack's envelope.
    ``floorplan``/``design``/``policy`` must match the
    :class:`~repro.datacenter.model.DatacenterModel` the scenario will run
    on (the thread mappings are resolved here, once, not per period).
    ``phase_dt_s`` is the envelope sampling step (default: 1/24 of the
    duration — one "hour" of the compressed day).

    ``envelope_period_s`` sets the diurnal cycle length independently of
    the scenario duration (default: one cycle over the whole duration —
    the original compressed-day behaviour).  Long-horizon traces pass a
    fixed day length (say 86400 s over a multi-day duration) so the
    envelope repeats realistically and stays locally flat between phase
    samples — the flatness the adaptive control-period coarsener exploits.

    ``designs`` builds a heterogeneous floor: rack ``i`` carries
    ``designs[i % len(designs)]`` in its :class:`RackSpec` (overriding
    ``design``), with thread mappings resolved per design orientation —
    the floor engine then partitions its stacked solves by the resulting
    hardware groups instead of falling back to anything slower.
    """
    if kind not in SCENARIO_KINDS:
        raise ConfigurationError(
            f"kind must be one of {SCENARIO_KINDS}, got {kind!r}"
        )
    if n_racks < 1 or servers_per_rack < 1:
        raise ConfigurationError(
            f"need at least one rack and one server per rack, got "
            f"{n_racks} x {servers_per_rack}"
        )
    check_positive(duration_s, "duration_s")
    if not benchmarks:
        raise ConfigurationError("benchmarks must not be empty")
    if designs is not None and not designs:
        raise ConfigurationError("designs must not be empty when given")
    dt_s = phase_dt_s if phase_dt_s is not None else max(duration_s / 24.0, 1e-3)
    floorplan = floorplan if floorplan is not None else build_xeon_e5_v4_floorplan()
    policy = policy if policy is not None else ProposedThermalAwareMapping()
    configuration = Configuration(8, 2, frequency_ghz)
    constraint = QoSConstraint(qos_factor)
    # One mapping per distinct (benchmark, design orientation); mapping
    # resolution is deterministic.  Homogeneous floors resolve each
    # benchmark once, heterogeneous floors once per distinct orientation.
    rack_designs = [
        designs[rack_index % len(designs)] if designs is not None else design
        for rack_index in range(n_racks)
    ]
    mappers = {
        rack_design.orientation: ThreadMapper(
            floorplan, orientation=rack_design.orientation
        )
        for rack_design in dict.fromkeys(rack_designs)
    }
    mappings = {
        (name, orientation): mapper.map(get_benchmark(name), configuration, policy)
        for orientation, mapper in mappers.items()
        for name in dict.fromkeys(benchmarks)
    }

    racks: list[RackSpec] = []
    for rack_index in range(n_racks):
        # Per-rack generator seeded by (seed, rack): racks are independent
        # and the scenario replays identically regardless of build order.
        rng = np.random.default_rng([seed, rack_index])
        envelope_kind = (
            str(rng.choice(("diurnal", "flash_crowd", "rolling_batch")))
            if kind == "mixed"
            else kind
        )
        envelope = _rack_envelope(
            envelope_kind,
            rack_index,
            n_racks,
            duration_s,
            rng,
            envelope_period_s=envelope_period_s,
        )
        servers = []
        for server_index in range(servers_per_rack):
            if kind == "mixed":
                benchmark_name = str(rng.choice(benchmarks))
            else:
                rotation = rack_index * servers_per_rack + server_index
                benchmark_name = benchmarks[rotation % len(benchmarks)]
            benchmark = get_benchmark(benchmark_name)
            base = generate_trace(benchmark, total_duration_s=duration_s)
            trace = modulate_trace(
                base,
                envelope,
                dt_s,
                name=f"{benchmark_name}@{kind}-r{rack_index}s{server_index}",
            )
            servers.append(
                RackServer(
                    benchmark=benchmark,
                    mapping=mappings[
                        (benchmark_name, rack_designs[rack_index].orientation)
                    ],
                    constraint=constraint,
                    trace=trace,
                )
            )
        racks.append(
            RackSpec(
                name=f"rack{rack_index}",
                servers=tuple(servers),
                design=rack_designs[rack_index] if designs is not None else None,
            )
        )
    name = f"{kind}-{n_racks}x{servers_per_rack}-seed{seed}"
    return DatacenterScenario(
        name=name,
        kind=kind,
        seed=seed,
        duration_s=duration_s,
        racks=tuple(racks),
        description=(
            f"{kind} floor: {n_racks} racks x {servers_per_rack} servers, "
            f"{duration_s:.0f} s, benchmarks {tuple(dict.fromkeys(benchmarks))}"
        ),
    )
