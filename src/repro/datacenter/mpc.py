"""Receding-horizon rollout engine for supervisory setpoint MPC.

The supervisory question — *how warm may the shared chiller water supply
run?* — is answered here by simulation instead of by a worst-case bound.
Each planning step:

1. **Snapshot** the warm floor once
   (:meth:`~repro.datacenter.model.DatacenterSession.snapshot`): stacked
   group temperature arrays, held cooling boundaries, per-server actuator
   state.  Factorization caches and operating-point memos are *shared*,
   not copied, so every rollout period costs only cached
   back-substitutions (plus lane marches where a setpoint move refreshes
   boundaries — and those operating points are memoized floor-wide, so the
   committed trajectory replays them for free).
2. **Roll out** every :class:`CandidateTrajectory` through the *real*
   engine over ``horizon`` supervisory windows, restoring the snapshot
   between candidates.  Fidelity is tunable: only the first
   ``rollout_periods_per_window`` fast control periods of each window are
   simulated (the window's plant energy is billed at their mean power) and
   each simulated period integrates with ``rollout_substeps`` backward-Euler
   substeps — the controller's guard margin absorbs the coarser
   integration.
3. **Choose** the cheapest trajectory whose predicted floor-wide peak case
   temperature stays under ``t_case_max_c - guard_margin_c`` throughout
   (ties keep candidate order, so a deterministic family gives a
   deterministic plan); when *no* candidate is predicted feasible, the one
   with the lowest predicted peak wins — the plan that cools hardest.  The
   caller commits only the first step and replans at the next supervisory
   period: receding horizon.

The candidate family is deliberately tiny (:func:`default_candidates`
builds six): the setpoint is a slow scalar actuator, so a handful of
ramp/hold shapes spans the useful action space, and the double-step raise
ramp is exactly the move the reactive bound can never authorize — the MPC
validates it against the model instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.telemetry import get_telemetry
from repro.utils.validation import check_positive_int

__all__ = [
    "CandidateTrajectory",
    "MpcPlan",
    "RolloutResult",
    "default_candidates",
    "plan_setpoint",
    "rollout_trajectory",
]


@dataclass(frozen=True)
class CandidateTrajectory:
    """One candidate setpoint trajectory, in units of the controller step.

    ``steps[w]`` is the setpoint move entering supervisory window ``w``,
    measured in multiples of the controller's ``step_c`` (so ``(2.0, 2.0)``
    is a double-step raise ramp).  The absolute setpoints are resolved
    against the live setpoint — and clamped to the plant range — by
    :meth:`setpoints_from`.
    """

    name: str
    steps: tuple[float, ...]

    def setpoints_from(
        self, setpoint_c: float, step_c: float, clamp
    ) -> tuple[float, ...]:
        """The absolute per-window setpoints this candidate visits."""
        points = []
        current = setpoint_c
        for move in self.steps:
            current = clamp(current + move * step_c)
            points.append(current)
        return tuple(points)


@dataclass(frozen=True)
class RolloutResult:
    """One candidate's simulated outcome over the horizon.

    ``plant_energy_j`` bills every window at the mean plant power of its
    simulated periods; ``worst_peak_case_c`` is the highest within-period
    peak case temperature any server reached during the rollout.
    ``feasible`` is the guard-margin check of that peak; the scalar
    :attr:`cost` orders candidates (infeasible = infinite).
    """

    candidate: CandidateTrajectory
    setpoints_c: tuple[float, ...]
    plant_energy_j: float
    worst_peak_case_c: float
    feasible: bool

    @property
    def cost(self) -> float:
        """Trajectory cost: plant energy, infinite when infeasible."""
        return self.plant_energy_j if self.feasible else float("inf")


@dataclass(frozen=True)
class MpcPlan:
    """One planning step's full record: every rollout plus the winner."""

    time_s: float
    setpoint_c: float
    rollouts: tuple[RolloutResult, ...]
    chosen: RolloutResult

    @property
    def n_feasible(self) -> int:
        """How many candidates were predicted feasible."""
        return sum(1 for rollout in self.rollouts if rollout.feasible)


def default_candidates(horizon: int) -> tuple[CandidateTrajectory, ...]:
    """The standard six-trajectory family over ``horizon`` windows.

    hold, single-step raise ramp, double-step raise ramp, one-shot raise,
    one-shot lower and single-step lower ramp.  The double-step ramp is
    the aggressive move a conservative reactive bound cannot take; the
    lower shapes let the planner pre-cool ahead of a predicted load rise.
    """
    check_positive_int(horizon, "horizon")
    rest = (0.0,) * (horizon - 1)
    return (
        CandidateTrajectory("hold", (0.0,) * horizon),
        CandidateTrajectory("raise-ramp", (1.0,) * horizon),
        CandidateTrajectory("raise-fast", (2.0,) * horizon),
        CandidateTrajectory("raise-once", (1.0,) + rest),
        CandidateTrajectory("lower-once", (-1.0,) + rest),
        CandidateTrajectory("lower-ramp", (-1.0,) * horizon),
    )


def rollout_trajectory(
    session,
    setpoints_c: tuple[float, ...],
    *,
    start_time_s: float,
    window_s: float,
    rollout_periods_per_window: int,
    rollout_substeps: int,
    duration_s: float | None = None,
) -> tuple[float, float]:
    """Simulate one setpoint trajectory forward; return (energy, peak).

    ``session`` is duck-typed: anything with ``set_setpoint``,
    ``advance_period(time_s, n_substeps=...)`` returning an object with
    ``plant_power_w`` / ``worst_period_peak_case_c``, and a
    ``model.control_period_s``.  The caller owns snapshot/restore — this
    function mutates the session.

    Each window sets its setpoint, simulates its first
    ``rollout_periods_per_window`` control periods and bills the whole
    window's plant energy at their mean power; the trajectory is truncated
    at ``duration_s`` (the receding horizon never looks past the end of
    the trace).
    """
    control_period_s = session.model.control_period_s
    periods_per_window = int(round(window_s / control_period_s))
    energy_j = 0.0
    worst_peak = float("-inf")
    for w, target in enumerate(setpoints_c):
        window_start = start_time_s + w * window_s
        if duration_s is not None and window_start >= duration_s:
            break
        window_end = window_start + window_s
        if duration_s is not None:
            window_end = min(window_end, duration_s)
        n_window_periods = max(
            1, int(round((window_end - window_start) / control_period_s))
        )
        session.set_setpoint(target)
        n_simulated = min(rollout_periods_per_window, n_window_periods)
        window_power_w = 0.0
        time_s = window_start
        for _ in range(n_simulated):
            period = session.advance_period(time_s, n_substeps=rollout_substeps)
            window_power_w += period.plant_power_w
            worst_peak = max(worst_peak, period.worst_period_peak_case_c)
            time_s += control_period_s
        energy_j += (
            window_power_w / n_simulated * n_window_periods * control_period_s
        )
    return energy_j, worst_peak


def plan_setpoint(
    session,
    controller,
    *,
    time_s: float,
    duration_s: float | None = None,
) -> MpcPlan:
    """Roll out every candidate from one snapshot and pick the winner.

    ``controller`` supplies the knobs (``candidates``, ``step_c``,
    ``clamp``, ``period_s``, ``guard_margin_c``, ``t_case_max_c``,
    ``rollout_periods_per_window``, ``rollout_substeps``) — in practice an
    :class:`~repro.datacenter.supervisory.MpcSupervisoryController`.  The
    session is restored to the snapshot after every rollout (and on any
    rollout failure), so planning has zero side effects on the committed
    trace.
    """
    setpoint_c = session.setpoint_c
    limit_c = controller.t_case_max_c - controller.guard_margin_c
    obs = get_telemetry()
    with obs.span("mpc.plan", candidates=len(controller.candidates)) as plan_span:
        snapshot = session.snapshot()
        rollouts: list[RolloutResult] = []
        try:
            for candidate in controller.candidates:
                setpoints = candidate.setpoints_from(
                    setpoint_c, controller.step_c, controller.clamp
                )
                with obs.span(
                    "mpc.rollout", candidate=candidate.name
                ) as rollout_span:
                    energy_j, worst_peak = rollout_trajectory(
                        session,
                        setpoints,
                        start_time_s=time_s,
                        window_s=controller.period_s,
                        rollout_periods_per_window=(
                            controller.rollout_periods_per_window
                        ),
                        rollout_substeps=controller.rollout_substeps,
                        duration_s=duration_s,
                    )
                    feasible = worst_peak <= limit_c
                    rollout_span.set(
                        feasible=feasible, plant_energy_j=energy_j
                    )
                rollouts.append(
                    RolloutResult(
                        candidate=candidate,
                        setpoints_c=setpoints,
                        plant_energy_j=energy_j,
                        worst_peak_case_c=worst_peak,
                        feasible=feasible,
                    )
                )
                session.restore(snapshot)
        finally:
            session.restore(snapshot)
        chosen = min(rollouts, key=lambda rollout: rollout.cost)
        if not chosen.feasible:
            # Every candidate predicts a guard breach: commit the coolest
            # plan.
            chosen = min(rollouts, key=lambda rollout: rollout.worst_peak_case_c)
        plan_span.set(
            chosen=chosen.candidate.name,
            n_feasible=sum(1 for rollout in rollouts if rollout.feasible),
        )
        return MpcPlan(
            time_s=time_s,
            setpoint_c=setpoint_c,
            rollouts=tuple(rollouts),
            chosen=chosen,
        )
