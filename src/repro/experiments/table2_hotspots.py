"""Table II — thermal hot spots and spatial gradients per approach and QoS.

For every QoS level (1x, 2x, 3x) and every approach (proposed,
[8]+[27]+[9], [8]+[27]+[7]) the workloads are run end to end (configuration
selection, mapping, thermal evaluation) and the die/package hot spots and
maximum spatial gradients are averaged across the benchmark suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.comparison import ApproachComparison, ComparisonRow
from repro.experiments.common import (
    Approach,
    Platform,
    build_platform,
    evaluate_approach_batch,
    paper_approaches,
)
from repro.workloads.parsec import PARSEC_BENCHMARK_NAMES
from repro.workloads.qos import QoSConstraint


@dataclass(frozen=True)
class Table2Cell:
    """Per-benchmark evaluation backing one averaged Table II row."""

    approach: str
    qos_label: str
    benchmark: str
    die_theta_max_c: float
    die_grad_max_c_per_mm: float
    package_theta_max_c: float
    package_grad_max_c_per_mm: float


@dataclass
class Table2Result:
    """Averaged Table II plus the per-benchmark detail."""

    comparison: ApproachComparison
    cells: list[Table2Cell] = field(default_factory=list)

    def as_table(self) -> str:
        """Render in the layout of the paper's Table II."""
        return self.comparison.as_table()

    def improvement_summary(self) -> dict[str, dict[str, float]]:
        """Reductions of the proposed approach vs each baseline at each QoS."""
        summary: dict[str, dict[str, float]] = {}
        for approach in self.comparison.approaches:
            if approach == "proposed":
                continue
            for qos in self.comparison.qos_labels:
                key = f"{approach} @ {qos}"
                summary[key] = self.comparison.improvement_over(approach, "proposed", qos)
        return summary


def run_table2(
    platform: Platform | None = None,
    *,
    benchmark_names: tuple[str, ...] = PARSEC_BENCHMARK_NAMES,
    qos_factors: tuple[float, ...] = (1.0, 2.0, 3.0),
    approaches: tuple[Approach, ...] | None = None,
    max_workers: int | None = None,
) -> Table2Result:
    """Run the full Table II sweep (batched per approach and QoS level)."""
    own_platform = platform is None
    platform = platform if platform is not None else build_platform()
    approaches = approaches if approaches is not None else paper_approaches()

    try:
        return _run_table2(platform, benchmark_names, qos_factors, approaches, max_workers)
    finally:
        if own_platform:
            platform.close()


def _run_table2(
    platform: Platform,
    benchmark_names: tuple[str, ...],
    qos_factors: tuple[float, ...],
    approaches: tuple[Approach, ...],
    max_workers: int | None,
) -> Table2Result:
    comparison = ApproachComparison()
    cells: list[Table2Cell] = []
    for approach in approaches:
        for factor in qos_factors:
            constraint = QoSConstraint(factor)
            die_max: list[float] = []
            die_grad: list[float] = []
            package_max: list[float] = []
            package_grad: list[float] = []
            results = evaluate_approach_batch(
                platform, approach, benchmark_names, constraint, max_workers=max_workers
            )
            for name, result in zip(benchmark_names, results):
                die_max.append(result.die_metrics.theta_max_c)
                die_grad.append(result.die_metrics.grad_max_c_per_mm)
                package_max.append(result.package_metrics.theta_max_c)
                package_grad.append(result.package_metrics.grad_max_c_per_mm)
                cells.append(
                    Table2Cell(
                        approach=approach.name,
                        qos_label=constraint.label(),
                        benchmark=name,
                        die_theta_max_c=result.die_metrics.theta_max_c,
                        die_grad_max_c_per_mm=result.die_metrics.grad_max_c_per_mm,
                        package_theta_max_c=result.package_metrics.theta_max_c,
                        package_grad_max_c_per_mm=result.package_metrics.grad_max_c_per_mm,
                    )
                )
            comparison.add(
                ComparisonRow(
                    approach=approach.name,
                    qos_label=constraint.label(),
                    die_theta_max_c=float(np.mean(die_max)),
                    die_grad_max_c_per_mm=float(np.mean(die_grad)),
                    package_theta_max_c=float(np.mean(package_max)),
                    package_grad_max_c_per_mm=float(np.mean(package_grad)),
                )
            )
    return Table2Result(comparison=comparison, cells=cells)
