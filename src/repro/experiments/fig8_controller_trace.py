"""Controller-trace study — steady re-solve vs warm-start transient marching.

Not a figure of the paper itself, but the runtime companion of its Section
VII controller discussion: the same flow-rate-first/DVFS-second controller
is played over a phased PARSEC trace twice, once re-solving steady state
every control period (the quasi-static study) and once advancing the
simulation session's warm-start temperature field with cached backward-
Euler steps (``mode="transient"``).  The report compares the control
behaviour (actions, peak temperatures) — which must stay close — and the
cost: operator factorizations and wall time, where the transient lane is
the one that scales to long traces.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.mapping import ThreadMapper
from repro.core.mapping_policies import ProposedThermalAwareMapping
from repro.core.pipeline import CooledServerSimulation
from repro.core.runtime_controller import ControllerTrace, ThermosyphonController
from repro.experiments.common import Platform, build_platform
from repro.thermal.simulator import ThermalSimulator
from repro.thermosyphon.design import PAPER_OPTIMIZED_DESIGN
from repro.workloads.configuration import Configuration
from repro.workloads.parsec import get_benchmark
from repro.workloads.qos import QoSConstraint
from repro.workloads.trace import generate_trace


@dataclass
class ControllerModeCase:
    """One controller mode's trace plus its cost."""

    mode: str
    trace: ControllerTrace
    wall_time_s: float

    @property
    def periods(self) -> int:
        """Number of control periods executed."""
        return len(self.trace.decisions)


@dataclass
class Fig8Result:
    """Steady vs transient controller comparison on one phased trace."""

    benchmark: str
    qos_label: str
    duration_s: float
    control_period_s: float
    steady: ControllerModeCase
    transient: ControllerModeCase

    @property
    def factorization_ratio(self) -> float:
        """Steady-mode factorizations per transient-mode factorization."""
        steady = self.steady.trace.factorizations or 0
        transient = self.transient.trace.factorizations or 0
        return steady / max(transient, 1)

    @property
    def speedup(self) -> float:
        """Wall-time ratio steady / transient."""
        return self.steady.wall_time_s / max(self.transient.wall_time_s, 1e-12)

    def as_table(self) -> str:
        """Textual report of both modes."""
        header = (
            f"Controller trace - {self.benchmark} @ QoS {self.qos_label}, "
            f"{self.duration_s:.0f} s trace, {self.control_period_s:.0f} s period"
        )
        columns = (
            f"{'mode':>10} {'periods':>8} {'factor.':>8} {'flow+':>6} {'dvfs-':>6} "
            f"{'emerg.':>7} {'peak T_case':>12} {'time (s)':>9}"
        )
        rows = []
        for case in (self.steady, self.transient):
            trace = case.trace
            factorizations = (
                f"{trace.factorizations}" if trace.factorizations is not None else "-"
            )
            rows.append(
                f"{case.mode:>10} {case.periods:>8} {factorizations:>8} "
                f"{trace.flow_increases:>6} {trace.frequency_reductions:>6} "
                f"{trace.emergencies:>7} {trace.peak_case_temperature_c:>11.1f}C "
                f"{case.wall_time_s:>9.2f}"
            )
        footer = (
            f"transient mode: {self.factorization_ratio:.1f}x fewer factorizations, "
            f"{self.speedup:.1f}x faster wall clock"
        )
        return "\n".join([header, columns, *rows, footer])


def run_fig8(
    platform: Platform | None = None,
    *,
    benchmark_name: str = "x264",
    qos_factor: float = 2.0,
    duration_s: float = 60.0,
    control_period_s: float = 2.0,
    n_steady_phases: int = 10,
) -> Fig8Result:
    """Run the controller in both modes over one phased trace.

    Each mode gets its own simulation (and therefore its own empty
    factorization cache): sharing one cache would let the second mode start
    warm from the first mode's operators, biasing both the factorization
    counts and the wall-clock comparison.
    """
    platform = platform if platform is not None else build_platform()
    benchmark = get_benchmark(benchmark_name)
    constraint = QoSConstraint(qos_factor)
    mapper = ThreadMapper(
        platform.floorplan, orientation=PAPER_OPTIMIZED_DESIGN.orientation
    )
    mapping = mapper.map(
        benchmark, Configuration(8, 2, 3.2), ProposedThermalAwareMapping()
    )
    trace = generate_trace(
        benchmark, n_steady_phases=n_steady_phases, total_duration_s=duration_s
    )

    cases = {}
    for mode in ("steady", "transient"):
        simulation = CooledServerSimulation(
            platform.floorplan,
            design=PAPER_OPTIMIZED_DESIGN,
            power_model=platform.power_model,
            thermal_simulator=ThermalSimulator(
                platform.floorplan, cell_size_mm=platform.cell_size_mm
            ),
        )
        controller = ThermosyphonController(
            simulation, control_period_s=control_period_s
        )
        start = time.perf_counter()
        record = controller.run_trace(
            benchmark, mapping, constraint, trace, mode=mode
        )
        cases[mode] = ControllerModeCase(
            mode=mode, trace=record, wall_time_s=time.perf_counter() - start
        )
    return Fig8Result(
        benchmark=benchmark.name,
        qos_label=constraint.label(),
        duration_s=trace.duration_s,
        control_period_s=control_period_s,
        steady=cases["steady"],
        transient=cases["transient"],
    )
