"""Fig. 2 — motivation: die vs package thermal profile.

With a non-optimised thermosyphon design (the [8] reference, which also
assumes a uniform heat flux over the package) and a non-optimised workload
mapping, the hot spots and spatial gradients observed on the package are a
strongly scaled-down image of what the die actually experiences.  This
experiment reproduces the comparison in Fig. 2d: die vs package theta_max,
theta_avg and grad_theta_max, and additionally quantifies how much the
uniform-heat-flux assumption of [8] underestimates the die hot spot.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import format_table
from repro.baselines.seuret_design import uniform_heat_flux_boundary
from repro.experiments.common import Platform, build_platform
from repro.power.power_model import CoreActivity
from repro.thermal.metrics import ThermalMetrics
from repro.thermosyphon.design import SEURET_REFERENCE_DESIGN
from repro.workloads.parsec import get_benchmark


@dataclass
class Fig2Result:
    """Die and package metrics with the non-optimised design and mapping."""

    die: ThermalMetrics
    package: ThermalMetrics
    die_uniform_assumption: ThermalMetrics
    package_power_w: float

    def as_table(self) -> str:
        """Render the Fig. 2d comparison."""
        headers = ("Surface", "theta_max (C)", "theta_avg (C)", "grad_max (C/mm)")
        rows = [
            ("Die", self.die.theta_max_c, self.die.theta_avg_c, self.die.grad_max_c_per_mm),
            (
                "Package",
                self.package.theta_max_c,
                self.package.theta_avg_c,
                self.package.grad_max_c_per_mm,
            ),
            (
                "Die (uniform-flux assumption of [8])",
                self.die_uniform_assumption.theta_max_c,
                self.die_uniform_assumption.theta_avg_c,
                self.die_uniform_assumption.grad_max_c_per_mm,
            ),
        ]
        return format_table(
            headers, rows, title="Fig. 2 - die vs package thermal profile (non-optimised)"
        )

    @property
    def die_package_hot_spot_ratio(self) -> float:
        """How much hotter the die hot spot is than the package hot spot."""
        return self.die.theta_max_c / self.package.theta_max_c


def run_fig2(
    platform: Platform | None = None,
    *,
    benchmark_name: str = "x264",
) -> Fig2Result:
    """Fully load the CPU with a non-optimised design and compare die/package."""
    platform = platform if platform is not None else build_platform()
    benchmark = get_benchmark(benchmark_name)
    simulation = platform.simulation(SEURET_REFERENCE_DESIGN)

    activities = [
        CoreActivity.running(core.core_index, benchmark.core_power_parameters(), 2)
        for core in platform.floorplan.cores
    ]
    result = simulation.simulate_activities(
        activities,
        3.2,
        memory_intensity=benchmark.memory_intensity,
        benchmark_name=benchmark.name,
    )

    # The uniform-heat-flux assumption of [8]: same total power, spread
    # evenly over the evaporator base.
    power_map = platform.thermal_simulator.power_map(
        platform.power_model.evaluate(
            activities, 3.2, memory_intensity=benchmark.memory_intensity
        ).component_power_w
    )
    uniform_boundary = uniform_heat_flux_boundary(
        simulation.loop,
        float(power_map.sum()),
        platform.thermal_simulator.shape,
        platform.thermal_simulator.grid.cell_pitch_mm(),
    )
    uniform_result = platform.thermal_simulator.steady_state_from_map(
        power_map, uniform_boundary
    )

    return Fig2Result(
        die=result.die_metrics,
        package=result.package_metrics,
        die_uniform_assumption=uniform_result.die_metrics(),
        package_power_w=result.package_power_w,
    )
