"""Fig. 7 — sample die thermal map, proposed approach vs state of the art.

The paper shows one thermal map obtained under the 2x QoS constraint: the
state-of-the-art stack produces a 78.2 degC hot spot where the proposed
approach reaches 71.5 degC.  This experiment regenerates both maps (as
arrays, plus an ASCII rendering for terminals) and reports their hot spots.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import (
    Platform,
    build_platform,
    evaluate_approach,
    paper_approaches,
)
from repro.workloads.parsec import get_benchmark
from repro.workloads.qos import QoSConstraint


@dataclass
class ThermalMapCase:
    """One approach's die thermal map."""

    approach: str
    die_map_c: np.ndarray
    die_mask: np.ndarray
    hot_spot_c: float
    average_c: float


@dataclass
class Fig7Result:
    """Proposed vs state-of-the-art thermal maps."""

    benchmark: str
    qos_label: str
    proposed: ThermalMapCase
    state_of_the_art: ThermalMapCase

    @property
    def hot_spot_reduction_c(self) -> float:
        """Hot-spot reduction achieved by the proposed approach."""
        return self.state_of_the_art.hot_spot_c - self.proposed.hot_spot_c

    def as_text(self, *, levels: str = " .:-=+*#%@") -> str:
        """ASCII rendering of both maps over a common temperature scale."""
        lines = [
            f"Fig. 7 - die thermal map for {self.benchmark} @ QoS {self.qos_label}",
            f"proposed hot spot: {self.proposed.hot_spot_c:.1f} C, "
            f"state of the art: {self.state_of_the_art.hot_spot_c:.1f} C",
        ]
        low = min(self.proposed.die_map_c[self.proposed.die_mask].min(),
                  self.state_of_the_art.die_map_c[self.state_of_the_art.die_mask].min())
        high = max(self.proposed.hot_spot_c, self.state_of_the_art.hot_spot_c)
        span = max(high - low, 1e-9)
        for case in (self.proposed, self.state_of_the_art):
            lines.append(f"--- {case.approach} ---")
            rows, columns = case.die_map_c.shape
            for row in range(rows - 1, -1, -1):
                if not case.die_mask[row].any():
                    continue
                characters = []
                for column in range(columns):
                    if not case.die_mask[row, column]:
                        characters.append(" ")
                        continue
                    value = (case.die_map_c[row, column] - low) / span
                    index = min(int(value * (len(levels) - 1)), len(levels) - 1)
                    characters.append(levels[index])
                lines.append("".join(characters))
        return "\n".join(lines)


def _case(platform: Platform, approach, benchmark, constraint) -> ThermalMapCase:
    result = evaluate_approach(platform, approach, benchmark, constraint)
    die_map = result.thermal_result.die_map()
    die_mask = result.thermal_result.die_mask
    return ThermalMapCase(
        approach=approach.name,
        die_map_c=die_map,
        die_mask=die_mask,
        hot_spot_c=result.die_metrics.theta_max_c,
        average_c=result.die_metrics.theta_avg_c,
    )


def run_fig7(
    platform: Platform | None = None,
    *,
    benchmark_name: str = "fluidanimate",
    qos_factor: float = 2.0,
) -> Fig7Result:
    """Generate the proposed and state-of-the-art thermal maps."""
    platform = platform if platform is not None else build_platform()
    benchmark = get_benchmark(benchmark_name)
    constraint = QoSConstraint(qos_factor)
    approaches = paper_approaches()
    proposed = next(a for a in approaches if a.name == "proposed")
    state_of_the_art = next(a for a in approaches if a.name == "[8]+[27]+[9]")
    return Fig7Result(
        benchmark=benchmark.name,
        qos_label=constraint.label(),
        proposed=_case(platform, proposed, benchmark, constraint),
        state_of_the_art=_case(platform, state_of_the_art, benchmark, constraint),
    )
