"""Fig. 6 — three 4-core mapping scenarios under POLL and C1 idle states.

Scenario #1 places at most one active core per micro-channel row, scenario
#2 is conventional corner balancing, scenario #3 clusters the active cores.
The paper's point: the best mapping depends on the C-state of the idle
cores, because POLL leaves so much idle power on the die that conventional
balancing remains competitive, while deeper states let the channel-row rule
win.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import format_table
from repro.core.mapping import WorkloadMapping
from repro.experiments.common import Platform, build_platform
from repro.power.cstates import CState
from repro.thermal.metrics import ThermalMetrics
from repro.thermosyphon.design import PAPER_OPTIMIZED_DESIGN
from repro.workloads.configuration import Configuration
from repro.workloads.parsec import get_benchmark

#: The three 4-core placements of the paper's Fig. 6 on our core numbering
#: (cores 0-3 western column north to south, cores 4-7 eastern column).
SCENARIO_CORE_SETS: dict[str, tuple[int, ...]] = {
    "scenario1_one_per_row": (0, 2, 5, 7),
    "scenario2_corners": (0, 3, 4, 7),
    "scenario3_clustered": (0, 1, 4, 5),
}


@dataclass(frozen=True)
class ScenarioResult:
    """Die metrics of one (scenario, idle C-state) pair."""

    scenario: str
    idle_cstate: CState
    die: ThermalMetrics
    package_power_w: float


@dataclass
class Fig6Result:
    """All scenario results."""

    results: list[ScenarioResult]

    def result(self, scenario: str, idle_cstate: CState) -> ScenarioResult:
        """Look up one (scenario, C-state) pair."""
        for record in self.results:
            if record.scenario == scenario and record.idle_cstate is idle_cstate:
                return record
        raise KeyError(f"no result for {scenario!r} under {idle_cstate}")

    def best_scenario(self, idle_cstate: CState) -> str:
        """Scenario with the smallest die hot spot for a given idle C-state."""
        candidates = [record for record in self.results if record.idle_cstate is idle_cstate]
        return min(candidates, key=lambda record: record.die.theta_max_c).scenario

    def as_table(self) -> str:
        """Render the Fig. 6d comparison."""
        headers = (
            "Idle C-state",
            "Scenario",
            "theta_max (C)",
            "theta_avg (C)",
            "grad_max (C/mm)",
        )
        rows = [
            (
                record.idle_cstate.value,
                record.scenario,
                record.die.theta_max_c,
                record.die.theta_avg_c,
                record.die.grad_max_c_per_mm,
            )
            for record in self.results
        ]
        return format_table(headers, rows, title="Fig. 6 - 4-core mapping scenarios (die)")


def run_fig6(
    platform: Platform | None = None,
    *,
    benchmark_name: str = "x264",
    idle_cstates: tuple[CState, ...] = (CState.POLL, CState.C1),
    frequency_ghz: float = 3.2,
) -> Fig6Result:
    """Evaluate the three placements under each idle C-state."""
    platform = platform if platform is not None else build_platform()
    benchmark = get_benchmark(benchmark_name)
    simulation = platform.simulation(PAPER_OPTIMIZED_DESIGN)
    configuration = Configuration(n_cores=4, threads_per_core=2, frequency_ghz=frequency_ghz)

    results: list[ScenarioResult] = []
    for idle_cstate in idle_cstates:
        for scenario, cores in SCENARIO_CORE_SETS.items():
            mapping = WorkloadMapping(
                benchmark_name=benchmark.name,
                configuration=configuration,
                active_cores=cores,
                idle_cstate=idle_cstate,
                policy_name=scenario,
            )
            evaluation = simulation.simulate_mapping(benchmark, mapping)
            results.append(
                ScenarioResult(
                    scenario=scenario,
                    idle_cstate=idle_cstate,
                    die=evaluation.die_metrics,
                    package_power_w=evaluation.package_power_w,
                )
            )
    return Fig6Result(results=results)
