"""Run every experiment and print the full reproduction report.

Usage::

    python -m repro.experiments.runner            # full suite (slow)
    python -m repro.experiments.runner --quick    # reduced benchmark set
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

from repro import obs
from repro.experiments.common import build_platform
from repro.experiments.cooling_power import run_cooling_power
from repro.experiments.fig2_motivation import run_fig2
from repro.experiments.fig3_qos_exec_time import run_fig3
from repro.experiments.fig5_orientation import run_fig5
from repro.experiments.fig6_mapping_scenarios import run_fig6
from repro.experiments.fig7_thermal_maps import run_fig7
from repro.experiments.fig8_controller_trace import run_fig8
from repro.experiments.fig9_rack_trace import run_fig9
from repro.experiments.fig10_datacenter_trace import run_fig10
from repro.experiments.table1_cstates import run_table1
from repro.experiments.table2_hotspots import run_table2
from repro.workloads.parsec import PARSEC_BENCHMARK_NAMES

#: Reduced benchmark set used by ``--quick`` runs and the test suite.
QUICK_BENCHMARKS: tuple[str, ...] = ("x264", "swaptions", "canneal", "streamcluster")


def run_all(
    *,
    quick: bool = False,
    cell_size_mm: float = 1.0,
    max_workers: int | None = None,
    racks: int = 2,
    hetero: bool = False,
    mpc: bool = False,
    chillers: int = 1,
    coarse: bool = False,
    fig10_duration_s: float | None = None,
    parallel_groups: int = 0,
    warm_store: str | None = None,
    telemetry: str | None = None,
    verbose: bool = False,
) -> str:
    """Run every experiment and return the combined textual report.

    ``max_workers`` fans the batched benchmark sweeps (Table II and the
    cooling-power comparison) out over worker processes; the remaining
    experiments run serially on the shared, factorization-cached platform.
    ``racks``/``hetero`` size the fig10 datacenter floor and optionally mix
    thermosyphon designs across its racks (exercising the floor engine's
    multi-group path); ``mpc`` adds fig10's model-predictive third leg and
    ``chillers`` swaps its plant for an N-unit staged chiller bank.
    ``coarse`` turns on fig10's adaptive control-period coarsening +
    reduced-order thermal lane (the long-trace engine), and
    ``fig10_duration_s`` overrides the fig10 trace length — together they
    make multi-day traces practical from the command line.
    ``parallel_groups`` fans fig10's hardware groups over worker threads
    (pays off with ``hetero=True``) and ``warm_store`` names a directory
    that persists reduced bases and assembled operators across invocations
    — the year-scale knobs (see the README's simulated-year recipe).
    ``telemetry`` names a ``.jsonl`` path: a telemetry hub is enabled for
    the whole suite and the run's counters, histograms and spans are
    exported there (plus a Chrome/Perfetto trace next to it) when the suite
    finishes.  ``verbose`` appends each fig10 run's full trace summary —
    including the telemetry footer when the hub is on.
    """
    platform = build_platform(cell_size_mm=cell_size_mm)
    benchmarks = QUICK_BENCHMARKS if quick else PARSEC_BENCHMARK_NAMES
    sections: list[str] = []

    previous_hub = None
    hub = None
    if telemetry is not None:
        hub = obs.Telemetry()
        previous_hub = obs.set_telemetry(hub)

    start = time.time()
    try:
        sections.append(run_table1().as_table())
        sections.append(run_fig3(benchmarks).as_table())
        sections.append(run_fig2(platform).as_table())
        sections.append(run_fig5(platform).as_table())
        sections.append(run_fig6(platform).as_table())
        table2 = run_table2(platform, benchmark_names=benchmarks, max_workers=max_workers)
        sections.append(table2.as_table())
        improvements = table2.improvement_summary()
        improvement_lines = ["Improvements of the proposed approach:"]
        for key, values in improvements.items():
            improvement_lines.append(
                f"  vs {key}: die hot spot -{values['die_theta_max_reduction_c']:.1f} C, "
                f"die gradient -{values['die_grad_reduction_pct']:.0f}%"
            )
        sections.append("\n".join(improvement_lines))
        sections.append(run_fig7(platform).as_text())
        sections.append(run_fig8(platform, duration_s=30.0 if quick else 60.0).as_table())
        sections.append(
            run_fig9(
                platform,
                n_servers=2 if quick else 4,
                duration_s=20.0 if quick else 40.0,
            ).as_table()
        )
        sections.append(
            run_fig10(
                platform,
                n_racks=racks,
                servers_per_rack=2 if quick else 4,
                duration_s=(
                    fig10_duration_s
                    if fig10_duration_s is not None
                    else (24.0 if quick else 48.0)
                ),
                hetero=hetero,
                mpc=mpc,
                chillers=chillers,
                coarse=coarse,
                parallel_groups=parallel_groups,
                warm_store=warm_store,
            ).as_table(verbose=verbose)
        )
        sections.append(
            run_cooling_power(
                platform, benchmark_names=benchmarks, max_workers=max_workers
            ).as_table()
        )
    finally:
        platform.close()
        if hub is not None:
            try:
                manifest = obs.run_manifest(
                    config={
                        "quick": quick,
                        "cell_size_mm": cell_size_mm,
                        "racks": racks,
                        "hetero": hetero,
                        "mpc": mpc,
                        "chillers": chillers,
                        "coarse": coarse,
                        "fig10_duration_s": fig10_duration_s,
                        "parallel_groups": parallel_groups,
                    }
                )
                events = obs.write_jsonl(hub, telemetry, manifest=manifest)
                trace_path = Path(telemetry).with_suffix(".trace.json")
                obs.write_chrome_trace(hub, trace_path)
                sections.append(
                    f"Telemetry: {events} events -> {telemetry} "
                    f"(Chrome trace: {trace_path})"
                )
            finally:
                obs.set_telemetry(previous_hub)
    elapsed = time.time() - start
    sections.append(f"Total experiment time: {elapsed:.1f} s")
    return "\n\n".join(sections)


def main() -> None:
    """Command-line entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="use a reduced benchmark set")
    parser.add_argument(
        "--cell-size-mm",
        type=float,
        default=1.0,
        help="thermal grid cell size in millimetres (smaller = finer, slower)",
    )
    parser.add_argument(
        "--parallel",
        type=int,
        default=None,
        metavar="N",
        help="fan batched sweeps out over N worker processes",
    )
    parser.add_argument(
        "--racks",
        type=int,
        default=2,
        metavar="N",
        help="number of racks on the fig10 datacenter floor",
    )
    parser.add_argument(
        "--hetero",
        action="store_true",
        help="cycle two thermosyphon designs across the fig10 floor's racks",
    )
    parser.add_argument(
        "--mpc",
        action="store_true",
        help="add fig10's model-predictive supervisory run (receding-horizon "
        "rollouts next to the fixed and reactive baselines)",
    )
    parser.add_argument(
        "--chillers",
        type=int,
        default=1,
        metavar="N",
        help="size of the fig10 staged chiller bank (1 = single plant)",
    )
    parser.add_argument(
        "--coarse",
        action="store_true",
        help="run fig10 with adaptive control-period coarsening and the "
        "reduced-order thermal lane (long-trace engine)",
    )
    parser.add_argument(
        "--fig10-duration",
        type=float,
        default=None,
        metavar="SECONDS",
        help="override the fig10 trace duration (pair with --coarse for "
        "long, multi-day traces)",
    )
    parser.add_argument(
        "--parallel-groups",
        type=int,
        default=0,
        metavar="N",
        help="advance the fig10 floor's hardware groups on N worker threads "
        "(bit-identical to serial; pays off with --hetero)",
    )
    parser.add_argument(
        "--warm-store",
        default=None,
        metavar="DIR",
        help="persist reduced-order bases and assembled operators to DIR so "
        "repeat runs skip every Arnoldi build (also: REPRO_WARM_STORE)",
    )
    parser.add_argument(
        "--telemetry",
        default=None,
        metavar="OUT.jsonl",
        help="enable the telemetry hub and export counters, histograms and "
        "spans to OUT.jsonl (plus a Perfetto-loadable OUT.trace.json); "
        "render it with `python -m repro.obs.report OUT.jsonl`",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="print each fig10 run's full trace summary (includes the "
        "telemetry footer when --telemetry is on)",
    )
    arguments = parser.parse_args()
    print(
        run_all(
            quick=arguments.quick,
            cell_size_mm=arguments.cell_size_mm,
            max_workers=arguments.parallel,
            racks=arguments.racks,
            hetero=arguments.hetero,
            mpc=arguments.mpc,
            chillers=arguments.chillers,
            coarse=arguments.coarse,
            fig10_duration_s=arguments.fig10_duration,
            parallel_groups=arguments.parallel_groups,
            warm_store=arguments.warm_store,
            telemetry=arguments.telemetry,
            verbose=arguments.verbose,
        )
    )


if __name__ == "__main__":
    main()
