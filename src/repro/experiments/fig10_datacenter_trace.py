"""Datacenter trace study — fixed vs reactive vs MPC setpoint control.

The datacenter companion of the fig9 rack study and the runtime answer to
the paper's Section VIII argument: the warmer the chiller water, the
cheaper the cooling — *if* every CPU stays under its case-temperature
limit.  A seeded scenario (diurnal by default) drives a floor of racks
behind one shared chiller plant up to three times:

* **fixed** — the chiller supply stays at the design setpoint for the
  whole trace; only the paper's fast per-server valve/DVFS rule acts.
* **supervisory** — the reactive slow loop of
  :class:`~repro.datacenter.supervisory.SupervisoryController` raises the
  setpoint step by step while every server's predicted peak case
  temperature clears ``T_CASE_MAX`` by a guard margin, and drops it on a
  violation.
* **mpc** (``mpc=True``) — the
  :class:`~repro.datacenter.supervisory.MpcSupervisoryController` plans
  the setpoint by receding-horizon rollouts through the real floor
  engine, taking the multi-step raises the reactive bound never
  authorizes.

All runs share the identical floor, scenario and fast rule, so the report
isolates the supervisory layers' contributions: plant energy saved at
zero thermal violations, plus the floor-wide operator-factorization count
that the shared solver cache keeps low (every rack — and every MPC
rollout — draws from one cache).  ``chillers > 1`` swaps the single plant
for a staged :class:`~repro.thermosyphon.chiller.ChillerBank` with
part-load curves, adding unit commitment to every run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.datacenter.model import CoarseningConfig, DatacenterModel, DatacenterTrace
from repro.datacenter.scenarios import DatacenterScenario, build_scenario
from repro.datacenter.supervisory import (
    MpcSupervisoryController,
    SupervisoryController,
)
from repro.experiments.common import Platform, build_platform
from repro.thermal.simulator import ThermalSimulator
from repro.thermosyphon.chiller import ChillerBank, ChillerPlant
from repro.thermosyphon.design import (
    PAPER_OPTIMIZED_DESIGN,
    SEURET_REFERENCE_DESIGN,
)


@dataclass
class Fig10Result:
    """Fixed vs reactive (vs MPC) runs of one datacenter scenario.

    ``mpc`` and ``mpc_wall_time_s`` are ``None`` unless the study ran the
    third, model-predictive leg.
    """

    scenario: DatacenterScenario
    setpoint_c: float
    fixed: DatacenterTrace
    fixed_wall_time_s: float
    supervisory: DatacenterTrace
    supervisory_wall_time_s: float
    mpc: DatacenterTrace | None = None
    mpc_wall_time_s: float | None = None
    n_chillers: int = 1
    coarse: bool = False

    @property
    def plant_energy_saved_pct(self) -> float:
        """Plant electrical energy saved by the reactive supervisory loop."""
        baseline = self.fixed.plant_energy_j
        if baseline <= 0.0:
            return 0.0
        return (baseline - self.supervisory.plant_energy_j) / baseline * 100.0

    @property
    def mpc_plant_energy_saved_pct(self) -> float:
        """Plant energy saved by MPC over the *fixed* baseline."""
        baseline = self.fixed.plant_energy_j
        if self.mpc is None or baseline <= 0.0:
            return 0.0
        return (baseline - self.mpc.plant_energy_j) / baseline * 100.0

    @property
    def mpc_vs_reactive_saved_pct(self) -> float:
        """Plant energy saved by MPC over the *reactive* supervisory run."""
        baseline = self.supervisory.plant_energy_j
        if self.mpc is None or baseline <= 0.0:
            return 0.0
        return (baseline - self.mpc.plant_energy_j) / baseline * 100.0

    def as_table(self, *, verbose: bool = False) -> str:
        """Textual report of every run.

        ``verbose`` appends each run's full :meth:`~repro.datacenter.\
model.DatacenterTrace.summary` — including the telemetry footer when a
        telemetry hub is enabled (span counts, ROM fallback causes, cache
        hit rate).
        """
        scenario = self.scenario
        plant = (
            f"{self.n_chillers}-unit staged bank"
            if self.n_chillers > 1
            else "single plant"
        )
        header = (
            f"Datacenter trace - {scenario.kind} scenario, {scenario.n_racks} racks x "
            f"{scenario.racks[0].n_servers} servers, {scenario.duration_s:.0f} s, "
            f"seed {scenario.seed}, {plant}"
        )
        columns = (
            f"{'control':>12} {'setpoint':>14} {'plant E (kJ)':>13} {'viol.':>6} "
            f"{'peak T_case':>12} {'factor.':>8} {'time (s)':>9}"
        )
        runs: list[tuple[str, DatacenterTrace, float]] = [
            ("fixed", self.fixed, self.fixed_wall_time_s),
            ("supervisory", self.supervisory, self.supervisory_wall_time_s),
        ]
        if self.mpc is not None:
            runs.append(("mpc", self.mpc, self.mpc_wall_time_s or 0.0))
        rows = []
        for label, trace, wall in runs:
            first = trace.setpoint_c[0] if trace.setpoint_c else float("nan")
            last = trace.setpoint_c[-1] if trace.setpoint_c else float("nan")
            rows.append(
                f"{label:>12} {first:>5.1f} -> {last:>4.1f} C "
                f"{trace.plant_energy_j / 1e3:>13.2f} {trace.thermal_violations:>6} "
                f"{trace.peak_period_case_temperature_c:>11.1f}C "
                f"{trace.factorizations if trace.factorizations is not None else 0:>8} "
                f"{wall:>9.2f}"
            )
        footer = [
            f"supervisory setpoint control: {self.plant_energy_saved_pct:.1f}% plant "
            f"energy saved ({self.supervisory.setpoint_raises} raises, "
            f"{self.supervisory.setpoint_lowers} lowers) at "
            f"{self.supervisory.thermal_violations} thermal violations"
        ]
        if self.mpc is not None:
            footer.append(
                f"mpc setpoint control: {self.mpc_plant_energy_saved_pct:.1f}% plant "
                f"energy saved vs fixed ({self.mpc_vs_reactive_saved_pct:.1f}% vs "
                f"reactive; {self.mpc.setpoint_raises} raises, "
                f"{self.mpc.setpoint_lowers} lowers) at "
                f"{self.mpc.thermal_violations} thermal violations"
            )
        if self.mpc is not None and self.mpc.staging:
            units_on = [s.n_units_on for s in self.mpc.staging]
            footer.append(
                f"chiller bank staging (mpc run): {min(units_on)}-{max(units_on)} "
                f"units on, {self.mpc.overloaded_periods} overloaded periods"
            )
        if self.coarse:
            for label, trace, _ in runs:
                if trace.coarse_periods:
                    rom = trace.rom_stats
                    rom_note = (
                        f", {rom.rom_periods} ROM periods ({rom.fallbacks} fallbacks)"
                        if rom is not None and rom.spans
                        else ""
                    )
                    footer.append(
                        f"{label} coarsening: {trace.coarse_periods} of "
                        f"{trace.n_periods} periods in {trace.coarse_spans} "
                        f"macro-steps{rom_note}"
                    )
        if verbose:
            for label, trace, _ in runs:
                footer.append(f"--- {label} run summary ---")
                footer.append(trace.summary())
        return "\n".join([header, columns, *rows, *footer])


def run_fig10(
    platform: Platform | None = None,
    *,
    scenario_kind: str = "diurnal",
    n_racks: int = 2,
    servers_per_rack: int = 4,
    duration_s: float = 40.0,
    control_period_s: float = 2.0,
    supervisory_period_s: float = 8.0,
    seed: int = 7,
    setpoint_c: float | None = None,
    setpoint_max_c: float = 40.0,
    outdoor_temperature_c: float = 18.0,
    hetero: bool = False,
    mpc: bool = False,
    mpc_horizon: int = 4,
    chillers: int = 1,
    chiller_capacity_w: float | None = None,
    coarse: bool = False,
    coarsening: CoarseningConfig | None = None,
    phase_dt_s: float | None = None,
    envelope_period_s: float | None = None,
    parallel_groups: int = 0,
    warm_store=None,
) -> Fig10Result:
    """Run one scenario under fixed, reactive and (optionally) MPC control.

    Each run gets a fresh thermal simulator (empty factorization cache) —
    the fig9 convention — so the reported wall times and factorization
    counts are cold-cache and comparable; within a run, the floor engine
    stacks every rack's servers through shared per-hardware-group
    operators.  ``n_racks`` scales the floor (the engine's stacked solves
    keep the cost roughly one rack's worth when hardware is shared), and
    ``hetero=True`` cycles the paper-optimized and Seuret reference
    thermosyphon designs across racks — a mixed floor running through the
    same stacked engine, no fallback.

    ``mpc=True`` adds the third leg: a
    :class:`MpcSupervisoryController` with ``mpc_horizon`` supervisory
    windows of lookahead.  ``chillers > 1`` replaces the single plant with
    a staged :class:`ChillerBank` of that many identical units (each of
    ``chiller_capacity_w`` rated thermal load; the default budgets 120 W
    per server across the bank) for *every* run, so the comparison stays
    apples to apples.

    ``coarse=True`` turns on adaptive control-period coarsening (with the
    reduced-order thermal lane) for every run — the long-trace engine of
    :class:`~repro.datacenter.model.CoarseningConfig`; pass ``coarsening``
    to override its knobs.  ``phase_dt_s``/``envelope_period_s`` forward to
    :func:`~repro.datacenter.scenarios.build_scenario` so a multi-day
    trace can keep hour-scale envelope phases (long, locally flat spans
    are what the coarsener converts into macro-steps).

    ``parallel_groups`` and ``warm_store`` forward to
    :class:`~repro.datacenter.model.DatacenterModel`: the former fans the
    floor's hardware groups over worker threads (bit-identical; pays off
    on ``hetero=True`` floors), the latter persists reduced bases and
    assembled operators across runs (a directory path or a
    :class:`~repro.thermal.warm_store.WarmStore`).
    """
    platform = platform if platform is not None else build_platform()
    scenario = build_scenario(
        scenario_kind,
        n_racks=n_racks,
        servers_per_rack=servers_per_rack,
        duration_s=duration_s,
        seed=seed,
        phase_dt_s=phase_dt_s,
        envelope_period_s=envelope_period_s,
        floorplan=platform.floorplan,
        designs=(
            (PAPER_OPTIMIZED_DESIGN, SEURET_REFERENCE_DESIGN) if hetero else None
        ),
    )
    single_plant = ChillerPlant(free_cooling_outdoor_c=outdoor_temperature_c)
    if chillers > 1:
        n_servers = n_racks * servers_per_rack
        capacity_w = (
            chiller_capacity_w
            if chiller_capacity_w is not None
            else 120.0 * n_servers / chillers
        )
        plant: ChillerPlant | ChillerBank = ChillerBank.uniform(
            chillers, capacity_w, plant=single_plant
        )
    else:
        plant = single_plant
    setpoint = (
        setpoint_c
        if setpoint_c is not None
        else PAPER_OPTIMIZED_DESIGN.water_inlet_temperature_c
    )

    coarse_config = (
        coarsening
        if coarsening is not None
        else (CoarseningConfig() if coarse else None)
    )
    coarse = coarse_config is not None

    def floor() -> DatacenterModel:
        return DatacenterModel(
            scenario.racks,
            plant=plant,
            floorplan=platform.floorplan,
            power_model=platform.power_model,
            thermal_simulator=ThermalSimulator(
                platform.floorplan, cell_size_mm=platform.cell_size_mm
            ),
            control_period_s=control_period_s,
            supply_setpoint_c=setpoint,
            coarsening=coarse_config,
            parallel_groups=parallel_groups,
            warm_store=warm_store,
        )

    start = time.perf_counter()
    fixed = floor().run_trace(duration_s=duration_s)
    fixed_wall_time_s = time.perf_counter() - start

    supervisory = SupervisoryController(
        period_s=supervisory_period_s, setpoint_max_c=setpoint_max_c
    )
    start = time.perf_counter()
    controlled = floor().run_trace(duration_s=duration_s, supervisory=supervisory)
    supervisory_wall_time_s = time.perf_counter() - start

    mpc_trace: DatacenterTrace | None = None
    mpc_wall_time_s: float | None = None
    if mpc:
        planner = MpcSupervisoryController(
            period_s=supervisory_period_s,
            setpoint_max_c=setpoint_max_c,
            horizon=mpc_horizon,
        )
        start = time.perf_counter()
        mpc_trace = floor().run_trace(duration_s=duration_s, supervisory=planner)
        mpc_wall_time_s = time.perf_counter() - start

    return Fig10Result(
        scenario=scenario,
        setpoint_c=setpoint,
        fixed=fixed,
        fixed_wall_time_s=fixed_wall_time_s,
        supervisory=controlled,
        supervisory_wall_time_s=supervisory_wall_time_s,
        mpc=mpc_trace,
        mpc_wall_time_s=mpc_wall_time_s,
        n_chillers=chillers,
        coarse=coarse,
    )
