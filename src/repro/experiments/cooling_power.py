"""Section VIII-B — chiller cooling-power comparison.

The paper argues that without the proposed design and mapping, reaching the
same hot-spot temperature requires colder chiller water (20 degC instead of
30 degC at the same flow rate) and produces a larger water temperature rise
across the condenser, which together increase the chiller power computed by
Eq. 1 by at least 45%.

This experiment reproduces that comparison: the proposed stack is evaluated
at its nominal water temperature, the state-of-the-art stack's water
temperature is lowered until it matches the proposed hot spot, and the
chiller power of both operating points is compared.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.reporting import format_table, percentage_reduction
from repro.experiments.common import (
    Approach,
    Platform,
    build_platform,
    evaluate_approach_batch,
    paper_approaches,
)
from repro.thermosyphon.chiller import ChillerModel
from repro.workloads.parsec import PARSEC_BENCHMARK_NAMES
from repro.workloads.qos import QoSConstraint


@dataclass
class CoolingOperatingPoint:
    """One approach's rack-averaged cooling operating point."""

    approach: str
    water_inlet_temperature_c: float
    average_hot_spot_c: float
    average_package_power_w: float
    average_water_delta_t_c: float
    chiller_power_w: float


@dataclass
class CoolingPowerResult:
    """Proposed vs state-of-the-art chiller power."""

    proposed: CoolingOperatingPoint
    state_of_the_art: CoolingOperatingPoint

    @property
    def chiller_power_reduction_pct(self) -> float:
        """Chiller power reduction achieved by the proposed approach."""
        return percentage_reduction(
            self.state_of_the_art.chiller_power_w, self.proposed.chiller_power_w
        )

    def as_table(self) -> str:
        """Render the cooling-power comparison."""
        headers = (
            "Approach",
            "Water inlet (C)",
            "Avg hot spot (C)",
            "Avg package power (W)",
            "Water delta-T (C)",
            "Chiller power (W)",
        )
        rows = [
            (
                point.approach,
                point.water_inlet_temperature_c,
                point.average_hot_spot_c,
                point.average_package_power_w,
                point.average_water_delta_t_c,
                point.chiller_power_w,
            )
            for point in (self.proposed, self.state_of_the_art)
        ]
        footer = f"\nChiller power reduction: {self.chiller_power_reduction_pct:.1f}%"
        return format_table(headers, rows, title="Section VIII-B - chiller cooling power") + footer


def _evaluate_stack(
    platform: Platform,
    approach: Approach,
    benchmark_names: tuple[str, ...],
    constraint: QoSConstraint,
    water_inlet_temperature_c: float,
    chiller: ChillerModel,
    max_workers: int | None = None,
) -> CoolingOperatingPoint:
    hot_spots: list[float] = []
    powers: list[float] = []
    delta_ts: list[float] = []
    chiller_power = 0.0
    results = evaluate_approach_batch(
        platform,
        approach,
        benchmark_names,
        constraint,
        water_inlet_temperature_c=water_inlet_temperature_c,
        max_workers=max_workers,
    )
    for result in results:
        hot_spots.append(result.die_metrics.theta_max_c)
        powers.append(result.package_power_w)
        delta_ts.append(result.water_delta_t_c)
        # The evaluated water loop is carried on the result, so the chiller
        # accounting reflects the operating point that actually ran.
        chiller_power += result.chiller_power_w(chiller)
    return CoolingOperatingPoint(
        approach=approach.name,
        water_inlet_temperature_c=water_inlet_temperature_c,
        average_hot_spot_c=float(np.mean(hot_spots)),
        average_package_power_w=float(np.mean(powers)),
        average_water_delta_t_c=float(np.mean(delta_ts)),
        chiller_power_w=chiller_power,
    )


def run_cooling_power(
    platform: Platform | None = None,
    *,
    benchmark_names: tuple[str, ...] = PARSEC_BENCHMARK_NAMES,
    qos_factor: float = 2.0,
    proposed_water_temperature_c: float = 30.0,
    water_search_low_c: float = 10.0,
    water_tolerance_c: float = 0.5,
    max_workers: int | None = None,
) -> CoolingPowerResult:
    """Compare chiller power of the proposed and state-of-the-art stacks.

    The state-of-the-art stack's water inlet temperature is lowered (by
    bisection) until its average hot spot matches the proposed stack's hot
    spot at the nominal 30 degC water, mirroring the paper's argument.
    """
    own_platform = platform is None
    platform = platform if platform is not None else build_platform()
    try:
        return _run_cooling_power(
            platform,
            benchmark_names,
            qos_factor,
            proposed_water_temperature_c,
            water_search_low_c,
            water_tolerance_c,
            max_workers,
        )
    finally:
        if own_platform:
            platform.close()


def _run_cooling_power(
    platform: Platform,
    benchmark_names: tuple[str, ...],
    qos_factor: float,
    proposed_water_temperature_c: float,
    water_search_low_c: float,
    water_tolerance_c: float,
    max_workers: int | None,
) -> CoolingPowerResult:
    constraint = QoSConstraint(qos_factor)
    chiller = ChillerModel()
    approaches = paper_approaches()
    proposed = next(a for a in approaches if a.name == "proposed")
    baseline = next(a for a in approaches if a.name == "[8]+[27]+[9]")

    proposed_point = _evaluate_stack(
        platform, proposed, benchmark_names, constraint, proposed_water_temperature_c,
        chiller, max_workers,
    )

    target_hot_spot = proposed_point.average_hot_spot_c

    # Bisection on the baseline's water temperature to match the hot spot.
    low = water_search_low_c
    high = proposed_water_temperature_c
    baseline_at_high = _evaluate_stack(
        platform, baseline, benchmark_names, constraint, high, chiller, max_workers
    )
    if baseline_at_high.average_hot_spot_c <= target_hot_spot:
        baseline_point = baseline_at_high
    else:
        baseline_point = _evaluate_stack(
            platform, baseline, benchmark_names, constraint, low, chiller, max_workers
        )
        low_temperature, high_temperature = low, high
        while high_temperature - low_temperature > water_tolerance_c:
            middle = 0.5 * (low_temperature + high_temperature)
            candidate = _evaluate_stack(
                platform, baseline, benchmark_names, constraint, middle, chiller, max_workers
            )
            if candidate.average_hot_spot_c <= target_hot_spot:
                baseline_point = candidate
                low_temperature = middle
            else:
                high_temperature = middle

    return CoolingPowerResult(proposed=proposed_point, state_of_the_art=baseline_point)
