"""Fig. 5 — thermosyphon orientation comparison for a fully loaded CPU.

Design 1 routes the refrigerant eastwards (channels run east-west, the
quality-rich outlet ends over the die's dead area); Design 2 routes it from
north to south.  The paper compares the package and die hot spots, averages
and maximum gradients of the two and picks Design 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import format_table
from repro.experiments.common import Platform, build_platform
from repro.power.power_model import CoreActivity
from repro.thermal.metrics import ThermalMetrics
from repro.thermosyphon.design import PAPER_OPTIMIZED_DESIGN, ThermosyphonDesign
from repro.thermosyphon.orientation import Orientation
from repro.workloads.parsec import get_benchmark


@dataclass
class OrientationCase:
    """Metrics of one orientation."""

    label: str
    orientation: Orientation
    die: ThermalMetrics
    package: ThermalMetrics
    max_channel_quality: float
    dryout: bool


@dataclass
class Fig5Result:
    """Both orientations side by side."""

    design1: OrientationCase
    design2: OrientationCase

    def as_table(self) -> str:
        """Render the Fig. 5c comparison."""
        headers = (
            "Design",
            "Surface",
            "theta_max (C)",
            "theta_avg (C)",
            "grad_max (C/mm)",
        )
        rows = []
        for case in (self.design1, self.design2):
            rows.append(
                (case.label, "Package", case.package.theta_max_c, case.package.theta_avg_c, case.package.grad_max_c_per_mm)
            )
        for case in (self.design1, self.design2):
            rows.append(
                (case.label, "Die", case.die.theta_max_c, case.die.theta_avg_c, case.die.grad_max_c_per_mm)
            )
        return format_table(headers, rows, title="Fig. 5 - thermosyphon orientation comparison")

    @property
    def design1_wins(self) -> bool:
        """True if the eastward-flow design has the smaller die hot spot."""
        return self.design1.die.theta_max_c <= self.design2.die.theta_max_c


def _evaluate_orientation(
    platform: Platform,
    design: ThermosyphonDesign,
    label: str,
    benchmark_name: str,
) -> OrientationCase:
    benchmark = get_benchmark(benchmark_name)
    simulation = platform.simulation(design)
    activities = [
        CoreActivity.running(core.core_index, benchmark.core_power_parameters(), 2)
        for core in platform.floorplan.cores
    ]
    result = simulation.simulate_activities(
        activities,
        3.2,
        memory_intensity=benchmark.memory_intensity,
        benchmark_name=benchmark.name,
    )
    return OrientationCase(
        label=label,
        orientation=design.orientation,
        die=result.die_metrics,
        package=result.package_metrics,
        max_channel_quality=result.max_channel_quality,
        dryout=result.dryout,
    )


def run_fig5(
    platform: Platform | None = None,
    *,
    benchmark_name: str = "x264",
) -> Fig5Result:
    """Evaluate the two orientations of the paper's Fig. 5."""
    platform = platform if platform is not None else build_platform()
    design1 = PAPER_OPTIMIZED_DESIGN.with_orientation(Orientation.WEST_TO_EAST)
    design2 = PAPER_OPTIMIZED_DESIGN.with_orientation(Orientation.NORTH_TO_SOUTH)
    return Fig5Result(
        design1=_evaluate_orientation(platform, design1, "Design 1 (west-to-east)", benchmark_name),
        design2=_evaluate_orientation(platform, design2, "Design 2 (north-to-south)", benchmark_name),
    )
