"""Table I — C-state power consumption of the Xeon E5 v4 (all 8 cores)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import format_table
from repro.power.cstates import CState, CStateTable, XEON_E5_V4_CSTATE_TABLE
from repro.power.dvfs import CORE_FREQUENCIES_GHZ


@dataclass(frozen=True)
class CStateRow:
    """One row of Table I."""

    state: CState
    latency_us: float
    power_w_by_frequency: dict[float, float]
    measured: bool


@dataclass
class Table1Result:
    """All rows of Table I."""

    rows: list[CStateRow]

    def as_table(self) -> str:
        """Render in the paper's Table I layout."""
        headers = ["C-state", "Latency (us)"] + [
            f"Power (W) @{frequency:.1f}GHz" for frequency in CORE_FREQUENCIES_GHZ
        ]
        table_rows = []
        for row in self.rows:
            cells = [row.state.value, row.latency_us] + [
                row.power_w_by_frequency[frequency] for frequency in CORE_FREQUENCIES_GHZ
            ]
            if not row.measured:
                cells[0] = f"{row.state.value}*"
            table_rows.append(cells)
        note = "\n(*) extrapolated: the paper publishes POLL/C1/C1E only."
        return format_table(headers, table_rows, title="Table I - C-state power (all 8 cores)") + note


def run_table1(cstate_table: CStateTable = XEON_E5_V4_CSTATE_TABLE) -> Table1Result:
    """Collect the C-state table rows."""
    rows = []
    for state in cstate_table.states:
        entry = cstate_table.entry(state)
        rows.append(
            CStateRow(
                state=state,
                latency_us=entry.wakeup_latency_us,
                power_w_by_frequency={
                    frequency: entry.power_all_cores_w[frequency]
                    for frequency in CORE_FREQUENCIES_GHZ
                },
                measured=entry.measured,
            )
        )
    return Table1Result(rows=rows)
