"""Rack-trace study — batched rack engine vs independent per-server traces.

The rack companion of the fig8 controller study and of Section V's
rack-level evaluation: the same flow-rate-first/DVFS-second controller
drives a homogeneous rack over a phased PARSEC trace twice — once as
independent per-server transient traces (each server its own simulation,
operator factorizations and lane marches), and once through the
:class:`~repro.core.rack_session.RackSession` engine, where every server
sharing a cooling boundary advances through one cached factorization per
substep via multi-column back-substitution.  The decisions are identical by
construction (the batched path reproduces the per-server path to round-off);
the report compares the cost: operator factorizations, wall time, and the
rack-wide chiller energy both paths agree on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.mapping import ThreadMapper
from repro.core.mapping_policies import ProposedThermalAwareMapping
from repro.core.pipeline import CooledServerSimulation
from repro.core.runtime_controller import (
    ControllerTrace,
    RackServer,
    RackTrace,
    ThermosyphonController,
)
from repro.experiments.common import Platform, build_platform
from repro.thermal.simulator import ThermalSimulator
from repro.thermosyphon.design import PAPER_OPTIMIZED_DESIGN
from repro.workloads.configuration import Configuration
from repro.workloads.parsec import get_benchmark
from repro.workloads.qos import QoSConstraint
from repro.workloads.trace import generate_trace


@dataclass
class Fig9Result:
    """Batched rack engine vs per-server loop on one homogeneous rack trace."""

    benchmark: str
    n_servers: int
    duration_s: float
    control_period_s: float
    rack: RackTrace
    rack_wall_time_s: float
    per_server: list[ControllerTrace]
    per_server_wall_time_s: float

    @property
    def per_server_factorizations(self) -> int:
        """Total factorizations of the independent per-server traces."""
        return sum(trace.factorizations or 0 for trace in self.per_server)

    @property
    def factorization_ratio(self) -> float:
        """Per-server factorizations per batched-rack factorization."""
        return self.per_server_factorizations / max(self.rack.factorizations or 0, 1)

    @property
    def speedup(self) -> float:
        """Wall-time ratio per-server / batched rack."""
        return self.per_server_wall_time_s / max(self.rack_wall_time_s, 1e-12)

    def as_table(self) -> str:
        """Textual report of both paths."""
        header = (
            f"Rack trace - {self.n_servers} servers x {self.benchmark}, "
            f"{self.duration_s:.0f} s trace, {self.control_period_s:.0f} s period"
        )
        columns = (
            f"{'engine':>12} {'periods':>8} {'factor.':>8} {'flow+':>6} "
            f"{'emerg.':>7} {'peak T_case':>12} {'time (s)':>9}"
        )
        per_server_flow = sum(trace.flow_increases for trace in self.per_server)
        per_server_emergencies = sum(trace.emergencies for trace in self.per_server)
        per_server_peak = max(
            trace.peak_case_temperature_c for trace in self.per_server
        )
        periods = self.rack.n_periods
        rows = [
            f"{'per-server':>12} {periods:>8} {self.per_server_factorizations:>8} "
            f"{per_server_flow:>6} {per_server_emergencies:>7} "
            f"{per_server_peak:>11.1f}C {self.per_server_wall_time_s:>9.2f}",
            f"{'rack-batched':>12} {periods:>8} {self.rack.factorizations or 0:>8} "
            f"{self.rack.flow_increases:>6} {self.rack.emergencies:>7} "
            f"{self.rack.peak_case_temperature_c:>11.1f}C {self.rack_wall_time_s:>9.2f}",
        ]
        footer = (
            f"batched rack engine: {self.factorization_ratio:.1f}x fewer "
            f"factorizations, {self.speedup:.1f}x faster wall clock; "
            f"rack chiller energy {self.rack.chiller_energy_j / 1e3:.1f} kJ"
        )
        return "\n".join([header, columns, *rows, footer])


def run_fig9(
    platform: Platform | None = None,
    *,
    benchmark_name: str = "x264",
    qos_factor: float = 2.0,
    n_servers: int = 4,
    duration_s: float = 40.0,
    control_period_s: float = 2.0,
    n_steady_phases: int = 8,
) -> Fig9Result:
    """Run the homogeneous rack trace through both engines.

    Each path gets fresh simulations (empty factorization caches) so the
    factorization counts and wall clocks are not biased by warm operators.
    """
    platform = platform if platform is not None else build_platform()
    benchmark = get_benchmark(benchmark_name)
    constraint = QoSConstraint(qos_factor)
    mapper = ThreadMapper(
        platform.floorplan, orientation=PAPER_OPTIMIZED_DESIGN.orientation
    )
    mapping = mapper.map(
        benchmark, Configuration(8, 2, 3.2), ProposedThermalAwareMapping()
    )
    trace = generate_trace(
        benchmark, n_steady_phases=n_steady_phases, total_duration_s=duration_s
    )

    def fresh_simulation() -> CooledServerSimulation:
        return CooledServerSimulation(
            platform.floorplan,
            design=PAPER_OPTIMIZED_DESIGN,
            power_model=platform.power_model,
            thermal_simulator=ThermalSimulator(
                platform.floorplan, cell_size_mm=platform.cell_size_mm
            ),
        )

    # Independent per-server traces: each server its own simulation/cache.
    # Both timed regions include simulation construction — the per-server
    # path genuinely pays n_servers network assemblies, the rack path one.
    per_server: list[ControllerTrace] = []
    start = time.perf_counter()
    for _ in range(n_servers):
        controller = ThermosyphonController(
            fresh_simulation(), control_period_s=control_period_s
        )
        per_server.append(
            controller.run_trace(
                benchmark, mapping, constraint, trace, mode="transient"
            )
        )
    per_server_wall_time_s = time.perf_counter() - start

    # Batched rack engine: one shared operator per boundary group.
    servers = [RackServer(benchmark, mapping, constraint) for _ in range(n_servers)]
    start = time.perf_counter()
    controller = ThermosyphonController(
        fresh_simulation(), control_period_s=control_period_s
    )
    rack = controller.run_rack_trace(servers, trace)
    rack_wall_time_s = time.perf_counter() - start

    return Fig9Result(
        benchmark=benchmark.name,
        n_servers=n_servers,
        duration_s=trace.duration_s,
        control_period_s=control_period_s,
        rack=rack,
        rack_wall_time_s=rack_wall_time_s,
        per_server=per_server,
        per_server_wall_time_s=per_server_wall_time_s,
    )
