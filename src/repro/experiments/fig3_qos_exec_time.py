"""Fig. 3 — execution time normalised to the baseline per configuration.

The paper plots, for every PARSEC benchmark, the execution time of the
configurations (2,4), (4,4), (4,8), (8,8) and (8,16) at the nominal
frequency, normalised to the baseline (8 cores, 16 threads, fmax), together
with the 2x QoS-limit line.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import format_table
from repro.workloads.configuration import Configuration, figure3_configuration_space
from repro.workloads.parsec import PARSEC_BENCHMARK_NAMES, get_benchmark


@dataclass
class Fig3Result:
    """Normalised execution time per benchmark and configuration."""

    configurations: tuple[Configuration, ...]
    normalized_times: dict[str, list[float]]
    qos_limit: float = 2.0

    def series(self, benchmark_name: str) -> list[float]:
        """The series for one benchmark, ordered like ``configurations``."""
        return self.normalized_times[benchmark_name]

    def violations(self) -> dict[str, list[str]]:
        """Configurations exceeding the QoS limit per benchmark."""
        result: dict[str, list[str]] = {}
        for name, series in self.normalized_times.items():
            over = [
                configuration.label()
                for configuration, value in zip(self.configurations, series)
                if value > self.qos_limit
            ]
            result[name] = over
        return result

    def as_table(self) -> str:
        """Render the figure's series as a table (one row per benchmark)."""
        headers = ["Benchmark"] + [
            f"({c.n_cores},{c.total_threads},fmax)" for c in self.configurations
        ]
        rows = [
            [name] + [round(value, 2) for value in series]
            for name, series in self.normalized_times.items()
        ]
        title = (
            "Fig. 3 - execution time normalised to the baseline "
            f"(QoS limit = {self.qos_limit:.0f}x)"
        )
        return format_table(headers, rows, title=title)


def run_fig3(
    benchmark_names: tuple[str, ...] = PARSEC_BENCHMARK_NAMES,
    *,
    qos_limit: float = 2.0,
) -> Fig3Result:
    """Compute the normalised execution times of Fig. 3."""
    configurations = figure3_configuration_space()
    normalized: dict[str, list[float]] = {}
    for name in benchmark_names:
        benchmark = get_benchmark(name)
        normalized[name] = [
            benchmark.normalized_execution_time(
                configuration.n_cores,
                configuration.threads_per_core,
                configuration.frequency_ghz,
            )
            for configuration in configurations
        ]
    return Fig3Result(
        configurations=configurations,
        normalized_times=normalized,
        qos_limit=qos_limit,
    )
