"""Experiment runners — one module per table/figure of the paper.

================  ==========================================================
Module            Paper artefact
================  ==========================================================
``fig2``          Fig. 2 — die vs package thermal profile (motivation)
``fig3``          Fig. 3 — normalised execution time per configuration
``table1``        Table I — C-state power
``fig5``          Fig. 5 — thermosyphon orientation comparison
``fig6``          Fig. 6 — mapping scenarios under POLL and C1 idle states
``table2``        Table II — hot spots / gradients per approach and QoS
``fig7``          Fig. 7 — die thermal map, proposed vs state of the art
``fig8``          Section VII companion — steady vs transient controller trace
``cooling_power`` Section VIII-B — chiller cooling-power comparison
================  ==========================================================

``repro.experiments.runner`` executes everything and prints the report.
"""

from repro.experiments.common import (
    Approach,
    Platform,
    build_platform,
    evaluate_approach,
    paper_approaches,
)

__all__ = [
    "Approach",
    "Platform",
    "build_platform",
    "evaluate_approach",
    "paper_approaches",
]
