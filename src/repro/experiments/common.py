"""Shared experiment infrastructure: the platform and the compared approaches."""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.baselines.coskun_balancing import CoskunBalancingMapping
from repro.baselines.pack_and_cap import PackAndCapSelector
from repro.baselines.sabry_inlet_first import SabryInletFirstMapping
from repro.core.batch import BatchEvaluator, SweepPoint
from repro.core.config_selection import QoSAwareConfigSelector
from repro.core.mapping_policies import MappingPolicy, ProposedThermalAwareMapping
from repro.core.pipeline import CooledServerSimulation, EvaluationResult
from repro.exceptions import ConfigurationError
from repro.floorplan.floorplan import Floorplan
from repro.floorplan.xeon_e5_v4 import build_xeon_e5_v4_floorplan
from repro.power.power_model import ServerPowerModel
from repro.thermal.simulator import ThermalSimulator
from repro.thermosyphon.design import (
    PAPER_OPTIMIZED_DESIGN,
    SEURET_REFERENCE_DESIGN,
    ThermosyphonDesign,
)
from repro.workloads.benchmark import BenchmarkCharacteristics
from repro.workloads.configuration import Configuration
from repro.workloads.parsec import get_benchmark
from repro.workloads.profiler import WorkloadProfiler
from repro.workloads.qos import QoSConstraint


@dataclass
class Platform:
    """The shared substrate every experiment runs on."""

    floorplan: Floorplan
    power_model: ServerPowerModel
    thermal_simulator: ThermalSimulator
    profiler: WorkloadProfiler
    cell_size_mm: float
    _simulations: dict[str, CooledServerSimulation] = field(default_factory=dict)
    _evaluators: dict[str, BatchEvaluator] = field(default_factory=dict)

    def simulation(self, design: ThermosyphonDesign) -> CooledServerSimulation:
        """A (cached) cooled-server simulation for the given design."""
        if design.name not in self._simulations:
            self._simulations[design.name] = CooledServerSimulation(
                self.floorplan,
                design=design,
                power_model=self.power_model,
                thermal_simulator=self.thermal_simulator,
            )
        return self._simulations[design.name]

    def batch_evaluator(self, approach: "Approach") -> BatchEvaluator:
        """A (cached) batch evaluator for the given approach's stack."""
        if approach.name not in self._evaluators:
            self._evaluators[approach.name] = BatchEvaluator(
                self.simulation(approach.design), policy=approach.policy
            )
        return self._evaluators[approach.name]

    def close(self) -> None:
        """Shut down any worker pools started by the cached evaluators."""
        for evaluator in self._evaluators.values():
            evaluator.close()


def build_platform(*, cell_size_mm: float = 1.0) -> Platform:
    """Build the Xeon E5 v4 platform every experiment uses."""
    floorplan = build_xeon_e5_v4_floorplan()
    power_model = ServerPowerModel(floorplan)
    thermal_simulator = ThermalSimulator(floorplan, cell_size_mm=cell_size_mm)
    profiler = WorkloadProfiler(power_model)
    return Platform(
        floorplan=floorplan,
        power_model=power_model,
        thermal_simulator=thermal_simulator,
        profiler=profiler,
        cell_size_mm=cell_size_mm,
    )


@dataclass(frozen=True)
class Approach:
    """One complete design + configuration-selection + mapping stack."""

    name: str
    design: ThermosyphonDesign
    policy: MappingPolicy
    #: "algorithm1" uses the paper's QoS-aware selector; "pack_and_cap" the
    #: baseline selector of [27].
    selector: str = "algorithm1"

    def __post_init__(self) -> None:
        if self.selector not in ("algorithm1", "pack_and_cap"):
            raise ConfigurationError(
                f"selector must be 'algorithm1' or 'pack_and_cap', got {self.selector!r}"
            )


def paper_approaches() -> tuple[Approach, ...]:
    """The three stacks Table II compares.

    * ``proposed`` — this paper: optimised design, Algorithm 1 selection,
      thermosyphon-aware C-state-aware mapping.
    * ``[8]+[27]+[9]`` — Seuret design, Pack & Cap selection, Coskun
      thermal balancing.
    * ``[8]+[27]+[7]`` — Seuret design, Pack & Cap selection, Sabry
      inlet-first mapping.
    """
    return (
        Approach(
            name="proposed",
            design=PAPER_OPTIMIZED_DESIGN,
            policy=ProposedThermalAwareMapping(),
            selector="algorithm1",
        ),
        Approach(
            name="[8]+[27]+[9]",
            design=SEURET_REFERENCE_DESIGN,
            policy=CoskunBalancingMapping(),
            selector="pack_and_cap",
        ),
        Approach(
            name="[8]+[27]+[7]",
            design=SEURET_REFERENCE_DESIGN,
            policy=SabryInletFirstMapping(),
            selector="pack_and_cap",
        ),
    )


def select_configuration(
    platform: Platform,
    approach: Approach,
    benchmark: BenchmarkCharacteristics,
    constraint: QoSConstraint,
) -> Configuration:
    """Run the approach's configuration-selection stage."""
    if approach.selector == "algorithm1":
        selector = QoSAwareConfigSelector(platform.profiler)
        return selector.select(benchmark, constraint).configuration
    pack_and_cap = PackAndCapSelector(platform.profiler)
    return pack_and_cap.select(benchmark, constraint).configuration


def evaluate_approach_batch(
    platform: Platform,
    approach: Approach,
    benchmarks: Sequence[BenchmarkCharacteristics | str],
    constraint: QoSConstraint,
    *,
    water_inlet_temperature_c: float | None = None,
    max_workers: int | None = None,
) -> list[EvaluationResult]:
    """Run one approach end to end for many applications at one QoS level.

    All benchmarks are evaluated through the platform's cached
    :class:`BatchEvaluator` for the approach, so they share one simulation
    and one thermal factorization cache; ``max_workers`` optionally fans the
    points out over worker processes.
    """
    evaluator = platform.batch_evaluator(approach)
    water_loop = approach.design.water_loop()
    if water_inlet_temperature_c is not None:
        water_loop = water_loop.with_inlet_temperature(water_inlet_temperature_c)
    points = []
    for benchmark in benchmarks:
        if isinstance(benchmark, str):
            benchmark = get_benchmark(benchmark)
        configuration = select_configuration(platform, approach, benchmark, constraint)
        points.append(
            SweepPoint(
                benchmark=benchmark,
                configuration=configuration,
                water_loop=water_loop,
            )
        )
    return evaluator.evaluate_many(points, max_workers=max_workers)


def evaluate_approach(
    platform: Platform,
    approach: Approach,
    benchmark: BenchmarkCharacteristics,
    constraint: QoSConstraint,
    *,
    water_inlet_temperature_c: float | None = None,
) -> EvaluationResult:
    """Run one approach end to end for one application and QoS level."""
    return evaluate_approach_batch(
        platform,
        approach,
        [benchmark],
        constraint,
        water_inlet_temperature_c=water_inlet_temperature_c,
    )[0]
