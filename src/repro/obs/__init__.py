"""Unified observability layer: telemetry, span tracing, exporters, reports.

Disabled by default at zero cost; a run opts in with::

    from repro import obs

    hub = obs.enable()
    ...  # run the engine
    obs.write_jsonl(hub, "run.jsonl", manifest=obs.run_manifest(seed=7))
    obs.disable()

then ``python -m repro.obs.report run.jsonl`` renders the breakdown.
See the README's "Observability" section for the full recipe.
"""

from repro.obs.export import (
    config_digest,
    prometheus_text,
    read_jsonl,
    run_manifest,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    Counters,
    Histogram,
    Telemetry,
    disable,
    enable,
    get_telemetry,
    set_telemetry,
)
from repro.obs.tracing import SpanRecord, Tracer


def __getattr__(name: str):
    # Lazy: importing the report module eagerly would make
    # ``python -m repro.obs.report`` execute it twice (runpy warns when
    # the -m target is already in sys.modules via its package import).
    if name in ("build_report", "render_report"):
        from repro.obs import report

        return getattr(report, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Counters",
    "Histogram",
    "NULL_TELEMETRY",
    "SpanRecord",
    "Telemetry",
    "Tracer",
    "build_report",
    "config_digest",
    "disable",
    "enable",
    "get_telemetry",
    "prometheus_text",
    "read_jsonl",
    "render_report",
    "run_manifest",
    "set_telemetry",
    "write_chrome_trace",
    "write_jsonl",
    "write_prometheus",
]
