"""Telemetry hub: named counters, gauges and fixed-bucket histograms.

The observability substrate of the whole engine stack.  A
:class:`Telemetry` hub owns three metric families plus a
:class:`~repro.obs.tracing.Tracer` for nested span timing; instrumentation
sites talk to the *active* hub through :func:`get_telemetry`, which
returns a module-level :class:`_NullTelemetry` singleton unless a run
explicitly enabled telemetry.

Zero-overhead-when-disabled contract
------------------------------------
The null hub's mutators are empty methods and its :meth:`span` returns a
shared no-op context manager, so a disabled instrumentation site pays one
attribute lookup and one call — no allocation, no lock, no clock read.
Hot loops that would pay even that per iteration hoist the hub once
(``obs = get_telemetry()``) and branch on ``obs.enabled``.

Determinism contract
--------------------
Telemetry only ever *observes*: no simulation code path reads a counter,
gauge, histogram or span back into a physics decision, so committed
simulation results are bit-identical with telemetry enabled or disabled
(``tests/test_obs_identity.py`` pins this for the fine, coarsened and MPC
engine lanes).  Wall-clock readings live exclusively in the telemetry
stream — never in committed trace objects — which is what keeps
snapshot/restore rollouts and warm-store replays deterministic.

Thread safety
-------------
:class:`Counters` guards its read-modify-write with a lock so the
thread-parallel floor engine's worker threads can increment shared
counters; integer addition is order-independent, so the final values are
deterministic regardless of scheduling.  Span records are appended under
the tracer's lock with per-thread nesting stacks (see
:mod:`repro.obs.tracing`).
"""

from __future__ import annotations

import threading
from bisect import bisect_left

from repro.obs.tracing import _NULL_SPAN, Tracer

__all__ = [
    "Counters",
    "Histogram",
    "NULL_TELEMETRY",
    "Telemetry",
    "disable",
    "enable",
    "get_telemetry",
    "set_telemetry",
]


class Counters:
    """A bag of named monotonic integer counters.

    The storage behind every counter in the system — the hub's own
    counters and the per-instance bags of
    :class:`~repro.thermal.solver_cache.FactorizationCache`,
    :class:`~repro.thermal.rom.RomStats` and
    :class:`~repro.thermal.warm_store.WarmStore`, whose legacy stats
    dataclasses are now *views* over one of these.  Increments take a
    lock (worker threads of the parallel floor engine share bags); reads
    are lock-free snapshots of plain ints.
    """

    __slots__ = ("_values", "_lock")

    def __init__(self) -> None:
        self._values: dict[str, int] = {}
        self._lock = threading.Lock()

    def add(self, name: str, value: int = 1) -> None:
        """Increment ``name`` by ``value`` (created at zero on first use)."""
        with self._lock:
            self._values[name] = self._values.get(name, 0) + value

    def set(self, name: str, value: int) -> None:
        """Overwrite ``name`` (used by counter *views* with setters)."""
        with self._lock:
            self._values[name] = value

    def get(self, name: str, default: int = 0) -> int:
        """Current value of ``name`` (``default`` when never touched)."""
        return self._values.get(name, default)

    def snapshot(self) -> dict[str, int]:
        """An independent ``{name: value}`` copy of every counter."""
        with self._lock:
            return dict(self._values)

    def __len__(self) -> int:
        return len(self._values)


class Histogram:
    """Fixed-bucket histogram (Prometheus-style cumulative export).

    ``bounds`` are the inclusive upper bounds of the finite buckets; one
    implicit overflow bucket catches everything beyond the last bound.
    Observation cost is one bisect + one locked increment, independent of
    the observation count — safe for hot-path latency recording.
    """

    __slots__ = ("bounds", "counts", "total", "sum", "_lock")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"histogram bounds must be sorted and non-empty: {bounds}")
        self.bounds = tuple(float(bound) for bound in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = bisect_left(self.bounds, value)
        with self._lock:
            self.counts[index] += 1
            self.total += 1
            self.sum += value

    def snapshot(self) -> dict:
        """Buckets, counts, total and sum as plain exportable values."""
        with self._lock:
            return {
                "bounds": list(self.bounds),
                "counts": list(self.counts),
                "total": self.total,
                "sum": self.sum,
            }


#: Default bucket bounds for latency-style histograms (microseconds).
DEFAULT_LATENCY_BOUNDS_US = (
    10.0, 50.0, 100.0, 500.0, 1_000.0, 5_000.0, 10_000.0, 50_000.0,
    100_000.0, 500_000.0, 1_000_000.0,
)


class Telemetry:
    """One run's metric hub: counters, gauges, histograms and spans.

    Instances are cheap; a run that wants telemetry builds one
    (optionally bounding the span ring with ``span_capacity``), installs
    it with :func:`set_telemetry` (or :func:`enable`), and exports it at
    the end through :mod:`repro.obs.export`.
    """

    enabled = True

    def __init__(self, *, span_capacity: int = 65536) -> None:
        self.counters = Counters()
        self.tracer = Tracer(capacity=span_capacity)
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Metric mutators (no-ops on the null hub)
    # ------------------------------------------------------------------ #
    def inc(self, name: str, value: int = 1) -> None:
        """Increment counter ``name``."""
        self.counters.add(name, value)

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest value."""
        with self._lock:
            self._gauges[name] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        bounds: tuple[float, ...] = DEFAULT_LATENCY_BOUNDS_US,
    ) -> None:
        """Record ``value`` on histogram ``name`` (created on first use)."""
        histogram = self._histograms.get(name)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.setdefault(name, Histogram(bounds))
        histogram.observe(value)

    def span(self, name: str, **attrs):
        """A timed nested span context manager (see :class:`Tracer`)."""
        return self.tracer.span(name, attrs)

    # ------------------------------------------------------------------ #
    # Read side (exporters, reports, the summary footer)
    # ------------------------------------------------------------------ #
    def gauges_snapshot(self) -> dict[str, float]:
        """Every gauge's latest value."""
        with self._lock:
            return dict(self._gauges)

    def histograms_snapshot(self) -> dict[str, dict]:
        """Every histogram's buckets/counts/total/sum."""
        with self._lock:
            histograms = dict(self._histograms)
        return {name: histogram.snapshot() for name, histogram in histograms.items()}

    def footer(self) -> str:
        """Compact one-line digest for trace summaries.

        Span totals (started, recorded, dropped), the ROM fallback cause
        counters and the cache hit rate when those counters were
        published — the ``DatacenterTrace.summary()`` telemetry footer.
        No wall-clock values: the footer may be embedded in artifacts
        that must stay deterministic.
        """
        tracer = self.tracer
        parts = [
            f"{tracer.started} spans ({len(tracer.records())} in ring, "
            f"{tracer.dropped} dropped)"
        ]
        counters = self.counters.snapshot()
        causes = {
            cause: counters.get(f"rom.fallback.{cause}", 0)
            for cause in ("error", "guard", "projection")
        }
        if any(causes.values()):
            parts.append(
                "rom fallbacks "
                + "/".join(f"{cause}={count}" for cause, count in causes.items())
            )
        hits = counters.get("cache.hits", 0)
        misses = counters.get("cache.misses", 0)
        if hits or misses:
            parts.append(f"cache hit rate {hits / (hits + misses):.1%}")
        return "; ".join(parts)


class _NullTelemetry(Telemetry):
    """The disabled hub: every mutator is a no-op, ``span`` is free.

    A real :class:`Telemetry` subclass so type expectations hold, but the
    overridden mutators never touch the (empty) storage, and ``span``
    hands back one shared no-op context manager — the whole disabled-mode
    cost of an instrumentation site is the method call itself
    (benchmark-gated in ``benchmarks/test_bench_obs.py``).
    """

    enabled = False

    def inc(self, name: str, value: int = 1) -> None:  # noqa: D102
        pass

    def gauge(self, name: str, value: float) -> None:  # noqa: D102
        pass

    def observe(self, name, value, bounds=DEFAULT_LATENCY_BOUNDS_US):  # noqa: D102
        pass

    def span(self, name: str, **attrs):  # noqa: D102
        return _NULL_SPAN

    def footer(self) -> str:  # noqa: D102
        return ""


#: The module-level no-op singleton served while telemetry is disabled.
NULL_TELEMETRY = _NullTelemetry()

_active: Telemetry = NULL_TELEMETRY


def get_telemetry() -> Telemetry:
    """The active hub — :data:`NULL_TELEMETRY` unless a run enabled one."""
    return _active


def set_telemetry(hub: Telemetry | None) -> Telemetry:
    """Install ``hub`` as the active telemetry hub (``None`` disables).

    Returns the previously active hub so callers can restore it —
    the pattern tests and the experiments runner use::

        previous = set_telemetry(Telemetry())
        try:
            ...
        finally:
            set_telemetry(previous)
    """
    global _active
    previous = _active
    _active = hub if hub is not None else NULL_TELEMETRY
    return previous


def enable(*, span_capacity: int = 65536) -> Telemetry:
    """Create, install and return a fresh enabled hub."""
    hub = Telemetry(span_capacity=span_capacity)
    set_telemetry(hub)
    return hub


def disable() -> None:
    """Re-install the null hub (instrumentation returns to no-op cost)."""
    set_telemetry(NULL_TELEMETRY)
