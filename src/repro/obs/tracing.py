"""Nested span tracing over monotonic clocks.

A :class:`Tracer` hands out :class:`_Span` context managers::

    with telemetry.span("floor.advance_group", group=3):
        ...

Each span records name, start/end ``time.perf_counter_ns()``, thread id,
nesting depth, and an attribute dict, into a bounded ring buffer
(:class:`collections.deque` with ``maxlen``); overflow evicts the oldest
record and bumps a ``dropped`` counter so a truncated trace is always
detectable.  Nesting depth comes from a per-thread stack
(``threading.local``), which is what keeps span attribution correct when
the floor engine fans hardware groups over a thread pool: each worker
thread has its own stack, so group spans never interleave or corrupt
each other's depth (pinned by ``tests/test_obs.py``).

Spans carry *relative* monotonic clocks only — they are meaningful for
durations and intra-run ordering, never serialized into committed
simulation results.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

__all__ = ["SpanRecord", "Tracer"]


@dataclass
class SpanRecord:
    """One closed span: what ran, where, for how long, under what."""

    name: str
    start_ns: int
    end_ns: int
    thread_id: int
    depth: int
    attrs: dict = field(default_factory=dict)

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    @property
    def duration_us(self) -> float:
        return (self.end_ns - self.start_ns) / 1_000.0


class _Span:
    """Context manager for one span; ``set(**attrs)`` attaches attributes.

    Attributes may be attached any time before exit — MPC rollout spans
    set ``feasible``/``energy`` after the rollout returns::

        with obs.span("mpc.rollout", candidate=i) as sp:
            result = rollout(...)
            sp.set(feasible=result.feasible)
    """

    __slots__ = ("_tracer", "_name", "_attrs", "_start_ns", "_depth")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def set(self, **attrs) -> None:
        self._attrs.update(attrs)

    def __enter__(self) -> "_Span":
        stack = self._tracer._stack()
        self._depth = len(stack)
        stack.append(self._name)
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end_ns = time.perf_counter_ns()
        self._tracer._stack().pop()
        self._tracer._record(
            SpanRecord(
                name=self._name,
                start_ns=self._start_ns,
                end_ns=end_ns,
                thread_id=threading.get_ident(),
                depth=self._depth,
                attrs=self._attrs,
            )
        )


class _NullSpan:
    """The shared no-op span used while telemetry is disabled.

    Stateless, so one module-level instance serves every disabled site
    concurrently; ``__enter__``/``__exit__``/``set`` do nothing.
    """

    __slots__ = ()

    def set(self, **attrs) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Bounded ring buffer of closed spans with per-thread nesting."""

    def __init__(self, *, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError(f"span ring capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self.started = 0
        self.dropped = 0
        self._ring: deque[SpanRecord] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._local = threading.local()

    def span(self, name: str, attrs: dict | None = None) -> _Span:
        """Open a span; record it on context-manager exit."""
        return _Span(self, name, attrs if attrs is not None else {})

    def records(self) -> list[SpanRecord]:
        """The retained spans, oldest first (truncated at ``capacity``)."""
        with self._lock:
            return list(self._ring)

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _record(self, record: SpanRecord) -> None:
        with self._lock:
            self.started += 1
            if len(self._ring) == self.capacity:
                self.dropped += 1
            self._ring.append(record)
