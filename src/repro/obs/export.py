"""Exporters for a :class:`~repro.obs.telemetry.Telemetry` hub.

Three interchange formats plus a run manifest:

* **JSON-lines** (:func:`write_jsonl` / :func:`read_jsonl`) — one event
  per line, self-describing via a ``type`` field (``manifest``,
  ``counter``, ``gauge``, ``histogram``, ``span``).  The native format
  of the ``--telemetry out.jsonl`` runner flag and the
  ``repro.obs.report`` CLI.
* **Chrome trace-event** (:func:`write_chrome_trace`) — ``"X"`` complete
  events with microsecond ``ts``/``dur``, loadable in Perfetto or
  ``chrome://tracing`` for a visual per-thread timeline of a run.
* **Prometheus text exposition** (:func:`prometheus_text`) — counters,
  gauges and cumulative histogram buckets in the ``# TYPE`` /
  ``name value`` line format, for scraping long-lived worker fleets.

The manifest (:func:`run_manifest`) pins what produced a stream: a
config digest (stable hash of the model configuration's ``repr``), the
scenario seed, and interpreter/library versions — enough to tell two
JSONL artifacts apart without trusting filenames.
"""

from __future__ import annotations

import hashlib
import json
import platform
import sys
from typing import IO, Any

from repro.obs.telemetry import Telemetry

__all__ = [
    "config_digest",
    "prometheus_text",
    "read_jsonl",
    "run_manifest",
    "write_chrome_trace",
    "write_jsonl",
    "write_prometheus",
]


def config_digest(config: Any) -> str:
    """Stable short digest of a configuration object's ``repr``.

    All engine configs (``CoarseningConfig``, ``RomConfig``,
    ``RackSpec``, …) are dataclasses with value-complete ``repr``s, so
    hashing the repr distinguishes any two materially different runs
    without a serialization dependency.
    """
    return hashlib.blake2b(repr(config).encode(), digest_size=8).hexdigest()


def run_manifest(
    *, config: Any = None, seed: int | None = None, extra: dict | None = None
) -> dict:
    """Provenance record written as the first JSONL event."""
    manifest = {
        "type": "manifest",
        "format_version": 1,
        "python": platform.python_version(),
        "seed": seed,
        "config_digest": config_digest(config) if config is not None else None,
    }
    for module_name in ("numpy", "scipy"):
        module = sys.modules.get(module_name)
        if module is not None:
            manifest[f"{module_name}_version"] = getattr(module, "__version__", None)
    if extra:
        manifest.update(extra)
    return manifest


def _events(hub: Telemetry, manifest: dict | None) -> list[dict]:
    events: list[dict] = []
    if manifest is not None:
        events.append(manifest)
    for name, value in sorted(hub.counters.snapshot().items()):
        events.append({"type": "counter", "name": name, "value": value})
    for name, value in sorted(hub.gauges_snapshot().items()):
        events.append({"type": "gauge", "name": name, "value": value})
    for name, snap in sorted(hub.histograms_snapshot().items()):
        events.append({"type": "histogram", "name": name, **snap})
    tracer = hub.tracer
    events.append(
        {
            "type": "span_summary",
            "started": tracer.started,
            "dropped": tracer.dropped,
            "capacity": tracer.capacity,
        }
    )
    for record in tracer.records():
        events.append(
            {
                "type": "span",
                "name": record.name,
                "start_ns": record.start_ns,
                "end_ns": record.end_ns,
                "thread_id": record.thread_id,
                "depth": record.depth,
                "attrs": record.attrs,
            }
        )
    return events


def write_jsonl(hub: Telemetry, path_or_file, *, manifest: dict | None = None) -> int:
    """Dump the hub as JSON-lines; returns the number of events written."""
    events = _events(hub, manifest)
    if hasattr(path_or_file, "write"):
        _write_lines(path_or_file, events)
    else:
        with open(path_or_file, "w", encoding="utf-8") as handle:
            _write_lines(handle, events)
    return len(events)


def _write_lines(handle: IO[str], events: list[dict]) -> None:
    for event in events:
        handle.write(json.dumps(event, sort_keys=True, default=str))
        handle.write("\n")


def read_jsonl(path_or_file) -> list[dict]:
    """Parse a JSON-lines stream back into a list of event dicts."""
    if hasattr(path_or_file, "read"):
        lines = path_or_file.read().splitlines()
    else:
        with open(path_or_file, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    return [json.loads(line) for line in lines if line.strip()]


def write_chrome_trace(hub: Telemetry, path_or_file, *, process_name: str = "repro") -> dict:
    """Write the span ring as a Chrome trace-event JSON document.

    Every span becomes one ``"X"`` (complete) event with microsecond
    timestamps relative to the earliest retained span, so the file loads
    directly in Perfetto.  Returns the document (handy for schema
    validation in tests).
    """
    records = hub.tracer.records()
    origin_ns = min((record.start_ns for record in records), default=0)
    trace_events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for record in records:
        trace_events.append(
            {
                "name": record.name,
                "ph": "X",
                "ts": (record.start_ns - origin_ns) / 1_000.0,
                "dur": record.duration_ns / 1_000.0,
                "pid": 1,
                "tid": record.thread_id,
                "args": dict(record.attrs),
            }
        )
    document = {"traceEvents": trace_events, "displayTimeUnit": "ms"}
    if hasattr(path_or_file, "write"):
        json.dump(document, path_or_file, default=str)
    else:
        with open(path_or_file, "w", encoding="utf-8") as handle:
            json.dump(document, handle, default=str)
    return document


def _metric_name(name: str) -> str:
    """Map dotted metric names onto the Prometheus charset."""
    return "repro_" + "".join(
        char if char.isalnum() or char == "_" else "_" for char in name
    )


def prometheus_text(hub: Telemetry) -> str:
    """Render counters/gauges/histograms as Prometheus text exposition."""
    lines: list[str] = []
    for name, value in sorted(hub.counters.snapshot().items()):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")
    for name, value in sorted(hub.gauges_snapshot().items()):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value}")
    for name, snap in sorted(hub.histograms_snapshot().items()):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(snap["bounds"], snap["counts"]):
            cumulative += count
            lines.append(f'{metric}_bucket{{le="{bound}"}} {cumulative}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} {snap["total"]}')
        lines.append(f"{metric}_sum {snap['sum']}")
        lines.append(f"{metric}_count {snap['total']}")
    return "\n".join(lines) + "\n"


def write_prometheus(hub: Telemetry, path) -> None:
    """Write :func:`prometheus_text` output to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(prometheus_text(hub))
