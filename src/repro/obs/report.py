"""Run-report CLI over a telemetry JSON-lines stream.

::

    python -m repro.obs.report run.jsonl

renders, from the events exported by :func:`repro.obs.export.write_jsonl`:

* a per-layer time breakdown — *exclusive* (self) span time aggregated
  by the first dotted component of each span name (``floor``, ``rom``,
  ``cache``, ``session``, ``mpc``, ``warm_store``), so a layer is
  charged only for time not already attributed to a nested child span;
* cache and warm-store hit rates from the published counters;
* the ROM fallback cause histogram (error bound / guard band /
  projection residual);
* coarsening efficiency — committed control periods per stacked solve;
* per-thread utilization — depth-0 busy time over the stream extent.

Everything is computed from the artifact alone; the report never needs
the run's code or config, which is what makes JSONL streams from CI and
remote worker fleets comparable offline.
"""

from __future__ import annotations

import argparse
import sys
from collections import defaultdict

from repro.obs.export import read_jsonl

__all__ = ["build_report", "main", "render_report"]


def _self_times(spans: list[dict]) -> dict[str, float]:
    """Exclusive time (µs) per span name.

    Spans from one thread obey stack discipline (the tracer pushes and
    pops on a per-thread stack), so a start-ordered sweep with a stack
    recovers the nesting: each span's duration minus its direct
    children's durations is its self time.
    """
    per_name: dict[str, float] = defaultdict(float)
    by_thread: dict[int, list[dict]] = defaultdict(list)
    for span in spans:
        by_thread[span["thread_id"]].append(span)
    for thread_spans in by_thread.values():
        thread_spans.sort(key=lambda s: (s["start_ns"], -s["end_ns"]))
        stack: list[dict] = []
        for span in thread_spans:
            while stack and span["start_ns"] >= stack[-1]["end_ns"]:
                stack.pop()
            duration_us = (span["end_ns"] - span["start_ns"]) / 1_000.0
            if stack:
                per_name[stack[-1]["name"]] -= duration_us
            per_name[span["name"]] += duration_us
            stack.append(span)
    return dict(per_name)


def _thread_utilization(spans: list[dict]) -> dict[int, float]:
    """Fraction of the stream extent each thread spent in depth-0 spans."""
    if not spans:
        return {}
    extent_ns = max(s["end_ns"] for s in spans) - min(s["start_ns"] for s in spans)
    if extent_ns <= 0:
        return {}
    busy: dict[int, int] = defaultdict(int)
    for span in spans:
        if span.get("depth", 0) == 0:
            busy[span["thread_id"]] += span["end_ns"] - span["start_ns"]
    return {tid: ns / extent_ns for tid, ns in busy.items()}


def build_report(events: list[dict]) -> dict:
    """Aggregate a JSONL event list into the report's structured form."""
    counters = {e["name"]: e["value"] for e in events if e.get("type") == "counter"}
    spans = [e for e in events if e.get("type") == "span"]
    manifest = next((e for e in events if e.get("type") == "manifest"), None)
    span_summary = next((e for e in events if e.get("type") == "span_summary"), None)

    self_times = _self_times(spans)
    layers: dict[str, dict] = defaultdict(lambda: {"self_us": 0.0, "count": 0})
    for span in spans:
        layer = span["name"].split(".", 1)[0]
        layers[layer]["count"] += 1
    for name, self_us in self_times.items():
        layers[name.split(".", 1)[0]]["self_us"] += self_us

    def rate(hits: int, misses: int) -> float | None:
        total = hits + misses
        return hits / total if total else None

    fallbacks = {
        cause: counters.get(f"rom.fallback.{cause}", 0)
        for cause in ("error", "guard", "projection")
    }
    spans_committed = counters.get("session.spans", 0)
    periods_committed = counters.get("session.periods", 0)
    return {
        "manifest": manifest,
        "span_summary": span_summary,
        "counters": counters,
        "layers": dict(layers),
        "cache_hit_rate": rate(
            counters.get("cache.hits", 0), counters.get("cache.misses", 0)
        ),
        "warm_store_hit_rate": rate(
            counters.get("warm_store.reduced_hits", 0)
            + counters.get("warm_store.system_hits", 0),
            counters.get("warm_store.reduced_misses", 0)
            + counters.get("warm_store.system_misses", 0),
        ),
        "rom_fallbacks": fallbacks,
        "dropbacks": {
            name.split(".", 2)[2]: value
            for name, value in counters.items()
            if name.startswith("coarsen.dropback.")
        },
        "periods_per_span": (
            periods_committed / spans_committed if spans_committed else None
        ),
        "thread_utilization": _thread_utilization(spans),
    }


def render_report(events: list[dict]) -> str:
    """Human-readable text rendering of :func:`build_report`."""
    report = build_report(events)
    lines: list[str] = []

    manifest = report["manifest"]
    if manifest:
        lines.append(
            "run: config "
            + str(manifest.get("config_digest"))
            + f", seed {manifest.get('seed')}, python {manifest.get('python')}"
        )
    summary = report["span_summary"]
    if summary:
        lines.append(
            f"spans: {summary['started']} started, {summary['dropped']} dropped "
            f"(ring capacity {summary['capacity']})"
        )

    layers = report["layers"]
    if layers:
        lines.append("")
        lines.append("per-layer time (exclusive)")
        total_us = sum(layer["self_us"] for layer in layers.values()) or 1.0
        width = max(len(name) for name in layers)
        for name, layer in sorted(
            layers.items(), key=lambda item: -item[1]["self_us"]
        ):
            lines.append(
                f"  {name:<{width}}  {layer['self_us'] / 1_000.0:>10.2f} ms  "
                f"{layer['self_us'] / total_us:>6.1%}  ({layer['count']} spans)"
            )

    lines.append("")
    lines.append("caches")
    for label, key in (
        ("factorization cache", "cache_hit_rate"),
        ("warm store", "warm_store_hit_rate"),
    ):
        value = report[key]
        lines.append(
            f"  {label}: " + (f"{value:.1%} hit rate" if value is not None else "idle")
        )

    fallbacks = report["rom_fallbacks"]
    if any(fallbacks.values()):
        lines.append("")
        lines.append("rom fallback causes")
        for cause, count in fallbacks.items():
            lines.append(f"  {cause:<10} {count}")

    dropbacks = report["dropbacks"]
    if dropbacks:
        lines.append("")
        lines.append("coarsening fine-step drop-backs")
        for reason, count in sorted(dropbacks.items(), key=lambda item: -item[1]):
            lines.append(f"  {reason:<15} {count}")
    if report["periods_per_span"] is not None:
        lines.append("")
        lines.append(
            f"coarsening efficiency: {report['periods_per_span']:.2f} periods/span "
            f"({report['counters'].get('session.periods', 0)} periods, "
            f"{report['counters'].get('session.spans', 0)} solves)"
        )

    utilization = report["thread_utilization"]
    if utilization:
        lines.append("")
        lines.append("thread utilization (depth-0 busy / stream extent)")
        for tid, fraction in sorted(utilization.items()):
            lines.append(f"  thread {tid}: {fraction:.1%}")

    return "\n".join(lines) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Render a run report from a telemetry JSON-lines stream.",
    )
    parser.add_argument("jsonl", help="telemetry stream written by --telemetry / write_jsonl")
    args = parser.parse_args(argv)
    sys.stdout.write(render_report(read_jsonl(args.jsonl)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
