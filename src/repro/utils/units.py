"""Unit conversion helpers.

The library uses SI units internally (metres, kilograms, seconds, Kelvin for
absolute temperatures, Watts).  Temperatures exposed to users are in degrees
Celsius because the paper reports them that way; conversions are explicit.
"""

from __future__ import annotations

#: Absolute zero offset between Celsius and Kelvin.
KELVIN_OFFSET = 273.15

#: Standard gravitational acceleration [m/s^2].
GRAVITY = 9.81

#: Specific heat capacity of liquid water around 30 degC [J/(kg K)].
WATER_SPECIFIC_HEAT = 4180.0

#: Density of liquid water around 30 degC [kg/m^3].
WATER_DENSITY = 995.7


def celsius_to_kelvin(temperature_c: float) -> float:
    """Convert a temperature from degrees Celsius to Kelvin."""
    return temperature_c + KELVIN_OFFSET


def kelvin_to_celsius(temperature_k: float) -> float:
    """Convert a temperature from Kelvin to degrees Celsius."""
    return temperature_k - KELVIN_OFFSET


def kg_per_hour_to_kg_per_second(flow_kg_h: float) -> float:
    """Convert a mass flow rate from kg/h to kg/s."""
    return flow_kg_h / 3600.0


def kg_per_second_to_kg_per_hour(flow_kg_s: float) -> float:
    """Convert a mass flow rate from kg/s to kg/h."""
    return flow_kg_s * 3600.0


def litre_per_second_to_cubic_metre_per_second(flow_l_s: float) -> float:
    """Convert a volumetric flow rate from litres per second to m^3/s."""
    return flow_l_s / 1000.0


def cubic_metre_per_second_to_litre_per_second(flow_m3_s: float) -> float:
    """Convert a volumetric flow rate from m^3/s to litres per second."""
    return flow_m3_s * 1000.0


def mm_to_m(length_mm: float) -> float:
    """Convert a length from millimetres to metres."""
    return length_mm * 1e-3


def m_to_mm(length_m: float) -> float:
    """Convert a length from metres to millimetres."""
    return length_m * 1e3


def mm2_to_m2(area_mm2: float) -> float:
    """Convert an area from square millimetres to square metres."""
    return area_mm2 * 1e-6


def m2_to_mm2(area_m2: float) -> float:
    """Convert an area from square metres to square millimetres."""
    return area_m2 * 1e6


def watts_per_cm2_to_watts_per_m2(flux_w_cm2: float) -> float:
    """Convert a heat flux from W/cm^2 to W/m^2."""
    return flux_w_cm2 * 1e4


def watts_per_m2_to_watts_per_cm2(flux_w_m2: float) -> float:
    """Convert a heat flux from W/m^2 to W/cm^2."""
    return flux_w_m2 * 1e-4
