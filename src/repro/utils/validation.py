"""Argument validation helpers.

Every public constructor in the library validates its numeric arguments with
these helpers so that unit mistakes (negative areas, filling ratios above one,
NaN temperatures) fail loudly at construction time rather than corrupting a
simulation many calls later.
"""

from __future__ import annotations

import math

from repro.exceptions import ValidationError


def check_finite(value: float, name: str) -> float:
    """Return ``value`` if it is a finite number, raise otherwise."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ValidationError(f"{name} must be a number, got {value!r}")
    if not math.isfinite(value):
        raise ValidationError(f"{name} must be finite, got {value!r}")
    return float(value)


def check_positive(value: float, name: str) -> float:
    """Return ``value`` if it is finite and strictly positive."""
    value = check_finite(value, name)
    if value <= 0.0:
        raise ValidationError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Return ``value`` if it is finite and greater than or equal to zero."""
    value = check_finite(value, name)
    if value < 0.0:
        raise ValidationError(f"{name} must be >= 0, got {value!r}")
    return value


def check_in_range(
    value: float,
    low: float,
    high: float,
    name: str,
    *,
    inclusive: bool = True,
) -> float:
    """Return ``value`` if it lies within ``[low, high]`` (or ``(low, high)``)."""
    value = check_finite(value, name)
    if inclusive:
        if not (low <= value <= high):
            raise ValidationError(f"{name} must be in [{low}, {high}], got {value!r}")
    else:
        if not (low < value < high):
            raise ValidationError(f"{name} must be in ({low}, {high}), got {value!r}")
    return value


def check_fraction(value: float, name: str) -> float:
    """Return ``value`` if it is a fraction in the closed interval [0, 1]."""
    return check_in_range(value, 0.0, 1.0, name)


def check_positive_int(value: int, name: str) -> int:
    """Return ``value`` if it is a strictly positive integer."""
    if not isinstance(value, int) or isinstance(value, bool):
        raise ValidationError(f"{name} must be an integer, got {value!r}")
    if value <= 0:
        raise ValidationError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative_int(value: int, name: str) -> int:
    """Return ``value`` if it is an integer greater than or equal to zero."""
    if not isinstance(value, int) or isinstance(value, bool):
        raise ValidationError(f"{name} must be an integer, got {value!r}")
    if value < 0:
        raise ValidationError(f"{name} must be >= 0, got {value!r}")
    return value
