"""Planar geometry primitives used by floorplans and thermal grids."""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ValidationError
from repro.utils.validation import check_finite, check_positive


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle in millimetres.

    ``x`` and ``y`` locate the lower-left corner; ``width`` extends along the
    x axis (east) and ``height`` along the y axis (north).  Floorplans and the
    thermal grid share this convention, so "a row of the grid" corresponds to
    a horizontal band of constant ``y``.
    """

    x: float
    y: float
    width: float
    height: float

    def __post_init__(self) -> None:
        check_finite(self.x, "x")
        check_finite(self.y, "y")
        check_positive(self.width, "width")
        check_positive(self.height, "height")

    @property
    def x2(self) -> float:
        """Right (east) edge coordinate."""
        return self.x + self.width

    @property
    def y2(self) -> float:
        """Top (north) edge coordinate."""
        return self.y + self.height

    @property
    def area(self) -> float:
        """Rectangle area in mm^2."""
        return self.width * self.height

    @property
    def center(self) -> tuple[float, float]:
        """Centre point ``(cx, cy)``."""
        return (self.x + self.width / 2.0, self.y + self.height / 2.0)

    def contains_point(self, px: float, py: float) -> bool:
        """Return True if ``(px, py)`` lies inside or on the boundary."""
        return self.x <= px <= self.x2 and self.y <= py <= self.y2

    def contains_rect(self, other: "Rect") -> bool:
        """Return True if ``other`` lies fully within this rectangle."""
        return (
            self.x <= other.x
            and self.y <= other.y
            and other.x2 <= self.x2
            and other.y2 <= self.y2
        )

    def overlap_area(self, other: "Rect") -> float:
        """Area of the intersection with ``other`` (0.0 if disjoint)."""
        dx = min(self.x2, other.x2) - max(self.x, other.x)
        dy = min(self.y2, other.y2) - max(self.y, other.y)
        if dx <= 0.0 or dy <= 0.0:
            return 0.0
        return dx * dy

    def intersects(self, other: "Rect") -> bool:
        """Return True if the two rectangles overlap with non-zero area."""
        return self.overlap_area(other) > 0.0

    def translated(self, dx: float, dy: float) -> "Rect":
        """Return a copy shifted by ``(dx, dy)``."""
        return Rect(self.x + dx, self.y + dy, self.width, self.height)

    def scaled(self, factor: float) -> "Rect":
        """Return a copy with both dimensions scaled about the origin."""
        if factor <= 0.0:
            raise ValidationError(f"scale factor must be > 0, got {factor!r}")
        return Rect(self.x * factor, self.y * factor, self.width * factor, self.height * factor)

    def distance_to(self, other: "Rect") -> float:
        """Euclidean distance between rectangle centres in millimetres."""
        cx1, cy1 = self.center
        cx2, cy2 = other.center
        return ((cx1 - cx2) ** 2 + (cy1 - cy2) ** 2) ** 0.5
