"""Shared utilities: unit conversions, validation, interpolation, geometry."""

from repro.utils.units import (
    celsius_to_kelvin,
    kelvin_to_celsius,
    kg_per_hour_to_kg_per_second,
    kg_per_second_to_kg_per_hour,
    litre_per_second_to_cubic_metre_per_second,
    mm_to_m,
    m_to_mm,
    mm2_to_m2,
    watts_per_cm2_to_watts_per_m2,
)
from repro.utils.validation import (
    check_finite,
    check_in_range,
    check_non_negative,
    check_positive,
    check_fraction,
)
from repro.utils.geometry import Rect
from repro.utils.interpolation import LinearTable1D, clamp

__all__ = [
    "celsius_to_kelvin",
    "kelvin_to_celsius",
    "kg_per_hour_to_kg_per_second",
    "kg_per_second_to_kg_per_hour",
    "litre_per_second_to_cubic_metre_per_second",
    "mm_to_m",
    "m_to_mm",
    "mm2_to_m2",
    "watts_per_cm2_to_watts_per_m2",
    "check_finite",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_fraction",
    "Rect",
    "LinearTable1D",
    "clamp",
]
