"""Small interpolation helpers shared by the property and power models."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import ValidationError


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into the closed interval ``[low, high]``."""
    if low > high:
        raise ValidationError(f"clamp: low ({low}) must be <= high ({high})")
    return min(max(value, low), high)


class LinearTable1D:
    """Piecewise-linear interpolation table with edge clamping.

    Refrigerant saturation curves and per-frequency power tables are stored as
    small monotone tables; queries outside the table range are clamped to the
    end points, which is the conservative behaviour for design sweeps.
    """

    def __init__(self, xs: Sequence[float], ys: Sequence[float]) -> None:
        xs_arr = np.asarray(xs, dtype=float)
        ys_arr = np.asarray(ys, dtype=float)
        if xs_arr.ndim != 1 or ys_arr.ndim != 1:
            raise ValidationError("LinearTable1D expects one-dimensional sequences")
        if xs_arr.size != ys_arr.size:
            raise ValidationError(
                f"LinearTable1D: xs and ys lengths differ ({xs_arr.size} vs {ys_arr.size})"
            )
        if xs_arr.size < 2:
            raise ValidationError("LinearTable1D needs at least two points")
        if not np.all(np.diff(xs_arr) > 0):
            raise ValidationError("LinearTable1D: xs must be strictly increasing")
        if not (np.all(np.isfinite(xs_arr)) and np.all(np.isfinite(ys_arr))):
            raise ValidationError("LinearTable1D: xs and ys must be finite")
        self._xs = xs_arr
        self._ys = ys_arr

    @property
    def x_min(self) -> float:
        """Smallest abscissa in the table."""
        return float(self._xs[0])

    @property
    def x_max(self) -> float:
        """Largest abscissa in the table."""
        return float(self._xs[-1])

    def __call__(self, x: float) -> float:
        """Interpolate at ``x``, clamping outside the table range."""
        return float(np.interp(x, self._xs, self._ys))

    def inverse(self, y: float) -> float:
        """Interpolate the abscissa for ``y`` (requires monotone ys)."""
        ys = self._ys
        xs = self._xs
        if np.all(np.diff(ys) > 0):
            return float(np.interp(y, ys, xs))
        if np.all(np.diff(ys) < 0):
            return float(np.interp(y, ys[::-1], xs[::-1]))
        raise ValidationError("LinearTable1D.inverse requires strictly monotone ys")

    def sample(self, xs: Sequence[float]) -> np.ndarray:
        """Vectorised interpolation over ``xs``."""
        return np.interp(np.asarray(xs, dtype=float), self._xs, self._ys)
