"""Compact thermal simulation substrate (3D-ICE-like layered RC model).

The paper uses the 3D-ICE compact thermal simulator to obtain die and
package temperatures from a spatial power map.  This subsystem implements
the same modelling approach at reduced fidelity: the chip/cooling assembly is
discretised into a uniform grid of cells across a stack of material layers
(die silicon, thermal interface, copper heat spreader, second interface,
evaporator base), lateral and vertical conductances connect neighbouring
cells, the top surface exchanges heat with the thermosyphon micro-channel
fluid through per-cell convective conductances, and the resulting sparse
linear system is solved for steady-state or transient temperatures.
"""

from repro.thermal.materials import MATERIALS, Material
from repro.thermal.layers import Layer, LayerStack, standard_thermosyphon_stack
from repro.thermal.grid import ThermalGrid
from repro.thermal.boundary import BottomBoundary, CoolingBoundary, uniform_cooling_boundary
from repro.thermal.network import ThermalNetwork
from repro.thermal.solver_cache import CacheStats, FactorizationCache
from repro.thermal.steady_state import SteadyStateSolver
from repro.thermal.transient import SettleResult, TransientSolver
from repro.thermal.metrics import (
    HotSpot,
    ThermalMetrics,
    compute_metrics,
    hot_spot_count,
    hot_spot_location,
    max_spatial_gradient,
)
from repro.thermal.simulator import ThermalResult, ThermalSimulator
from repro.thermal.warm_store import WarmStore, WarmStoreStats

__all__ = [
    "MATERIALS",
    "Material",
    "Layer",
    "LayerStack",
    "standard_thermosyphon_stack",
    "ThermalGrid",
    "CoolingBoundary",
    "BottomBoundary",
    "uniform_cooling_boundary",
    "ThermalNetwork",
    "CacheStats",
    "FactorizationCache",
    "SteadyStateSolver",
    "SettleResult",
    "TransientSolver",
    "HotSpot",
    "ThermalMetrics",
    "compute_metrics",
    "hot_spot_count",
    "hot_spot_location",
    "max_spatial_gradient",
    "ThermalResult",
    "ThermalSimulator",
    "WarmStore",
    "WarmStoreStats",
]
