"""Persistent warm store: reduced bases and assembled operators across runs.

Everything the long-trace engine builds lazily on a cold start is a pure
function of content the floor can hash: the reduced-order Krylov bases
(:class:`~repro.thermal.rom.ReducedOperator`) depend only on the thermal
network, the cooling boundary, the substep size, the
:class:`~repro.thermal.rom.RomConfig` and the (scenario-stable) seed
fields; the assembled backward-Euler / steady systems handed to the
numeric LU factorization depend only on the network, the boundary and the
substep size.  :class:`WarmStore` persists both to disk keyed by exactly
those content keys — the network's :meth:`~repro.thermal.network.\
ThermalNetwork.content_key`, the boundary's :meth:`~repro.thermal.\
boundary.CoolingBoundary.cache_token` and the ROM config — so run ``N+1``
of the same floor skips every Arnoldi basis build and every operator
assembly (the symbolic half of a factorization; SciPy's SuperLU handle is
not serialisable, so the numeric factorization of the byte-identical
persisted system re-runs and reproduces the cold run's factors exactly).

Bit-identity contract
---------------------
A warm run must match the cold run bit for bit, which dictates two rules:

* **First write wins.**  The cold run persists each reduced operator when
  it is *first built*; drift-triggered rebuilds never overwrite the
  stored entry.  The warm run therefore starts from exactly the operator
  the cold run started from, replays the same projection tests, performs
  the same rebuilds from the same seeds, and lands on the same trajectory
  — with ``RomStats.basis_builds == 0``.
* **Arrays round-trip losslessly.**  Entries are ``.npy``-format float64
  arrays inside an ``.npz`` container; loading reproduces the cold run's
  operators byte for byte, so every downstream matmul is identical.

Robustness
----------
The file format is versioned (`FORMAT_VERSION`).  Corrupt, truncated,
wrong-version or wrong-shape entries are treated as misses and counted on
:attr:`WarmStoreStats.stale` — a stale store degrades to a cold start,
never to an exception or a wrong answer.  Writes go through a temp file +
:func:`os.replace` so a crashed run cannot leave a torn entry behind.

The store directory is safe to share between processes (the cross-worker
factorization-sharing unlock of the serving-layer roadmap item): keys are
content hashes, writes are atomic, and first-write-wins makes concurrent
writers idempotent.
"""

from __future__ import annotations

import hashlib
import io
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np
from scipy import sparse

from repro.obs.telemetry import Counters, get_telemetry
from repro.thermal.rom import ReducedOperator, RomConfig

__all__ = ["FORMAT_VERSION", "WarmStore", "WarmStoreStats"]

#: Bump when the on-disk entry layout changes; old entries become stale.
FORMAT_VERSION = 1


@dataclass(frozen=True)
class WarmStoreStats:
    """Counters of one :class:`WarmStore`'s activity.

    ``reduced_hits`` / ``reduced_misses`` count reduced-operator lookups,
    ``system_hits`` / ``system_misses`` assembled-system lookups;
    ``stores`` counts entries actually written (first write wins, so a
    re-store of an existing key does not count); ``stale`` counts entries
    that existed on disk but were ignored (corrupt, truncated or written
    by an incompatible format version).
    """

    reduced_hits: int = 0
    reduced_misses: int = 0
    system_hits: int = 0
    system_misses: int = 0
    stores: int = 0
    stale: int = 0

    @property
    def hits(self) -> int:
        """Total lookups served from disk."""
        return self.reduced_hits + self.system_hits

    @property
    def misses(self) -> int:
        """Total lookups that fell through to a cold build."""
        return self.reduced_misses + self.system_misses


def _config_fingerprint(config: RomConfig) -> tuple:
    """The RomConfig part of a reduced-operator key (all knobs matter:
    any of them changes the basis the cold run would have built)."""
    return (
        config.max_basis,
        config.krylov_iterations,
        config.projection_tol_c,
        config.step_error_tol_c,
        config.guard_band_c,
    )


class WarmStore:
    """Content-keyed on-disk store of reduced operators and systems.

    Parameters
    ----------
    path:
        Directory holding the entries (created on first write).  One
        store may serve many networks — the network content key is part
        of every entry key, so mixed-SKU floors share one directory.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        # One store may serve every hardware group's cache, and the
        # thread-parallel floor engine drives those caches from worker
        # threads; the telemetry counter bag locks its own increments.
        self._counters = Counters()

    @property
    def stats(self) -> WarmStoreStats:
        """Hit/miss/store/stale counters since construction.

        A frozen *view* assembled from the live telemetry counter bag —
        the legacy reporting surface of the unified observability layer.
        """
        return WarmStoreStats(
            **{
                name: self._counters.get(name)
                for name in (
                    "reduced_hits",
                    "reduced_misses",
                    "system_hits",
                    "system_misses",
                    "stores",
                    "stale",
                )
            }
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WarmStore({str(self.path)!r})"

    # ------------------------------------------------------------------ #
    # Keys and files
    # ------------------------------------------------------------------ #
    @staticmethod
    def _digest(kind: str, parts: tuple) -> str:
        digest = hashlib.blake2b(digest_size=16)
        digest.update(kind.encode())
        digest.update(repr(parts).encode())
        return digest.hexdigest()

    def _entry_path(self, kind: str, parts: tuple) -> Path:
        return self.path / f"{kind}-{self._digest(kind, parts)}.npz"

    def _count(self, **deltas: int) -> None:
        for name, value in deltas.items():
            self._counters.add(name, value)

    def _write_entry(self, path: Path, payload: dict) -> bool:
        """Atomically write one entry; first write wins.  Returns True when
        this call created the entry."""
        if path.exists():
            return False
        with get_telemetry().span("warm_store.store", kind=path.stem.split("-", 1)[0]):
            self.path.mkdir(parents=True, exist_ok=True)
            buffer = io.BytesIO()
            np.savez(buffer, **payload)
            descriptor, temp_name = tempfile.mkstemp(
                dir=self.path, prefix=path.stem, suffix=".tmp"
            )
            try:
                with os.fdopen(descriptor, "wb") as handle:
                    handle.write(buffer.getvalue())
                os.replace(temp_name, path)
            except OSError:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass
                return False
        self._count(stores=1)
        return True

    def _read_entry(self, path: Path) -> dict | None:
        """Load one entry's arrays; None on a miss or any stale entry."""
        if not path.exists():
            return None
        with get_telemetry().span(
            "warm_store.load", kind=path.stem.split("-", 1)[0]
        ) as span:
            try:
                with np.load(path) as archive:
                    payload = {name: archive[name] for name in archive.files}
                if int(payload["format_version"]) != FORMAT_VERSION:
                    raise ValueError("format version mismatch")
                return payload
            except Exception:
                # Corrupt, truncated, unreadable or incompatible: a stale
                # entry degrades to a cold build, never to a failed run.
                self._count(stale=1)
                span.set(stale=True)
                return None

    # ------------------------------------------------------------------ #
    # Reduced operators
    # ------------------------------------------------------------------ #
    def reduced_key(
        self, network_key: str, boundary_token: tuple, dt_s: float, config: RomConfig
    ) -> tuple:
        """The content key of one reduced-operator entry."""
        return (network_key, boundary_token, float(dt_s), _config_fingerprint(config))

    def store_reduced(self, key: tuple, operator: ReducedOperator) -> bool:
        """Persist a cold-built reduced operator (first write wins)."""
        lu_matrix, lu_pivots = operator.reduced_lu
        payload = {
            "format_version": np.array(FORMAT_VERSION),
            "kind": np.array("reduced"),
            "dt_s": np.array(operator.dt_s),
            "case_cell_index": np.array(operator.case_cell_index),
            "basis": operator.basis,
            "boundary_rhs": operator.boundary_rhs,
            "lu_matrix": np.asarray(lu_matrix),
            "lu_pivots": np.asarray(lu_pivots),
            "reduced_capacitance": operator.reduced_capacitance,
            "conductance_basis": operator.conductance_basis,
            "capacitance_basis": operator.capacitance_basis,
            "basis_boundary_rhs": operator.basis_boundary_rhs,
            "inverse_capacitance_dt": operator.inverse_capacitance_dt,
            "step_matrix": operator.step_matrix,
        }
        return self._write_entry(self._entry_path("reduced", key), payload)

    def load_reduced(self, key: tuple) -> ReducedOperator | None:
        """The persisted reduced operator for a key, or None."""
        payload = self._read_entry(self._entry_path("reduced", key))
        if payload is None:
            self._count(reduced_misses=1)
            return None
        try:
            operator = ReducedOperator(
                basis=payload["basis"],
                dt_s=float(payload["dt_s"]),
                boundary_rhs=payload["boundary_rhs"],
                reduced_lu=(payload["lu_matrix"], payload["lu_pivots"]),
                reduced_capacitance=payload["reduced_capacitance"],
                conductance_basis=payload["conductance_basis"],
                capacitance_basis=payload["capacitance_basis"],
                basis_boundary_rhs=payload["basis_boundary_rhs"],
                case_cell_index=int(payload["case_cell_index"]),
                inverse_capacitance_dt=payload["inverse_capacitance_dt"],
                step_matrix=payload["step_matrix"],
            )
        except KeyError:
            self._count(stale=1, reduced_misses=1)
            return None
        self._count(reduced_hits=1)
        return operator

    # ------------------------------------------------------------------ #
    # Assembled operator systems (the symbolic half of a factorization)
    # ------------------------------------------------------------------ #
    def system_key(
        self,
        network_key: str,
        kind: str,
        boundary_token: tuple,
        dt_s: float | None,
    ) -> tuple:
        """The content key of one assembled system (``kind`` is ``"steady"``
        or ``"transient"``; ``dt_s`` is None for steady)."""
        return (network_key, kind, boundary_token, None if dt_s is None else float(dt_s))

    def store_system(
        self, key: tuple, matrix: sparse.spmatrix, boundary_rhs: np.ndarray
    ) -> bool:
        """Persist one assembled system matrix + boundary RHS (first write
        wins).  The matrix is stored in CSC layout — the exact input the
        numeric factorization consumes, so a warm load feeds SuperLU byte-
        identical data and reproduces the cold run's factors."""
        csc = matrix.tocsc()
        payload = {
            "format_version": np.array(FORMAT_VERSION),
            "kind": np.array("system"),
            "shape": np.array(csc.shape),
            "data": csc.data,
            "indices": csc.indices,
            "indptr": csc.indptr,
            "boundary_rhs": np.asarray(boundary_rhs),
        }
        return self._write_entry(self._entry_path("system", key), payload)

    def load_system(self, key: tuple) -> tuple[sparse.csc_matrix, np.ndarray] | None:
        """The persisted ``(csc_matrix, boundary_rhs)`` for a key, or None."""
        payload = self._read_entry(self._entry_path("system", key))
        if payload is None:
            self._count(system_misses=1)
            return None
        try:
            shape = tuple(int(side) for side in payload["shape"])
            matrix = sparse.csc_matrix(
                (payload["data"], payload["indices"], payload["indptr"]),
                shape=shape,
            )
            boundary_rhs = payload["boundary_rhs"]
            if boundary_rhs.shape != (shape[0],):
                raise ValueError("boundary RHS shape mismatch")
        except Exception:
            self._count(stale=1, system_misses=1)
            return None
        self._count(system_hits=1)
        return matrix, boundary_rhs
