"""Spatial discretisation of the layer stack into a 3D cell grid."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.thermal.layers import LayerStack
from repro.utils.geometry import Rect
from repro.utils.validation import check_positive_int


class ThermalGrid:
    """Uniform in-plane grid shared by every layer of the stack.

    Cells are indexed ``(layer, row, column)``; row 0 is the southernmost
    row and column 0 the westernmost column, matching the floorplan
    convention.  The flat index used by the sparse solver is
    ``layer * n_rows * n_columns + row * n_columns + column``.
    """

    def __init__(
        self,
        outline: Rect,
        stack: LayerStack,
        n_rows: int,
        n_columns: int,
    ) -> None:
        self.outline = outline
        self.stack = stack
        self.n_rows = check_positive_int(n_rows, "n_rows")
        self.n_columns = check_positive_int(n_columns, "n_columns")
        self.n_layers = len(stack)
        self.cell_width_m = outline.width * 1e-3 / n_columns
        self.cell_height_m = outline.height * 1e-3 / n_rows
        if self.cell_width_m <= 0.0 or self.cell_height_m <= 0.0:
            raise ConfigurationError("grid cells must have positive size")

    # ------------------------------------------------------------------ #
    # Sizes and indexing
    # ------------------------------------------------------------------ #
    @property
    def cells_per_layer(self) -> int:
        """Number of cells in one layer."""
        return self.n_rows * self.n_columns

    @property
    def n_cells(self) -> int:
        """Total number of cells across all layers."""
        return self.cells_per_layer * self.n_layers

    @property
    def cell_area_m2(self) -> float:
        """Horizontal cell area in m^2."""
        return self.cell_width_m * self.cell_height_m

    def flat_index(self, layer: int, row: int, column: int) -> int:
        """Flat solver index of cell ``(layer, row, column)``."""
        if not (0 <= layer < self.n_layers):
            raise ConfigurationError(f"layer {layer} out of range [0, {self.n_layers})")
        if not (0 <= row < self.n_rows):
            raise ConfigurationError(f"row {row} out of range [0, {self.n_rows})")
        if not (0 <= column < self.n_columns):
            raise ConfigurationError(f"column {column} out of range [0, {self.n_columns})")
        return (layer * self.n_rows + row) * self.n_columns + column

    def unflatten(self, flat: int) -> tuple[int, int, int]:
        """Inverse of :meth:`flat_index`."""
        if not (0 <= flat < self.n_cells):
            raise ConfigurationError(f"flat index {flat} out of range [0, {self.n_cells})")
        layer, remainder = divmod(flat, self.cells_per_layer)
        row, column = divmod(remainder, self.n_columns)
        return layer, row, column

    def layer_slice(self, layer: int) -> slice:
        """Slice of the flat vector covering one layer."""
        start = layer * self.cells_per_layer
        return slice(start, start + self.cells_per_layer)

    def reshape_layer(self, flat_values: np.ndarray, layer: int) -> np.ndarray:
        """Extract a ``(n_rows, n_columns)`` view of one layer from a flat vector."""
        return np.asarray(flat_values)[self.layer_slice(layer)].reshape(
            self.n_rows, self.n_columns
        )

    # ------------------------------------------------------------------ #
    # Geometry helpers
    # ------------------------------------------------------------------ #
    def cell_centre_mm(self, row: int, column: int) -> tuple[float, float]:
        """Centre of cell ``(row, column)`` in floorplan millimetres."""
        x = self.outline.x + (column + 0.5) * self.outline.width / self.n_columns
        y = self.outline.y + (row + 0.5) * self.outline.height / self.n_rows
        return x, y

    def cell_pitch_mm(self) -> tuple[float, float]:
        """Cell pitch (width, height) in millimetres."""
        return self.cell_width_m * 1e3, self.cell_height_m * 1e3
