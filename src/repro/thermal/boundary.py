"""Boundary conditions of the thermal network.

The top boundary is the interface to the thermosyphon evaporator
micro-channels: each cell of the top layer exchanges heat with the two-phase
refrigerant through a per-cell heat transfer coefficient and local fluid
temperature, both computed by the thermosyphon model.  The bottom boundary
models the weak heat path through the package substrate and board into the
server air.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import check_non_negative


@dataclass(frozen=True)
class CoolingBoundary:
    """Convective boundary on top of the evaporator base.

    Attributes
    ----------
    htc_w_m2k:
        Heat transfer coefficient per cell, shape ``(n_rows, n_columns)``.
    fluid_temperature_c:
        Local fluid (refrigerant) temperature per cell in degrees Celsius,
        same shape.
    """

    htc_w_m2k: np.ndarray
    fluid_temperature_c: np.ndarray

    def __post_init__(self) -> None:
        # Copy and freeze: solver caches key on the content of these arrays
        # (see cache_token), so the immutability contract is enforced, not
        # just documented — in-place mutation raises instead of silently
        # reusing a stale factorization.
        htc = np.array(self.htc_w_m2k, dtype=float)
        fluid = np.array(self.fluid_temperature_c, dtype=float)
        if htc.shape != fluid.shape:
            raise ValidationError(
                f"htc shape {htc.shape} differs from fluid temperature shape {fluid.shape}"
            )
        if htc.ndim != 2:
            raise ValidationError("boundary arrays must be two-dimensional")
        if np.any(htc < 0.0) or not np.all(np.isfinite(htc)):
            raise ValidationError("heat transfer coefficients must be finite and >= 0")
        if not np.all(np.isfinite(fluid)):
            raise ValidationError("fluid temperatures must be finite")
        htc.setflags(write=False)
        fluid.setflags(write=False)
        object.__setattr__(self, "htc_w_m2k", htc)
        object.__setattr__(self, "fluid_temperature_c", fluid)

    @property
    def shape(self) -> tuple[int, int]:
        """Grid shape ``(n_rows, n_columns)``."""
        return self.htc_w_m2k.shape

    def cache_token(self) -> tuple:
        """Content-based key identifying this boundary for solver caches.

        Two boundaries with identical HTC and fluid-temperature fields share
        the same token, so cached factorizations are reused across distinct
        but equal boundary objects.  The token is memoised on first use; the
        boundary arrays are part of a frozen dataclass and must not be
        mutated after construction.
        """
        token = getattr(self, "_cache_token", None)
        if token is None:
            digest = hashlib.blake2b(
                self.htc_w_m2k.tobytes() + self.fluid_temperature_c.tobytes(),
                digest_size=16,
            ).digest()
            token = (self.shape, digest)
            object.__setattr__(self, "_cache_token", token)
        return token

    def mean_htc(self) -> float:
        """Average heat transfer coefficient over the cells with non-zero HTC."""
        active = self.htc_w_m2k[self.htc_w_m2k > 0.0]
        return float(active.mean()) if active.size else 0.0


@dataclass(frozen=True)
class BottomBoundary:
    """Uniform convective path from the bottom layer to the server ambient."""

    htc_w_m2k: float = 25.0
    ambient_temperature_c: float = 40.0

    def __post_init__(self) -> None:
        check_non_negative(self.htc_w_m2k, "htc_w_m2k")


def uniform_cooling_boundary(
    n_rows: int,
    n_columns: int,
    htc_w_m2k: float,
    fluid_temperature_c: float,
) -> CoolingBoundary:
    """A spatially uniform top boundary (useful for tests and calibration)."""
    check_non_negative(htc_w_m2k, "htc_w_m2k")
    return CoolingBoundary(
        htc_w_m2k=np.full((n_rows, n_columns), htc_w_m2k, dtype=float),
        fluid_temperature_c=np.full((n_rows, n_columns), fluid_temperature_c, dtype=float),
    )
