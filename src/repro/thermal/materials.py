"""Material thermal properties used by the layer stack."""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class Material:
    """Homogeneous isotropic material.

    Attributes
    ----------
    name:
        Identifier used in layer definitions and error messages.
    thermal_conductivity_w_mk:
        Thermal conductivity in W/(m K).
    density_kg_m3:
        Density in kg/m^3 (used for transient heat capacity).
    specific_heat_j_kgk:
        Specific heat capacity in J/(kg K).
    """

    name: str
    thermal_conductivity_w_mk: float
    density_kg_m3: float
    specific_heat_j_kgk: float

    def __post_init__(self) -> None:
        check_positive(self.thermal_conductivity_w_mk, "thermal_conductivity_w_mk")
        check_positive(self.density_kg_m3, "density_kg_m3")
        check_positive(self.specific_heat_j_kgk, "specific_heat_j_kgk")

    @property
    def volumetric_heat_capacity_j_m3k(self) -> float:
        """Volumetric heat capacity rho * c_p in J/(m^3 K)."""
        return self.density_kg_m3 * self.specific_heat_j_kgk


#: Library of the materials appearing in the thermosyphon-cooled assembly.
MATERIALS: dict[str, Material] = {
    material.name: material
    for material in (
        # Bulk silicon at ~350 K.
        Material("silicon", 120.0, 2330.0, 710.0),
        # Copper (heat spreader, evaporator base).
        Material("copper", 390.0, 8960.0, 385.0),
        # Indium-solder thermal interface (die attach on server parts).
        Material("solder_tim", 50.0, 7300.0, 230.0),
        # Polymer thermal grease between spreader and evaporator.
        Material("grease_tim", 4.0, 2500.0, 800.0),
        # Package sealant / underfill surrounding the die.
        Material("sealant", 0.9, 1900.0, 1000.0),
        # Organic package substrate below the die.
        Material("substrate", 15.0, 1900.0, 1100.0),
        # Aluminium (alternative evaporator material for design sweeps).
        Material("aluminium", 205.0, 2700.0, 900.0),
    )
}


def get_material(name: str) -> Material:
    """Return the material called ``name``.

    Raises ``KeyError`` with the list of known materials if absent, which is
    the most useful failure mode for configuration typos.
    """
    if name not in MATERIALS:
        raise KeyError(f"unknown material {name!r}; known: {sorted(MATERIALS)}")
    return MATERIALS[name]
