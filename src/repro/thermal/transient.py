"""Transient (time-marching) solution of the thermal network.

A backward-Euler scheme is used: it is unconditionally stable, so the
controller studies can take steps of hundreds of milliseconds without the
millikelvin-scale time constants of the thin TIM layers forcing tiny steps.

The backward-Euler operator ``A + C/dt`` depends only on the cooling
boundary and the step size, so by default the solver draws it from a
:class:`FactorizationCache`: a whole trace at a fixed boundary factorizes
once and every step is a single back-substitution.  Pass ``use_cache=False``
to recover the factorize-per-step path.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import factorized

from repro.exceptions import ConfigurationError, ValidationError
from repro.thermal.boundary import CoolingBoundary
from repro.thermal.network import ThermalNetwork
from repro.thermal.solver_cache import FactorizationCache
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class SettleResult:
    """Outcome of a :meth:`TransientSolver.settle` run.

    ``converged`` is False when the field was still changing by more than
    the tolerance after ``max_steps`` — the returned temperatures are then
    the last iterate, not an equilibrium.
    """

    temperatures: np.ndarray
    steps: int
    converged: bool
    residual_c: float

    def __iter__(self):
        """Unpack as ``(temperatures, steps)`` for legacy call sites."""
        yield self.temperatures
        yield self.steps


class TransientSolver:
    """Backward-Euler time integration of ``C dT/dt = -A T + b``."""

    def __init__(
        self,
        network: ThermalNetwork,
        *,
        cache: FactorizationCache | None = None,
        use_cache: bool = True,
    ) -> None:
        self.network = network
        if cache is not None and not use_cache:
            raise ConfigurationError(
                "use_cache=False contradicts an explicit cache; pass one or the other"
            )
        if cache is not None:
            self.cache: FactorizationCache | None = cache
        else:
            self.cache = FactorizationCache(network) if use_cache else None

    def step(
        self,
        temperatures: np.ndarray,
        power_map_w: np.ndarray,
        cooling: CoolingBoundary,
        dt_s: float,
    ) -> np.ndarray:
        """Advance the temperature field by one time step."""
        check_positive(dt_s, "dt_s")
        grid = self.network.grid
        temperatures = np.asarray(temperatures, dtype=float).ravel()
        if temperatures.size != grid.n_cells:
            raise ValidationError(
                f"temperature vector has {temperatures.size} entries, expected {grid.n_cells}"
            )
        if self.cache is not None:
            operator = self.cache.transient_operator(cooling, dt_s)
            rhs = (
                operator.boundary_rhs
                + self.network.power_vector(power_map_w)
                + operator.capacitance_over_dt * temperatures
            )
            return np.asarray(operator.solve(rhs), dtype=float)
        matrix, rhs = self.network.system(power_map_w, cooling)
        capacitance = self.network.capacitance / dt_s
        system = matrix + sparse.diags(capacitance)
        solve = factorized(system.tocsc())
        return np.asarray(solve(rhs + capacitance * temperatures), dtype=float)

    def step_many(
        self,
        temperatures: np.ndarray,
        power_maps_w: np.ndarray,
        cooling: CoolingBoundary,
        dt_s: float,
    ) -> np.ndarray:
        """Advance many temperature fields one step at a shared boundary.

        ``temperatures`` has shape ``(k, n_cells)`` and ``power_maps_w``
        shape ``(k, n_rows, n_columns)``; the advanced fields come back as
        ``(k, n_cells)``.  All ``k`` fields share one backward-Euler operator
        (one factorization through the cache) and are back-substituted as a
        multi-column RHS, with row ``i`` identical to
        ``step(temperatures[i], power_maps_w[i], cooling, dt_s)``.
        """
        check_positive(dt_s, "dt_s")
        grid = self.network.grid
        temperatures = np.asarray(temperatures, dtype=float)
        power_maps_w = np.asarray(power_maps_w, dtype=float)
        if temperatures.ndim != 2 or temperatures.shape[1] != grid.n_cells:
            raise ValidationError(
                f"temperature stack shape {temperatures.shape} does not match "
                f"(k, {grid.n_cells})"
            )
        if temperatures.shape[0] != power_maps_w.shape[0]:
            raise ValidationError(
                "temperature stack and power map stack disagree on the number "
                f"of fields ({temperatures.shape[0]} vs {power_maps_w.shape[0]})"
            )
        if self.cache is None:
            return np.stack(
                [
                    self.step(field, power_map, cooling, dt_s)
                    for field, power_map in zip(temperatures, power_maps_w)
                ]
            )
        operator = self.cache.transient_operator(cooling, dt_s)
        rhs = (
            operator.boundary_rhs[:, np.newaxis]
            + self.network.power_vectors(power_maps_w).T
            + operator.capacitance_over_dt[:, np.newaxis] * temperatures.T
        )
        return np.asarray(operator.solve(rhs), dtype=float).T

    def run(
        self,
        initial_temperature_c: float | np.ndarray,
        power_maps_w: Sequence[np.ndarray],
        cooling: CoolingBoundary | Sequence[CoolingBoundary],
        dt_s: float,
    ) -> Iterator[np.ndarray]:
        """Yield the temperature field after every step of a power sequence.

        ``cooling`` may be a single boundary reused for every step or one
        boundary per step (for flow-rate control studies).  With a single
        boundary the backward-Euler operator is factorized once and reused
        for the whole sequence.
        """
        grid = self.network.grid
        if np.isscalar(initial_temperature_c):
            state = np.full(grid.n_cells, float(initial_temperature_c), dtype=float)
        else:
            state = np.asarray(initial_temperature_c, dtype=float).ravel().copy()
            if state.size != grid.n_cells:
                raise ValidationError(
                    f"initial temperature vector has {state.size} entries, "
                    f"expected {grid.n_cells}"
                )
        boundaries: Sequence[CoolingBoundary]
        if isinstance(cooling, CoolingBoundary):
            boundaries = [cooling] * len(power_maps_w)
        else:
            boundaries = list(cooling)
            if len(boundaries) != len(power_maps_w):
                raise ValidationError(
                    "number of cooling boundaries must match number of power maps"
                )
        for power_map, boundary in zip(power_maps_w, boundaries):
            state = self.step(state, power_map, boundary, dt_s)
            yield state.copy()

    def settle(
        self,
        power_map_w: np.ndarray,
        cooling: CoolingBoundary,
        *,
        dt_s: float = 0.5,
        max_steps: int = 200,
        tolerance_c: float = 0.01,
        initial_temperature_c: float = 45.0,
    ) -> SettleResult:
        """March in time until the field stops changing.

        Useful as a cross-check of the steady-state solver: both must agree.
        Check :attr:`SettleResult.converged` — hitting ``max_steps`` with the
        field still moving is reported, not silently returned.
        """
        grid = self.network.grid
        state = np.full(grid.n_cells, float(initial_temperature_c), dtype=float)
        residual = float("inf")
        for step_index in range(1, max_steps + 1):
            new_state = self.step(state, power_map_w, cooling, dt_s)
            residual = float(np.max(np.abs(new_state - state)))
            state = new_state
            if residual < tolerance_c:
                return SettleResult(
                    temperatures=state,
                    steps=step_index,
                    converged=True,
                    residual_c=residual,
                )
        return SettleResult(
            temperatures=state,
            steps=max_steps,
            converged=False,
            residual_c=residual,
        )
