"""Transient (time-marching) solution of the thermal network.

A backward-Euler scheme is used: it is unconditionally stable, so the
controller studies can take steps of hundreds of milliseconds without the
millikelvin-scale time constants of the thin TIM layers forcing tiny steps.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import factorized

from repro.exceptions import ValidationError
from repro.thermal.boundary import CoolingBoundary
from repro.thermal.network import ThermalNetwork
from repro.utils.validation import check_positive


class TransientSolver:
    """Backward-Euler time integration of ``C dT/dt = -A T + b``."""

    def __init__(self, network: ThermalNetwork) -> None:
        self.network = network

    def step(
        self,
        temperatures: np.ndarray,
        power_map_w: np.ndarray,
        cooling: CoolingBoundary,
        dt_s: float,
    ) -> np.ndarray:
        """Advance the temperature field by one time step."""
        check_positive(dt_s, "dt_s")
        grid = self.network.grid
        temperatures = np.asarray(temperatures, dtype=float).ravel()
        if temperatures.size != grid.n_cells:
            raise ValidationError(
                f"temperature vector has {temperatures.size} entries, expected {grid.n_cells}"
            )
        matrix, rhs = self.network.system(power_map_w, cooling)
        capacitance = self.network.capacitance / dt_s
        system = matrix + sparse.diags(capacitance)
        solve = factorized(system.tocsc())
        return np.asarray(solve(rhs + capacitance * temperatures), dtype=float)

    def run(
        self,
        initial_temperature_c: float | np.ndarray,
        power_maps_w: Sequence[np.ndarray],
        cooling: CoolingBoundary | Sequence[CoolingBoundary],
        dt_s: float,
    ) -> Iterator[np.ndarray]:
        """Yield the temperature field after every step of a power sequence.

        ``cooling`` may be a single boundary reused for every step or one
        boundary per step (for flow-rate control studies).
        """
        grid = self.network.grid
        if np.isscalar(initial_temperature_c):
            state = np.full(grid.n_cells, float(initial_temperature_c), dtype=float)
        else:
            state = np.asarray(initial_temperature_c, dtype=float).ravel().copy()
            if state.size != grid.n_cells:
                raise ValidationError(
                    f"initial temperature vector has {state.size} entries, "
                    f"expected {grid.n_cells}"
                )
        boundaries: Sequence[CoolingBoundary]
        if isinstance(cooling, CoolingBoundary):
            boundaries = [cooling] * len(power_maps_w)
        else:
            boundaries = list(cooling)
            if len(boundaries) != len(power_maps_w):
                raise ValidationError(
                    "number of cooling boundaries must match number of power maps"
                )
        for power_map, boundary in zip(power_maps_w, boundaries):
            state = self.step(state, power_map, boundary, dt_s)
            yield state.copy()

    def settle(
        self,
        power_map_w: np.ndarray,
        cooling: CoolingBoundary,
        *,
        dt_s: float = 0.5,
        max_steps: int = 200,
        tolerance_c: float = 0.01,
        initial_temperature_c: float = 45.0,
    ) -> tuple[np.ndarray, int]:
        """March in time until the field stops changing; returns (field, steps).

        Useful as a cross-check of the steady-state solver: both must agree.
        """
        grid = self.network.grid
        state = np.full(grid.n_cells, initial_temperature_c, dtype=float)
        for step_index in range(1, max_steps + 1):
            new_state = self.step(state, power_map_w, cooling, dt_s)
            if float(np.max(np.abs(new_state - state))) < tolerance_c:
                return new_state, step_index
            state = new_state
        return state, max_steps
