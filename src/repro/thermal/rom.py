"""Reduced-order thermal lane: Krylov-projected backward-Euler stepping.

A datacenter floor in quasi-steady state pays a full multi-RHS
back-substitution per substep for fields that barely move.  This module
projects the backward-Euler operator of one ``(cooling boundary, dt)``
pair onto a small Krylov subspace and steps the transient there —
``O(k^2)`` per step instead of a sparse triangular solve — lifting back
only what the controller reads (the per-server case-cell temperature)
until the span ends, when the full field is reconstructed once.

Subspace construction
---------------------
The backward-Euler step map is ``T+ = M T + K_dt^{-1} b`` with
``K_dt = A + C/dt`` and ``M = K_dt^{-1} (C/dt)``; its fixed point is the
steady state ``A^{-1} b``.  The basis is therefore seeded per row group
with the current fields ``T0`` and their steady targets ``A^{-1} b``,
block-extended with a few applications of ``M`` (Arnoldi-style, using the
*cached* LU factors — build cost is a handful of back-substitutions), and
orthonormalised by pivoted QR capped at ``max_basis`` columns.  The exact
trajectory satisfies ``T_j - T_inf = M^j (T0 - T_inf)``, so for
quasi-steady spans a couple of Krylov blocks capture it to solver
precision.

A-posteriori error bound (the fallback trigger)
-----------------------------------------------
``A`` is a resistive-network matrix: symmetric, non-positive
off-diagonals, non-negative row sums.  ``K_dt`` is then strictly
diagonally dominant with row sums at least ``c_i/dt``, which makes
``M = K_dt^{-1} (C/dt)`` a sup-norm contraction (``||M||_inf <= 1``).
The full-space residual of a reduced step,
``r = K_dt T~ - b - (C/dt) T_prev~``, converts into a temperature error
through ``K_dt^{-1} r = M (dt r / c)`` — so the per-step lift error is
rigorously bounded by the *capacitance-weighted* residual
``max_i dt |r_i| / c_i`` (far sharper than the classical
``||r||_inf * dt / min(c)`` whenever the residual lives away from the
smallest-capacitance cells).  Because ``M`` is a contraction the per-step
bounds accumulate additively on top of the entry projection error
``||T0 - V V^T T0||_inf``.

Power injections are held for a whole coarse span (that is what makes
the span quasi-steady), so the residual evolves smoothly along it; the
marcher samples the bound at the first and last reduced substep of the
span — two ``(n, k)`` mat-vecs per span, not per step — and charges the
sampled maximum for every substep.  That keeps the whole ROM span free
of per-step ``O(n)`` work while remaining a faithful estimate, and the
golden-model tests pin the end-to-end error empirically.

Whenever that accumulated bound — or the lifted case temperature's
proximity to the thermal constraint — exceeds tolerance, the caller falls
back to the full factorized solver for the affected rows; the
:class:`RomStats` counters make every such decision observable.

Cached beside the LU factors: :class:`~repro.thermal.solver_cache.\
FactorizationCache` stores one :class:`ReducedOperator` per
``(boundary content, dt)`` key, so committed traces and replays rebuild a
basis only when the floor state has genuinely drifted out of the span of
the cached one (the projection test catches that).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import linalg as dense_linalg

from repro.obs.telemetry import Counters
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["ReducedOperator", "RomConfig", "RomStats", "build_reduced_operator"]


@dataclass(frozen=True)
class RomConfig:
    """Knobs of the reduced-order lane.

    ``max_basis`` caps the subspace dimension (pivoted QR keeps the best
    columns); ``krylov_iterations`` is the number of Arnoldi block
    extensions applied to the seed block.  ``projection_tol_c`` bounds the
    entry projection error before a cached basis is rebuilt from the
    current states; ``step_error_tol_c`` bounds the *accumulated*
    a-posteriori lift error over a span before the affected rows fall
    back to the full solver; ``guard_band_c`` falls back whenever a lifted
    case temperature comes within this margin of ``T_CASE_MAX`` — the ROM
    never arbitrates a constraint decision.
    """

    max_basis: int = 32
    krylov_iterations: int = 3
    projection_tol_c: float = 0.05
    step_error_tol_c: float = 0.05
    guard_band_c: float = 2.0

    def __post_init__(self) -> None:
        check_positive_int(self.max_basis, "max_basis")
        if self.krylov_iterations < 0:
            raise ValueError(
                f"krylov_iterations must be >= 0, got {self.krylov_iterations}"
            )
        check_positive(self.projection_tol_c, "projection_tol_c")
        check_positive(self.step_error_tol_c, "step_error_tol_c")
        check_positive(self.guard_band_c, "guard_band_c")


class RomStats:
    """Counters of the reduced-order lane's decisions (floor-lifetime).

    ``spans`` counts coarse spans attempted through the ROM;
    ``rom_periods`` the control periods actually integrated in reduced
    space (summed over rows); ``fallback_error`` / ``fallback_guard`` /
    ``fallback_projection`` the rows returned to the full solver because
    the accumulated error bound tripped, a lifted case temperature entered
    the constraint guard band, or the entry states left the span of a
    (re)built basis.  ``basis_builds`` counts cold builds,
    ``basis_rebuilds`` the drift-triggered replacements of a cached basis.

    The storage is a :class:`repro.obs.telemetry.Counters` bag; the named
    fields are read/write property views over it, so the historical
    dataclass surface (keyword construction, ``stats.spans += 1``,
    ``copy``/``merge``/``delta``, equality) is unchanged while the values
    live on the unified telemetry primitive.
    """

    FIELDS = (
        "basis_builds",
        "basis_rebuilds",
        "spans",
        "rom_periods",
        "rom_rows",
        "fallback_rows",
        "fallback_error",
        "fallback_guard",
        "fallback_projection",
    )

    __slots__ = ("_counters",)

    def __init__(self, **counts: int) -> None:
        unknown = set(counts) - set(self.FIELDS)
        if unknown:
            raise TypeError(f"unknown RomStats fields: {sorted(unknown)}")
        self._counters = Counters()
        for name, value in counts.items():
            self._counters.set(name, int(value))

    @property
    def counters(self) -> Counters:
        """The backing telemetry counter bag."""
        return self._counters

    def copy(self) -> "RomStats":
        """An independent snapshot of the current counters."""
        return RomStats(**self._counters.snapshot())

    def merge(self, other: "RomStats") -> None:
        """Fold another counter set into this one, in place.

        The thread-parallel floor engine hands every hardware group its own
        scratch counter set and merges them back in group-index order after
        the join — integer addition is order-independent, but the fixed
        order keeps the commit path deterministic by construction.
        """
        for name, value in other._counters.snapshot().items():
            self._counters.add(name, value)

    def delta(self, before: "RomStats") -> "RomStats":
        """Counter activity since a :meth:`copy` snapshot."""
        return RomStats(
            **{
                name: self._counters.get(name) - before._counters.get(name)
                for name in self.FIELDS
            }
        )

    @property
    def fallbacks(self) -> int:
        """Total row-level fallbacks to the full solver."""
        return self.fallback_error + self.fallback_guard + self.fallback_projection

    def _astuple(self) -> tuple[int, ...]:
        return tuple(self._counters.get(name) for name in self.FIELDS)

    def __eq__(self, other) -> bool:
        if not isinstance(other, RomStats):
            return NotImplemented
        return self._astuple() == other._astuple()

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}={self._counters.get(name)}" for name in self.FIELDS
        )
        return f"RomStats({inner})"


def _rom_counter_property(name: str) -> property:
    def getter(self: RomStats) -> int:
        return self._counters.get(name)

    def setter(self: RomStats, value: int) -> None:
        self._counters.set(name, int(value))

    return property(getter, setter, doc=f"Live ``{name}`` counter view.")


for _field_name in RomStats.FIELDS:
    setattr(RomStats, _field_name, _rom_counter_property(_field_name))
del _field_name


@dataclass(frozen=True)
class ReducedOperator:
    """One ``(cooling boundary, dt)`` operator projected onto a Krylov basis.

    ``basis`` is the orthonormal ``(n_cells, k)`` matrix ``V``.  The
    reduced step solves ``(V^T K_dt V) y+ = V^T b + (V^T (C/dt) V) y``
    through a dense LU of the ``k x k`` matrix; ``conductance_basis``
    (``K V``) and ``capacitance_basis`` (``(C/dt) V``) are precomputed so
    the full-space residual of a reduced iterate costs two ``(n, k)``
    mat-vecs.  ``inverse_capacitance_dt`` is the per-cell ``dt / c_i``
    weight that converts a residual into a rigorous temperature error
    bound through the ``M``-contraction (see the module docstring).
    """

    basis: np.ndarray
    dt_s: float
    boundary_rhs: np.ndarray
    reduced_lu: tuple
    reduced_capacitance: np.ndarray
    conductance_basis: np.ndarray
    capacitance_basis: np.ndarray
    basis_boundary_rhs: np.ndarray
    case_cell_index: int
    inverse_capacitance_dt: np.ndarray
    step_matrix: np.ndarray

    @property
    def order(self) -> int:
        """Dimension ``k`` of the reduced space."""
        return self.basis.shape[1]

    # ------------------------------------------------------------------ #
    # Projection / lifting
    # ------------------------------------------------------------------ #
    def project(self, fields: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Project ``(m, n)`` fields; returns ``(Y, entry_error)``.

        ``Y`` is ``(k, m)`` reduced coordinates; ``entry_error[i]`` is the
        sup-norm distance of row ``i`` from the subspace — the first term
        of the a-posteriori bound, and the staleness test of a cached
        basis.
        """
        coords = self.basis.T @ fields.T
        lifted = self.basis @ coords
        entry_error = np.max(np.abs(fields.T - lifted), axis=0)
        return coords, entry_error

    def lift(self, coords: np.ndarray) -> np.ndarray:
        """Reconstruct full ``(m, n)`` fields from ``(k, m)`` coordinates."""
        return (self.basis @ coords).T

    def reduce_rhs(self, power_vectors: np.ndarray) -> np.ndarray:
        """``V^T (boundary_rhs + power_vector)`` for ``(m, n)`` power vectors."""
        return self.basis_boundary_rhs[:, np.newaxis] + self.basis.T @ power_vectors.T

    def case_temperatures(self, coords: np.ndarray) -> np.ndarray:
        """Lift only the controller-read observable: the case-cell row."""
        return self.basis[self.case_cell_index] @ coords

    # ------------------------------------------------------------------ #
    # Stepping
    # ------------------------------------------------------------------ #
    def step(self, coords: np.ndarray, reduced_rhs: np.ndarray) -> np.ndarray:
        """One backward-Euler step in reduced space (``O(k^2)`` per row)."""
        rhs = reduced_rhs + self.reduced_capacitance @ coords
        return dense_linalg.lu_solve(self.reduced_lu, rhs)

    def affine_term(self, reduced_rhs: np.ndarray) -> np.ndarray:
        """``K_r^{-1} rhs_r`` — the constant part of the affine step map.

        The RHS is held for a whole coarse span, so the marcher factors the
        step into ``y+ = step_matrix @ y + affine`` and pays one dense
        ``lu_solve`` per span; each substep is then a bare ``(k, k)``
        matmul, with none of the LAPACK wrapper overhead that would
        otherwise dominate at small ``k``.
        """
        return dense_linalg.lu_solve(self.reduced_lu, reduced_rhs)

    def step_error_bound(
        self,
        coords_new: np.ndarray,
        coords_old: np.ndarray,
        full_rhs: np.ndarray,
    ) -> np.ndarray:
        """Per-row sup-norm error bound of one reduced step.

        ``full_rhs`` is ``(m, n)``: ``boundary_rhs + power_vector`` per
        row.  The residual of the lifted iterate is assembled from the
        precomputed ``K V`` and ``(C/dt) V`` factors and weighted by the
        per-cell ``dt / c_i`` gain — a rigorous (M-matrix) bound on the
        true error added by this step, valid to accumulate across a span
        because the step map is a sup-norm contraction.
        """
        residual = (
            self.conductance_basis @ coords_new
            + self.capacitance_basis @ (coords_new - coords_old)
            - full_rhs.T
        )
        return np.max(
            np.abs(residual) * self.inverse_capacitance_dt[:, np.newaxis], axis=0
        )


def _orthonormal_columns(columns: np.ndarray, max_basis: int) -> np.ndarray:
    """Pivoted-QR orthonormalisation, pruned to the numerically independent
    columns and capped at ``max_basis``."""
    q, r, _ = dense_linalg.qr(columns, mode="economic", pivoting=True)
    diag = np.abs(np.diag(r))
    if diag.size == 0 or diag[0] <= 0.0:
        raise ValueError("reduced basis seeds are all zero")
    keep = int(np.sum(diag > diag[0] * 1e-12))
    keep = max(1, min(keep, max_basis))
    return np.ascontiguousarray(q[:, :keep])


def build_reduced_operator(
    network,
    cache,
    cooling,
    dt_s: float,
    seed_fields: np.ndarray,
    power_vectors: np.ndarray,
    case_cell_index: int,
    config: RomConfig,
    previous_basis: np.ndarray | None = None,
) -> ReducedOperator:
    """Build a :class:`ReducedOperator` for one ``(cooling, dt)`` pair.

    ``seed_fields`` is the ``(m, n)`` stack of current fields of the rows
    that will step through the operator and ``power_vectors`` their
    ``(m, n)`` power injections.  The Krylov construction draws every
    solve from ``cache`` (the shared
    :class:`~repro.thermal.solver_cache.FactorizationCache`), so a build
    costs a few cached back-substitutions, never a new factorization
    beyond the ones the full lane needs anyway.

    ``previous_basis`` (a drift-invalidated cached basis) is folded into
    the seed block on a rebuild, so a boundary the floor keeps returning
    to accumulates a basis that spans its whole operating envelope and
    the rebuild rate decays over a long trace instead of churning.
    """
    check_positive(dt_s, "dt_s")
    transient_op = cache.transient_operator(cooling, dt_s)
    steady_op = cache.steady_operator(cooling)
    boundary_rhs = transient_op.boundary_rhs
    capacitance_over_dt = transient_op.capacitance_over_dt

    full_rhs = boundary_rhs[np.newaxis, :] + power_vectors
    steady_targets = np.asarray(steady_op.solve(full_rhs.T), dtype=float)
    if steady_targets.ndim == 1:
        steady_targets = steady_targets[:, np.newaxis]

    block = np.concatenate([seed_fields.T, steady_targets], axis=1)
    blocks = [block]
    for _ in range(config.krylov_iterations):
        block = np.asarray(
            transient_op.solve(capacitance_over_dt[:, np.newaxis] * block),
            dtype=float,
        )
        blocks.append(block)
    if previous_basis is not None:
        blocks.append(np.asarray(previous_basis, dtype=float))
    basis = _orthonormal_columns(np.concatenate(blocks, axis=1), config.max_basis)

    conductance, _ = network.conductance_system(cooling)
    conductance_basis = np.asarray(conductance @ basis, dtype=float)
    capacitance_basis = capacitance_over_dt[:, np.newaxis] * basis
    reduced_system = basis.T @ (conductance_basis + capacitance_basis)
    reduced_lu = dense_linalg.lu_factor(reduced_system)
    reduced_capacitance = basis.T @ capacitance_basis
    return ReducedOperator(
        basis=basis,
        dt_s=float(dt_s),
        boundary_rhs=boundary_rhs,
        reduced_lu=reduced_lu,
        reduced_capacitance=reduced_capacitance,
        conductance_basis=conductance_basis,
        capacitance_basis=capacitance_basis,
        basis_boundary_rhs=basis.T @ boundary_rhs,
        case_cell_index=int(case_cell_index),
        inverse_capacitance_dt=float(dt_s) / np.asarray(network.capacitance, dtype=float),
        step_matrix=dense_linalg.lu_solve(reduced_lu, reduced_capacitance),
    )
