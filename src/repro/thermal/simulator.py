"""High-level thermal simulator tying floorplan, network and solvers together."""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping, Sequence

import numpy as np

from repro.exceptions import ConvergenceError, ValidationError
from repro.floorplan.floorplan import Floorplan
from repro.floorplan.grid_mapper import GridMapper
from repro.thermal.boundary import BottomBoundary, CoolingBoundary
from repro.thermal.grid import ThermalGrid
from repro.thermal.layers import LayerStack, standard_thermosyphon_stack
from repro.thermal.metrics import ThermalMetrics, compute_metrics
from repro.thermal.network import ThermalNetwork
from repro.thermal.solver_cache import FactorizationCache
from repro.thermal.steady_state import SteadyStateSolver
from repro.thermal.transient import SettleResult, TransientSolver
from repro.utils.validation import check_positive


def case_cell_row_column(
    floorplan: Floorplan, outline, n_rows: int, n_columns: int
) -> tuple[int, int]:
    """Grid cell holding the ``T_CASE`` measurement point (die centre).

    The single source of the case-temperature cell selection, shared by
    :meth:`ThermalResult.case_temperature_c` and the rack engine's
    within-period peak scan so the two can never diverge.
    """
    centre_x, centre_y = floorplan.die_outline.center
    column = int((centre_x - outline.x) / outline.width * n_columns)
    row = int((centre_y - outline.y) / outline.height * n_rows)
    return min(max(row, 0), n_rows - 1), min(max(column, 0), n_columns - 1)


@dataclass
class ThermalResult:
    """Temperature field of one simulation plus convenience accessors."""

    temperatures_c: np.ndarray  # (n_layers, n_rows, n_columns)
    die_mask: np.ndarray
    cell_pitch_mm: tuple[float, float]
    die_layer_index: int
    spreader_layer_index: int
    floorplan: Floorplan
    grid_mapper: GridMapper

    # ------------------------------------------------------------------ #
    # Maps
    # ------------------------------------------------------------------ #
    def die_map(self) -> np.ndarray:
        """Temperature map of the silicon (junction) layer, full grid."""
        return self.temperatures_c[self.die_layer_index]

    def package_map(self) -> np.ndarray:
        """Temperature map of the heat-spreader (package/case) layer."""
        return self.temperatures_c[self.spreader_layer_index]

    # ------------------------------------------------------------------ #
    # Metrics
    # ------------------------------------------------------------------ #
    def die_metrics(self) -> ThermalMetrics:
        """Hot spot, average and max gradient over the die area."""
        return compute_metrics(self.die_map(), self.cell_pitch_mm, self.die_mask)

    def package_metrics(self) -> ThermalMetrics:
        """Hot spot, average and max gradient over the package (die shadow)."""
        return compute_metrics(self.package_map(), self.cell_pitch_mm, self.die_mask)

    def case_temperature_c(self) -> float:
        """T_CASE: temperature at the centre of the heat spreader.

        The thermal design constraint of Section VI is
        ``T_CASE <= T_CASE_MAX`` (85 degC), measured at the centre of the
        heat-spreader surface.
        """
        n_rows, n_columns = self.package_map().shape
        row, column = case_cell_row_column(
            self.floorplan, self.grid_mapper.outline, n_rows, n_columns
        )
        return float(self.package_map()[row, column])

    def core_temperature_c(self, core_index: int, *, reduce: str = "max") -> float:
        """Temperature of one core (max or mean over the cells it covers)."""
        core = self.floorplan.core(core_index)
        weights = self.grid_mapper.component_mask(core.name)
        selected = self.die_map()[weights > 0.0]
        if selected.size == 0:
            return float("nan")
        if reduce == "max":
            return float(selected.max())
        if reduce == "mean":
            return float(selected.mean())
        raise ValueError(f"reduce must be 'max' or 'mean', got {reduce!r}")

    def core_temperatures_c(self, *, reduce: str = "max") -> dict[int, float]:
        """Per-core temperatures keyed by logical core index."""
        return {
            core.core_index: self.core_temperature_c(core.core_index, reduce=reduce)
            for core in self.floorplan.cores
        }

    def component_temperature_c(self, name: str, *, reduce: str = "max") -> float:
        """Temperature of an arbitrary floorplan component."""
        weights = self.grid_mapper.component_mask(name)
        selected = self.die_map()[weights > 0.0]
        if selected.size == 0:
            return float("nan")
        return float(selected.max() if reduce == "max" else selected.mean())


class ThermalSimulator:
    """Steady-state and transient thermal simulation over a floorplan.

    Parameters
    ----------
    floorplan:
        The die/package floorplan; the grid covers its spreader outline.
    stack:
        Layer stack; defaults to the standard thermosyphon assembly.
    cell_size_mm:
        Target in-plane cell size.  The actual size is the spreader extent
        divided by the nearest integer cell count.
    bottom_boundary:
        Heat path from the package bottom to the server ambient.
    use_solver_cache:
        Share a :class:`FactorizationCache` between the steady-state and
        transient solvers (the default).  Repeated solves at an unchanged
        cooling boundary then reuse one LU factorization; a boundary change
        re-keys the cache automatically.  Call
        :meth:`invalidate_solver_cache` if the network is ever mutated in
        place.
    solver_cache_entries:
        LRU capacity of the shared cache.  Size it to at least the number
        of distinct cooling boundaries a sweep revisits, otherwise a
        repeated walk over the sweep evicts each entry just before it is
        needed again.
    """

    def __init__(
        self,
        floorplan: Floorplan,
        *,
        stack: LayerStack | None = None,
        cell_size_mm: float = 1.0,
        bottom_boundary: BottomBoundary | None = None,
        use_solver_cache: bool = True,
        solver_cache_entries: int = 16,
    ) -> None:
        check_positive(cell_size_mm, "cell_size_mm")
        self.floorplan = floorplan
        self.cell_size_mm = cell_size_mm
        self.stack = stack if stack is not None else standard_thermosyphon_stack()
        outline = floorplan.spreader_outline
        n_columns = max(int(round(outline.width / cell_size_mm)), 4)
        n_rows = max(int(round(outline.height / cell_size_mm)), 4)
        self.grid = ThermalGrid(outline, self.stack, n_rows, n_columns)
        self.grid_mapper = GridMapper(floorplan, outline, n_rows, n_columns)
        self.die_mask = self.grid_mapper.die_mask()
        self.network = ThermalNetwork(self.grid, self.die_mask, bottom_boundary)
        self.solver_cache = (
            FactorizationCache(self.network, max_entries=solver_cache_entries)
            if use_solver_cache
            else None
        )
        self._steady_solver = SteadyStateSolver(
            self.network, cache=self.solver_cache, use_cache=use_solver_cache
        )
        self._transient_solver = TransientSolver(
            self.network, cache=self.solver_cache, use_cache=use_solver_cache
        )

    def invalidate_solver_cache(self) -> None:
        """Drop cached factorizations (no-op when caching is disabled)."""
        if self.solver_cache is not None:
            self.solver_cache.invalidate()

    # ------------------------------------------------------------------ #
    # Shapes and helpers
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, int]:
        """In-plane grid shape ``(n_rows, n_columns)``."""
        return self.grid.n_rows, self.grid.n_columns

    def power_map(self, component_power_w: Mapping[str, float]) -> np.ndarray:
        """Rasterise per-component power onto the grid."""
        return self.grid_mapper.power_map(component_power_w)

    def _result(self, flat_temperatures: np.ndarray) -> ThermalResult:
        grid = self.grid
        return ThermalResult(
            temperatures_c=flat_temperatures.reshape(
                grid.n_layers, grid.n_rows, grid.n_columns
            ),
            die_mask=self.die_mask,
            cell_pitch_mm=grid.cell_pitch_mm(),
            die_layer_index=self.stack.heat_source_index,
            spreader_layer_index=self.stack.index_of("heat_spreader"),
            floorplan=self.floorplan,
            grid_mapper=self.grid_mapper,
        )

    # ------------------------------------------------------------------ #
    # Solvers
    # ------------------------------------------------------------------ #
    def steady_state(
        self,
        component_power_w: Mapping[str, float],
        cooling: CoolingBoundary,
    ) -> ThermalResult:
        """Equilibrium temperatures for a component power dictionary."""
        power_map = self.power_map(component_power_w)
        flat = self._steady_solver.solve(power_map, cooling)
        return self._result(flat)

    def steady_state_from_map(
        self, power_map_w: np.ndarray, cooling: CoolingBoundary
    ) -> ThermalResult:
        """Equilibrium temperatures for an explicit per-cell power map."""
        flat = self._steady_solver.solve(np.asarray(power_map_w, dtype=float), cooling)
        return self._result(flat)

    def steady_state_many_from_maps(
        self, power_maps_w: np.ndarray, cooling: CoolingBoundary
    ) -> np.ndarray:
        """Equilibrium fields for many power maps at one shared boundary.

        ``power_maps_w`` has shape ``(k, n_rows, n_columns)``; returns the
        flat fields as ``(k, n_cells)``, each row identical to the
        corresponding :meth:`steady_state_from_map` solve.  One cached
        factorization serves all ``k`` maps (multi-column back-substitution);
        wrap rows with :meth:`result_from_vector` as needed.
        """
        return self._steady_solver.solve_many(
            np.asarray(power_maps_w, dtype=float), cooling
        )

    def transient_step_many_from_maps(
        self,
        temperatures: np.ndarray,
        power_maps_w: np.ndarray,
        cooling: CoolingBoundary,
        dt_s: float,
    ) -> np.ndarray:
        """One backward-Euler step for many fields at one shared boundary.

        The rack-engine counterpart of :meth:`transient_step_from_map`:
        ``temperatures`` is ``(k, n_cells)``, ``power_maps_w`` is
        ``(k, n_rows, n_columns)``, and all ``k`` fields advance through one
        cached operator in a single multi-column back-substitution.
        """
        return self._transient_solver.step_many(
            np.asarray(temperatures, dtype=float),
            np.asarray(power_maps_w, dtype=float),
            cooling,
            dt_s,
        )

    def transient_step_from_map(
        self,
        temperatures: np.ndarray,
        power_map_w: np.ndarray,
        cooling: CoolingBoundary,
        dt_s: float,
    ) -> np.ndarray:
        """One backward-Euler step from an explicit temperature field.

        ``temperatures`` may be flat or shaped ``(n_layers, n_rows,
        n_columns)``; the advanced field is returned flat.  Used by the
        warm-start :class:`repro.core.session.SimulationSession` to carry
        the field across control periods; at a fixed ``(cooling, dt_s)``
        every call is a single cached back-substitution.
        """
        flat = np.asarray(temperatures, dtype=float).ravel()
        return self._transient_solver.step(
            flat, np.asarray(power_map_w, dtype=float), cooling, dt_s
        )

    def result_from_vector(self, flat_temperatures: np.ndarray) -> ThermalResult:
        """Wrap a flat temperature vector in a :class:`ThermalResult`."""
        flat = np.asarray(flat_temperatures, dtype=float).ravel()
        if flat.size != self.grid.n_cells:
            raise ValidationError(
                f"temperature vector has {flat.size} entries, expected {self.grid.n_cells}"
            )
        return self._result(flat)

    def transient(
        self,
        component_power_sequence: Sequence[Mapping[str, float]],
        cooling: CoolingBoundary | Sequence[CoolingBoundary],
        dt_s: float,
        *,
        initial_temperature_c: float = 45.0,
    ) -> list[ThermalResult]:
        """Backward-Euler transient over a sequence of power dictionaries."""
        power_maps = [self.power_map(powers) for powers in component_power_sequence]
        results = []
        for flat in self._transient_solver.run(
            initial_temperature_c, power_maps, cooling, dt_s
        ):
            results.append(self._result(flat))
        return results

    def settle(
        self,
        component_power_w: Mapping[str, float],
        cooling: CoolingBoundary,
        *,
        raise_on_nonconverged: bool = False,
        **kwargs,
    ) -> tuple[ThermalResult, SettleResult]:
        """Time-march to equilibrium (cross-check of the steady-state path).

        Returns the thermal result and the full :class:`SettleResult`;
        check ``converged`` (or pass ``raise_on_nonconverged=True``) — a
        settle that runs out of steps is not an equilibrium.
        """
        power_map = self.power_map(component_power_w)
        settle = self._transient_solver.settle(power_map, cooling, **kwargs)
        if raise_on_nonconverged and not settle.converged:
            raise ConvergenceError(
                f"settle did not converge within {settle.steps} steps "
                f"(last change {settle.residual_c:.4g} degC)"
            )
        return self._result(settle.temperatures), settle
