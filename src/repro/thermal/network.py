"""Assembly of the sparse thermal conductance network.

The network follows the standard compact thermal modelling approach used by
3D-ICE and HotSpot: every grid cell becomes a node, neighbouring cells are
connected by conductances computed from the series combination of their
half-cell resistances, the top layer exchanges heat with the micro-channel
fluid through per-cell convective conductances, and the bottom layer leaks a
small amount of heat to the server ambient through the package substrate.

Vectorized construction
-----------------------
Assembly is fully array-based (no per-cell Python loops), which is what makes
fine grids (<= 0.75 mm cells) affordable on the first solve:

* Each layer contributes a per-cell conductivity plane derived from the die
  mask (:meth:`repro.thermal.layers.Layer.conductivity_field`), stacked into
  one ``(n_layers, n_rows, n_columns)`` array.
* From that array the per-cell *half resistances* along each axis are
  computed once; the conductance between two neighbours is the reciprocal of
  the sum of two shifted slices (east/west, north/south, up/down) — one
  ``(L, R, C-1)``, ``(L, R-1, C)`` and ``(L-1, R, C)`` array respectively.
* Each neighbour direction emits a single COO triplet batch (both symmetric
  off-diagonal entries plus its additions to the diagonal), and one
  ``coo_matrix`` call builds the matrix.

The per-edge conductances are computed with the same floating-point
expressions as the original loop assembler (kept as the golden model in
``tests/reference_assembly.py``); only the order in which the diagonal
accumulates differs, so vectorized and reference assemblies agree to
<= 1e-12 relative.  The cost model is O(n_cells) NumPy work with small
constants — assembly at 0.75 mm cells went from seconds (triple loop) to
tens of milliseconds, >= 20x faster (see ``benchmarks/test_bench_assembly``).
"""

from __future__ import annotations

import hashlib

import numpy as np
from scipy import sparse

from repro.exceptions import ValidationError
from repro.thermal.boundary import BottomBoundary, CoolingBoundary
from repro.thermal.grid import ThermalGrid


class ThermalNetwork:
    """Sparse conductance/capacitance assembly for a grid and die mask."""

    def __init__(
        self,
        grid: ThermalGrid,
        die_mask: np.ndarray,
        bottom_boundary: BottomBoundary | None = None,
    ) -> None:
        die_mask = np.asarray(die_mask, dtype=bool)
        if die_mask.shape != (grid.n_rows, grid.n_columns):
            raise ValidationError(
                f"die mask shape {die_mask.shape} does not match grid "
                f"({grid.n_rows}, {grid.n_columns})"
            )
        self.grid = grid
        self.die_mask = die_mask
        self.bottom_boundary = bottom_boundary if bottom_boundary is not None else BottomBoundary()
        self._conductivity = self._conductivity_fields()
        self._bulk_matrix, self._bottom_rhs = self._assemble_bulk()
        self._capacitance = self._assemble_capacitance()
        self._top_half_resistance = self._top_half_resistance_field()

    # ------------------------------------------------------------------ #
    # Assembly
    # ------------------------------------------------------------------ #
    def _conductivity_fields(self) -> np.ndarray:
        """Per-cell conductivity, shape ``(n_layers, n_rows, n_columns)``."""
        return np.stack(
            [layer.conductivity_field(self.die_mask) for layer in self.grid.stack]
        )

    def _layer_thicknesses(self) -> np.ndarray:
        return np.array([layer.thickness_m for layer in self.grid.stack], dtype=float)

    def _assemble_bulk(self) -> tuple[sparse.csr_matrix, np.ndarray]:
        """Conduction network plus the (fixed) bottom boundary."""
        grid = self.grid
        n = grid.n_cells
        n_layers, n_rows, n_columns = grid.n_layers, grid.n_rows, grid.n_columns
        k = self._conductivity
        thickness = self._layer_thicknesses()[:, np.newaxis, np.newaxis]
        index = np.arange(n).reshape(n_layers, n_rows, n_columns)

        diag = np.zeros((n_layers, n_rows, n_columns), dtype=float)
        bottom_rhs = np.zeros(n, dtype=float)
        row_batches: list[np.ndarray] = []
        col_batches: list[np.ndarray] = []
        value_batches: list[np.ndarray] = []

        def couple(index_a: np.ndarray, index_b: np.ndarray, g: np.ndarray) -> None:
            flat_a, flat_b, flat_g = index_a.ravel(), index_b.ravel(), g.ravel()
            row_batches.extend((flat_a, flat_b))
            col_batches.extend((flat_b, flat_a))
            value_batches.extend((-flat_g, -flat_g))

        # East-west neighbours: half resistance = length / (2 k A_cross) with
        # cross-section = thickness x cell height; the edge conductance is the
        # reciprocal sum of the two adjoining half resistances.
        if n_columns > 1:
            half = grid.cell_width_m / (2.0 * k * (thickness * grid.cell_height_m))
            g_east = 1.0 / (half[:, :, :-1] + half[:, :, 1:])
            couple(index[:, :, :-1], index[:, :, 1:], g_east)
            diag[:, :, :-1] += g_east
            diag[:, :, 1:] += g_east

        # North-south neighbours: cross-section = thickness x cell width.
        if n_rows > 1:
            half = grid.cell_height_m / (2.0 * k * (thickness * grid.cell_width_m))
            g_north = 1.0 / (half[:, :-1, :] + half[:, 1:, :])
            couple(index[:, :-1, :], index[:, 1:, :], g_north)
            diag[:, :-1, :] += g_north
            diag[:, 1:, :] += g_north

        # Vertical neighbours: half resistance = thickness / (2 k A_cell).
        if n_layers > 1:
            half = thickness / (2.0 * k * grid.cell_area_m2)
            g_vertical = 1.0 / (half[:-1] + half[1:])
            couple(index[:-1], index[1:], g_vertical)
            diag[:-1] += g_vertical
            diag[1:] += g_vertical

        # Bottom boundary: bottom layer to ambient through the substrate/board.
        bottom = self.bottom_boundary
        if bottom.htc_w_m2k > 0.0:
            area = grid.cell_area_m2
            resistance = thickness[0] / (2.0 * k[0] * area) + 1.0 / (bottom.htc_w_m2k * area)
            g_bottom = 1.0 / resistance
            diag[0] += g_bottom
            bottom_rhs[: grid.cells_per_layer] = (
                g_bottom * bottom.ambient_temperature_c
            ).ravel()

        row_batches.append(np.arange(n))
        col_batches.append(np.arange(n))
        value_batches.append(diag.ravel())
        matrix = sparse.coo_matrix(
            (
                np.concatenate(value_batches),
                (np.concatenate(row_batches), np.concatenate(col_batches)),
            ),
            shape=(n, n),
        ).tocsr()
        return matrix, bottom_rhs

    def _assemble_capacitance(self) -> np.ndarray:
        """Per-cell heat capacity in J/K."""
        grid = self.grid
        planes = [
            (grid.cell_area_m2 * layer.thickness_m) * layer.capacity_field(self.die_mask)
            for layer in grid.stack
        ]
        return np.concatenate([plane.ravel() for plane in planes])

    def _top_half_resistance_field(self) -> np.ndarray:
        """Half-cell conduction resistance of the top layer, per cell."""
        grid = self.grid
        top_layer = grid.n_layers - 1
        thickness = grid.stack[top_layer].thickness_m
        return thickness / (2.0 * self._conductivity[top_layer] * grid.cell_area_m2)

    # ------------------------------------------------------------------ #
    # Per-simulation system assembly
    # ------------------------------------------------------------------ #
    def _top_boundary_terms(
        self, cooling: CoolingBoundary
    ) -> tuple[np.ndarray, np.ndarray]:
        """Diagonal additions and RHS contributions of the top boundary."""
        grid = self.grid
        if cooling.shape != (grid.n_rows, grid.n_columns):
            raise ValidationError(
                f"cooling boundary shape {cooling.shape} does not match grid "
                f"({grid.n_rows}, {grid.n_columns})"
            )
        top_layer = grid.n_layers - 1
        area = grid.cell_area_m2
        htc = cooling.htc_w_m2k
        active = htc > 0.0
        # Guard the h=0 division rather than filtering, so one expression
        # produces the whole plane; inactive cells contribute nothing.
        safe_htc = np.where(active, htc, 1.0)
        g = np.where(
            active,
            1.0 / (self._top_half_resistance + 1.0 / (safe_htc * area)),
            0.0,
        )
        diag_add = np.zeros(grid.n_cells, dtype=float)
        rhs_add = np.zeros(grid.n_cells, dtype=float)
        top_slice = grid.layer_slice(top_layer)
        diag_add[top_slice] = g.ravel()
        rhs_add[top_slice] = (g * cooling.fluid_temperature_c).ravel()
        return diag_add, rhs_add

    def power_vector(self, power_map_w: np.ndarray) -> np.ndarray:
        """Flat power-injection vector from a per-cell power map (heat source layer)."""
        grid = self.grid
        power_map_w = np.asarray(power_map_w, dtype=float)
        if power_map_w.shape != (grid.n_rows, grid.n_columns):
            raise ValidationError(
                f"power map shape {power_map_w.shape} does not match grid "
                f"({grid.n_rows}, {grid.n_columns})"
            )
        if np.any(power_map_w < 0.0):
            raise ValidationError("power map must be non-negative")
        vector = np.zeros(grid.n_cells, dtype=float)
        source_layer = grid.stack.heat_source_index
        vector[grid.layer_slice(source_layer)] = power_map_w.ravel()
        return vector

    def power_vectors(self, power_maps_w: np.ndarray) -> np.ndarray:
        """Stacked power-injection vectors for many per-cell power maps.

        ``power_maps_w`` has shape ``(k, n_rows, n_columns)``; the result has
        shape ``(k, n_cells)`` with each row equal to
        :meth:`power_vector` of the corresponding map.  Used by the rack
        engine to build multi-column right-hand sides in one scatter.
        """
        grid = self.grid
        power_maps_w = np.asarray(power_maps_w, dtype=float)
        if power_maps_w.ndim != 3 or power_maps_w.shape[1:] != (
            grid.n_rows,
            grid.n_columns,
        ):
            raise ValidationError(
                f"power map stack shape {power_maps_w.shape} does not match "
                f"(k, {grid.n_rows}, {grid.n_columns})"
            )
        if np.any(power_maps_w < 0.0):
            raise ValidationError("power maps must be non-negative")
        vectors = np.zeros((power_maps_w.shape[0], grid.n_cells), dtype=float)
        source_layer = grid.stack.heat_source_index
        vectors[:, grid.layer_slice(source_layer)] = power_maps_w.reshape(
            power_maps_w.shape[0], -1
        )
        return vectors

    def conductance_system(
        self, cooling: CoolingBoundary
    ) -> tuple[sparse.csr_matrix, np.ndarray]:
        """Power-independent part of the system for a cooling boundary.

        Returns the full conductance matrix ``A`` (bulk conduction, bottom
        boundary and the top convective boundary) together with the boundary
        RHS (bottom ambient plus top fluid terms).  The complete steady-state
        RHS is this boundary RHS plus :meth:`power_vector` — power never
        enters the matrix, which is what makes factorization caching across
        power maps possible.
        """
        diag_add, rhs_add = self._top_boundary_terms(cooling)
        matrix = (self._bulk_matrix + sparse.diags(diag_add)).tocsr()
        return matrix, self._bottom_rhs + rhs_add

    def system(
        self, power_map_w: np.ndarray, cooling: CoolingBoundary
    ) -> tuple[sparse.csr_matrix, np.ndarray]:
        """Full steady-state system ``A @ T = b`` for given power and cooling."""
        matrix, boundary_rhs = self.conductance_system(cooling)
        return matrix, boundary_rhs + self.power_vector(power_map_w)

    def content_key(self) -> str:
        """Content hash identifying this network's assembled operators.

        Two networks with byte-identical bulk matrices, capacitances, top
        half-resistances and bottom-boundary RHS produce identical
        :meth:`conductance_system` output for equal cooling boundaries, so
        the hex digest is a process-independent key for persisting derived
        operators (see :mod:`repro.thermal.warm_store`).  Memoised on first
        use under the network's immutability contract.
        """
        key = getattr(self, "_content_key", None)
        if key is None:
            bulk = self._bulk_matrix.tocsr()
            digest = hashlib.blake2b(digest_size=16)
            digest.update(
                repr(
                    (self.grid.n_layers, self.grid.n_rows, self.grid.n_columns)
                ).encode()
            )
            for array in (
                bulk.data,
                bulk.indices,
                bulk.indptr,
                self._capacitance,
                self._top_half_resistance,
                self._bottom_rhs,
            ):
                digest.update(np.ascontiguousarray(array).tobytes())
            key = digest.hexdigest()
            self._content_key = key
        return key

    @property
    def capacitance(self) -> np.ndarray:
        """Per-cell heat capacity vector in J/K."""
        return self._capacitance.copy()

    @property
    def bulk_matrix(self) -> sparse.csr_matrix:
        """Conduction-plus-bottom-boundary matrix (no top boundary)."""
        return self._bulk_matrix.copy()
