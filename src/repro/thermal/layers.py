"""Vertical layer stack of the die / package / evaporator assembly."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.thermal.materials import Material, get_material
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class Layer:
    """One horizontal layer of the stack.

    ``fill_material`` (optional) is the material used for cells of this
    layer that fall *outside* the die footprint — e.g. the silicon die layer
    is surrounded by package sealant.  When ``None`` the whole layer is made
    of ``material``.
    """

    name: str
    material: Material
    thickness_m: float
    fill_material: Material | None = None
    heat_source: bool = False

    def __post_init__(self) -> None:
        check_positive(self.thickness_m, "thickness_m")

    def conductivity_at(self, inside_die: bool) -> float:
        """Thermal conductivity of a cell, which may depend on the die mask."""
        if inside_die or self.fill_material is None:
            return self.material.thermal_conductivity_w_mk
        return self.fill_material.thermal_conductivity_w_mk

    def volumetric_capacity_at(self, inside_die: bool) -> float:
        """Volumetric heat capacity of a cell."""
        if inside_die or self.fill_material is None:
            return self.material.volumetric_heat_capacity_j_m3k
        return self.fill_material.volumetric_heat_capacity_j_m3k

    def conductivity_field(self, die_mask: np.ndarray) -> np.ndarray:
        """Per-cell thermal conductivity as an array over the die mask.

        Array-valued counterpart of :meth:`conductivity_at`; the vectorized
        network assembly builds whole conductance planes from these fields.
        """
        die_mask = np.asarray(die_mask, dtype=bool)
        if self.fill_material is None:
            return np.full(die_mask.shape, self.material.thermal_conductivity_w_mk)
        return np.where(
            die_mask,
            self.material.thermal_conductivity_w_mk,
            self.fill_material.thermal_conductivity_w_mk,
        )

    def capacity_field(self, die_mask: np.ndarray) -> np.ndarray:
        """Per-cell volumetric heat capacity as an array over the die mask."""
        die_mask = np.asarray(die_mask, dtype=bool)
        if self.fill_material is None:
            return np.full(die_mask.shape, self.material.volumetric_heat_capacity_j_m3k)
        return np.where(
            die_mask,
            self.material.volumetric_heat_capacity_j_m3k,
            self.fill_material.volumetric_heat_capacity_j_m3k,
        )


class LayerStack:
    """Ordered collection of layers, bottom (die) to top (evaporator base)."""

    def __init__(self, layers: tuple[Layer, ...]) -> None:
        if len(layers) < 1:
            raise ConfigurationError("a layer stack needs at least one layer")
        names = [layer.name for layer in layers]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate layer names: {names}")
        self.layers = tuple(layers)

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self):
        return iter(self.layers)

    def __getitem__(self, index: int) -> Layer:
        return self.layers[index]

    def index_of(self, name: str) -> int:
        """Index of the layer called ``name``."""
        for index, layer in enumerate(self.layers):
            if layer.name == name:
                return index
        raise ConfigurationError(f"no layer named {name!r}")

    @property
    def heat_source_index(self) -> int:
        """Index of the layer into which component power is injected."""
        for index, layer in enumerate(self.layers):
            if layer.heat_source:
                return index
        raise ConfigurationError("no layer is marked as the heat source")

    @property
    def total_thickness_m(self) -> float:
        """Total stack thickness in metres."""
        return sum(layer.thickness_m for layer in self.layers)


def standard_thermosyphon_stack(
    *,
    die_thickness_mm: float = 0.75,
    spreader_thickness_mm: float = 2.5,
    evaporator_base_thickness_mm: float = 1.0,
    evaporator_material: str = "copper",
) -> LayerStack:
    """The default stack: die, solder TIM, copper IHS, grease TIM, evaporator base.

    The micro-channels themselves are not a solid layer; they appear as the
    convective boundary condition on top of the evaporator base, supplied by
    the thermosyphon model.
    """
    silicon = get_material("silicon")
    sealant = get_material("sealant")
    return LayerStack(
        (
            Layer(
                name="die",
                material=silicon,
                thickness_m=die_thickness_mm * 1e-3,
                fill_material=sealant,
                heat_source=True,
            ),
            Layer(
                name="tim1",
                material=get_material("solder_tim"),
                thickness_m=0.10e-3,
                fill_material=sealant,
            ),
            Layer(
                name="heat_spreader",
                material=get_material("copper"),
                thickness_m=spreader_thickness_mm * 1e-3,
            ),
            Layer(
                name="tim2",
                material=get_material("grease_tim"),
                thickness_m=0.10e-3,
            ),
            Layer(
                name="evaporator_base",
                material=get_material(evaporator_material),
                thickness_m=evaporator_base_thickness_mm * 1e-3,
            ),
        )
    )
