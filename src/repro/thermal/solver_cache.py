"""Cached sparse factorizations for repeated thermal solves.

The thermal system ``A @ T = b`` splits into a power-independent operator
(bulk conduction + bottom boundary + top convective boundary) and a
power-dependent right-hand side: power injection only ever touches ``b``
(see :meth:`repro.thermal.network.ThermalNetwork.conductance_system`).  The
operator therefore only changes when the *cooling boundary* changes — and,
for backward-Euler transient stepping, when the step size ``dt_s`` changes.

:class:`FactorizationCache` exploits this: it assembles the operator and
computes a sparse LU factorization (:func:`scipy.sparse.linalg.factorized`)
once per distinct ``(cooling boundary, dt)`` and reuses it for every solve
with a different power map, turning repeated solves into a single
back-substitution each.

Caching/invalidation contract
-----------------------------
* Entries are keyed by :meth:`CoolingBoundary.cache_token`, a content hash
  of the HTC and fluid-temperature fields.  Distinct boundary objects with
  equal fields share one factorization; a boundary with *any* differing
  cell produces a new key, so changing the cooling mid-run invalidates the
  cached operator automatically — no explicit call needed.
* ``CoolingBoundary`` is a frozen dataclass; its arrays must not be mutated
  in place after construction (the token is memoised on first use).
* The underlying :class:`ThermalNetwork` is assumed immutable after
  construction.  If it is rebuilt or mutated in place, call
  :meth:`FactorizationCache.invalidate` to drop every cached factorization.
* The cache is LRU-bounded (``max_entries`` per solver kind) so boundary
  sweeps cannot grow memory without limit.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import splu

from repro.exceptions import ConvergenceError
from repro.obs.telemetry import Counters, get_telemetry
from repro.thermal.boundary import CoolingBoundary
from repro.thermal.network import ThermalNetwork
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters of one :class:`FactorizationCache`.

    Stats are additive: ``a + b`` (or ``sum(stats_list, CacheStats.zero())``)
    merges counters across caches, so rack-level engines spanning several
    sessions/simulators can report one rack-wide hit rate and factorization
    count.
    """

    hits: int
    misses: int
    steady_entries: int
    transient_entries: int

    @property
    def hit_rate(self) -> float:
        """Fraction of operator lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @classmethod
    def zero(cls) -> "CacheStats":
        """The additive identity (useful as a ``sum`` start value)."""
        return cls(hits=0, misses=0, steady_entries=0, transient_entries=0)

    def __add__(self, other: "CacheStats") -> "CacheStats":
        if not isinstance(other, CacheStats):
            return NotImplemented
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            steady_entries=self.steady_entries + other.steady_entries,
            transient_entries=self.transient_entries + other.transient_entries,
        )

    def __radd__(self, other) -> "CacheStats":
        # Accept the int 0 that a plain sum(stats_list) starts from.
        if other == 0:
            return self
        return NotImplemented

    def delta(self, before: "CacheStats") -> "CacheStats":
        """The activity between two snapshots of the same cache.

        Hit/miss counters become the difference since ``before``; the entry
        counts stay at this (later) snapshot's values — entries are a state,
        not an accumulator.  The single source of the before/after
        bookkeeping trace engines report (rack traces, datacenter runs).
        """
        return CacheStats(
            hits=self.hits - before.hits,
            misses=self.misses - before.misses,
            steady_entries=self.steady_entries,
            transient_entries=self.transient_entries,
        )


@dataclass(frozen=True)
class SteadyOperator:
    """Factorized steady-state operator for one cooling boundary.

    ``solve`` back-substitutes a right-hand side through the cached LU
    factors.  It accepts either one RHS vector of shape ``(n_cells,)`` or a
    multi-column RHS of shape ``(n_cells, k)`` — SuperLU back-substitutes
    the columns independently, so a whole rack of servers sharing this
    boundary is solved in one call with results identical to ``k`` separate
    single-column solves.
    """

    boundary_rhs: np.ndarray
    solve: Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class TransientOperator:
    """Factorized backward-Euler operator for one (cooling, dt) pair.

    Like :class:`SteadyOperator`, ``solve`` accepts a single RHS vector or
    an ``(n_cells, k)`` multi-column RHS, back-substituting all columns
    through one factorization.
    """

    boundary_rhs: np.ndarray
    capacitance_over_dt: np.ndarray
    solve: Callable[[np.ndarray], np.ndarray]


def _factorize(matrix: sparse.csr_matrix) -> Callable[[np.ndarray], np.ndarray]:
    # splu (not factorized) so the returned solve handles multi-column RHS
    # regardless of whether a UMFPACK binding is installed.
    try:
        return splu(matrix.tocsc()).solve
    except RuntimeError as error:  # SuperLU: "Factor is exactly singular"
        raise ConvergenceError(
            "thermal system factorization failed (singular matrix); check "
            "that at least one boundary has a non-zero heat transfer "
            f"coefficient: {error}"
        ) from error


class FactorizationCache:
    """LRU cache of factorized thermal operators for one network.

    One instance is shared between the steady-state and transient solvers of
    a :class:`repro.thermal.simulator.ThermalSimulator`, so a controller
    trace that alternates transient steps and steady solves at a fixed
    cooling boundary factorizes each operator exactly once.
    """

    def __init__(self, network: ThermalNetwork, *, max_entries: int = 16) -> None:
        check_positive(max_entries, "max_entries")
        self.network = network
        self.max_entries = int(max_entries)
        self._steady: OrderedDict[tuple, SteadyOperator] = OrderedDict()
        self._transient: OrderedDict[tuple, TransientOperator] = OrderedDict()
        self._reduced: OrderedDict[tuple, object] = OrderedDict()
        self._warm_store = None
        self._network_key: str | None = None
        # Hit/miss tallies live in a telemetry counter bag; the public
        # ``stats`` CacheStats is a view over it (repro.obs unification).
        self._counters = Counters()
        # Get-or-build is guarded so thread fan-out (BatchEvaluator
        # backend="thread") can share one cache: the lock serializes the
        # bookkeeping and the (rare) factorization; the back-substitutions
        # themselves run outside it and release the GIL inside SuperLU.
        # Reentrant because a reduced-operator build solves through the
        # steady/transient accessors of the same cache.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    # Warm store (repro.thermal.warm_store)
    # ------------------------------------------------------------------ #
    def attach_warm_store(self, store) -> None:
        """Attach a :class:`~repro.thermal.warm_store.WarmStore` (or None).

        With a store attached, operator misses first consult the disk
        entries keyed by the network's content key: a hit skips the
        operator *assembly* (the symbolic half — the numeric factorization
        of the byte-identical persisted system re-runs and reproduces the
        cold factors exactly, so warm and cold runs stay bit-identical),
        and reduced-operator misses skip the whole Arnoldi build.  Cold
        builds persist their results back (first write wins).
        """
        with self._lock:
            self._warm_store = store
            self._network_key = None

    @property
    def warm_store(self):
        """The attached warm store, or None."""
        return self._warm_store

    def _warm_network_key(self) -> str:
        if self._network_key is None:
            self._network_key = self.network.content_key()
        return self._network_key

    # ------------------------------------------------------------------ #
    # Operators
    # ------------------------------------------------------------------ #
    def steady_operator(self, cooling: CoolingBoundary) -> SteadyOperator:
        """Factorized ``A`` and boundary RHS for a cooling boundary."""
        key = cooling.cache_token()
        with self._lock:
            entry = self._steady.get(key)
            if entry is not None:
                self._counters.add("hits")
                self._steady.move_to_end(key)
                return entry
            self._counters.add("misses")
            with get_telemetry().span("cache.factorize", kind="steady"):
                matrix = boundary_rhs = None
                store = self._warm_store
                if store is not None:
                    system_key = store.system_key(
                        self._warm_network_key(), "steady", key, None
                    )
                    loaded = store.load_system(system_key)
                    if loaded is not None:
                        matrix, boundary_rhs = loaded
                if matrix is None:
                    matrix, boundary_rhs = self.network.conductance_system(cooling)
                    if store is not None:
                        store.store_system(system_key, matrix, boundary_rhs)
                entry = SteadyOperator(
                    boundary_rhs=boundary_rhs, solve=_factorize(matrix)
                )
            self._steady[key] = entry
            while len(self._steady) > self.max_entries:
                self._steady.popitem(last=False)
            return entry

    def transient_operator(
        self, cooling: CoolingBoundary, dt_s: float
    ) -> TransientOperator:
        """Factorized ``A + C/dt`` and boundary RHS for one (cooling, dt)."""
        check_positive(dt_s, "dt_s")
        key = (cooling.cache_token(), float(dt_s))
        with self._lock:
            entry = self._transient.get(key)
            if entry is not None:
                self._counters.add("hits")
                self._transient.move_to_end(key)
                return entry
            self._counters.add("misses")
            with get_telemetry().span("cache.factorize", kind="transient"):
                capacitance_over_dt = self.network.capacitance / float(dt_s)
                system = boundary_rhs = None
                store = self._warm_store
                if store is not None:
                    system_key = store.system_key(
                        self._warm_network_key(), "transient", key[0], dt_s
                    )
                    loaded = store.load_system(system_key)
                    if loaded is not None:
                        system, boundary_rhs = loaded
                if system is None:
                    matrix, boundary_rhs = self.network.conductance_system(cooling)
                    system = matrix + sparse.diags(capacitance_over_dt)
                    if store is not None:
                        store.store_system(system_key, system, boundary_rhs)
                entry = TransientOperator(
                    boundary_rhs=boundary_rhs,
                    capacitance_over_dt=capacitance_over_dt,
                    solve=_factorize(system),
                )
            self._transient[key] = entry
            while len(self._transient) > self.max_entries:
                evicted_key, _ = self._transient.popitem(last=False)
                # Evict the reduced-operator lane with its LU entry: the
                # basis is only ever stepped against this exact (boundary,
                # dt) operator, so an orphaned basis would pin memory for a
                # key the cache already dropped under pressure.
                self._reduced.pop(evicted_key, None)
            return entry

    # ------------------------------------------------------------------ #
    # Reduced-order operators (repro.thermal.rom)
    # ------------------------------------------------------------------ #
    def reduced_operator(self, cooling: CoolingBoundary, dt_s: float, config=None):
        """The cached reduced-order operator for one (cooling, dt), or None.

        Reduced operators live beside the LU factors under the same
        content-keyed LRU discipline, but are built by the caller (the
        floor's reduced-order lane decides the basis seeds) and stored via
        :meth:`store_reduced_operator`.  With a warm store attached and a
        :class:`~repro.thermal.rom.RomConfig` given, an in-memory miss
        falls through to the persisted entry for (network, boundary, dt,
        config) — the cross-run path that makes run N+1 skip every Arnoldi
        build.  Lookups deliberately do not touch the :class:`CacheStats`
        hit/miss counters — those count factorizations, which trace
        engines report as physical work.
        """
        key = (cooling.cache_token(), float(dt_s))
        with self._lock:
            entry = self._reduced.get(key)
            if entry is not None:
                self._reduced.move_to_end(key)
                return entry
            store = self._warm_store
            if store is None or config is None:
                return None
            entry = store.load_reduced(
                store.reduced_key(self._warm_network_key(), key[0], dt_s, config)
            )
            if entry is not None:
                self._insert_reduced(key, entry)
            return entry

    def _insert_reduced(self, key: tuple, operator) -> None:
        self._reduced[key] = operator
        self._reduced.move_to_end(key)
        while len(self._reduced) > self.max_entries:
            self._reduced.popitem(last=False)

    def store_reduced_operator(
        self, cooling: CoolingBoundary, dt_s: float, operator, config=None
    ) -> None:
        """Insert/replace the reduced operator for one (cooling, dt).

        With a warm store attached and a config given, the operator is
        also persisted to disk under first-write-wins: the *first* build
        of a key defines the stored entry and drift-triggered rebuilds
        never overwrite it, which is what keeps a warm replay bit-identical
        to the cold run (both start every key from the same basis).
        """
        key = (cooling.cache_token(), float(dt_s))
        with self._lock:
            self._insert_reduced(key, operator)
            store = self._warm_store
            if store is not None and config is not None:
                store.store_reduced(
                    store.reduced_key(self._warm_network_key(), key[0], dt_s, config),
                    operator,
                )

    @property
    def reduced_entries(self) -> int:
        """Number of cached reduced-order operators (kept out of
        :class:`CacheStats` for backward compatibility)."""
        return len(self._reduced)

    # ------------------------------------------------------------------ #
    # Introspection and invalidation
    # ------------------------------------------------------------------ #
    @property
    def stats(self) -> CacheStats:
        """Hit/miss counters and current entry counts.

        A frozen *view* built from the live telemetry counter bag — the
        legacy reporting surface of the unified observability layer.
        """
        return CacheStats(
            hits=self._counters.get("hits"),
            misses=self._counters.get("misses"),
            steady_entries=len(self._steady),
            transient_entries=len(self._transient),
        )

    def __len__(self) -> int:
        return len(self._steady) + len(self._transient)

    def invalidate(self) -> None:
        """Drop every cached factorization (counters are kept).

        Required only when the underlying network is replaced or mutated in
        place; cooling-boundary changes invalidate implicitly through the
        content-based key.  Every lane drops together — steady and
        transient LU entries, the reduced-operator bases riding beside
        them, and the memoised warm-store network key (the mutated network
        must re-hash, so stale disk entries under the old key can never be
        loaded again).
        """
        with self._lock:
            self._steady.clear()
            self._transient.clear()
            self._reduced.clear()
            self._network_key = None
            # The network memoises its own content key; a mutation-driven
            # invalidate must force a re-hash there too.
            try:
                del self.network._content_key
            except AttributeError:
                pass
