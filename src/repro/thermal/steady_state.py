"""Steady-state solution of the thermal network."""

from __future__ import annotations

import numpy as np
from scipy.sparse.linalg import spsolve

from repro.exceptions import ConvergenceError
from repro.thermal.boundary import CoolingBoundary
from repro.thermal.network import ThermalNetwork


class SteadyStateSolver:
    """Solves ``A @ T = b`` for the equilibrium temperature field."""

    def __init__(self, network: ThermalNetwork) -> None:
        self.network = network

    def solve(self, power_map_w: np.ndarray, cooling: CoolingBoundary) -> np.ndarray:
        """Return the flat temperature vector (degrees Celsius).

        Raises
        ------
        ConvergenceError
            If the linear solve produces non-finite values, which indicates a
            singular system (for example a zero-HTC boundary everywhere with
            no bottom path).
        """
        matrix, rhs = self.network.system(power_map_w, cooling)
        temperatures = spsolve(matrix, rhs)
        if not np.all(np.isfinite(temperatures)):
            raise ConvergenceError(
                "steady-state solve produced non-finite temperatures; "
                "check that at least one boundary has a non-zero heat transfer coefficient"
            )
        return np.asarray(temperatures, dtype=float)

    def solve_layers(
        self, power_map_w: np.ndarray, cooling: CoolingBoundary
    ) -> np.ndarray:
        """Temperatures reshaped to ``(n_layers, n_rows, n_columns)``."""
        flat = self.solve(power_map_w, cooling)
        grid = self.network.grid
        return flat.reshape(grid.n_layers, grid.n_rows, grid.n_columns)
